"""Time-domain simulation with the transient engine.

Three canonical checks, each verifiable by hand:

1. RC step response (tau = RC charging law),
2. CMOS inverter driving a load capacitor through a pulse,
3. charge-pump-style integration: a switched current source pumping a
   loop-filter capacitor — the time-domain face of the Table II circuit.

    python examples/transient_response.py
"""

import numpy as np

from repro.circuits import Circuit, TransientAnalysis, nmos_180, pmos_180, pulse
from repro.circuits.units import format_si


def rc_step():
    print("--- RC step response ------------------------------------")
    r, c = 1e3, 1e-9
    tau = r * c
    ckt = Circuit("rc")
    vin = ckt.vsource("VIN", "in", "0", 0.0)
    vin.waveform = pulse(0.0, 1.0, delay=0.0, rise=1e-12, fall=1e-12, width=1.0)
    ckt.resistor("R1", "in", "out", r)
    ckt.capacitor("C1", "out", "0", c)
    result = TransientAnalysis(ckt).run(t_stop=5 * tau, dt=tau / 100)
    k = int(np.argmin(np.abs(result.times - tau)))
    print(f"  v(out) at t=tau: {result.voltage('out')[k]:.4f} "
          f"(theory {1 - np.e**-1:.4f})")


def inverter():
    print("--- CMOS inverter switching ------------------------------")
    ckt = Circuit("inv")
    ckt.vsource("VDD", "vdd", "0", 1.8)
    vin = ckt.vsource("VIN", "in", "0", 0.0)
    vin.waveform = pulse(0.0, 1.8, delay=1e-9, rise=0.1e-9, fall=0.1e-9,
                         width=4e-9)
    ckt.mosfet("MP", "out", "in", "vdd", "vdd", pmos_180, 4e-6, 0.18e-6)
    ckt.mosfet("MN", "out", "in", "0", "0", nmos_180, 2e-6, 0.18e-6)
    ckt.capacitor("CL", "out", "0", 20e-15)
    result = TransientAnalysis(ckt).run(t_stop=8e-9, dt=0.02e-9)
    v = result.voltage("out")
    t = result.times
    fall = np.nonzero((t > 1e-9) & (v < 0.9))[0]
    print(f"  output falls through VDD/2 at t = {format_si(t[fall[0]], 's')}")
    print(f"  levels: high {v[t < 0.9e-9].min():.3f} V, "
          f"low {v[(t > 3e-9) & (t < 5e-9)].max():.3f} V")


def charge_pump_integration():
    print("--- charge pump pumping a loop filter --------------------")
    # behavioural CP: 40 uA up-current gated by the UP pulse into C_filter
    ckt = Circuit("cp_tran")
    up = ckt.isource("IUP", "0", "ctrl", 0.0)
    up.waveform = pulse(0.0, 40e-6, delay=10e-9, rise=1e-10, fall=1e-10,
                        width=50e-9, period=200e-9)
    ckt.capacitor("CF", "ctrl", "0", 10e-12)
    ckt.resistor("RLEAK", "ctrl", "0", 100e6)
    result = TransientAnalysis(ckt).run(t_stop=1e-6, dt=0.5e-9)
    v = result.voltage("ctrl")
    # each 50 ns pulse of 40 uA deposits Q = 2 pC -> dV = 0.2 V on 10 pF
    print(f"  control voltage after 5 pump cycles: {v[-1]:.3f} V "
          f"(theory ~{5 * 40e-6 * 50e-9 / 10e-12:.3f} V)")


def main():
    rc_step()
    inverter()
    charge_pump_integration()


if __name__ == "__main__":
    main()
