"""Two studies sharing one evaluation farm, with resize and speculation.

The :class:`~repro.farm.EvaluationFarm` decouples studies from workers:
many ask/tell studies register as *tenants* of one shared pool, and a
weighted round-robin picks the next dispatch so a chatty study cannot
starve the others.  :class:`~repro.farm.FarmStudyDriver` then drives
each study — submitting proposals, collecting landings in deterministic
order, and (optionally) speculating on runner-up proposals that are
*promoted* when a worker slot wants them or *abandoned* (retracted)
when they age out:

    python examples/farm_multi_study.py

The demo runs two GP-surrogate sizing studies against one 3-worker
farm — tenant ``sharp`` at twice the fair-share weight of ``broad`` —
resizes the farm to 5 workers halfway through, and prints the
speculation lifecycle straight from the proposal ledger.  A
:class:`~repro.bo.scheduler.FakeClock` stands in for simulator
wall-clock, so the run is fast, deterministic, and bitwise replayable.
"""

import numpy as np

from repro.bo.config import SpeculationConfig
from repro.bo.scheduler import FakeClock
from repro.bo.study import Study
from repro.farm import EvaluationFarm, FarmJob, FarmStudyDriver
from repro.gp import GPRegression

DIM = 4
BUDGET = 14
RESIZE_AT = 10  # total landings across both tenants


def gp_factory(rng):
    return GPRegression(n_restarts=1, seed=rng)


def sharp_problem():
    """A narrow quadratic bowl — the 'hard' tenant, weighted 2x."""
    from repro.bo.problem import FunctionProblem

    return FunctionProblem(
        "sharp",
        np.zeros(DIM),
        np.ones(DIM),
        lambda x: float(np.sum((x - 0.3) ** 2)),
    )


def broad_problem():
    """A shifted bowl — the background tenant at weight 1."""
    from repro.bo.problem import FunctionProblem

    return FunctionProblem(
        "broad",
        np.zeros(DIM),
        np.ones(DIM),
        lambda x: float(np.sum((x - 0.7) ** 2)),
    )


def main():
    clock = FakeClock()
    landings = {"total": 0, "resized": False}

    studies = {
        "sharp": Study(
            sharp_problem(),
            surrogate_factory=gp_factory,
            n_initial=5,
            max_evaluations=BUDGET,
            seed=11,
        ),
        "broad": Study(
            broad_problem(),
            surrogate_factory=gp_factory,
            n_initial=5,
            max_evaluations=BUDGET,
            seed=12,
        ),
    }

    with EvaluationFarm("async-thread", n_workers=3, clock=clock) as farm:

        def on_commit(trial, evaluation, result):
            landings["total"] += 1
            if landings["total"] == RESIZE_AT and not landings["resized"]:
                landings["resized"] = True
                farm.resize(5)
                print(
                    f"-- landing #{RESIZE_AT}: farm resized 3 -> 5 workers "
                    "(queued work dispatches immediately)"
                )

        jobs = [
            FarmJob(
                study=studies["sharp"],
                tenant=farm.register(
                    "sharp", problem=studies["sharp"].problem, weight=2.0
                ),
                target=2,
                speculation=SpeculationConfig(
                    max_speculative=1, max_age_landings=1
                ),
                on_commit=on_commit,
            ),
            FarmJob(
                study=studies["broad"],
                tenant=farm.register(
                    "broad", problem=studies["broad"].problem, weight=1.0
                ),
                target=2,
                on_commit=on_commit,
            ),
        ]

        print("--- two tenants, one farm (3 workers, weights 2:1) ------")
        driver = FarmStudyDriver(farm, clock=clock)
        results = driver.run_studies(jobs)

        print("\n--- per-tenant accounting ------------------------------")
        snapshot = farm.describe()
        for name, stats in snapshot["tenants"].items():
            print(
                f"{name:6s}: weight {stats['weight']:.0f}, "
                f"{stats['completed']} evaluations landed, "
                f"eval EWMA {stats['eval_ewma_s']:.3f}s (virtual)"
            )

    print("\n--- results --------------------------------------------")
    for name, result in zip(studies, results):
        best = float(np.min(result.objectives))
        print(f"{name:6s}: {result.n_evaluations} evaluations, best {best:.5f}")

    print("\n--- speculation lifecycle (tenant 'sharp') -------------")
    ledger = studies["sharp"].ledger
    speculative = [e for e in ledger.entries if e.speculative]
    landed = [e for e in speculative if e.committed_at is not None]
    abandoned = [e for e in speculative if e.retracted]
    print(
        f"{len(speculative)} speculative proposals: "
        f"{len(landed)} landed (promoted or completed), "
        f"{len(abandoned)} abandoned (retracted, budget refunded)"
    )
    for entry in speculative:
        fate = (
            "landed" if entry.committed_at is not None
            else "abandoned" if entry.retracted
            else "pending"
        )
        print(f"  proposal {entry.proposal_id}: {fate}")


if __name__ == "__main__":
    main()
