"""Batch (q-point) sizing with the propose/evaluate scheduler.

Proposes q = 4 designs per BO iteration and evaluates each batch on a
thread pool, then reruns the same seed serially with q = 1 to show the
wall-clock difference at an identical simulation budget:

    python examples/batch_sizing.py

The q-point acquisition keeps the batch diverse with Kriging-believer
fantasy updates between picks (pass ``fantasy="cl-min"``/``"cl-max"`` for
the classic constant liar), and the history records full provenance: which
iteration and batch slot every design came from, and which pending points
its acquisition conditioned on.  For CPU-bound pure-Python simulators use
``executor="process"`` — threads suit simulators that block on IO or
subprocesses.  The testbench here simulates a two-stage op-amp (Table I);
an artificial per-simulation delay stands in for SPICE-level cost so the
parallel win is visible in a quick demo.
"""

import time

from repro import NNBO
from repro.circuits.testbenches import TwoStageOpAmpProblem


class SlowOpAmpProblem(TwoStageOpAmpProblem):
    """Op-amp testbench padded to a fixed per-simulation wall-clock cost."""

    SIM_SECONDS = 0.08

    def evaluate(self, x):
        time.sleep(self.SIM_SECONDS)
        return super().evaluate(x)


def run(q: int, executor: str):
    optimizer = NNBO(
        SlowOpAmpProblem(),
        n_initial=12,
        max_evaluations=32,
        n_ensemble=3,
        hidden_dims=(24, 24),
        n_features=16,
        epochs=100,
        q=q,
        executor=executor,
        seed=2019,
    )
    start = time.perf_counter()
    result = optimizer.run()
    return time.perf_counter() - start, result


def main():
    t_batch, batched = run(q=4, executor="thread")
    t_serial, serial = run(q=1, executor="serial")

    print("--- equal budget, different wall-clock ----------------")
    print(f"serial  q=1: {serial.n_evaluations} sims in {t_serial:5.1f}s")
    print(f"batched q=4: {batched.n_evaluations} sims in {t_batch:5.1f}s "
          f"({t_serial / t_batch:.2f}x)")
    print(f"best GAIN serial : {-serial.best_objective():.2f} dB")
    print(f"best GAIN batched: {-batched.best_objective():.2f} dB")

    print("\n--- batch provenance ----------------------------------")
    for batch in batched.batches()[:3]:
        row = ", ".join(
            f"#{r.index}(slot {r.batch_index}, pending {list(r.pending)})"
            for r in batch
        )
        print(f"iteration {batch[0].iteration}: {row}")
    print("...")


if __name__ == "__main__":
    main()
