"""Sizing a circuit imported from a SPICE netlist.

The paper's flow starts from an HSPICE deck; ``problem_from_netlist``
gives the repository the same entry point: hand it a deck, name the
device attributes you want to size, and you get a fully-featured
sizing problem (caching, penalty handling, backend selection) that any
optimizer in the repo can drive:

    python examples/netlist_import_sizing.py

The demo writes a small common-source-stage deck to a temp file,
imports it with two design variables (the load resistor and the
transistor width), and runs a short NN-BO campaign that biases the
output node to mid-rail while keeping the stage's current draw under a
budget — all through the deck, never touching Circuit objects directly.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.api import NNBO, SurrogateConfig
from repro.sim import problem_from_netlist

DECK = """* common-source stage
VDD vdd 0 1.8
VIN g 0 0.9
RD vdd d 10k
M1 d g 0 0 nch W=20u L=1u
.MODEL nch NMOS (LEVEL=1 VTO=0.45 KP=300u LAMBDA=0.05 GAMMA=0.45 PHI=0.85)
.END
"""

VDD = 1.8
I_BUDGET = 250e-6  # amps drawn from the supply


def main():
    with tempfile.TemporaryDirectory() as tmp:
        deck_path = Path(tmp) / "cs_stage.sp"
        deck_path.write_text(DECK)

        problem = problem_from_netlist(
            deck_path,
            variables=[("RD", 1e3, 100e3), ("M1.w", 1e-6, 100e-6)],
            # metrics come from the default measure: every op-point node
            # voltage ("v(d)") and source branch current ("i(VDD)")
            objective=lambda m: (m["v(d)"] - VDD / 2.0) ** 2,
            constraints=[lambda m: -m["i(VDD)"] - I_BUDGET],  # drawn <= budget
            sim_backend="mna",  # or "ngspice" to shell out to a real binary
        )
        print(f"imported {problem.name!r}: {problem.variable_names}")
        print(f"bindings: {problem.bindings}")

        x0 = np.array([10e3, 20e-6])
        m0 = problem.simulate(x0)
        print(f"as-drawn: v(d)={m0['v(d)']:.3f} V, "
              f"idd={-m0['i(VDD)'] * 1e6:.1f} uA")

        optimizer = NNBO(
            problem,
            n_initial=8,
            max_evaluations=20,
            surrogate=SurrogateConfig(
                n_ensemble=2, hidden_dims=(16, 16), epochs=60
            ),
            seed=0,
            verbose=False,
        )
        result = optimizer.run()

        best = result.best_feasible()
        rd, w = best.x
        metrics = problem.simulate(best.x)
        print("\n--- result -------------------------------------------")
        print(f"evaluations used : {result.n_evaluations}")
        print(f"feasible found   : {result.success}")
        print(f"best sizing      : RD={rd / 1e3:.2f} kOhm, W={w * 1e6:.2f} um")
        print(f"output node      : v(d)={metrics['v(d)']:.3f} V "
              f"(target {VDD / 2.0:.2f} V)")
        print(f"supply draw      : {-metrics['i(VDD)'] * 1e6:.1f} uA "
              f"(budget {I_BUDGET * 1e6:.0f} uA)")
        print(f"cache stats      : {problem.cache_stats}")


if __name__ == "__main__":
    main()
