"""Driving the optimizer from an *external* evaluation backend (ask/tell).

Production sizing flows rarely let the optimizer own the simulations: the
SPICE farm sits behind a license queue or a cluster scheduler, results
land whenever they land, and the machine running the optimizer may be
restarted mid-campaign.  The :class:`repro.api.Study` ask/tell core is
built for exactly that inversion — your code asks for designs, evaluates
them however it likes, and tells the results back:

    python examples/ask_tell_external_simulator.py

The demo plays the external backend with a two-worker "simulator farm"
(a plain dict of in-flight designs), interleaves completions out of
submission order exactly like a real farm would, kills the whole process
state half-way through by checkpointing the study to JSON and rebuilding
it from disk, and finishes the run on the resumed study — the trace
continues seamlessly, pending trials included.
"""

import tempfile
from pathlib import Path

from repro.api import (
    SchedulerConfig,
    Study,
    SurrogateConfig,
    TwoStageOpAmpProblem,
)


def external_simulate(problem, trial):
    """Stand-in for a SPICE farm: evaluate one design in natural units."""
    return problem.evaluate(trial.x)


def main():
    problem = TwoStageOpAmpProblem()
    surrogate = SurrogateConfig(
        n_ensemble=3, hidden_dims=(24, 24), n_features=16, epochs=100
    )
    # async_refit="full" (the default) is what makes checkpoint/resume
    # continue bitwise; n_eval_workers sizes the pending set we keep fed
    scheduler = SchedulerConfig(executor="async-thread", n_eval_workers=2)

    study = Study(
        problem,
        surrogate=surrogate,
        scheduler=scheduler,
        n_initial=10,
        max_evaluations=26,
        seed=2019,
    )

    # -- phase 1: the initial design, evaluated wherever we like ---------------
    for trial in study.start_initial():
        study.tell(trial, external_simulate(problem, trial))
    print(f"initial design done: {study.n_evaluations} evaluations")

    # -- phase 2: an external two-worker farm, completing out of order ---------
    farm: dict[int, object] = {}  # trial id -> Trial, "in flight"
    checkpoint_path = Path(tempfile.mkdtemp()) / "opamp_study.json"

    def farm_step(study):
        """Keep two designs in flight; land the *oldest* every other step."""
        while study.remaining_capacity > 0 and len(farm) < 2:
            trial = study.ask()[0]
            farm[trial.id] = trial
        # a real farm completes in its own order; emulate by landing the
        # newest submission first every other landing
        order = sorted(farm)
        trial = farm.pop(order[-1] if study.n_evaluations % 2 else order[0])
        study.tell(trial, external_simulate(problem, trial))

    while study.n_evaluations < 18:
        farm_step(study)

    # -- phase 3: the process dies; rebuild everything from the checkpoint -----
    study.checkpoint(checkpoint_path)
    print(
        f"checkpointed at {study.n_evaluations} evaluations "
        f"({study.n_pending} in flight) -> {checkpoint_path}"
    )
    del study, farm

    resumed = Study.resume(
        checkpoint_path,
        TwoStageOpAmpProblem(),
        surrogate=surrogate,
        scheduler=scheduler,
    )
    farm = {t.id: t for t in resumed.pending_trials()}  # re-submit in-flight
    print(
        f"resumed: {resumed.n_evaluations} committed, "
        f"{len(farm)} re-submitted"
    )

    while not resumed.done:
        farm_step(resumed)

    best = resumed.best()
    gain = -best.evaluation.objective
    print(
        f"finished: {resumed.n_evaluations} evaluations, "
        f"best GAIN {gain:.2f} dB "
        f"(UGF {best.evaluation.metrics['ugf_hz'] / 1e6:.1f} MHz, "
        f"PM {best.evaluation.metrics['pm_deg']:.1f} deg)"
    )
    # the ledger audit trail survived the restart
    ledger = resumed.result.ledger
    print(
        f"ledger: {len(ledger)} proposals, completion order "
        f"{ledger.completion_order}"
    )


if __name__ == "__main__":
    main()
