"""Sizing a circuit against a BO *service* instead of an in-process Study.

A sizing campaign rarely lives in one process: the optimizer should
survive machine restarts, serve several circuits at once, and hand
designs to whatever owns the simulators — a SPICE farm, a license queue,
a measurement bench.  ``repro.service`` packages the ask/tell core as a
multi-study HTTP server whose client mirrors the :class:`repro.api.Study`
API one-for-one:

    python examples/service_sizing.py            # full demo
    python examples/service_sizing.py --smoke    # CI smoke (tiny budget)

The demo boots a real server as a subprocess (`python -m repro.service`)
on an ephemeral port, creates a charge-pump study over the wire, drives
it with the familiar ask/evaluate/tell loop, abandons one trial to show
retraction, and — the service's whole point — *restarts the server* mid
campaign and finishes the study from its durable checkpoints, with the
trace continuing exactly where it stopped.
"""

import argparse
import json
import subprocess
import sys
import tempfile

from repro.api import ChargePumpProblem, StudyClient
from repro.service import health, list_studies


def boot_server(root):
    """Start `python -m repro.service` and return (process, address)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--root", str(root), "--port", "0"],
        stdout=subprocess.PIPE,
        text=True,
    )
    # the server prints one JSON line with the bound ephemeral port
    banner = json.loads(process.stdout.readline())
    return process, (banner["host"], banner["port"])


def main(smoke: bool = False):
    problem = ChargePumpProblem()
    n_initial, budget = (3, 5) if smoke else (6, 14)
    surrogate = {
        "n_ensemble": 2,
        "hidden_dims": [16, 16],
        "n_features": 8,
        "epochs": 40,
    }

    root = tempfile.mkdtemp(prefix="bo_service_")
    server, address = boot_server(root)
    try:
        print(f"server up at {address[0]}:{address[1]}  {health(address)}")

        client = StudyClient.create(
            address,
            "charge_pump_sizing",
            problem="charge_pump",  # registered name; the server owns the spec
            n_initial=n_initial,
            max_evaluations=budget,
            seed=0,
            surrogate=surrogate,
        )
        print(f"studies on server: {list_studies(address)}")

        # the ask/tell loop is character-for-character the in-process one;
        # evaluation stays client-side (here: the local testbench, in a
        # real flow your simulator farm)
        for trial in client.ask(2):
            record = client.tell(trial, problem.evaluate(trial.x))
            print(
                f"  trial {trial.id} ({trial.phase}): "
                f"objective {record.evaluation.objective:.4g}"
            )

        # a design the farm never finished: retract it, the budget slot
        # comes straight back (leases automate this for crashed clients)
        (abandoned,) = client.ask(1)
        client.retract(abandoned)
        print(f"  trial {abandoned.id} abandoned -> retracted, slot freed")

        if not smoke:
            # kill the server mid-campaign and restart it on the same
            # store: every mutation checkpointed durably, so the study
            # resumes bitwise and the loop below just keeps going
            server.terminate()
            server.wait(timeout=30)
            server, address = boot_server(root)
            client = StudyClient.connect(address, "charge_pump_sizing")
            print(
                f"server restarted; study resumed at "
                f"{client.describe()['n_evaluations']} evaluations"
            )

        while not client.done:
            for trial in client.ask(1):
                client.tell(trial, problem.evaluate(trial.x))

        best = client.best()
        summary = (
            "no feasible design yet (tiny budget)"
            if best is None
            else f"best feasible objective {best.evaluation.objective:.4g}"
        )
        print(f"done: {client.describe()['n_evaluations']} evaluations, {summary}")
    finally:
        server.terminate()
        server.wait(timeout=30)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny budget, no restart (the CI service-job smoke step)",
    )
    main(smoke=parser.parse_args().smoke)
