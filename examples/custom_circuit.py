"""Build and analyze your own circuits with the simulator substrate.

Demonstrates the circuit API end to end, independent of the optimizers:

1. an RC low-pass whose -3 dB corner we verify against 1/(2 pi R C),
2. a resistively-loaded common-source amplifier with hand-checkable gain,
3. SPICE netlist export and re-import round trip.

    python examples/custom_circuit.py
"""

import numpy as np

from repro.circuits import (
    ACAnalysis,
    Circuit,
    DCAnalysis,
    nmos_180,
)
from repro.circuits.ac import log_freqs
from repro.circuits.measure import dc_gain_db, gain_db
from repro.circuits.spice import parse_netlist, write_netlist
from repro.circuits.units import format_si


def rc_filter():
    print("--- RC low-pass -----------------------------------------")
    r, c = 10e3, 1e-9
    ckt = Circuit("rc_lowpass")
    ckt.vsource("VIN", "in", "0", 0.0, ac=1.0)
    ckt.resistor("R1", "in", "out", r)
    ckt.capacitor("C1", "out", "0", c)
    dc = DCAnalysis(ckt).solve()
    freqs = log_freqs(1e2, 1e7, 20)
    ac = ACAnalysis(ckt).sweep(dc, freqs)
    mag = gain_db(ac.transfer("out"))
    f3db_expected = 1.0 / (2.0 * np.pi * r * c)
    k = int(np.argmin(np.abs(mag + 3.0103)))
    print(f"  corner expected {format_si(f3db_expected, 'Hz')}, "
          f"measured ~{format_si(freqs[k], 'Hz')}")


def common_source_amp():
    print("--- common-source amplifier -----------------------------")
    # bias for saturation: Id ~ 92 uA, ~0.9 V across the 10 k load
    ckt = Circuit("cs_amp")
    ckt.vsource("VDD", "vdd", "0", 1.8)
    ckt.vsource("VIN", "g", "0", 0.8, ac=1.0)
    ckt.resistor("RL", "vdd", "d", 10e3)
    ckt.mosfet("M1", "d", "g", "0", "0", nmos_180, w=5e-6, l=1e-6)
    dc = DCAnalysis(ckt).solve()
    op = dc.op("M1")
    gain_hand = op.gm * (1.0 / (1.0 / 10e3 + op.gds))
    freqs = log_freqs(1e3, 1e9, 10)
    ac = ACAnalysis(ckt).sweep(dc, freqs)
    gain_meas = 10 ** (dc_gain_db(ac.transfer("d")) / 20.0)
    print(f"  bias: Id={format_si(op.ids, 'A')}, region={op.region}, "
          f"Vd={dc.voltage('d'):.3f} V")
    print(f"  |gain| hand gm*(RL||ro) = {gain_hand:.2f}, measured = {gain_meas:.2f}")
    assert abs(gain_hand - gain_meas) / gain_hand < 0.05
    return ckt


def spice_roundtrip(ckt: Circuit):
    print("--- SPICE export / import -------------------------------")
    deck = write_netlist(ckt, title="* exported by repro")
    print("\n".join("  " + line for line in deck.splitlines()[:6]) + "\n  ...")
    clone = parse_netlist(deck)
    dc = DCAnalysis(clone).solve()
    print(f"  re-imported circuit solves: Vd = {dc.voltage('d'):.3f} V")


def main():
    rc_filter()
    ckt = common_source_amp()
    spice_roundtrip(ckt)


if __name__ == "__main__":
    main()
