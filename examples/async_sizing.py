"""Fully asynchronous sizing with the refill-on-completion scheduler.

Real simulator workloads have *heterogeneous* evaluation times — a design
near a corner case can take several times longer to converge than an easy
one.  A batch (q-point) scheduler stalls its whole worker pool at a
barrier until the slowest simulation of each batch lands; the
asynchronous scheduler instead proposes a fresh design the moment any
single evaluation finishes, conditioning on the still-pending set via
Kriging-believer fantasies, so the pool never idles:

    python examples/async_sizing.py

This demo pads the two-stage op-amp testbench (Table I) with a
design-dependent lognormal delay standing in for SPICE-level cost, then
runs the same simulation budget three ways: serial, batched q=4, and
async with 4 in-flight evaluations.  It also shows the async provenance
trail: every history record carries its proposal id and the proposals
that were pending when it was conditioned (``result.ledger`` holds the
full proposal/commit order, making the run auditable and replayable).
"""

import time
import zlib

import numpy as np

from repro import NNBO
from repro.circuits.testbenches import TwoStageOpAmpProblem


class JitteredOpAmpProblem(TwoStageOpAmpProblem):
    """Op-amp testbench with a heterogeneous per-simulation wall-clock cost.

    The delay is a deterministic function of the design point (lognormal
    spread around MEAN_SIM_SECONDS) so runs are reproducible.
    """

    MEAN_SIM_SECONDS = 0.08
    SIGMA = 0.8

    def evaluate(self, x):
        digest = zlib.crc32(np.round(np.asarray(x, float), 10).tobytes())
        rng = np.random.default_rng(digest)
        time.sleep(
            self.MEAN_SIM_SECONDS
            * rng.lognormal(mean=-self.SIGMA**2 / 2.0, sigma=self.SIGMA)
        )
        return super().evaluate(x)


def run(label: str, **kwargs):
    optimizer = NNBO(
        JitteredOpAmpProblem(),
        n_initial=12,
        max_evaluations=32,
        n_ensemble=3,
        hidden_dims=(24, 24),
        n_features=16,
        epochs=100,
        seed=2019,
        **kwargs,
    )
    start = time.perf_counter()
    result = optimizer.run()
    elapsed = time.perf_counter() - start
    print(f"{label:14s}: {result.n_evaluations} sims in {elapsed:5.1f}s, "
          f"best GAIN {-result.best_objective():.2f} dB")
    return elapsed, result


def main():
    print("--- equal budget, three schedulers --------------------")
    t_serial, _ = run("serial q=1", executor="serial")
    t_batch, _ = run("batch q=4", q=4, executor="thread")
    t_async, asynchronous = run(
        "async x4",
        executor="async-thread",
        n_eval_workers=4,
        async_refit="fantasy-only",  # cheap posterior absorbs per landing
    )
    print(f"\nbatch speedup vs serial: {t_serial / t_batch:.2f}x")
    print(f"async speedup vs serial: {t_serial / t_async:.2f}x")
    print(f"async speedup vs batch : {t_batch / t_async:.2f}x "
          "(no barrier on the slowest simulation)")

    print("\n--- async provenance ----------------------------------")
    search = [r for r in asynchronous.records if r.phase == "search"][:6]
    for record in search:
        print(
            f"record #{record.index}: proposal {record.proposal_id}, "
            f"conditioned on pending {list(record.pending_at_proposal)}"
        )
    order = asynchronous.ledger.completion_order
    print(f"...\ncommit order of proposals: {order[:12]} ...")


if __name__ == "__main__":
    main()
