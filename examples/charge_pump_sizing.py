"""Size the paper's charge pump (Fig. 4) over PVT corners.

A scaled-down single run of the Table II experiment: 36 design variables,
five current-matching constraints (eq. 15), FOM of eq. 16, evaluated at
PVT corners.  The full paper setup uses all 18 corners and a 790-sim
budget; this example uses a 6-corner subset and a small budget so it
finishes in a few minutes:

    python examples/charge_pump_sizing.py
"""

from repro.circuits.pvt import standard_corners
from repro.circuits.testbenches import ChargePumpProblem
from repro.core import NNBO


def main():
    corners = standard_corners(processes=("TT", "SS"), temps_c=(-40.0, 125.0))
    problem = ChargePumpProblem(corners=corners)
    print(f"{problem.dim} design variables, {len(problem.corners)} PVT corners")

    optimizer = NNBO(
        problem,
        n_initial=25,
        max_evaluations=60,
        n_ensemble=3,
        epochs=100,
        hidden_dims=(32, 32),
        n_features=24,
        seed=3,
        verbose=True,
    )
    result = optimizer.run()

    best = result.best_feasible()
    print("\n--- result -------------------------------------------")
    print(f"feasible found: {result.success}")
    if best is not None:
        metrics = best.evaluation.metrics
        print(f"FOM        = {metrics['fom']:.3f}   (0.3*diff + 0.5*deviation)")
        for key in ("diff1_ua", "diff2_ua", "diff3_ua", "diff4_ua", "deviation_ua"):
            print(f"{key:13s}= {metrics[key]:.3f} uA")
        print(f"sims to best: {result.n_sims_to_best()} / {result.n_evaluations}")
    else:
        record = min(
            result.records, key=lambda r: r.evaluation.violation
        )
        print(
            "no fully feasible design in this small budget; closest design "
            f"violates constraints by {record.evaluation.violation:.3f} "
            f"(normalized) with FOM {record.evaluation.objective:.2f}"
        )


if __name__ == "__main__":
    main()
