"""Head-to-head comparison of all four algorithms on the op-amp testbench.

A miniature version of the paper's Table I: NN-BO (ours), WEIBO, GASPAD
and DE share the same simulator and statistics harness; only budgets are
scaled down so the script finishes in ~10 minutes.

    python examples/compare_algorithms.py
"""

from repro.baselines import DifferentialEvolution, GASPAD, WEIBO
from repro.circuits.testbenches import TwoStageOpAmpProblem
from repro.core import NNBO
from repro.experiments.runner import run_repeats, summarize
from repro.experiments.tables import render_table

N_REPEATS = 2
N_INITIAL = 15
BO_BUDGET = 40
EA_BUDGET = 70
DE_BUDGET = 150


def make_optimizer(name: str, seed: int):
    problem = TwoStageOpAmpProblem()
    if name == "NN-BO":
        return NNBO(problem, n_initial=N_INITIAL, max_evaluations=BO_BUDGET,
                    n_ensemble=3, epochs=120, hidden_dims=(32, 32),
                    n_features=24, seed=seed)
    if name == "WEIBO":
        return WEIBO(problem, n_initial=N_INITIAL, max_evaluations=BO_BUDGET,
                     seed=seed)
    if name == "GASPAD":
        return GASPAD(problem, n_initial=N_INITIAL, pop_size=10,
                      max_evaluations=EA_BUDGET, seed=seed)
    if name == "DE":
        return DifferentialEvolution(problem, pop_size=15,
                                     max_evaluations=DE_BUDGET, seed=seed)
    raise ValueError(name)


def main():
    columns = {}
    for name in ("NN-BO", "WEIBO", "GASPAD", "DE"):
        print(f"running {name} x{N_REPEATS} ...")
        results = run_repeats(
            lambda seed, _n=name: make_optimizer(_n, seed),
            n_repeats=N_REPEATS, seed=42,
        )
        summary = summarize(results)
        columns[name] = {
            "GAIN mean (dB)": -summary.mean,
            "GAIN best (dB)": -summary.best,
            "Avg. # Sim": summary.avg_sims,
            "# Success": summary.success_rate,
        }
    print()
    print(render_table(
        "Mini Table I: two-stage op-amp, scaled-down budgets",
        ["GAIN mean (dB)", "GAIN best (dB)", "Avg. # Sim", "# Success"],
        columns,
    ))


if __name__ == "__main__":
    main()
