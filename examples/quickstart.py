"""Quickstart: constrained Bayesian optimization with the NN-GP surrogate.

Runs the paper's Algorithm 1 (Fig. 2 loop) on a cheap analytic problem so
you can see the full API in under a minute:

    python examples/quickstart.py
"""

import numpy as np

from repro import NNBO
from repro.benchfns import gardner_problem


def main():
    problem = gardner_problem()
    print(f"problem: {problem} over bounds {problem.lower} .. {problem.upper}")

    optimizer = NNBO(
        problem,
        n_initial=12,          # random Latin-hypercube starting set
        max_evaluations=35,    # total simulation budget (Algorithm 1)
        n_ensemble=3,          # K models averaged per eq. 13
        hidden_dims=(24, 24),  # Fig. 1: input + 2 hidden + feature layer
        n_features=16,
        epochs=120,            # likelihood-maximization steps (eq. 11/12)
        seed=0,
        verbose=True,
    )
    result = optimizer.run()

    best = result.best_feasible()
    print("\n--- result -------------------------------------------")
    print(f"evaluations used : {result.n_evaluations}")
    print(f"feasible found   : {result.success}")
    print(f"best objective   : {best.evaluation.objective:.4f}")
    print(f"best x           : {np.round(best.x, 4)}")
    print(f"sims to best     : {result.n_sims_to_best()}")
    curve = result.best_so_far()
    milestones = {i: curve[i] for i in range(9, len(curve), 5)}
    print("convergence      :", {k: round(v, 3) for k, v in milestones.items()})


if __name__ == "__main__":
    main()
