"""Compare surrogate quality: NN-GP (paper) vs. classic GP (WEIBO baseline).

Samples the op-amp testbench, fits both surrogates on the same training
split and compares held-out accuracy and calibration — the paper's core
claim is that the *learned* kernel predicts circuit responses at least as
well as the stationary Gaussian kernel while training in O(N) time.

    python examples/surrogate_accuracy.py
"""

import time

import numpy as np

from repro.bo.design import latin_hypercube
from repro.circuits.testbenches import TwoStageOpAmpProblem
from repro.core import DeepEnsemble, FeatureGPTrainer, NeuralFeatureGP
from repro.gp import GPRegression


def nlpd(y, mean, var):
    var = np.maximum(var, 1e-12)
    return float(np.mean(0.5 * np.log(2 * np.pi * var) + 0.5 * (y - mean) ** 2 / var))


def main():
    problem = TwoStageOpAmpProblem()
    rng = np.random.default_rng(0)
    n_train, n_test = 60, 120
    u = latin_hypercube(n_train + n_test, problem.dim, rng)
    print(f"simulating {len(u)} op-amp designs ...")
    gains = np.array([-problem.evaluate_unit(ui).objective for ui in u])
    x_train, y_train = u[:n_train], gains[:n_train]
    x_test, y_test = u[n_train:], gains[n_train:]

    print("fitting NN-GP ensemble (paper Sec. III) ...")
    t0 = time.time()
    ensemble = DeepEnsemble.create(
        lambda r: NeuralFeatureGP(problem.dim, hidden_dims=(50, 50),
                                  n_features=50, seed=r),
        n_members=5, seed=1,
    )
    for member in ensemble.members:
        member.fit(x_train, y_train, trainer=FeatureGPTrainer(epochs=300))
    t_nn = time.time() - t0
    mean_nn, var_nn = ensemble.predict(x_test)

    print("fitting classic GP (WEIBO surrogate, Sec. II-C) ...")
    t0 = time.time()
    gp = GPRegression(seed=1)
    gp.fit(x_train, y_train)
    t_gp = time.time() - t0
    mean_gp, var_gp = gp.predict(x_test)

    print("\n                NN-GP ensemble   classic GP")
    rmse_nn = np.sqrt(np.mean((mean_nn - y_test) ** 2))
    rmse_gp = np.sqrt(np.mean((mean_gp - y_test) ** 2))
    print(f"RMSE (dB)       {rmse_nn:14.3f}   {rmse_gp:10.3f}")
    print(f"NLPD            {nlpd(y_test, mean_nn, var_nn):14.3f}   "
          f"{nlpd(y_test, mean_gp, var_gp):10.3f}")
    print(f"fit time (s)    {t_nn:14.2f}   {t_gp:10.2f}")
    print(f"\ntarget std: {y_test.std():.3f} dB  "
          f"(an RMSE well below this means the surrogate is informative)")
    print(f"feature network: {ensemble.members[0].network}")


if __name__ == "__main__":
    main()
