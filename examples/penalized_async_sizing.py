"""Async sizing with lie-free pending-point strategies.

The asynchronous scheduler must keep its in-flight proposals apart: by
default each pending design is absorbed as a *fantasy* (believer-lie)
observation before the next proposal is maximized.  This demo runs the
same op-amp sizing budget under the three ``pending_strategy`` options
(see ``repro.acquisition.penalization``):

* ``"fantasy"``     — believer lies (the historical default),
* ``"penalize"``    — local penalization: clean-posterior wEI times one
  exclusion-ball penalty per pending design (Lipschitz-derived radii,
  no fabricated observations),
* ``"hallucinate"`` — GP-BUCB: pending designs conditioned at their own
  posterior means, proposals maximize the optimistic improvement bound.

and then shows the new provenance: every ledger entry records which
strategy produced it, and under penalization the in-flight designs keep
a real mutual separation (the exclusion balls do the spreading).

    python examples/penalized_async_sizing.py
"""

import numpy as np

from repro import NNBO
from repro.bo.scheduler import FakeClock
from repro.circuits.testbenches import TwoStageOpAmpProblem


def run(strategy: str):
    optimizer = NNBO(
        TwoStageOpAmpProblem(),
        n_initial=12,
        max_evaluations=32,
        n_ensemble=3,
        hidden_dims=(24, 24),
        n_features=16,
        epochs=100,
        executor="async-thread",
        n_eval_workers=4,
        pending_strategy=strategy,
        # virtual completion order: the comparison is bitwise reproducible
        # run to run and machine to machine
        async_clock=FakeClock(),
        seed=2019,
    )
    result = optimizer.run()
    print(
        f"{strategy:12s}: {result.n_evaluations} sims, "
        f"best GAIN {-result.best_objective():.2f} dB, "
        f"{len(result.ledger)} async proposals"
    )
    return result


def min_in_flight_separation(result) -> float:
    """Smallest unit-box distance between a proposal and its pending set."""
    ledger = result.ledger
    separation = np.inf
    for entry in ledger.entries:
        u = np.asarray(entry.u)
        for pid in entry.pending_at_proposal:
            other = np.asarray(ledger.entry(pid).u)
            separation = min(separation, float(np.max(np.abs(u - other))))
    return separation


def main():
    print("--- equal budget, three pending-point strategies ------")
    results = {s: run(s) for s in ("fantasy", "penalize", "hallucinate")}

    print("\n--- strategy provenance -------------------------------")
    for strategy, result in results.items():
        entry = result.ledger.entries[0]
        print(
            f"{strategy:12s}: ledger entry 0 -> strategy={entry.strategy!r}, "
            f"pending={list(entry.pending_at_proposal)}"
        )

    print("\n--- in-flight separation ------------------------------")
    for strategy, result in results.items():
        print(
            f"{strategy:12s}: min distance between a proposal and the "
            f"designs it conditioned on = {min_in_flight_separation(result):.4g}"
        )


if __name__ == "__main__":
    main()
