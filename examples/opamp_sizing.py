"""Size the paper's two-stage op-amp (Fig. 3) with NN-GP Bayesian optimization.

This is a single scaled-down run of the Table I experiment: maximize GAIN
subject to UGF > 40 MHz and PM > 60 deg over 10 design variables.

    python examples/opamp_sizing.py          # ~2-3 minutes
"""

import numpy as np

from repro.circuits.testbenches import TwoStageOpAmpProblem
from repro.circuits.units import format_si
from repro.core import NNBO


def main():
    problem = TwoStageOpAmpProblem()
    print(f"{problem.dim} design variables: {problem.variable_names}")

    optimizer = NNBO(
        problem,
        n_initial=20,
        max_evaluations=60,
        n_ensemble=3,
        epochs=150,
        hidden_dims=(32, 32),
        n_features=24,
        seed=7,
        verbose=True,
    )
    result = optimizer.run()

    best = result.best_feasible()
    if best is None:
        print("no feasible design found — increase the budget")
        return
    metrics = best.evaluation.metrics
    print("\n--- best design --------------------------------------")
    for name, value in problem.as_dict(best.x).items():
        unit = {"cc": "F", "ibias": "A"}.get(name, "m")
        print(f"  {name:6s} = {format_si(value, unit)}")
    print("--- performances --------------------------------------")
    print(f"  GAIN = {metrics['gain_db']:.2f} dB")
    print(f"  UGF  = {format_si(metrics['ugf_hz'], 'Hz')}  (spec > 40MHz)")
    print(f"  PM   = {metrics['pm_deg']:.1f} deg        (spec > 60deg)")
    print(f"  Idd  = {format_si(metrics['idd_a'], 'A')}")
    print(f"  sims to best: {result.n_sims_to_best()} / {result.n_evaluations}")
    print(f"  device regions: {metrics['regions']}")
    print(f"  convergence: {np.round(-result.best_so_far()[19::10], 1)} dB")


if __name__ == "__main__":
    main()
