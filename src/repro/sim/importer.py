"""Turn an existing SPICE deck into a sizing problem.

The paper's industrial flow starts from a hand-written netlist; this
module closes that loop for the repository: :func:`problem_from_netlist`
parses a ``.sp``/``.cir`` file once into a template
:class:`~repro.circuits.netlist.Circuit` and exposes chosen device
values — MOSFET ``W``/``L``, resistances, capacitances, source levels —
as named design variables.  Each evaluation deep-copies the template,
substitutes the design vector by name, runs the configured simulator
backend over the analysis plan, and maps the raw traces to metrics /
objective / constraints through user callables.

Variable naming
---------------

A design variable binds to a device by name (netlists are
case-insensitive):

* ``"R1"`` — the device's *natural value*: resistance, capacitance, DC
  level of a V/I source, VCVS gain, or VCCS transconductance;
* ``"M1.w"`` / ``"M1.l"`` — a named attribute; MOSFETs have no single
  natural value, so the explicit form is required for them.

Example::

    problem = problem_from_netlist(
        "divider.sp",
        variables=[DesignVariable("R1", 1e3, 1e6, "Ohm"),
                   DesignVariable("M1.w", 1e-6, 1e-4, "m")],
        analyses=[OperatingPoint()],
        measure=lambda raw: {"vout": raw.op().voltage("out")},
        objective=lambda m: (m["vout"] - 0.9) ** 2,
    )
"""

from __future__ import annotations

import copy
import os

import numpy as np

from repro.bo.problem import Evaluation
from repro.circuits.devices import (
    Capacitor,
    CurrentSource,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
)
from repro.circuits.mosfet import MOSFET
from repro.circuits.netlist import Circuit
from repro.circuits.spice import parse_netlist
from repro.circuits.testbenches.base import DesignVariable, SizingProblem
from repro.sim.base import OperatingPoint

#: device type -> the attribute a bare (no-``.attr``) variable name binds to
_NATURAL_VALUE = {
    Resistor: "resistance",
    Capacitor: "capacitance",
    VoltageSource: "dc",
    CurrentSource: "dc",
    VCVS: "gain",
    VCCS: "gm",
}

#: attributes the explicit ``device.attr`` form may set, by device type
_SETTABLE = {
    Resistor: ("resistance",),
    Capacitor: ("capacitance",),
    VoltageSource: ("dc", "ac"),
    CurrentSource: ("dc", "ac"),
    VCVS: ("gain",),
    VCCS: ("gm",),
    MOSFET: ("w", "l"),
}


def _split_binding(variable_name: str) -> tuple[str, str | None]:
    device, _, attr = variable_name.partition(".")
    return device.strip(), (attr.strip().lower() or None)


def _find_device(circuit: Circuit, name: str):
    try:
        return circuit.device(name)
    except KeyError:
        folded = name.lower()
        for device in circuit.devices:
            if device.name.lower() == folded:
                return device
        raise


def _resolve_binding(circuit: Circuit, variable_name: str) -> tuple[str, str]:
    """Validate one variable name against the template; returns the
    canonical ``(device_name, attribute)`` pair."""
    device_name, attr = _split_binding(variable_name)
    device = _find_device(circuit, device_name)
    allowed = _SETTABLE.get(type(device))
    if allowed is None:
        raise ValueError(
            f"variable {variable_name!r}: device type "
            f"{type(device).__name__} is not sizable"
        )
    if attr is None:
        attr = _NATURAL_VALUE.get(type(device))
        if attr is None:
            raise ValueError(
                f"variable {variable_name!r}: {type(device).__name__} has no "
                f"natural value; use an explicit attribute "
                f"({device.name}.w / {device.name}.l)"
            )
    if attr not in allowed:
        raise ValueError(
            f"variable {variable_name!r}: {type(device).__name__} has no "
            f"sizable attribute {attr!r} (allowed: {allowed})"
        )
    return device.name, attr


def _default_measure(raw) -> dict:
    """Fallback metrics: the first operating point's voltages/currents."""
    try:
        op = raw.op()
    except LookupError:
        return {}
    metrics = {f"v({node})": value for node, value in op.voltages.items()}
    metrics.update(
        {f"i({name})": value for name, value in op.branch_currents.items()}
    )
    return metrics


class NetlistProblem(SizingProblem):
    """Sizing problem over a parsed netlist (see module docstring).

    Parameters
    ----------
    circuit:
        Template circuit; never mutated (evaluations size a deep copy).
    variables:
        :class:`~repro.circuits.testbenches.base.DesignVariable` list
        whose names follow the binding syntax above.
    analyses:
        Analysis plan run per evaluation (default: one
        :class:`~repro.sim.base.OperatingPoint`).
    measure:
        ``measure(raw_results) -> dict`` extracting named metrics
        (default: the operating point's voltages and currents).
    objective:
        ``objective(metrics) -> float`` to minimize (default 0.0 — a
        characterization-only problem).
    constraints:
        Sequence of ``g(metrics) -> float`` callables, feasible ``< 0``.
    initial:
        Optional node -> volts seed passed to every backend run.
    failure_objective:
        Objective assigned when the simulator fails to converge.
    """

    def __init__(
        self,
        circuit: Circuit,
        variables: list[DesignVariable],
        analyses=None,
        measure=None,
        objective=None,
        constraints=(),
        initial: dict | None = None,
        name: str | None = None,
        sim_backend="mna",
        failure_objective: float = 1e6,
        cache_dir=None,
    ):
        self.template = circuit
        self.analyses = list(analyses) if analyses is not None else [OperatingPoint()]
        self._measure = measure
        self._objective = objective
        self._constraints = list(constraints)
        self.initial = dict(initial) if initial else None
        self.failure_objective = float(failure_objective)
        super().__init__(
            name or circuit.name,
            variables,
            n_constraints=len(self._constraints),
            cache_dir=cache_dir,
            sim_backend=sim_backend,
        )
        #: variable name -> (device name, attribute), validated eagerly so
        #: a bad binding fails at construction, not mid-study
        self.bindings = {
            v.name: _resolve_binding(circuit, v.name) for v in self.variables
        }

    def build_circuit(self, x: np.ndarray) -> Circuit:
        """A sized copy of the template for one design vector."""
        values = self.as_dict(x)
        sized = copy.deepcopy(self.template)
        for variable_name, value in values.items():
            device_name, attr = self.bindings[variable_name]
            setattr(_find_device(sized, device_name), attr, float(value))
        return sized

    def simulate(self, x: np.ndarray) -> dict:
        raw = self.sim_backend.run(
            self.build_circuit(x), self.analyses, initial=self.initial
        )
        if self._measure is not None:
            return dict(self._measure(raw))
        return _default_measure(raw)

    def _to_evaluation(self, metrics: dict) -> Evaluation:
        objective = 0.0 if self._objective is None else float(self._objective(metrics))
        constraints = np.array([float(g(metrics)) for g in self._constraints])
        return Evaluation(objective=objective, constraints=constraints, metrics=metrics)

    def _failure_evaluation(self) -> Evaluation:
        return Evaluation(
            objective=self.failure_objective,
            constraints=np.ones(self.n_constraints),
            metrics={},
        )


def problem_from_netlist(
    path,
    variables,
    name: str | None = None,
    **kwargs,
) -> NetlistProblem:
    """Build a :class:`NetlistProblem` from a SPICE deck on disk.

    ``variables`` may be :class:`DesignVariable` instances or
    ``(name, lower, upper)`` tuples; all other keyword arguments are
    forwarded to :class:`NetlistProblem` (``analyses``, ``measure``,
    ``objective``, ``constraints``, ``sim_backend``, ...).
    """
    path = os.fspath(path)
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    default_name = os.path.splitext(os.path.basename(path))[0]
    circuit = parse_netlist(text, name=name or default_name)
    normalized = [
        v if isinstance(v, DesignVariable) else DesignVariable(*v)
        for v in variables
    ]
    return NetlistProblem(circuit, normalized, name=name or default_name, **kwargs)
