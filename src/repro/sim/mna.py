"""The built-in MNA engine behind the :class:`SimulatorBackend` protocol.

This is the pre-refactor evaluation path, extracted verbatim from the
testbench call sites: an :class:`~repro.sim.base.OperatingPoint` is one
:class:`~repro.circuits.dc.DCAnalysis` solve, an
:class:`~repro.sim.base.ACSweep` reuses that bias point through
:class:`~repro.circuits.ac.ACAnalysis`, and a
:class:`~repro.sim.base.DCTransferSweep` mutates the swept source's DC
value point-by-point with warm-started solves (first point cold, exactly
like the charge-pump inner loop).  The solve sequences — same analyses,
same options, same initial vectors — are therefore bitwise-identical to
the direct engine calls they replace.
"""

from __future__ import annotations

import numpy as np

from repro import __version__
from repro.circuits.ac import ACAnalysis
from repro.circuits.dc import DCAnalysis, DCSolution
from repro.circuits.mosfet import MOSFET
from repro.circuits.netlist import Circuit
from repro.sim.base import (
    ACSweep,
    ACSweepResult,
    DCTransferSweep,
    DCTransferSweepResult,
    OperatingPoint,
    OperatingPointResult,
    RawResults,
    SimulatorBackend,
)


def _find_device(circuit: Circuit, name: str):
    """Device lookup tolerating SPICE's case-insensitive names."""
    try:
        return circuit.device(name)
    except KeyError:
        folded = name.lower()
        for device in circuit.devices:
            if device.name.lower() == folded:
                return device
        raise


def _branch_devices(circuit: Circuit) -> list:
    return [d for d in circuit.devices if getattr(d, "n_branches", 0)]


class MNABackend(SimulatorBackend):
    """In-process modified-nodal-analysis engine (the bitwise default).

    ``dc_options`` are forwarded to every
    :class:`~repro.circuits.dc.DCAnalysis` (tolerances, iteration caps);
    the default empty dict reproduces the engine's stock settings.
    """

    name = "mna"

    def __init__(self, dc_options: dict | None = None):
        self.dc_options = dict(dc_options or {})

    @property
    def version(self) -> str:
        """The repro release: the engine ships with the package."""
        return __version__

    def run(self, circuit, analyses, initial: dict | None = None) -> RawResults:
        results = []
        dc_solution: DCSolution | None = None
        for spec in analyses:
            if isinstance(spec, OperatingPoint):
                guess = spec.initial if spec.initial is not None else initial
                dc_solution = DCAnalysis(circuit, **self.dc_options).solve(initial=guess)
                results.append(self._op_result(circuit, dc_solution))
            elif isinstance(spec, ACSweep):
                if dc_solution is None:
                    dc_solution = DCAnalysis(circuit, **self.dc_options).solve(
                        initial=initial
                    )
                ac = ACAnalysis(circuit).sweep(dc_solution, spec.freqs)
                results.append(self._ac_result(circuit, ac))
            elif isinstance(spec, DCTransferSweep):
                results.append(self._dc_transfer(circuit, spec, initial))
            else:
                raise TypeError(f"unsupported analysis spec {type(spec).__name__}")
        return RawResults(backend=self.name, results=results)

    # -- per-analysis execution ----------------------------------------------------

    def _op_result(self, circuit: Circuit, sol: DCSolution) -> OperatingPointResult:
        voltages = {node: sol.voltage(node) for node in circuit.node_names}
        currents = {d.name: float(sol.x[d.branch_idx]) for d in _branch_devices(circuit)}
        regions = {
            d.name: d.last_op.region
            for d in circuit.devices
            if isinstance(d, MOSFET) and d.last_op is not None
        }
        return OperatingPointResult(voltages, currents, regions)

    def _ac_result(self, circuit: Circuit, ac) -> ACSweepResult:
        voltages = {node: ac.transfer(node) for node in circuit.node_names}
        currents = {
            d.name: ac.x[:, d.branch_idx].copy() for d in _branch_devices(circuit)
        }
        return ACSweepResult(freqs=ac.freqs, voltages=voltages, branch_currents=currents)

    def _dc_transfer(
        self, circuit: Circuit, spec: DCTransferSweep, initial: dict | None
    ) -> DCTransferSweepResult:
        source = _find_device(circuit, spec.source)
        if not hasattr(source, "dc"):
            raise TypeError(f"device {spec.source!r} has no DC value to sweep")
        values = spec.grid()
        circuit.finalize()
        nodes = circuit.node_names
        branch_devices = _branch_devices(circuit)
        voltages = {node: np.empty(values.size) for node in nodes}
        currents = {d.name: np.empty(values.size) for d in branch_devices}
        seed = spec.initial if spec.initial is not None else initial
        original_dc = source.dc
        # the warm-start chain the charge-pump inner loop pinned: point 0
        # from the (possibly absent) seed, every later point from the
        # previous solution vector
        warm = seed
        try:
            for k, value in enumerate(values):
                source.dc = value
                sol = DCAnalysis(circuit, **self.dc_options).solve(
                    initial=warm if warm is not None else None
                )
                warm = sol.x.copy()
                for node in nodes:
                    voltages[node][k] = sol.voltage(node)
                for device in branch_devices:
                    currents[device.name][k] = float(sol.x[device.branch_idx])
        finally:
            source.dc = original_dc
        return DCTransferSweepResult(
            source=source.name,
            values=values,
            voltages=voltages,
            branch_currents=currents,
        )
