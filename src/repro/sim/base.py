"""Simulator-backend protocol: analysis plans, results, and selection.

The paper's flow drives a real SPICE simulator; this package makes the
evaluation engine a pluggable strategy.  A testbench builds a
:class:`~repro.circuits.netlist.Circuit` plus an *analysis plan* (a list
of the specs below) and hands both to a :class:`SimulatorBackend`, which
returns :class:`RawResults` — one result object per analysis, with
name-based accessors that behave identically whether the numbers came
from the built-in MNA engine or from an external ``ngspice`` process.

Analysis specs
--------------

* :class:`OperatingPoint` — one DC bias-point solve (``.OP``); shares its
  solution with a following :class:`ACSweep` in the same plan, mirroring
  SPICE's one-deck/one-bias semantics.
* :class:`ACSweep` — small-signal sweep over an explicit frequency grid
  (``.AC``), linearized at the plan's DC solution.
* :class:`DCTransferSweep` — a swept independent source (``.DC``) with
  warm-started solves; the measurement is typically the swept source's
  own branch current.

Backend selection
-----------------

:func:`resolve_sim_backend` maps the ``sim_backend`` knob (a name from
:data:`SIM_BACKENDS` or a backend instance) to a ready backend.  A
requested ``"ngspice"`` with no binary on PATH degrades gracefully: one
:class:`UserWarning` and the MNA engine runs instead, so studies
configured for a simulator farm still complete on a bare machine.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.backend import BackendNotAvailable
from repro.circuits.dc import ConvergenceError
from repro.circuits.netlist import is_ground

#: sim-backend names resolve_sim_backend accepts (besides instances)
SIM_BACKENDS = ("mna", "ngspice")


class SimulatorNotAvailable(BackendNotAvailable):
    """A requested simulator backend's executable is not installed.

    Subclasses :class:`~repro.backend.BackendNotAvailable` so the BO
    service maps it to the same stable ``backend-not-available`` wire
    code; the message points at the system package instead of pip.
    """

    def __init__(self, backend: str, binary: str):
        self.backend = str(backend)
        self.binary = str(binary)
        # keep the BackendNotAvailable attribute contract
        self.package = self.binary
        ImportError.__init__(
            self,
            f"simulator backend {self.backend!r} requires the "
            f"{self.binary!r} executable, which was not found; install it "
            f"(e.g. `apt-get install ngspice`) or select sim_backend='mna'",
        )


class SimulationError(ConvergenceError):
    """An external simulator run failed (crash, timeout, garbage output).

    Subclasses :class:`~repro.circuits.dc.ConvergenceError` so sizing
    problems map flaky external runs to the same finite penalty
    evaluations as internal non-convergence — the optimizers always
    receive usable data.
    """


def check_sim_backend(name: str) -> str:
    """Validate a sim-backend name early (before lazy resolution)."""
    if name not in SIM_BACKENDS:
        raise ValueError(
            f"unknown sim_backend {name!r}; expected one of {SIM_BACKENDS} "
            "or a SimulatorBackend instance"
        )
    return name


# -- analysis specs ----------------------------------------------------------------


@dataclass(frozen=True)
class OperatingPoint:
    """One DC operating-point solve.

    ``initial`` is an optional node -> volts seed (``.NODESET`` in SPICE
    terms); backends may use it to aid convergence but the converged
    solution must not depend on it.
    """

    initial: dict | None = None


@dataclass(frozen=True)
class ACSweep:
    """Small-signal sweep over an explicit frequency grid [Hz].

    Linearized at the DC solution of the preceding
    :class:`OperatingPoint` in the plan (or a fresh solve when the plan
    has none).  External backends may realize the grid approximately
    (e.g. ``.AC DEC``); measurements must therefore use the *result's*
    ``freqs``, not the requested grid.
    """

    freqs: object  # array-like; kept by reference so the MNA path is bitwise

    def grid(self) -> np.ndarray:
        """The requested frequencies as a float array."""
        return np.asarray(self.freqs, dtype=float).ravel()


@dataclass(frozen=True)
class DCTransferSweep:
    """Sweep an independent source's DC value, solving at each point.

    ``source`` names a :class:`~repro.circuits.devices.VoltageSource` /
    ``CurrentSource`` in the circuit; ``values`` are the swept levels in
    order.  Backends warm-start consecutive points from the previous
    solution (the quasi-static testbench idiom); ``initial`` seeds the
    first point only.
    """

    source: str
    values: tuple
    initial: dict | None = None

    def grid(self) -> np.ndarray:
        """The swept values as a float array."""
        return np.asarray(self.values, dtype=float).ravel()


# -- results -----------------------------------------------------------------------


class _NamedLookupError(KeyError):
    pass


def _lookup(mapping: dict, key: str, what: str):
    """Case-insensitive name lookup (SPICE netlists are case-insensitive)."""
    if key in mapping:
        return mapping[key]
    folded = key.lower()
    for name, value in mapping.items():
        if name.lower() == folded:
            return value
    raise _NamedLookupError(
        f"no {what} named {key!r}; available: {sorted(mapping)}"
    )


@dataclass
class OperatingPointResult:
    """Converged bias point: node voltages, branch currents, MOS regions."""

    voltages: dict = field(default_factory=dict)
    branch_currents: dict = field(default_factory=dict)
    #: MOSFET name -> operating region; empty for backends that do not
    #: report regions (only the MNA engine does)
    regions: dict = field(default_factory=dict)

    def voltage(self, node: str) -> float:
        """DC voltage of a named node (0.0 for any ground alias)."""
        if is_ground(node):
            return 0.0
        return float(_lookup(self.voltages, str(node), "node"))

    def branch_current(self, device_name: str) -> float:
        """Branch current of a voltage-defined device (SPICE convention:
        positive into the positive terminal)."""
        return float(_lookup(self.branch_currents, str(device_name), "branch"))

    def region(self, device_name: str) -> str:
        """Operating region of a MOSFET, or ``""`` when unavailable."""
        try:
            return str(_lookup(self.regions, str(device_name), "device"))
        except KeyError:
            return ""


@dataclass
class ACSweepResult:
    """Small-signal sweep: realized frequencies and complex node phasors."""

    freqs: np.ndarray
    voltages: dict = field(default_factory=dict)
    branch_currents: dict = field(default_factory=dict)

    def transfer(self, node: str) -> np.ndarray:
        """Complex node voltage over the sweep (the transfer function when
        the stimulus has unit AC magnitude)."""
        if is_ground(node):
            return np.zeros(len(self.freqs), dtype=complex)
        return np.asarray(_lookup(self.voltages, str(node), "node"))

    def branch_current(self, device_name: str) -> np.ndarray:
        """Complex branch current of a voltage-defined device."""
        return np.asarray(_lookup(self.branch_currents, str(device_name), "branch"))


@dataclass
class DCTransferSweepResult:
    """Swept-source result: realized sweep values and per-point traces."""

    source: str
    values: np.ndarray
    voltages: dict = field(default_factory=dict)
    branch_currents: dict = field(default_factory=dict)

    def voltage(self, node: str) -> np.ndarray:
        """Node voltage trace over the sweep (zeros for ground)."""
        if is_ground(node):
            return np.zeros(len(self.values))
        return np.asarray(_lookup(self.voltages, str(node), "node"))

    def branch_current(self, device_name: str) -> np.ndarray:
        """Branch-current trace of a voltage-defined device."""
        return np.asarray(_lookup(self.branch_currents, str(device_name), "branch"))


@dataclass
class RawResults:
    """Container a backend run returns: one result per analysis, in order."""

    backend: str
    results: list

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index):
        return self.results[index]

    def __iter__(self):
        return iter(self.results)

    def _first_of(self, cls, what: str):
        for result in self.results:
            if isinstance(result, cls):
                return result
        raise LookupError(f"no {what} result in this run (backend {self.backend!r})")

    def op(self) -> OperatingPointResult:
        """The first operating-point result."""
        return self._first_of(OperatingPointResult, "operating-point")

    def ac(self) -> ACSweepResult:
        """The first AC-sweep result."""
        return self._first_of(ACSweepResult, "AC-sweep")

    def sweep(self) -> DCTransferSweepResult:
        """The first DC-transfer-sweep result."""
        return self._first_of(DCTransferSweepResult, "DC-transfer-sweep")


# -- backend protocol ---------------------------------------------------------------


class SimulatorBackend:
    """Strategy interface every simulation engine implements.

    A backend is identified by ``(name, version)`` — that pair enters
    every :class:`~repro.bo.problem.Problem` cache key via
    ``cache_context()``, so evaluations produced by one engine are never
    served to a study configured for another.
    """

    #: short stable identifier (``"mna"``, ``"ngspice"``)
    name: str = "abstract"

    @property
    def version(self) -> str:
        """Version string of the underlying engine."""
        raise NotImplementedError

    def is_available(self) -> bool:
        """Whether the engine can run on this machine right now."""
        return True

    def ensure_available(self) -> None:
        """Raise :class:`SimulatorNotAvailable` when the engine cannot run."""
        if not self.is_available():
            raise SimulatorNotAvailable(self.name, self.name)

    def run(self, circuit, analyses, initial: dict | None = None) -> RawResults:
        """Execute an analysis plan against a circuit.

        ``initial`` is a run-level node -> volts seed applied to any
        analysis that does not carry its own.  May raise
        :class:`~repro.circuits.dc.ConvergenceError` (or its
        :class:`SimulationError` subclass) — sizing problems convert
        those to penalty evaluations.
        """
        raise NotImplementedError

    def cache_context(self) -> tuple:
        """The backend-identity tuple mixed into evaluation cache keys."""
        return (self.name, str(self.version))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def resolve_sim_backend(spec, fallback: bool = True) -> SimulatorBackend:
    """Map a ``sim_backend`` knob to a ready :class:`SimulatorBackend`.

    ``spec`` is a name from :data:`SIM_BACKENDS`, a backend instance
    (returned as-is), or ``None`` (the MNA default).  With ``fallback``
    (the default), an unavailable external backend degrades to the MNA
    engine with a single :class:`UserWarning`; ``fallback=False`` raises
    :class:`SimulatorNotAvailable` instead.
    """
    from repro.sim.mna import MNABackend

    if spec is None:
        return MNABackend()
    if isinstance(spec, SimulatorBackend):
        if not spec.is_available():
            if not fallback:
                spec.ensure_available()
            warnings.warn(
                f"simulator backend {spec.name!r} is not available; "
                "falling back to the built-in MNA engine",
                UserWarning,
                stacklevel=2,
            )
            return MNABackend()
        return spec
    if isinstance(spec, str):
        check_sim_backend(spec)
        if spec == "mna":
            return MNABackend()
        from repro.sim.ngspice import NgspiceBackend

        return resolve_sim_backend(NgspiceBackend(), fallback=fallback)
    raise TypeError(
        f"sim_backend must be a name from {SIM_BACKENDS} or a "
        f"SimulatorBackend instance, got {type(spec).__name__}"
    )
