"""Parser for SPICE ASCII rawfiles (the ``write`` output of ngspice).

An ASCII rawfile is a sequence of *plots*, one per completed analysis,
each shaped::

    Title: <free text>
    Date: <free text>
    Plotname: Operating Point | AC Analysis | DC transfer characteristic | ...
    Flags: real | complex
    No. Variables: <n_vars>
    No. Points: <n_points>
    Variables:
            0       v(out)  voltage
            1       vdd#branch      current
            ...
    Values:
     0      <value of var 0>
            <value of var 1>
            ...
     1      <value of var 0>
            ...

Complex plots encode each value as ``re,im``.  The parser is tolerant of
blank lines and unknown header keys (ngspice adds ``Command:``/
``Options:`` lines), intolerant of structural damage — a truncated or
garbled file raises :class:`RawfileError`, which the ngspice backend
treats as a retryable failure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class RawfileError(ValueError):
    """Raised when a rawfile cannot be parsed (truncated, binary, garbled)."""


@dataclass
class RawPlot:
    """One analysis plot: metadata, variable table, and the value matrix."""

    plotname: str
    flags: str
    #: ``(name, kind)`` per variable, e.g. ``("v(out)", "voltage")``
    variables: list
    #: shape ``(n_points, n_vars)``; complex when ``"complex" in flags``
    data: np.ndarray

    @property
    def is_complex(self) -> bool:
        return "complex" in self.flags.lower()

    def column(self, index: int) -> np.ndarray:
        """The value trace of one variable across all points."""
        return self.data[:, index]


def _parse_scalar(token: str, is_complex: bool):
    token = token.strip()
    if "," in token:
        re_part, im_part = token.split(",", 1)
        return complex(float(re_part), float(im_part))
    value = float(token)
    return complex(value, 0.0) if is_complex else value


def parse_rawfile(text: str) -> list[RawPlot]:
    """Parse every plot in an ASCII rawfile, in file order."""
    if "Binary:" in text:
        raise RawfileError(
            "binary rawfile; the deck must `set filetype=ascii` before writing"
        )
    lines = text.splitlines()
    plots: list[RawPlot] = []
    i = 0
    n = len(lines)
    while i < n:
        line = lines[i].strip()
        if not line:
            i += 1
            continue
        # -- header -----------------------------------------------------------
        header: dict[str, str] = {}
        while i < n:
            stripped = lines[i].strip()
            if not stripped:
                i += 1
                continue
            if stripped.lower().startswith("variables:"):
                i += 1
                break
            if ":" not in stripped:
                raise RawfileError(f"expected a 'Key: value' header line, got {stripped!r}")
            key, _, value = stripped.partition(":")
            header[key.strip().lower()] = value.strip()
            i += 1
        else:
            raise RawfileError("rawfile ended inside a plot header")
        try:
            n_vars = int(header["no. variables"])
            n_points = int(header["no. points"])
        except (KeyError, ValueError) as exc:
            raise RawfileError(f"missing or malformed variable/point counts: {exc}") from exc
        if n_vars <= 0 or n_points < 0:
            raise RawfileError(
                f"implausible counts: {n_vars} variables, {n_points} points"
            )
        plotname = header.get("plotname", "")
        flags = header.get("flags", "real")
        is_complex = "complex" in flags.lower()

        # -- variable table ----------------------------------------------------
        variables: list[tuple[str, str]] = []
        while len(variables) < n_vars:
            if i >= n:
                raise RawfileError("rawfile ended inside the variable table")
            stripped = lines[i].strip()
            i += 1
            if not stripped:
                continue
            fields = stripped.split()
            if len(fields) < 3:
                raise RawfileError(f"malformed variable line {stripped!r}")
            variables.append((fields[1], fields[2]))

        # -- values ------------------------------------------------------------
        while i < n and not lines[i].strip():
            i += 1
        if i >= n or not lines[i].strip().lower().startswith("values:"):
            raise RawfileError("expected a 'Values:' section")
        i += 1
        dtype = complex if is_complex else float
        data = np.empty((n_points, n_vars), dtype=dtype)
        for point in range(n_points):
            row: list = []
            first_line = None
            while i < n:
                stripped = lines[i].strip()
                i += 1
                if stripped:
                    first_line = stripped
                    break
            if first_line is None:
                raise RawfileError(f"rawfile ended at point {point}/{n_points}")
            fields = first_line.split(None, 1)
            if len(fields) != 2:
                raise RawfileError(f"malformed point-index line {first_line!r}")
            def take(token: str):
                try:
                    return _parse_scalar(token, is_complex)
                except ValueError as exc:
                    raise RawfileError(
                        f"malformed value at point {point}: {token!r}"
                    ) from exc

            if not fields[0].isdigit() or int(fields[0]) != point:
                raise RawfileError(
                    f"point index mismatch: expected {point}, got {fields[0]!r}"
                )
            row.append(take(fields[1]))
            while len(row) < n_vars:
                if i >= n:
                    raise RawfileError("rawfile ended mid-point")
                stripped = lines[i].strip()
                i += 1
                if not stripped:
                    continue
                row.append(take(stripped))
            data[point] = row
        plots.append(
            RawPlot(plotname=plotname, flags=flags, variables=variables, data=data)
        )
    if not plots:
        raise RawfileError("no plots found in rawfile")
    return plots
