"""Pluggable simulator backends for circuit sizing.

Public surface of the ``repro.sim`` package:

* protocol + specs/results — :class:`SimulatorBackend`,
  :class:`OperatingPoint` / :class:`ACSweep` / :class:`DCTransferSweep`,
  :class:`RawResults`, :func:`resolve_sim_backend`;
* engines — :class:`MNABackend` (in-process, the bitwise default) and
  :class:`NgspiceBackend` (external ``ngspice -b`` subprocess);
* problem builders — :func:`problem_from_netlist` (SPICE deck in,
  sizing problem out) and :class:`CornerRobustProblem`
  (worst-case-over-PVT wrapper).
"""

from repro.sim.base import (
    SIM_BACKENDS,
    ACSweep,
    ACSweepResult,
    DCTransferSweep,
    DCTransferSweepResult,
    OperatingPoint,
    OperatingPointResult,
    RawResults,
    SimulationError,
    SimulatorBackend,
    SimulatorNotAvailable,
    check_sim_backend,
    resolve_sim_backend,
)
from repro.sim.corners import (
    CornerRobustProblem,
    folded_cascode_pvt,
    two_stage_opamp_pvt,
)
from repro.sim.importer import NetlistProblem, problem_from_netlist
from repro.sim.mna import MNABackend
from repro.sim.ngspice import NgspiceBackend
from repro.sim.rawfile import RawfileError, RawPlot, parse_rawfile

__all__ = [
    "ACSweep",
    "ACSweepResult",
    "CornerRobustProblem",
    "DCTransferSweep",
    "DCTransferSweepResult",
    "MNABackend",
    "NetlistProblem",
    "NgspiceBackend",
    "OperatingPoint",
    "OperatingPointResult",
    "RawPlot",
    "RawResults",
    "RawfileError",
    "SIM_BACKENDS",
    "SimulationError",
    "SimulatorBackend",
    "SimulatorNotAvailable",
    "check_sim_backend",
    "folded_cascode_pvt",
    "parse_rawfile",
    "problem_from_netlist",
    "resolve_sim_backend",
    "two_stage_opamp_pvt",
]
