"""External ``ngspice`` backend: deck out, subprocess, rawfile back in.

The run protocol follows the editor/runner split of the SPICE tooling
ecosystem: :func:`~repro.circuits.spice.write_netlist` serializes the
circuit, this module appends ``.NODESET`` seeds plus a ``.control``
section (one interactive command per analysis, each followed by a
``write`` so plot order matches plan order), and ``ngspice -b`` executes
the deck in batch mode.  The ASCII rawfile is parsed by
:mod:`repro.sim.rawfile` and normalized into the same
:class:`~repro.sim.base.RawResults` the MNA backend produces.

Failure containment, in order:

* no binary on PATH -> :class:`~repro.sim.base.SimulatorNotAvailable`
  (which :func:`~repro.sim.base.resolve_sim_backend` turns into a single
  warning + MNA fallback);
* hung process -> killed at ``timeout`` seconds;
* crash / empty / unparseable output -> retried once (``retries``), then
  :class:`~repro.sim.base.SimulationError` — a
  :class:`~repro.circuits.dc.ConvergenceError` subclass, so sizing
  problems score the design with the usual finite penalty.

Numerical caveat: ngspice's LEVEL=1 device model is not bit-compatible
with our Level-1+ model (body-effect and capacitance details differ), so
only the MNA backend is pinned bitwise; ngspice results are *physically*
comparable, not numerically identical.
"""

from __future__ import annotations

import os
import re
import shutil
import subprocess
import tempfile

import numpy as np

from repro.circuits.netlist import Circuit, is_ground
from repro.circuits.spice import format_value, write_netlist
from repro.sim.base import (
    ACSweep,
    ACSweepResult,
    DCTransferSweep,
    DCTransferSweepResult,
    OperatingPoint,
    OperatingPointResult,
    RawResults,
    SimulationError,
    SimulatorBackend,
    SimulatorNotAvailable,
)
from repro.sim.rawfile import RawfileError, RawPlot, parse_rawfile

_VECTOR_RE = re.compile(r"^([vi])\((.+)\)$")


def _normalize_vector(name: str) -> tuple[str, str]:
    """Map a rawfile vector name to ``(kind, bare_name)``.

    ngspice writes node voltages as ``v(out)`` or plain ``out`` and
    source currents as ``vdd#branch`` or ``i(vdd)``; everything is
    lowercased by the simulator.
    """
    name = name.strip().lower()
    match = _VECTOR_RE.match(name)
    if match:
        return match.group(1), match.group(2)
    if name.endswith("#branch"):
        return "i", name[: -len("#branch")]
    return "v", name


class NgspiceBackend(SimulatorBackend):
    """Subprocess backend around ``ngspice -b``.

    Parameters
    ----------
    binary:
        Executable name/path, or an argv prefix sequence (the test stub
        uses ``[sys.executable, "fake_ngspice.py"]``).
    timeout:
        Wall-clock seconds per process invocation; expiry kills the
        process and counts as a failed attempt.
    retries:
        Extra attempts after a failed run (crash/timeout/garbage).
    keep_files:
        Keep each run's deck/raw/log directory for inspection (the path
        of the last run is ``last_workdir``).
    """

    name = "ngspice"

    def __init__(
        self,
        binary="ngspice",
        timeout: float = 60.0,
        retries: int = 1,
        keep_files: bool = False,
    ):
        if isinstance(binary, (str, os.PathLike)):
            self.command = [str(binary)]
        else:
            self.command = [str(part) for part in binary]
        if not self.command:
            raise ValueError("binary must name an executable")
        # the subprocess runs with cwd=workdir, so a relative script path
        # ("./ngspice", a test stub) must be pinned down now
        self.command = [
            os.path.abspath(part) if os.path.isfile(part) else part
            for part in self.command
        ]
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.keep_files = bool(keep_files)
        self.last_workdir: str | None = None
        self.n_runs = 0
        self.n_retries = 0
        self._version: str | None = None

    # -- availability / identity ----------------------------------------------------

    def is_available(self) -> bool:
        executable = self.command[0]
        return shutil.which(executable) is not None or os.path.isfile(executable)

    def ensure_available(self) -> None:
        if not self.is_available():
            raise SimulatorNotAvailable(self.name, self.command[0])

    @property
    def version(self) -> str:
        """First line of ``ngspice --version`` (cached; ``"unknown"`` when
        the binary refuses to talk)."""
        if self._version is None:
            version = "unknown"
            if self.is_available():
                try:
                    proc = subprocess.run(
                        self.command + ["--version"],
                        capture_output=True,
                        text=True,
                        timeout=min(self.timeout, 15.0),
                    )
                    for line in proc.stdout.splitlines():
                        stripped = line.strip().strip("*").strip()
                        if stripped:
                            version = stripped
                            break
                except (OSError, subprocess.SubprocessError):
                    version = "unknown"
            self._version = version
        return self._version

    # -- deck construction -----------------------------------------------------------

    def _analysis_command(self, spec) -> str:
        if isinstance(spec, OperatingPoint):
            return "op"
        if isinstance(spec, ACSweep):
            freqs = spec.grid()
            if freqs.size < 2:
                raise SimulationError("ngspice AC sweep needs at least two frequencies")
            f_start, f_stop = float(freqs[0]), float(freqs[-1])
            decades = np.log10(f_stop / f_start)
            points_per_decade = max(1, int(round((freqs.size - 1) / decades)))
            return (
                f"ac dec {points_per_decade} "
                f"{format_value(f_start)} {format_value(f_stop)}"
            )
        if isinstance(spec, DCTransferSweep):
            values = spec.grid()
            if values.size < 2:
                raise SimulationError("ngspice DC sweep needs at least two points")
            step = (values[-1] - values[0]) / (values.size - 1)
            uniform = np.linspace(values[0], values[-1], values.size)
            if step == 0 or not np.allclose(values, uniform, rtol=1e-9, atol=0.0):
                raise SimulationError(
                    "ngspice .DC sweeps must be uniform; got a non-uniform grid "
                    f"for source {spec.source!r}"
                )
            return (
                f"dc {spec.source} {format_value(float(values[0]))} "
                f"{format_value(float(values[-1]))} {format_value(float(step))}"
            )
        raise TypeError(f"unsupported analysis spec {type(spec).__name__}")

    def build_deck(
        self, circuit: Circuit, analyses, initial: dict | None, raw_path: str
    ) -> str:
        """The full batch deck: netlist + nodesets + per-analysis control."""
        netlist = write_netlist(circuit)
        body = netlist[: netlist.rfind(".END")].rstrip("\n")
        lines = [body]
        seed = dict(initial or {})
        for spec in analyses:
            if isinstance(spec, (OperatingPoint, DCTransferSweep)) and spec.initial:
                seed.update(spec.initial)
        for node, volts in seed.items():
            if not is_ground(node):
                lines.append(f".NODESET V({node})={format_value(float(volts))}")
        lines.append(".control")
        lines.append("set filetype=ascii")
        lines.append("set appendwrite")
        for spec in analyses:
            lines.append(self._analysis_command(spec))
            lines.append(f"write {raw_path}")
        lines.append("quit 0")
        lines.append(".endc")
        lines.append(".END")
        return "\n".join(lines) + "\n"

    # -- execution --------------------------------------------------------------------

    def run(self, circuit, analyses, initial: dict | None = None) -> RawResults:
        self.ensure_available()
        analyses = list(analyses)
        if not analyses:
            raise ValueError("analysis plan is empty")
        workdir = tempfile.mkdtemp(prefix="repro-ngspice-")
        self.last_workdir = workdir
        deck_path = os.path.join(workdir, "deck.cir")
        raw_path = os.path.join(workdir, "out.raw")
        log_path = os.path.join(workdir, "out.log")
        with open(deck_path, "w", encoding="utf-8") as fh:
            fh.write(self.build_deck(circuit, analyses, initial, raw_path))
        try:
            failure = "did not run"
            for attempt in range(self.retries + 1):
                if attempt:
                    self.n_retries += 1
                if os.path.exists(raw_path):
                    os.remove(raw_path)  # never parse a stale attempt
                self.n_runs += 1
                try:
                    proc = subprocess.run(
                        self.command + ["-b", "-o", log_path, deck_path],
                        capture_output=True,
                        text=True,
                        timeout=self.timeout,
                        cwd=workdir,
                    )
                except subprocess.TimeoutExpired:
                    failure = f"timed out after {self.timeout:g}s (process killed)"
                    continue
                except OSError as exc:
                    failure = f"could not execute {self.command[0]!r}: {exc}"
                    continue
                if proc.returncode != 0:
                    failure = (
                        f"exited with status {proc.returncode}"
                        f"{self._log_tail(log_path)}"
                    )
                    continue
                try:
                    plots = self._read_plots(raw_path, len(analyses))
                except (OSError, RawfileError) as exc:
                    failure = f"unusable rawfile: {exc}"
                    continue
                results = [
                    self._convert(circuit, spec, plot)
                    for spec, plot in zip(analyses, plots)
                ]
                return RawResults(backend=self.name, results=results)
            raise SimulationError(
                f"ngspice run of {circuit.name!r} failed after "
                f"{self.retries + 1} attempt(s): {failure}"
            )
        finally:
            if not self.keep_files:
                shutil.rmtree(workdir, ignore_errors=True)
                self.last_workdir = None

    def _log_tail(self, log_path: str, n_lines: int = 5) -> str:
        try:
            with open(log_path, "r", encoding="utf-8", errors="replace") as fh:
                tail = [line.rstrip() for line in fh.readlines()[-n_lines:]]
        except OSError:
            return ""
        return f"; log tail: {' | '.join(tail)}" if tail else ""

    def _read_plots(self, raw_path: str, n_expected: int) -> list[RawPlot]:
        with open(raw_path, "r", encoding="utf-8", errors="replace") as fh:
            plots = parse_rawfile(fh.read())
        if len(plots) != n_expected:
            raise RawfileError(
                f"expected {n_expected} plot(s), rawfile holds {len(plots)}"
            )
        return plots

    # -- result normalization -----------------------------------------------------------

    def _convert(self, circuit: Circuit, spec, plot: RawPlot):
        circuit.finalize()
        node_names = {n.lower(): n for n in circuit.node_names}
        device_names = {d.name.lower(): d.name for d in circuit.devices}

        def split_columns(point=None):
            voltages: dict = {}
            currents: dict = {}
            for idx, (vec_name, _kind) in enumerate(plot.variables):
                kind, bare = _normalize_vector(vec_name)
                column = plot.column(idx) if point is None else plot.data[point, idx]
                if kind == "i" and bare in device_names:
                    currents[device_names[bare]] = column
                elif kind == "v" and bare in node_names:
                    voltages[node_names[bare]] = column
                # vectors that match nothing in the circuit (sweep scales,
                # internal nodes of ngspice device models) are dropped
            return voltages, currents

        if isinstance(spec, OperatingPoint):
            if plot.data.shape[0] != 1:
                raise SimulationError(
                    f"operating-point plot has {plot.data.shape[0]} points"
                )
            voltages, currents = split_columns(point=0)
            return OperatingPointResult(
                voltages={k: float(np.real(v)) for k, v in voltages.items()},
                branch_currents={k: float(np.real(v)) for k, v in currents.items()},
                regions={},
            )
        if isinstance(spec, ACSweep):
            freqs = np.real(plot.column(0)).astype(float)
            voltages, currents = split_columns()
            return ACSweepResult(
                freqs=freqs,
                voltages={k: np.asarray(v, dtype=complex) for k, v in voltages.items()},
                branch_currents={
                    k: np.asarray(v, dtype=complex) for k, v in currents.items()
                },
            )
        if isinstance(spec, DCTransferSweep):
            values = np.real(plot.column(0)).astype(float)
            voltages, currents = split_columns()
            return DCTransferSweepResult(
                source=spec.source,
                values=values,
                voltages={
                    k: np.real(v).astype(float) for k, v in voltages.items()
                },
                branch_currents={
                    k: np.real(v).astype(float) for k, v in currents.items()
                },
            )
        raise TypeError(f"unsupported analysis spec {type(spec).__name__}")
