"""Worst-case-over-corners robust sizing (the PVT wrapper).

The paper's charge pump bakes its 18 PVT corners into the testbench; this
module generalizes the idea to *any* sizing problem: a
:class:`CornerRobustProblem` instantiates one member problem per
:class:`~repro.circuits.pvt.PVTCorner` (via a user factory) and scores a
design by its worst corner —

    F(x)   = max_c  f_c(x)
    G_i(x) = max_c  g_{i,c}(x)

so a feasible robust design is feasible at *every* corner and the
minimized objective is the guaranteed (worst-case) performance.  Corner
evaluations are independent, so they fan out over a thread pool when
``n_workers > 1`` — the same executor shape the batch scheduler uses,
which composes with any simulator backend (the external ngspice backend
runs one subprocess per corner in parallel).

:func:`two_stage_opamp_pvt` and :func:`folded_cascode_pvt` wrap the two
amplifier testbenches this way with JSON-able kwargs, so the BO service
can host robust variants next to the nominal ones.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.bo.problem import Evaluation, Problem
from repro.circuits.pvt import PVTCorner, standard_corners


class CornerRobustProblem(Problem):
    """Worst-case wrapper over per-corner instances of a sizing problem.

    Parameters
    ----------
    factory:
        ``factory(corner) -> Problem`` building the testbench configured
        for one :class:`~repro.circuits.pvt.PVTCorner`.  Members must all
        share bounds and constraint count (checked at construction).
    corners:
        Corner grid (default: the paper's 18-corner
        :func:`~repro.circuits.pvt.standard_corners`).
    n_workers:
        Corner fan-out width: >1 evaluates corners on a thread pool,
        1/None stays serial.  Results are order-preserving, so the
        aggregate is identical either way.
    """

    def __init__(
        self,
        factory,
        corners: list[PVTCorner] | None = None,
        n_workers: int | None = None,
        name: str | None = None,
        cache_dir=None,
    ):
        corners = list(corners) if corners is not None else standard_corners()
        if not corners:
            raise ValueError("need at least one PVT corner")
        self.corners = corners
        self.members = [factory(corner) for corner in corners]
        base = self.members[0]
        for member, corner in zip(self.members, self.corners):
            if member.dim != base.dim or member.n_constraints != base.n_constraints:
                raise ValueError(
                    f"corner {corner.name}: member problem shape "
                    f"(d={member.dim}, Nc={member.n_constraints}) differs from "
                    f"the first corner's (d={base.dim}, Nc={base.n_constraints})"
                )
        self.n_workers = int(n_workers) if n_workers else 1
        super().__init__(
            name or f"{base.name}_pvt",
            base.lower,
            base.upper,
            base.n_constraints,
            cache_dir=cache_dir,
        )

    def cache_context(self) -> tuple:
        """Member context plus the corner grid: a cache entry only matches
        the same backend evaluated over the same corners."""
        member_context = tuple(self.members[0].cache_context())
        return member_context + ("corners",) + tuple(c.name for c in self.corners)

    # threads cannot be pickled with the pool handle; the pool is created
    # per evaluate() call, so only Problem's lock state needs handling
    # (done by the base class).

    def _corner_evaluations(self, x: np.ndarray) -> list[Evaluation]:
        if self.n_workers > 1 and len(self.members) > 1:
            with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
                return list(pool.map(lambda m: m.evaluate(x), self.members))
        return [member.evaluate(x) for member in self.members]

    def evaluate(self, x: np.ndarray) -> Evaluation:
        """Evaluate every corner; aggregate by the worst case."""
        x = np.asarray(x, dtype=float)
        evaluations = self._corner_evaluations(x)
        objectives = np.array([e.objective for e in evaluations])
        worst = int(np.argmax(objectives))
        constraints = (
            np.max(np.stack([e.constraints for e in evaluations]), axis=0)
            if self.n_constraints
            else np.empty(0)
        )
        metrics = {
            "worst_corner": self.corners[worst].name,
            "corner_objectives": {
                corner.name: float(e.objective)
                for corner, e in zip(self.corners, evaluations)
            },
            "n_failed_corners": sum(
                1 for e in evaluations if e.metrics.get("failed")
            ),
        }
        # surface the worst corner's raw performances for reporting
        for key, value in evaluations[worst].metrics.items():
            metrics.setdefault(key, value)
        return Evaluation(
            objective=float(objectives[worst]),
            constraints=constraints,
            metrics=metrics,
        )


def _amplifier_pvt(
    cls,
    processes=("TT", "FF", "SS"),
    vdd_scales=(0.9, 1.1),
    temps_c=(-40.0, 27.0, 125.0),
    n_workers: int | None = None,
    sim_backend="mna",
    cache_dir=None,
    **testbench_kwargs,
) -> CornerRobustProblem:
    corners = standard_corners(processes, vdd_scales, temps_c)

    def factory(corner):
        return cls(corner=corner, sim_backend=sim_backend, **testbench_kwargs)

    return CornerRobustProblem(
        factory, corners=corners, n_workers=n_workers, cache_dir=cache_dir
    )


def two_stage_opamp_pvt(**kwargs) -> CornerRobustProblem:
    """Worst-case two-stage op-amp sizing over a PVT grid.

    Keyword arguments: ``processes``/``vdd_scales``/``temps_c`` select the
    corner grid (defaults give the paper-style 18 corners), ``n_workers``
    the corner fan-out, ``sim_backend`` the engine; everything else is
    forwarded to
    :class:`~repro.circuits.testbenches.two_stage_opamp.TwoStageOpAmpProblem`.
    """
    from repro.circuits.testbenches.two_stage_opamp import TwoStageOpAmpProblem

    return _amplifier_pvt(TwoStageOpAmpProblem, **kwargs)


def folded_cascode_pvt(**kwargs) -> CornerRobustProblem:
    """Worst-case folded-cascode OTA sizing over a PVT grid (see
    :func:`two_stage_opamp_pvt` for the keyword arguments)."""
    from repro.circuits.testbenches.folded_cascode import FoldedCascodeOTAProblem

    return _amplifier_pvt(FoldedCascodeOTAProblem, **kwargs)
