"""Error taxonomy of the BO service and its wire envelope.

Every error a handler can produce maps to a stable kebab-case ``code``
carried verbatim in the wire envelope ``{"code", "message", "detail"}``
and to an HTTP status.  The study-level taxonomy
(:class:`~repro.bo.study.StudyError` and subclasses) already carries its
own codes — the service forwards those unchanged, so a remote client sees
exactly the error an in-process driver would catch.

:class:`ServiceError` covers the conditions that only exist at the
service layer (unknown study names, admission-control rejections, wire
protocol violations); :func:`error_envelope` is the single choke point
turning any exception into ``(http_status, envelope_dict)``.
"""

from __future__ import annotations

from repro.backend import BackendNotAvailable
from repro.bo.study import CheckpointMismatch, StudyError


class ServiceError(Exception):
    """A service-layer failure with a stable wire ``code``.

    ``detail`` is an optional JSON-safe dict with machine-readable
    context (offending field names, allowed values, ...); it travels in
    the error envelope next to ``code`` and ``message``.
    """

    #: stable error code (wire-safe kebab-case identifier)
    code = "service-error"
    #: HTTP status the server responds with
    http_status = 500

    def __init__(self, message: str, *, detail: dict | None = None):
        super().__init__(message)
        self.detail = dict(detail) if detail else {}


class BadRequest(ServiceError):
    """The request body or parameters could not be interpreted."""

    code = "bad-request"
    http_status = 400


class ProtocolMismatch(ServiceError):
    """Client and server speak different protocol versions."""

    code = "protocol-mismatch"
    http_status = 400


class UnknownStudy(ServiceError):
    """No study with the requested name exists in the store."""

    code = "unknown-study"
    http_status = 404


class StudyExists(ServiceError):
    """A study with the requested name already exists."""

    code = "study-exists"
    http_status = 409


class UnknownProblem(ServiceError):
    """The problem spec names no registered problem."""

    code = "unknown-problem"
    http_status = 400


class ServiceBusy(ServiceError):
    """Admission control: no resident-study slot could be freed.

    Every resident study is mid-request and the store is at
    ``max_resident`` capacity; the client should retry after a short
    backoff (the condition clears as soon as any in-flight request
    finishes).
    """

    code = "service-busy"
    http_status = 503


#: HTTP status for the study-level error codes the service forwards.
#: Unknown-trial is a lookup failure (404); the remaining study errors
#: are conflicts with the study's current state (409).
_STUDY_ERROR_STATUS = {
    "unknown-trial": 404,
    "budget-exhausted": 409,
    "checkpoint-mismatch": 409,
    "study-error": 409,
}

#: all service-layer error classes, for code -> class lookup (client side)
SERVICE_ERROR_CLASSES = (
    BadRequest,
    ProtocolMismatch,
    UnknownStudy,
    StudyExists,
    UnknownProblem,
    ServiceBusy,
    ServiceError,
)


def error_envelope(exc: Exception) -> tuple[int, dict]:
    """``(http_status, {"code", "message", "detail"})`` for any exception.

    Service errors use their declared code/status; study errors forward
    their stable ``code`` (404 for unknown trials, 409 for state
    conflicts) with the exception type name in ``detail`` —
    :class:`~repro.bo.study.CheckpointMismatch` additionally carries its
    ``field``/``expected``/``actual`` triple.  Anything else is an
    ``internal-error`` (500) so a crashing handler still answers with a
    well-formed envelope.
    """
    if isinstance(exc, ServiceError):
        return exc.http_status, {
            "code": exc.code,
            "message": str(exc),
            "detail": exc.detail,
        }
    if isinstance(exc, StudyError):
        detail: dict = {"error_type": type(exc).__name__}
        if isinstance(exc, CheckpointMismatch):
            detail["field"] = exc.field
            detail["expected"] = _wire_safe(exc.expected)
            detail["actual"] = _wire_safe(exc.actual)
        status = _STUDY_ERROR_STATUS.get(exc.code, 409)
        return status, {"code": exc.code, "message": str(exc), "detail": detail}
    if isinstance(exc, BackendNotAvailable):
        return 400, {
            "code": exc.code,
            "message": str(exc),
            "detail": {"backend": exc.backend, "package": exc.package},
        }
    if isinstance(exc, (TypeError, ValueError, KeyError)):
        # malformed payloads surface as bad requests, not server faults
        return 400, {
            "code": "bad-request",
            "message": str(exc) or type(exc).__name__,
            "detail": {"error_type": type(exc).__name__},
        }
    return 500, {
        "code": "internal-error",
        "message": f"{type(exc).__name__}: {exc}",
        "detail": {"error_type": type(exc).__name__},
    }


def _wire_safe(value):
    """Clamp arbitrary detail values to JSON-safe scalars."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


__all__ = [
    "BadRequest",
    "ProtocolMismatch",
    "SERVICE_ERROR_CLASSES",
    "ServiceBusy",
    "ServiceError",
    "StudyExists",
    "UnknownProblem",
    "UnknownStudy",
    "error_envelope",
]
