"""BO-as-a-service: a multi-study server over :class:`~repro.bo.study.Study`.

The package splits along the wire::

    server side                      shared                     client side
    -----------                      ------                     -----------
    StudyServer   (server.py)        protocol.py (wire types)   StudyClient (client.py)
    StudyStore    (store.py)         errors.py   (taxonomy)     list_studies/health/...
    build_problem (problems.py)

:class:`StudyStore` owns named, durably-checkpointed studies behind
per-study locks; :class:`StudyServer` fronts one store with a versioned
JSON-over-HTTP protocol (stdlib :mod:`http.server`), and
:class:`StudyClient` mirrors the ``Study`` ask/tell API one-for-one —
same methods, same exception types, bitwise-identical traces.  See the
README's "BO-as-a-service" section for the endpoint and error-code
tables.
"""

from repro.service.client import (
    ServiceConnection,
    StudyClient,
    delete_study,
    health,
    list_studies,
)
from repro.service.errors import (
    BadRequest,
    ProtocolMismatch,
    ServiceBusy,
    ServiceError,
    StudyExists,
    UnknownProblem,
    UnknownStudy,
    error_envelope,
)
from repro.service.problems import (
    PROBLEM_REGISTRY,
    ExternalProblem,
    build_problem,
    registered_problems,
)
from repro.service.protocol import PROTOCOL_VERSION, URL_PREFIX
from repro.service.server import StudyServer
from repro.service.store import StudyStore

__all__ = [
    "BadRequest",
    "ExternalProblem",
    "PROBLEM_REGISTRY",
    "PROTOCOL_VERSION",
    "ProtocolMismatch",
    "ServiceBusy",
    "ServiceConnection",
    "ServiceError",
    "StudyClient",
    "StudyExists",
    "StudyServer",
    "StudyStore",
    "URL_PREFIX",
    "UnknownProblem",
    "UnknownStudy",
    "build_problem",
    "delete_study",
    "error_envelope",
    "health",
    "list_studies",
    "registered_problems",
]
