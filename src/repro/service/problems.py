"""Problem registration for multi-tenant studies.

A remote client cannot ship a Python callable, so the service accepts two
kinds of problem spec in :class:`~repro.service.protocol.CreateStudyRequest`:

* **registry problems** — the paper's three testbenches and the synthetic
  benchmark suite, addressed by name (optionally with ``kwargs`` for
  parameterized families).  The server owns the simulator; clients may
  still evaluate externally, but ``x`` is reproducible server-side.
* **external spec tables** — ``{"name", "lower", "upper",
  "n_constraints"}``: the client owns an opaque simulator (a SPICE farm,
  a lab bench) and the server only proposes designs and ingests results.
  The resulting :class:`ExternalProblem` refuses server-side evaluation
  by construction.

Builders are referenced by dotted path and imported lazily, so importing
:mod:`repro.service` does not drag in the circuit engine.
"""

from __future__ import annotations

from importlib import import_module

import numpy as np

from repro.bo.problem import Evaluation, Problem
from repro.service.errors import BadRequest, UnknownProblem

#: registered problem name -> "module:attr" builder (lazily imported)
PROBLEM_REGISTRY: dict[str, str] = {
    # the paper's testbenches (Table I / Table II circuits); all accept a
    # "sim_backend" kwarg ("mna" or "ngspice") selecting the simulator
    "charge_pump": "repro.circuits.testbenches:ChargePumpProblem",
    "two_stage_opamp": "repro.circuits.testbenches:TwoStageOpAmpProblem",
    "folded_cascode": "repro.circuits.testbenches:FoldedCascodeOTAProblem",
    # worst-case-over-PVT variants (kwargs: processes, vdd_scales,
    # temps_c, n_workers, sim_backend, ...)
    "two_stage_opamp_pvt": "repro.sim.corners:two_stage_opamp_pvt",
    "folded_cascode_pvt": "repro.sim.corners:folded_cascode_pvt",
    # synthetic constrained benchmarks
    "gardner": "repro.benchfns:gardner_problem",
    "g06": "repro.benchfns:g06_problem",
    "g08": "repro.benchfns:g08_problem",
    "pressure_vessel": "repro.benchfns:pressure_vessel_problem",
    "tension_spring": "repro.benchfns:tension_spring_problem",
    "toy_constrained_quadratic": "repro.benchfns:toy_constrained_quadratic",
    # high-dimensional embedded family (kwargs: function, dim, seed, ...)
    "embedded_highdim": "repro.benchfns:embedded_highdim_problem",
}


def registered_problems() -> tuple[str, ...]:
    """The names :func:`build_problem` resolves, sorted."""
    return tuple(sorted(PROBLEM_REGISTRY))


class ExternalProblem(Problem):
    """A client-declared search space with no server-side simulator.

    Supports everything a :class:`~repro.bo.study.Study` needs (bounds,
    unit-box scaling, constraint count); :meth:`evaluate` raises, because
    only the owning client can run the simulator — results arrive
    exclusively through ``tell``.
    """

    # no simulator means nothing to memoize; keeps cache counters at zero
    cache_evaluations = False

    def __init__(self, name: str, lower, upper, n_constraints: int):
        super().__init__(name, lower, upper, n_constraints=n_constraints)

    def evaluate(self, x: np.ndarray) -> Evaluation:
        raise RuntimeError(
            f"problem {self.name!r} is externally evaluated: the client "
            "owns the simulator and must tell() results; the server never "
            "evaluates designs"
        )


def build_problem(spec) -> Problem:
    """Construct a :class:`Problem` from a wire problem spec.

    ``spec`` is a registry name string, a ``{"name", "kwargs"}`` dict for
    parameterized registry problems, or an external spec table
    ``{"name", "lower", "upper", "n_constraints"}``.
    """
    if isinstance(spec, str):
        return _build_registered(spec, {})
    if not isinstance(spec, dict):
        raise BadRequest(
            "problem spec must be a registered name or an object, got "
            f"{type(spec).__name__}"
        )
    name = spec.get("name")
    if not isinstance(name, str) or not name:
        raise BadRequest(
            "problem spec object needs a non-empty 'name' field, got "
            f"{name!r}"
        )
    if "lower" in spec or "upper" in spec:
        return _build_external(name, spec)
    unknown = sorted(set(spec) - {"name", "kwargs"})
    if unknown:
        raise BadRequest(
            f"unknown problem-spec field(s) {unknown}; a registry spec "
            "has 'name' and optional 'kwargs', an external spec table "
            "has 'name', 'lower', 'upper' and 'n_constraints'",
            detail={"unknown": unknown},
        )
    kwargs = spec.get("kwargs") or {}
    if not isinstance(kwargs, dict):
        raise BadRequest(
            f"problem spec 'kwargs' must be an object, got "
            f"{type(kwargs).__name__}"
        )
    return _build_registered(name, kwargs)


def _build_registered(name: str, kwargs: dict) -> Problem:
    target = PROBLEM_REGISTRY.get(name)
    if target is None:
        raise UnknownProblem(
            f"no registered problem named {name!r}; registered: "
            f"{list(registered_problems())} (or pass an external spec "
            "table with 'lower'/'upper'/'n_constraints')",
            detail={"registered": list(registered_problems())},
        )
    module_name, attr = target.split(":")
    builder = getattr(import_module(module_name), attr)
    try:
        problem = builder(**kwargs)
    except TypeError as exc:
        raise BadRequest(
            f"invalid kwargs for problem {name!r}: {exc}"
        ) from exc
    if not isinstance(problem, Problem):
        raise UnknownProblem(
            f"registered builder for {name!r} returned "
            f"{type(problem).__name__}, not a Problem"
        )
    return problem


def _build_external(name: str, spec: dict) -> ExternalProblem:
    unknown = sorted(set(spec) - {"name", "lower", "upper", "n_constraints"})
    if unknown:
        raise BadRequest(
            f"unknown external-problem field(s) {unknown}; an external "
            "spec table has 'name', 'lower', 'upper' and 'n_constraints'",
            detail={"unknown": unknown},
        )
    missing = sorted({"lower", "upper"} - set(spec))
    if missing:
        raise BadRequest(
            f"external problem spec {name!r} is missing {missing}"
        )
    lower = np.asarray(spec["lower"], dtype=float)
    upper = np.asarray(spec["upper"], dtype=float)
    n_constraints = int(spec.get("n_constraints", 0))
    try:
        return ExternalProblem(name, lower, upper, n_constraints=n_constraints)
    except ValueError as exc:
        raise BadRequest(f"invalid external problem spec: {exc}") from exc


__all__ = [
    "ExternalProblem",
    "PROBLEM_REGISTRY",
    "build_problem",
    "registered_problems",
]
