"""``python -m repro.service`` — run a standalone BO service.

Prints one JSON line ``{"host": ..., "port": ..., "root": ...}`` once the
socket is bound (so wrapper scripts and tests can read the real port when
``--port 0`` asked for an ephemeral one), then serves until interrupted.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.service.server import StudyServer


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve a directory of BO studies over HTTP.",
    )
    parser.add_argument(
        "--root",
        required=True,
        help="store directory for study checkpoints (created if missing)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (0 = ephemeral; the bound port is printed)",
    )
    parser.add_argument(
        "--max-resident",
        type=int,
        default=16,
        help="studies kept in memory at once (LRU-evicted beyond this)",
    )
    parser.add_argument(
        "--lease-s",
        type=float,
        default=None,
        help="default trial lease in seconds (unset = no leases)",
    )
    parser.add_argument(
        "--reap-interval-s",
        type=float,
        default=1.0,
        help="seconds between expired-lease sweeps",
    )
    parser.add_argument(
        "--farm-workers",
        type=int,
        default=None,
        help=(
            "enable the server-side evaluation farm with this many "
            "async-thread workers (unset = the server never evaluates)"
        ),
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="log each request to stderr",
    )
    args = parser.parse_args(argv)

    farm = None
    if args.farm_workers is not None:
        from repro.farm import EvaluationFarm

        farm = EvaluationFarm("async-thread", n_workers=args.farm_workers)
    server = StudyServer(
        args.root,
        host=args.host,
        port=args.port,
        max_resident=args.max_resident,
        default_lease_s=args.lease_s,
        farm=farm,
        reap_interval_s=args.reap_interval_s,
        quiet=not args.verbose,
    )
    host, port = server.address
    print(json.dumps({"host": host, "port": port, "root": args.root}), flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if farm is not None:
            farm.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
