"""BO-as-a-service: the HTTP front of a :class:`~repro.service.store.StudyStore`.

Stdlib only — :class:`http.server.ThreadingHTTPServer` gives one thread
per connection; the store's per-study locks turn that into "parallel
across studies, serialized within a study".  A background reaper thread
sweeps expired leases (:meth:`StudyStore.reap_expired`) so abandoned
trials free their budget slots without any client cooperation.

Every response body is ``{"protocol_version": N, ...}``; failures are
``{"protocol_version": N, "error": {"code", "message", "detail"}}`` with
the taxonomy's stable codes (see :mod:`repro.service.errors`).  The URL
table lives in :mod:`repro.service.protocol`.

Typical embedding (tests, notebooks)::

    with StudyServer(store_dir, port=0) as server:
        client = StudyClient.create(server.address, "cp", problem="charge_pump")
        ...

``python -m repro.service`` runs a standalone server.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service import protocol
from repro.service.errors import BadRequest, error_envelope
from repro.service.protocol import (
    PROTOCOL_VERSION,
    URL_PREFIX,
    AskRequest,
    AskResponse,
    BestResponse,
    CheckpointResponse,
    CreateResponse,
    CreateStudyRequest,
    DeleteResponse,
    EvaluateRequest,
    EvaluateResponse,
    HealthResponse,
    ListResponse,
    RetractRequest,
    RetractResponse,
    StatusResponse,
    TellRequest,
    TellResponse,
    WireRecord,
    WireTrial,
)
from repro.service.store import StudyStore

_STUDY_PATH = re.compile(
    rf"^{URL_PREFIX}/studies/(?P<name>[^/]+)(?:/(?P<verb>[a-z]+))?$"
)

#: request body ceiling — a create/tell payload is a few KB; anything
#: megabytes-large is a client bug, not a study
_MAX_BODY_BYTES = 8 * 1024 * 1024


class StudyServer:
    """Serve a :class:`StudyStore` over HTTP; see the module docstring.

    Parameters mirror the store's (``max_resident``,
    ``default_lease_s``, ``clock``, ``farm`` — an
    :class:`~repro.farm.farm.EvaluationFarm` enabling the server-side
    ``evaluate`` verb); alternatively pass a pre-built ``store``.
    ``port=0`` binds an ephemeral port — read the real one from
    :attr:`address` after :meth:`start` (the constructor binds, so
    the address is valid immediately).
    """

    def __init__(
        self,
        root=None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        store: StudyStore | None = None,
        max_resident: int | None = 16,
        default_lease_s: float | None = None,
        clock=None,
        farm=None,
        reap_interval_s: float = 1.0,
        quiet: bool = True,
    ):
        if (store is None) == (root is None):
            raise ValueError(
                "pass exactly one of root= (a store directory) or "
                "store= (a prebuilt StudyStore)"
            )
        if store is None:
            kwargs = {} if clock is None else {"clock": clock}
            store = StudyStore(
                root,
                max_resident=max_resident,
                default_lease_s=default_lease_s,
                farm=farm,
                **kwargs,
            )
        elif farm is not None:
            raise ValueError(
                "farm= configures the server-built store; attach the "
                "farm to the prebuilt store= instead"
            )
        self.store = store
        self.quiet = quiet
        self.reap_interval_s = float(reap_interval_s)
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._serve_thread: threading.Thread | None = None
        self._reaper_thread: threading.Thread | None = None
        self._stop_event = threading.Event()

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (port resolved when ephemeral)."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def start(self) -> "StudyServer":
        """Serve in background threads; returns self for chaining."""
        if self._serve_thread is not None:
            raise RuntimeError("server already started")
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-service",
            daemon=True,
        )
        self._serve_thread.start()
        self._reaper_thread = threading.Thread(
            target=self._reap_loop, name="repro-service-reaper", daemon=True
        )
        self._reaper_thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and join the background threads."""
        self._stop_event.set()
        if self._serve_thread is not None:
            self._httpd.shutdown()
            self._serve_thread.join(timeout=10)
            self._serve_thread = None
        if self._reaper_thread is not None:
            self._reaper_thread.join(timeout=10)
            self._reaper_thread = None
        self._httpd.server_close()

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``__main__`` entry point)."""
        self._reaper_thread = threading.Thread(
            target=self._reap_loop, name="repro-service-reaper", daemon=True
        )
        self._reaper_thread.start()
        try:
            self._httpd.serve_forever()
        finally:
            self._stop_event.set()
            self._httpd.server_close()

    def __enter__(self) -> "StudyServer":
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()
        return False

    def _reap_loop(self) -> None:
        while not self._stop_event.wait(self.reap_interval_s):
            try:
                self.store.reap_expired()
            except Exception:
                # the reaper must outlive any single bad study; the
                # failing lease resurfaces on the next sweep
                if not self.quiet:
                    import traceback

                    traceback.print_exc()

    # -- request dispatch -------------------------------------------------------------

    def _dispatch(self, method: str, path: str, payload: dict):
        """Route one request; returns a response message (or raises)."""
        store = self.store
        if path == f"{URL_PREFIX}/health":
            _require(method, "GET", path)
            return HealthResponse(
                status="ok",
                n_studies=store.n_studies,
                n_resident=store.n_resident,
            )
        if path == f"{URL_PREFIX}/studies":
            if method == "GET":
                return ListResponse(studies=store.study_names())
            _require(method, "POST", path)
            request = CreateStudyRequest.from_wire(payload)
            describe = store.create(
                request.name,
                request.problem,
                n_initial=request.n_initial,
                max_evaluations=request.max_evaluations,
                initial_design=request.initial_design,
                seed=request.seed,
                surrogate=request.surrogate,
                acquisition=request.acquisition,
                scheduler=request.scheduler,
            )
            return CreateResponse(study=describe)
        match = _STUDY_PATH.match(path)
        if match is None:
            raise BadRequest(
                f"no such endpoint {path!r}; see repro.service.protocol "
                "for the endpoint table"
            )
        name, verb = match.group("name"), match.group("verb")
        if verb is None:
            if method == "DELETE":
                return DeleteResponse(deleted=store.delete(name))
            _require(method, "GET", path)
            describe, pending, leases = store.status(name)
            return StatusResponse(
                study=describe,
                pending_trials=[
                    WireTrial.from_trial(t, leases.get(t.id)).to_wire()
                    for t in pending
                ],
                leases={str(tid): s for tid, s in leases.items()},
            )
        if verb == "ask":
            _require(method, "POST", path)
            request = AskRequest.from_wire(payload)
            pairs = store.ask(name, n=request.n, lease_s=request.lease_s)
            return AskResponse(
                trials=[
                    WireTrial.from_trial(trial, lease).to_wire()
                    for trial, lease in pairs
                ]
            )
        if verb == "tell":
            _require(method, "POST", path)
            request = TellRequest.from_wire(payload)
            record = store.tell(
                name, request.trial_id, request.to_evaluation()
            )
            return TellResponse(record=WireRecord.from_record(record).to_wire())
        if verb == "retract":
            _require(method, "POST", path)
            request = RetractRequest.from_wire(payload)
            trial = store.retract(name, request.trial_id)
            return RetractResponse(trial=WireTrial.from_trial(trial).to_wire())
        if verb == "evaluate":
            _require(method, "POST", path)
            request = EvaluateRequest.from_wire(payload)
            record = store.evaluate(name, request.trial_id)
            return EvaluateResponse(
                record=WireRecord.from_record(record).to_wire()
            )
        if verb == "best":
            _require(method, "GET", path)
            record = store.best(name)
            return BestResponse(
                record=None
                if record is None
                else WireRecord.from_record(record).to_wire()
            )
        if verb == "checkpoint":
            _require(method, "POST", path)
            n_evaluations, n_pending = store.checkpoint(name)
            return CheckpointResponse(
                study=name, n_evaluations=n_evaluations, n_pending=n_pending
            )
        raise BadRequest(
            f"no such endpoint {path!r}; see repro.service.protocol "
            "for the endpoint table"
        )


def _require(method: str, expected: str, path: str) -> None:
    if method != expected:
        raise BadRequest(
            f"{path} expects {expected}, got {method}",
            detail={"expected": expected, "got": method},
        )


def _make_handler(server: StudyServer):
    class _Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        # identify the wire protocol, not the host machine's python
        server_version = f"repro-service/{PROTOCOL_VERSION}"
        sys_version = ""

        def log_message(self, format, *args):
            if not server.quiet:
                BaseHTTPRequestHandler.log_message(self, format, *args)

        def _handle(self, method: str) -> None:
            try:
                payload = self._read_payload()
                protocol.check_protocol_version(payload)
                response = server._dispatch(method, self.path, payload)
            except Exception as exc:
                status, envelope = error_envelope(exc)
                self._send(
                    status,
                    {"protocol_version": PROTOCOL_VERSION, "error": envelope},
                )
                return
            body = {"protocol_version": PROTOCOL_VERSION}
            body.update(response.to_wire())
            self._send(200, body)

        def _read_payload(self) -> dict:
            length = int(self.headers.get("Content-Length") or 0)
            if length == 0:
                return {}
            if length > _MAX_BODY_BYTES:
                raise BadRequest(
                    f"request body of {length} bytes exceeds the "
                    f"{_MAX_BODY_BYTES}-byte limit"
                )
            raw = self.rfile.read(length)
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise BadRequest(f"request body is not valid JSON: {exc}")
            if not isinstance(payload, dict):
                raise BadRequest(
                    "request body must be a JSON object, got "
                    f"{type(payload).__name__}"
                )
            return payload

        def _send(self, status: int, body: dict) -> None:
            data = json.dumps(body).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self):
            self._handle("GET")

        def do_POST(self):
            self._handle("POST")

        def do_DELETE(self):
            self._handle("DELETE")

    return _Handler


__all__ = ["StudyServer"]
