"""`StudyClient`: the remote mirror of :class:`~repro.bo.study.Study`.

One client is bound to one named study on one server and exposes the
ask/tell surface one-for-one — ``ask`` returns real
:class:`~repro.bo.study.Trial` objects, ``tell`` accepts the same
evaluation shapes (:class:`~repro.bo.problem.Evaluation`, an
``(objective, constraints)`` pair, or a bare objective) and returns a
real :class:`~repro.bo.history.EvaluationRecord`, and errors re-raise as
the *same exception types* an in-process driver would catch
(:class:`~repro.bo.study.BudgetExhausted`,
:class:`~repro.bo.study.UnknownTrial`, ...), reconstructed from the wire
codes.  A driver loop written against ``Study`` runs unchanged against a
``StudyClient`` — and produces the bitwise-identical trace, because
floats cross the wire via JSON shortest round-trip repr.

Stdlib only (:mod:`http.client`); connections are per-thread, so one
client instance may be shared across threads.
"""

from __future__ import annotations

import http.client
import json
import threading

from repro.backend import BackendNotAvailable
from repro.bo.history import EvaluationRecord
from repro.bo.study import (
    BudgetExhausted,
    CheckpointMismatch,
    StudyError,
    Trial,
    UnknownTrial,
)
from repro.service.errors import SERVICE_ERROR_CLASSES, ServiceError
from repro.service.protocol import (
    PROTOCOL_VERSION,
    URL_PREFIX,
    WireRecord,
    WireTrial,
)

#: wire code -> study-taxonomy exception class (service codes resolve
#: through SERVICE_ERROR_CLASSES; anything unknown falls back to
#: ServiceError so new server-side codes degrade gracefully)
_STUDY_CODE_CLASSES = {
    cls.code: cls
    for cls in (StudyError, BudgetExhausted, UnknownTrial, CheckpointMismatch)
}
_SERVICE_CODE_CLASSES = {cls.code: cls for cls in SERVICE_ERROR_CLASSES}


def raise_for_envelope(envelope: dict) -> None:
    """Re-raise a wire error envelope as its in-process exception type."""
    code = envelope.get("code", "internal-error")
    message = envelope.get("message", code)
    detail = envelope.get("detail") or {}
    if code in _STUDY_CODE_CLASSES:
        cls = _STUDY_CODE_CLASSES[code]
        if cls is CheckpointMismatch:
            raise cls(
                message,
                field=detail.get("field"),
                expected=detail.get("expected"),
                actual=detail.get("actual"),
            )
        raise cls(message)
    if code == BackendNotAvailable.code:
        raise BackendNotAvailable(
            detail.get("backend", "?"), detail.get("package", "?")
        )
    cls = _SERVICE_CODE_CLASSES.get(code, ServiceError)
    raise cls(message, detail=detail)


class ServiceConnection:
    """Low-level JSON-over-HTTP transport shared by the client classes.

    ``address`` is ``(host, port)`` (a :attr:`StudyServer.address`) or a
    ``"host:port"`` string.  One :class:`http.client.HTTPConnection` per
    calling thread, kept alive across requests.
    """

    def __init__(self, address, *, timeout: float = 60.0):
        if isinstance(address, str):
            host, _, port = address.rpartition(":")
            if not host or not port.isdigit():
                raise ValueError(
                    f"address string must look like 'host:port', got "
                    f"{address!r}"
                )
            address = (host, int(port))
        self.host, self.port = str(address[0]), int(address[1])
        self.timeout = float(timeout)
        self._local = threading.local()

    def request(self, method: str, path: str, payload: dict | None = None) -> dict:
        """One round-trip; returns the response body, raising on errors."""
        body = None
        headers = {}
        if payload is not None:
            wire = dict(payload)
            # declare our version, but let a caller-provided one stand
            # (tests probe the server's mismatch handling this way)
            wire.setdefault("protocol_version", PROTOCOL_VERSION)
            body = json.dumps(wire).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn = self._connection()
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
        except (http.client.HTTPException, OSError):
            # stale keep-alive (server restarted, idle timeout): one
            # fresh-connection retry, then let the failure surface
            self.close()
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
        try:
            parsed = json.loads(data)
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"server returned non-JSON body (HTTP {response.status}): "
                f"{data[:200]!r}"
            ) from exc
        if "error" in parsed:
            raise_for_envelope(parsed["error"])
        if response.status >= 400:
            raise ServiceError(
                f"HTTP {response.status} from {method} {path} without an "
                "error envelope"
            )
        return parsed

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._local.conn = conn
        return conn


class StudyClient:
    """Remote handle on one named study; mirrors :class:`Study` 1:1.

    Construct with :meth:`create` (registers a new study) or
    :meth:`connect` (attaches to an existing one).  Module-level
    :func:`list_studies`, :func:`delete_study` and :func:`health` cover
    the store-level endpoints.
    """

    def __init__(self, address, name: str, *, timeout: float = 60.0):
        self._conn = (
            address
            if isinstance(address, ServiceConnection)
            else ServiceConnection(address, timeout=timeout)
        )
        self.name = str(name)

    # -- constructors -----------------------------------------------------------------

    @classmethod
    def create(
        cls,
        address,
        name: str,
        *,
        problem,
        n_initial: int = 30,
        max_evaluations: int = 100,
        initial_design: str = "lhs",
        seed: int | None = None,
        surrogate: dict | None = None,
        acquisition: dict | None = None,
        scheduler: dict | None = None,
        timeout: float = 60.0,
    ) -> "StudyClient":
        """Register a new study on the server and return its client.

        Mirrors the :class:`Study` constructor, with config dicts in
        place of the typed config objects (they cannot travel as JSON);
        ``problem`` is a registered name, a ``{"name", "kwargs"}`` dict,
        or an external spec table — see
        :class:`~repro.service.protocol.CreateStudyRequest`.
        """
        client = cls(address, name, timeout=timeout)
        client._conn.request(
            "POST",
            f"{URL_PREFIX}/studies",
            {
                "name": name,
                "problem": problem,
                "n_initial": n_initial,
                "max_evaluations": max_evaluations,
                "initial_design": initial_design,
                "seed": seed,
                "surrogate": surrogate,
                "acquisition": acquisition,
                "scheduler": scheduler,
            },
        )
        return client

    @classmethod
    def connect(cls, address, name: str, *, timeout: float = 60.0) -> "StudyClient":
        """Attach to an existing study (validates it exists server-side)."""
        client = cls(address, name, timeout=timeout)
        client.describe()
        return client

    # -- the Study mirror -------------------------------------------------------------

    def ask(self, n: int = 1, *, lease_s: float | None = None) -> list[Trial]:
        """Propose ``n`` designs, exactly like :meth:`Study.ask`.

        Each trial is leased server-side for ``lease_s`` seconds (server
        default when ``None``); finish with :meth:`tell` or
        :meth:`retract` before the lease lapses, or the server's reaper
        retracts it for you.
        """
        body = self._conn.request(
            "POST",
            self._path("ask"),
            {"n": int(n), "lease_s": lease_s},
        )
        return [
            WireTrial.from_wire(wire).to_trial() for wire in body["trials"]
        ]

    def tell(self, trial, evaluation) -> EvaluationRecord:
        """Commit one evaluated trial, exactly like :meth:`Study.tell`."""
        trial_id = trial.id if isinstance(trial, Trial) else int(trial)
        objective, constraints, metrics = _split_evaluation(evaluation)
        body = self._conn.request(
            "POST",
            self._path("tell"),
            {
                "trial_id": trial_id,
                "objective": objective,
                "constraints": constraints,
                "metrics": metrics,
            },
        )
        return WireRecord.from_wire(body["record"]).to_record()

    def retract(self, trial) -> Trial:
        """Abandon a pending trial, exactly like :meth:`Study.retract`."""
        trial_id = trial.id if isinstance(trial, Trial) else int(trial)
        body = self._conn.request(
            "POST", self._path("retract"), {"trial_id": trial_id}
        )
        return WireTrial.from_wire(body["trial"]).to_trial()

    def evaluate(self, trial) -> EvaluationRecord:
        """Evaluate a pending trial server-side and commit the result.

        Tell-by-reference for registry problems: the server runs its own
        simulator on the pending trial through its evaluation farm and
        commits the outcome, so no result numbers cross the wire.
        Raises :class:`~repro.service.errors.BadRequest` when the server
        has no farm (or the study is externally evaluated) and
        :class:`~repro.service.errors.ServiceBusy` when the farm is
        saturated — retry after in-flight work drains.
        """
        trial_id = trial.id if isinstance(trial, Trial) else int(trial)
        body = self._conn.request(
            "POST", self._path("evaluate"), {"trial_id": trial_id}
        )
        return WireRecord.from_wire(body["record"]).to_record()

    def best(self) -> EvaluationRecord | None:
        """Best feasible record so far, exactly like :meth:`Study.best`."""
        body = self._conn.request("GET", self._path("best"))
        wire = body.get("record")
        return None if wire is None else WireRecord.from_wire(wire).to_record()

    def describe(self) -> dict:
        """The study's :meth:`Study.describe` snapshot."""
        return self.status()["study"]

    def status(self) -> dict:
        """Full status body: ``describe`` snapshot + pending trials + leases."""
        return self._conn.request("GET", self._path())

    def pending_trials(self) -> list[Trial]:
        """Asked-but-untold trials, exactly like :meth:`Study.pending_trials`.

        After a client or server restart this is how in-flight work is
        re-adopted: the returned trials are told or retracted as usual.
        """
        return [
            WireTrial.from_wire(wire).to_trial()
            for wire in self.status()["pending_trials"]
        ]

    @property
    def done(self) -> bool:
        """True once the full budget is committed (:attr:`Study.done`)."""
        return bool(self.describe()["done"])

    def checkpoint(self) -> dict:
        """Force a durable server-side checkpoint (normally automatic)."""
        return self._conn.request("POST", self._path("checkpoint"))

    def delete(self) -> str:
        """Delete this study server-side; returns the deleted name."""
        body = self._conn.request("DELETE", self._path())
        return body["deleted"]

    def close(self) -> None:
        self._conn.close()

    def _path(self, verb: str | None = None) -> str:
        base = f"{URL_PREFIX}/studies/{self.name}"
        return base if verb is None else f"{base}/{verb}"

    def __repr__(self) -> str:
        return (
            f"StudyClient({self._conn.host}:{self._conn.port}, "
            f"study={self.name!r})"
        )


def list_studies(address, *, timeout: float = 60.0) -> list[str]:
    """Names of every study the server hosts."""
    conn = ServiceConnection(address, timeout=timeout)
    try:
        return list(conn.request("GET", f"{URL_PREFIX}/studies")["studies"])
    finally:
        conn.close()


def delete_study(address, name: str, *, timeout: float = 60.0) -> str:
    """Delete a study by name; returns the deleted name."""
    conn = ServiceConnection(address, timeout=timeout)
    try:
        return conn.request("DELETE", f"{URL_PREFIX}/studies/{name}")["deleted"]
    finally:
        conn.close()


def health(address, *, timeout: float = 60.0) -> dict:
    """The server's liveness body (``status``/``n_studies``/``n_resident``)."""
    conn = ServiceConnection(address, timeout=timeout)
    try:
        return conn.request("GET", f"{URL_PREFIX}/health")
    finally:
        conn.close()


def _split_evaluation(evaluation) -> tuple[float, list, dict | None]:
    """Break a :meth:`Study.tell`-shaped evaluation into wire fields."""
    from repro.bo.problem import Evaluation

    if isinstance(evaluation, Evaluation):
        metrics = {
            k: v
            for k, v in evaluation.metrics.items()
            if isinstance(v, (int, float, str, bool))
        }
        return (
            float(evaluation.objective),
            [float(c) for c in evaluation.constraints],
            metrics or None,
        )
    if isinstance(evaluation, tuple):
        objective, constraints = evaluation
        return float(objective), [float(c) for c in constraints], None
    return float(evaluation), [], None


__all__ = [
    "ServiceConnection",
    "StudyClient",
    "delete_study",
    "health",
    "list_studies",
    "raise_for_envelope",
]
