"""Versioned wire protocol of the BO service.

Plain JSON over HTTP, shaped by the typed request/response dataclasses in
this module.  Every response body carries ``protocol_version``; requests
may carry it too, and the server rejects a mismatch with the
``protocol-mismatch`` error code instead of guessing.  Errors travel as a
structured envelope ``{"error": {"code", "message", "detail"}}`` (see
:mod:`repro.service.errors`).

Endpoints (all under ``/v1``)::

    POST   /v1/studies                  create a study
    GET    /v1/studies                  list studies
    GET    /v1/studies/{name}           status (Study.describe + pending)
    DELETE /v1/studies/{name}           delete a study
    POST   /v1/studies/{name}/ask       propose trials (leased)
    POST   /v1/studies/{name}/tell      commit one evaluated trial
    POST   /v1/studies/{name}/retract   abandon a pending trial
    POST   /v1/studies/{name}/evaluate  evaluate a pending trial server-side
    GET    /v1/studies/{name}/best      best feasible record
    POST   /v1/studies/{name}/checkpoint  force a durable checkpoint
    GET    /v1/health                   liveness + store counters

Floats cross the wire via JSON's shortest round-trip repr, so a design
vector or objective read back from a response is bitwise identical to the
server's float64 — the foundation of the service's bitwise-reproducibility
guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

import numpy as np

from repro.bo.history import EvaluationRecord
from repro.bo.problem import Evaluation
from repro.bo.study import Trial
from repro.service.errors import BadRequest, ProtocolMismatch

#: protocol major version; bump only on wire-incompatible changes
PROTOCOL_VERSION = 1

#: URL prefix all endpoints live under (matches PROTOCOL_VERSION)
URL_PREFIX = f"/v{PROTOCOL_VERSION}"


def check_protocol_version(payload: dict) -> None:
    """Reject a request whose declared protocol version mismatches ours."""
    declared = payload.get("protocol_version")
    if declared is not None and int(declared) != PROTOCOL_VERSION:
        raise ProtocolMismatch(
            f"request declares protocol_version={declared!r} but this "
            f"server speaks {PROTOCOL_VERSION}",
            detail={"client": int(declared), "server": PROTOCOL_VERSION},
        )


class WireMessage:
    """Base for the typed request/response dataclasses.

    ``from_wire`` validates field names (unknown keys are a
    ``bad-request``, so typos fail loudly instead of silently applying
    defaults) and required fields; ``to_wire`` emits a JSON-safe dict.
    """

    @classmethod
    def from_wire(cls, data) -> "WireMessage":
        if not isinstance(data, dict):
            raise BadRequest(
                f"{cls.__name__} body must be a JSON object, got "
                f"{type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known - {"protocol_version"})
        if unknown:
            raise BadRequest(
                f"unknown field(s) {unknown} for {cls.__name__}; known "
                f"fields: {sorted(known)}",
                detail={"unknown": unknown, "known": sorted(known)},
            )
        required = {f.name for f in fields(cls) if f.default is _REQUIRED}
        missing = sorted(required - set(data))
        if missing:
            raise BadRequest(
                f"missing required field(s) {missing} for {cls.__name__}",
                detail={"missing": missing},
            )
        try:
            return cls(**{k: v for k, v in data.items() if k in known})
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"invalid {cls.__name__}: {exc}") from exc

    def to_wire(self) -> dict:
        payload = {}
        for f in fields(self):
            payload[f.name] = _json_safe(getattr(self, f.name))
        return payload


# sentinel default marking a wire field as required (dataclasses need a
# default for ordering freedom; from_wire enforces presence)
_REQUIRED = object()


def _json_safe(value):
    if isinstance(value, np.ndarray):
        return [float(v) for v in value.ravel()]
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, WireMessage):
        return value.to_wire()
    return value


# -- requests -----------------------------------------------------------------------


@dataclass
class CreateStudyRequest(WireMessage):
    """``POST /v1/studies`` — register and construct a named study.

    ``problem`` is either a registered problem name (``"charge_pump"``),
    a ``{"name": ..., "kwargs": {...}}`` dict for parameterized registry
    problems, or a client-supplied spec table ``{"name", "lower",
    "upper", "n_constraints"}`` for external-evaluation studies where the
    client owns the simulator and only ever ``tell``s results.  Config
    dicts hold keyword overrides for the typed configs
    (:class:`~repro.bo.config.SurrogateConfig` etc.); omitted configs use
    their defaults.
    """

    name: str = _REQUIRED
    problem: object = _REQUIRED
    n_initial: int = 30
    max_evaluations: int = 100
    initial_design: str = "lhs"
    seed: int | None = None
    surrogate: dict | None = None
    acquisition: dict | None = None
    scheduler: dict | None = None


@dataclass
class AskRequest(WireMessage):
    """``POST /v1/studies/{name}/ask`` — propose up to ``n`` trials.

    Each returned trial carries a lease of ``lease_s`` seconds (server
    default when ``None``); a trial whose lease expires before its
    ``tell`` is auto-retracted and its budget slot freed.
    """

    n: int = 1
    lease_s: float | None = None


@dataclass
class TellRequest(WireMessage):
    """``POST /v1/studies/{name}/tell`` — commit one evaluated trial."""

    trial_id: int = _REQUIRED
    objective: float = _REQUIRED
    constraints: list = field(default_factory=list)
    metrics: dict | None = None

    def to_evaluation(self) -> Evaluation:
        return Evaluation(
            objective=float(self.objective),
            constraints=np.asarray(self.constraints, dtype=float),
            metrics=dict(self.metrics or {}),
        )


@dataclass
class RetractRequest(WireMessage):
    """``POST /v1/studies/{name}/retract`` — abandon a pending trial."""

    trial_id: int = _REQUIRED


@dataclass
class EvaluateRequest(WireMessage):
    """``POST /v1/studies/{name}/evaluate`` — run one pending trial server-side.

    Tell-by-reference: instead of shipping numbers back, the client asks
    the server's evaluation farm to run the registered problem's own
    simulator on the pending trial and commit the result.  Only studies
    built from registry problems qualify (an external spec table has no
    server-side simulator); a saturated farm answers with the ``busy``
    envelope, so clients retry exactly as they do for residency pressure.
    """

    trial_id: int = _REQUIRED


# -- responses ----------------------------------------------------------------------


@dataclass
class WireTrial(WireMessage):
    """One proposed design as it crosses the wire.

    Field-for-field mirror of :class:`~repro.bo.study.Trial` plus the
    lease: ``lease_expires_s`` is the remaining lease time in seconds at
    response-build time (``None`` for responses that do not manage
    leases).  ``u`` is the unit-box design, ``x`` the same point in
    natural units — both round-trip bitwise through JSON.
    ``speculative`` carries the proposal's provenance flag (asked ahead
    of demand by a speculative driver) so resumed clients see it intact.
    """

    id: int = _REQUIRED
    u: list = _REQUIRED
    x: list = _REQUIRED
    phase: str = _REQUIRED
    batch_index: int = 0
    iteration: int | None = None
    pending: list = field(default_factory=list)
    proposal_id: int | None = None
    pending_at_proposal: list = field(default_factory=list)
    speculative: bool = False
    lease_expires_s: float | None = None

    @classmethod
    def from_trial(cls, trial: Trial, lease_expires_s: float | None = None):
        return cls(
            id=trial.id,
            u=[float(v) for v in trial.u],
            x=[float(v) for v in trial.x],
            phase=trial.phase,
            batch_index=trial.batch_index,
            iteration=trial.iteration,
            pending=list(trial.pending),
            proposal_id=trial.proposal_id,
            pending_at_proposal=list(trial.pending_at_proposal),
            speculative=bool(trial.speculative),
            lease_expires_s=lease_expires_s,
        )

    def to_trial(self) -> Trial:
        return Trial(
            id=int(self.id),
            u=np.asarray(self.u, dtype=float),
            x=np.asarray(self.x, dtype=float),
            phase=str(self.phase),
            batch_index=int(self.batch_index),
            iteration=self.iteration,
            pending=tuple(int(i) for i in self.pending),
            proposal_id=self.proposal_id,
            pending_at_proposal=tuple(int(i) for i in self.pending_at_proposal),
            speculative=bool(self.speculative),
        )


@dataclass
class WireRecord(WireMessage):
    """One committed evaluation as it crosses the wire.

    Mirror of :class:`~repro.bo.history.EvaluationRecord` (only scalar
    metrics survive, as in run serialization).
    """

    index: int = _REQUIRED
    x: list = _REQUIRED
    objective: float = _REQUIRED
    constraints: list = field(default_factory=list)
    feasible: bool = False
    phase: str = "search"
    iteration: int | None = None
    batch_index: int = 0
    metrics: dict = field(default_factory=dict)

    @classmethod
    def from_record(cls, record: EvaluationRecord):
        ev = record.evaluation
        return cls(
            index=record.index,
            x=[float(v) for v in record.x],
            objective=float(ev.objective),
            constraints=[float(c) for c in ev.constraints],
            feasible=bool(ev.feasible),
            phase=record.phase,
            iteration=record.iteration,
            batch_index=record.batch_index,
            metrics={
                k: v
                for k, v in ev.metrics.items()
                if isinstance(v, (int, float, str, bool))
            },
        )

    def to_record(self) -> EvaluationRecord:
        return EvaluationRecord(
            index=int(self.index),
            x=np.asarray(self.x, dtype=float),
            evaluation=Evaluation(
                objective=float(self.objective),
                constraints=np.asarray(self.constraints, dtype=float),
                metrics=dict(self.metrics),
            ),
            phase=str(self.phase),
            iteration=self.iteration,
            batch_index=int(self.batch_index),
        )


@dataclass
class AskResponse(WireMessage):
    trials: list = field(default_factory=list)  # list[WireTrial dicts]


@dataclass
class TellResponse(WireMessage):
    record: dict = _REQUIRED  # WireRecord dict


@dataclass
class RetractResponse(WireMessage):
    trial: dict = _REQUIRED  # WireTrial dict


@dataclass
class EvaluateResponse(WireMessage):
    record: dict = _REQUIRED  # WireRecord dict


@dataclass
class BestResponse(WireMessage):
    record: dict | None = None  # WireRecord dict or None


@dataclass
class StatusResponse(WireMessage):
    """``GET /v1/studies/{name}`` — :meth:`Study.describe` plus live detail.

    ``study`` is the JSON-safe describe() snapshot; ``pending_trials``
    carries the full wire form of every asked-but-untold trial (so a
    client resuming after its own crash — or the server's — can re-adopt
    its in-flight work), and ``leases`` maps trial id to remaining lease
    seconds.
    """

    study: dict = _REQUIRED
    pending_trials: list = field(default_factory=list)
    leases: dict = field(default_factory=dict)


@dataclass
class CreateResponse(WireMessage):
    study: dict = _REQUIRED  # describe() snapshot


@dataclass
class ListResponse(WireMessage):
    studies: list = field(default_factory=list)


@dataclass
class DeleteResponse(WireMessage):
    deleted: str = _REQUIRED


@dataclass
class CheckpointResponse(WireMessage):
    study: str = _REQUIRED
    n_evaluations: int = 0
    n_pending: int = 0


@dataclass
class HealthResponse(WireMessage):
    status: str = "ok"
    n_studies: int = 0
    n_resident: int = 0


__all__ = [
    "AskRequest",
    "AskResponse",
    "BestResponse",
    "CheckpointResponse",
    "CreateResponse",
    "CreateStudyRequest",
    "DeleteResponse",
    "EvaluateRequest",
    "EvaluateResponse",
    "HealthResponse",
    "ListResponse",
    "PROTOCOL_VERSION",
    "RetractRequest",
    "RetractResponse",
    "StatusResponse",
    "TellRequest",
    "TellResponse",
    "URL_PREFIX",
    "WireMessage",
    "WireRecord",
    "WireTrial",
    "check_protocol_version",
]
