"""Durable multi-study store behind the BO service.

:class:`StudyStore` owns every named :class:`~repro.bo.study.Study` the
service hosts.  Three properties do the heavy lifting:

* **Durability** — every state mutation (``create``/``ask``/``tell``/
  ``retract``/reap) is followed by an atomic checkpoint (tmp file +
  ``os.replace``), so a SIGKILL'd server restarted on the same store
  directory resumes every study bitwise, including studies with trials
  in flight.  Each study persists as two files: ``{name}.study.json``
  (the :meth:`Study.checkpoint` payload) and ``{name}.meta.json`` (the
  problem spec, config payloads and seed needed to rebuild the
  non-JSON-able constructor arguments).
* **Concurrency** — a global table lock guards only the name->entry map;
  each study has its own lock, so requests against different studies
  run fully in parallel while requests against one study serialize
  (commit order == tell order).
* **Bounded residency** — studies load lazily and at most
  ``max_resident`` live in memory; admission past the cap evicts the
  least-recently-used idle study (safe: its checkpoint is already
  durable).  If every resident study is mid-request the store raises
  :class:`~repro.service.errors.ServiceBusy` rather than block.

Leases make abandonment safe: each asked trial carries a deadline (from
an injectable monotonic clock), and :meth:`reap_expired` — driven by the
server's reaper thread — auto-``retract()``s trials whose lease lapsed,
freeing their budget slot so a crashed client cannot wedge a study short
of its full budget.
"""

from __future__ import annotations

import itertools
import json
import os
import re
import threading
import time
from pathlib import Path

from repro.bo.study import Study, StudyError, UnknownTrial
from repro.service.errors import (
    BadRequest,
    ServiceBusy,
    StudyExists,
    UnknownStudy,
)
from repro.service.problems import ExternalProblem, build_problem

#: study names double as file stems, so keep them filesystem-portable
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,119}$")

#: marker identifying a store meta file (see ``{name}.meta.json``)
META_FORMAT = "repro.service.meta/v1"


class _Entry:
    """Book-keeping for one named study (resident or not)."""

    __slots__ = ("name", "lock", "study", "meta", "leases", "last_used", "deleted")

    def __init__(self, name: str):
        self.name = name
        self.lock = threading.Lock()
        self.study: Study | None = None
        self.meta: dict | None = None
        #: trial id -> absolute lease deadline on the store clock
        self.leases: dict[int, float] = {}
        self.last_used = 0
        self.deleted = False


class StudyStore:
    """Owns the studies of a BO service; see the module docstring.

    Parameters
    ----------
    root:
        Directory holding the per-study files (created if missing).
        Existing studies in it are discovered and served immediately.
    max_resident:
        Residency cap — at most this many studies live in memory at
        once; ``None`` means unbounded.
    default_lease_s:
        Lease granted to asked trials when the ``ask`` request names
        none, and re-granted to orphaned pending trials when a study is
        loaded after a crash.  ``None`` disables leases by default:
        pending trials then wait indefinitely for their ``tell`` (or an
        explicit ``retract``).
    clock:
        Monotonic time source for lease deadlines (injectable so tests
        can expire leases without sleeping).
    farm:
        Optional :class:`~repro.farm.farm.EvaluationFarm` enabling the
        ``evaluate`` verb (tell-by-reference): clients of registered
        problems may ask the server to run its own simulator on a
        pending trial instead of shipping numbers back.  The store
        registers one farm tenant per study lazily and never closes the
        farm — ownership stays with the caller.  ``None`` (the default)
        keeps the original contract: the server never evaluates.
    """

    def __init__(
        self,
        root,
        *,
        max_resident: int | None = 16,
        default_lease_s: float | None = None,
        clock=time.monotonic,
        farm=None,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if max_resident is not None and max_resident < 1:
            raise ValueError(
                f"max_resident must be a positive count or None, got "
                f"{max_resident}"
            )
        self.max_resident = max_resident
        self.default_lease_s = default_lease_s
        self._clock = clock
        self.farm = farm
        self._table_lock = threading.Lock()
        self._entries: dict[str, _Entry] = {}
        self._use_counter = itertools.count(1)
        for meta_path in sorted(self.root.glob("*.meta.json")):
            name = meta_path.name[: -len(".meta.json")]
            self._entries[name] = _Entry(name)

    # -- introspection --------------------------------------------------------------

    def study_names(self) -> list[str]:
        with self._table_lock:
            return sorted(self._entries)

    @property
    def n_studies(self) -> int:
        with self._table_lock:
            return len(self._entries)

    @property
    def n_resident(self) -> int:
        with self._table_lock:
            return sum(1 for e in self._entries.values() if e.study is not None)

    # -- lifecycle ------------------------------------------------------------------

    def create(
        self,
        name: str,
        problem_spec,
        *,
        n_initial: int = 30,
        max_evaluations: int = 100,
        initial_design: str = "lhs",
        seed: int | None = None,
        surrogate: dict | None = None,
        acquisition: dict | None = None,
        scheduler: dict | None = None,
    ) -> dict:
        """Register, build and durably checkpoint a new named study.

        Returns the new study's :meth:`Study.describe` snapshot.  The
        study always runs the paper's NNBO algorithm; the optional config
        dicts are keyword overrides for the typed configs
        (:class:`~repro.bo.config.SurrogateConfig` etc.).
        """
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise BadRequest(
                f"invalid study name {name!r}: names are 1-120 chars of "
                "letters, digits, '.', '_' or '-', starting with a letter "
                "or digit (they double as checkpoint file stems)"
            )
        meta = {
            "format": META_FORMAT,
            "name": name,
            "problem_spec": problem_spec,
            "seed": seed,
            "surrogate": None,
            "acquisition": None,
            "scheduler": None,
        }
        # validate the spec and configs *before* reserving the name
        problem = build_problem(problem_spec)
        configs = _build_configs(
            surrogate=surrogate, acquisition=acquisition, scheduler=scheduler
        )
        from repro.bo.config import config_to_dict

        # persist the *resolved* config payloads, not the raw overrides:
        # a later library version with different defaults must still
        # rebuild this study with the configs it was created with
        for key, config in configs.items():
            meta[key] = config_to_dict(config)

        entry = _Entry(name)
        with self._table_lock:
            if name in self._entries:
                raise StudyExists(
                    f"a study named {name!r} already exists; delete it "
                    "first or pick another name"
                )
            self._entries[name] = entry
        try:
            with entry.lock:
                study = Study(
                    problem,
                    n_initial=n_initial,
                    max_evaluations=max_evaluations,
                    initial_design=initial_design,
                    seed=seed,
                    **configs,
                )
                _atomic_write_json(self._meta_path(name), meta)
                entry.meta = meta
                entry.study = study
                self._checkpoint(entry)
                self._touch(entry)
                self._enforce_residency(keep=entry)
                return study.describe()
        except BaseException:
            with self._table_lock:
                self._entries.pop(name, None)
            self._meta_path(name).unlink(missing_ok=True)
            self._study_path(name).unlink(missing_ok=True)
            raise

    def delete(self, name: str) -> str:
        """Remove a study and its files; returns the deleted name."""
        with self._table_lock:
            entry = self._entries.pop(name, None)
        if entry is None:
            raise UnknownStudy(f"no study named {name!r}")
        with entry.lock:
            entry.deleted = True
            entry.study = None
            entry.leases.clear()
            if self.farm is not None:
                from repro.farm.errors import UnknownTenant

                try:
                    self.farm.unregister(name)
                except UnknownTenant:
                    pass  # the study never used the evaluate verb
            self._meta_path(name).unlink(missing_ok=True)
            self._study_path(name).unlink(missing_ok=True)
        return name

    # -- the ask/tell surface ---------------------------------------------------------

    def ask(self, name: str, n: int = 1, lease_s: float | None = None):
        """Propose ``n`` trials; returns ``[(trial, lease_remaining_s)]``.

        Each trial is leased for ``lease_s`` seconds (the store default
        when ``None``); an expired lease auto-retracts the trial on the
        next :meth:`reap_expired` sweep.
        """
        lease = self.default_lease_s if lease_s is None else float(lease_s)
        with self._entry(name) as entry:
            trials = entry.study.ask(n)
            if lease is not None:
                now = self._clock()
                for trial in trials:
                    entry.leases[trial.id] = now + lease
            self._checkpoint(entry)
            # remaining seconds, not absolute deadlines: the store clock
            # is monotonic and means nothing outside this process
            return [(trial, lease) for trial in trials]

    def tell(self, name: str, trial_id: int, evaluation):
        """Commit one evaluated trial; returns the new record."""
        with self._entry(name) as entry:
            record = entry.study.tell(trial_id, evaluation)
            entry.leases.pop(trial_id, None)
            self._checkpoint(entry)
            return record

    def retract(self, name: str, trial_id: int):
        """Abandon a pending trial; returns the retracted trial."""
        with self._entry(name) as entry:
            trial = entry.study.retract(trial_id)
            entry.leases.pop(trial_id, None)
            self._checkpoint(entry)
            return trial

    def evaluate(self, name: str, trial_id: int):
        """Run one pending trial on the server's farm and commit it.

        Tell-by-reference: only meaningful for registry problems, whose
        simulator the server owns.  The study stays locked for the
        duration (commit order == completion order still holds — there
        is exactly one evaluation in flight per study), a saturated farm
        surfaces as :class:`~repro.service.errors.ServiceBusy`, and an
        :class:`ExternalProblem` is refused outright.  Returns the
        committed record.
        """
        from repro.farm.errors import FarmSaturated

        if self.farm is None:
            raise BadRequest(
                "server-side evaluation is disabled: this store was "
                "built without an evaluation farm (pass farm= to the "
                "store/server, or --farm-workers to python -m "
                "repro.service)"
            )
        with self._entry(name) as entry:
            study = entry.study
            trial_id = int(trial_id)
            trial = next(
                (t for t in study.pending_trials() if t.id == trial_id), None
            )
            if trial is None:
                raise UnknownTrial(
                    f"study {name!r} has no pending trial {trial_id}; "
                    "only asked-but-untold trials can be evaluated"
                )
            problem = study.problem
            if isinstance(problem, ExternalProblem):
                raise BadRequest(
                    f"study {name!r} declares the externally-evaluated "
                    f"problem {problem.name!r}: the client owns the "
                    "simulator and must tell() results itself"
                )
            tenant = self._farm_tenant(name, problem)
            try:
                task = self.farm.submit(tenant, trial.u)
            except FarmSaturated as exc:
                raise ServiceBusy(
                    f"evaluation farm is saturated for study {name!r}: "
                    f"{exc}; retry after in-flight evaluations drain"
                ) from exc
            evaluation = self.farm.collect(task)
            record = study.tell(trial, evaluation)
            entry.leases.pop(trial_id, None)
            self._checkpoint(entry)
            return record

    def best(self, name: str):
        """Best feasible record so far (or ``None``)."""
        with self._entry(name) as entry:
            return entry.study.best()

    def status(self, name: str):
        """``(describe_dict, pending_trials, lease_remaining)`` snapshot."""
        with self._entry(name) as entry:
            now = self._clock()
            leases = {
                tid: max(0.0, deadline - now)
                for tid, deadline in entry.leases.items()
            }
            return entry.study.describe(), entry.study.pending_trials(), leases

    def checkpoint(self, name: str):
        """Force a durable checkpoint; returns ``(n_evaluations, n_pending)``.

        Every mutation already checkpoints, so this is a consistency
        affordance (and the way to materialize files after out-of-band
        study surgery in tests).
        """
        with self._entry(name) as entry:
            self._checkpoint(entry)
            study = entry.study
            return study.n_evaluations, len(study.pending_trials())

    # -- leases -----------------------------------------------------------------------

    def reap_expired(self) -> list[tuple[str, int]]:
        """Auto-retract every trial whose lease has expired.

        Returns ``(study_name, trial_id)`` pairs reaped this sweep.
        Studies currently serving a request are skipped (their leases are
        re-examined on the next sweep), so the reaper never blocks the
        request path.
        """
        now = self._clock()
        with self._table_lock:
            candidates = [
                e
                for e in self._entries.values()
                if any(deadline <= now for deadline in e.leases.values())
            ]
        reaped: list[tuple[str, int]] = []
        for entry in candidates:
            if not entry.lock.acquire(blocking=False):
                continue
            try:
                if entry.deleted:
                    continue
                expired = [
                    tid
                    for tid, deadline in entry.leases.items()
                    if deadline <= self._clock()
                ]
                if not expired:
                    continue
                self._ensure_resident(entry)
                for tid in expired:
                    entry.leases.pop(tid, None)
                    try:
                        entry.study.retract(tid)
                    except StudyError:
                        # told/retracted through another path; lease was
                        # stale — nothing to free
                        continue
                    reaped.append((entry.name, tid))
                self._checkpoint(entry)
                self._touch(entry)
            finally:
                entry.lock.release()
        return reaped

    # -- internals --------------------------------------------------------------------

    def _farm_tenant(self, name: str, problem):
        """The study's farm tenant, registered lazily on first evaluate."""
        from repro.farm.errors import UnknownTenant

        try:
            return self.farm.tenant(name)
        except UnknownTenant:
            return self.farm.register(name, problem=problem)

    def _entry(self, name: str):
        """Context manager: the named entry, locked and resident."""
        with self._table_lock:
            entry = self._entries.get(name)
        if entry is None:
            raise UnknownStudy(f"no study named {name!r}")
        return _LockedEntry(self, entry)

    def _ensure_resident(self, entry: _Entry) -> None:
        """Load the entry's study from disk if needed (entry lock held)."""
        if entry.study is not None:
            self._touch(entry)
            return
        meta = entry.meta
        if meta is None:
            meta_path = self._meta_path(entry.name)
            try:
                meta = json.loads(meta_path.read_text())
            except FileNotFoundError:
                raise UnknownStudy(
                    f"study {entry.name!r} has no meta file at {meta_path}"
                ) from None
            if meta.get("format") != META_FORMAT:
                raise UnknownStudy(
                    f"{meta_path} is not a store meta file: field 'format' "
                    f"is {meta.get('format')!r}, expected {META_FORMAT!r}"
                )
            entry.meta = meta
        problem = build_problem(meta["problem_spec"])
        configs = _build_configs(
            surrogate=meta["surrogate"],
            acquisition=meta["acquisition"],
            scheduler=meta["scheduler"],
        )
        study = Study.resume(
            self._study_path(entry.name),
            problem,
            seed=meta.get("seed"),
            **configs,
        )
        entry.study = study
        if self.default_lease_s is not None:
            # orphaned pending trials (the asking client may have died
            # with the server) get a fresh default lease so the reaper
            # eventually frees their budget slots
            now = self._clock()
            for trial in study.pending_trials():
                entry.leases.setdefault(trial.id, now + self.default_lease_s)
        self._touch(entry)
        self._enforce_residency(keep=entry)

    def _enforce_residency(self, keep: _Entry) -> None:
        """Evict LRU idle studies until the residency cap holds."""
        if self.max_resident is None:
            return
        with self._table_lock:
            resident = [
                e for e in self._entries.values() if e.study is not None
            ]
            excess = len(resident) - self.max_resident
            if excess <= 0:
                return
            for candidate in sorted(resident, key=lambda e: e.last_used):
                if candidate is keep:
                    continue
                # non-blocking: a study serving a request is not evictable
                if not candidate.lock.acquire(blocking=False):
                    continue
                try:
                    # every mutation checkpointed, so dropping the live
                    # object loses nothing; leases stay on the entry
                    candidate.study = None
                finally:
                    candidate.lock.release()
                excess -= 1
                if excess <= 0:
                    return
        raise ServiceBusy(
            f"all {self.max_resident} resident-study slots are serving "
            "requests; retry shortly"
        )

    def _checkpoint(self, entry: _Entry) -> None:
        if entry.deleted:
            raise UnknownStudy(f"study {entry.name!r} was deleted")
        path = self._study_path(entry.name)
        tmp = path.with_name(path.name + ".tmp")
        entry.study.checkpoint(tmp)
        os.replace(tmp, path)

    def _touch(self, entry: _Entry) -> None:
        entry.last_used = next(self._use_counter)

    def _meta_path(self, name: str) -> Path:
        return self.root / f"{name}.meta.json"

    def _study_path(self, name: str) -> Path:
        return self.root / f"{name}.study.json"


class _LockedEntry:
    """``with store._entry(name) as entry:`` — locked, resident, alive."""

    def __init__(self, store: StudyStore, entry: _Entry):
        self._store = store
        self._entry = entry

    def __enter__(self) -> _Entry:
        self._entry.lock.acquire()
        try:
            if self._entry.deleted:
                raise UnknownStudy(f"no study named {self._entry.name!r}")
            self._store._ensure_resident(self._entry)
        except BaseException:
            self._entry.lock.release()
            raise
        return self._entry

    def __exit__(self, *exc_info):
        self._entry.lock.release()
        return False


def _build_configs(*, surrogate, acquisition, scheduler) -> dict:
    """Typed configs from wire/meta dicts (``None`` -> defaults)."""
    from repro.bo.config import AcquisitionConfig, SchedulerConfig, SurrogateConfig

    out = {}
    for key, cls, payload in (
        ("surrogate", SurrogateConfig, surrogate),
        ("acquisition", AcquisitionConfig, acquisition),
        ("scheduler", SchedulerConfig, scheduler),
    ):
        if payload is not None and not isinstance(payload, dict):
            raise BadRequest(
                f"{key} config must be an object of keyword overrides, "
                f"got {type(payload).__name__}"
            )
        try:
            out[key] = cls(**(payload or {}))
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"invalid {key} config: {exc}") from exc
    return out


def _atomic_write_json(path: Path, payload: dict) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=1))
    os.replace(tmp, path)


__all__ = ["META_FORMAT", "StudyStore"]
