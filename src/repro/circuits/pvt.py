"""Process / voltage / temperature corner modelling.

The charge-pump experiment (paper Sec. IV-B) evaluates every design at 18
PVT corners.  We model corners as multiplicative/additive perturbations of
the nominal MOSFET parameters:

* **process**: threshold-voltage shifts and mobility (kp) scaling, with
  independent NMOS/PMOS directions so the skewed corners (FS, SF) exist;
* **voltage**: the testbench scales its supply by ``vdd_scale``;
* **temperature**: threshold drift of −2 mV/K and mobility ~ T^-1.5,
  applied by :meth:`repro.circuits.mosfet.MOSFETParams.at_temperature`.

``standard_corners()`` returns the 3 process x 2 supply x 3 temperature = 18
grid used by the charge-pump testbench, matching the paper's corner count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.units import celsius_to_kelvin


@dataclass(frozen=True)
class ProcessCorner:
    """One process corner: per-polarity Vth shift (V) and kp scale factor."""

    name: str
    nmos_vth_shift: float
    nmos_kp_scale: float
    pmos_vth_shift: float
    pmos_kp_scale: float


# Spread magnitudes loosely patterned on a generic 180 nm PDK: +-40 mV Vth,
# +-10 % mobility between typical and fast/slow.
_VTH = 0.04
_KP = 0.10

TT = ProcessCorner("TT", 0.0, 1.0, 0.0, 1.0)
FF = ProcessCorner("FF", -_VTH, 1.0 + _KP, -_VTH, 1.0 + _KP)
SS = ProcessCorner("SS", +_VTH, 1.0 - _KP, +_VTH, 1.0 - _KP)
FS = ProcessCorner("FS", -_VTH, 1.0 + _KP, +_VTH, 1.0 - _KP)
SF = ProcessCorner("SF", +_VTH, 1.0 - _KP, -_VTH, 1.0 + _KP)

PROCESS_CORNERS = {c.name: c for c in (TT, FF, SS, FS, SF)}


@dataclass(frozen=True)
class PVTCorner:
    """A full PVT condition: process corner, supply scale, temperature."""

    process: ProcessCorner
    vdd_scale: float
    temp_c: float

    @property
    def temp_k(self) -> float:
        """Junction temperature in Kelvin."""
        return celsius_to_kelvin(self.temp_c)

    @property
    def name(self) -> str:
        """Readable corner label, e.g. ``SS/0.90V/125C``."""
        return f"{self.process.name}/{self.vdd_scale:.2f}V/{self.temp_c:g}C"

    def __repr__(self) -> str:
        return f"PVTCorner({self.name})"


NOMINAL = PVTCorner(TT, 1.0, 27.0)


def standard_corners(
    processes=("TT", "FF", "SS"),
    vdd_scales=(0.9, 1.1),
    temps_c=(-40.0, 27.0, 125.0),
) -> list[PVTCorner]:
    """The full corner grid; defaults give the paper's 18 PVT corners."""
    corners = []
    for p in processes:
        process = PROCESS_CORNERS[p] if isinstance(p, str) else p
        for v in vdd_scales:
            for t in temps_c:
                corners.append(PVTCorner(process, float(v), float(t)))
    if not corners:
        raise ValueError("corner grid is empty")
    return corners
