"""Reusable analog building blocks as netlist fragments.

Each helper adds a standard sub-block (current mirror, differential pair,
cascode pair, bias diode stack) to a circuit with systematic device
naming, and returns the devices it created.  Testbenches and examples
compose these instead of repeating raw stamps; the fragments stay plain
devices, so all analyses work unchanged.
"""

from __future__ import annotations

from repro.circuits.mosfet import MOSFET, MOSFETParams
from repro.circuits.netlist import Circuit


def rail_for(params: MOSFETParams, vdd_node: str) -> str:
    """Bulk/source rail of a polarity: VDD for PMOS, ground for NMOS."""
    return vdd_node if params.polarity == "p" else "0"


def add_current_mirror(
    circuit: Circuit,
    name: str,
    params: MOSFETParams,
    ref_node: str,
    out_node: str,
    w_ref: float,
    l_ref: float,
    w_out: float,
    l_out: float,
    vdd_node: str = "vdd",
) -> tuple[MOSFET, MOSFET]:
    """Two-transistor mirror: diode at ``ref_node``, output at ``out_node``.

    The mirror ratio is ``(w_out/l_out) / (w_ref/l_ref)``; sources/bulks go
    to the polarity's rail.
    """
    rail = rail_for(params, vdd_node)
    diode = circuit.mosfet(
        f"{name}_ref", ref_node, ref_node, rail, rail, params, w_ref, l_ref
    )
    out = circuit.mosfet(
        f"{name}_out", out_node, ref_node, rail, rail, params, w_out, l_out
    )
    return diode, out


def add_differential_pair(
    circuit: Circuit,
    name: str,
    params: MOSFETParams,
    in_pos: str,
    in_neg: str,
    out_pos: str,
    out_neg: str,
    tail_node: str,
    w: float,
    l: float,
    vdd_node: str = "vdd",
) -> tuple[MOSFET, MOSFET]:
    """Matched source-coupled pair with sources at ``tail_node``.

    ``in_pos`` drives the device whose drain is ``out_pos`` (so a PMOS pair
    inverts within the branch as usual).
    """
    bulk = rail_for(params, vdd_node)
    m_pos = circuit.mosfet(
        f"{name}_p", out_pos, in_pos, tail_node, bulk, params, w, l
    )
    m_neg = circuit.mosfet(
        f"{name}_n", out_neg, in_neg, tail_node, bulk, params, w, l
    )
    return m_pos, m_neg


def add_cascode_pair(
    circuit: Circuit,
    name: str,
    params: MOSFETParams,
    bottom_nodes: tuple[str, str],
    top_nodes: tuple[str, str],
    gate_node: str,
    w: float,
    l: float,
    vdd_node: str = "vdd",
) -> tuple[MOSFET, MOSFET]:
    """Two matched common-gate devices between paired node rails.

    For NMOS: drains at ``top_nodes``, sources at ``bottom_nodes``.  For
    PMOS the same argument order applies with the usual source-up
    orientation (pass the higher-potential nodes as ``top_nodes``).
    """
    bulk = rail_for(params, vdd_node)
    if params.polarity == "n":
        left = circuit.mosfet(
            f"{name}_l", top_nodes[0], gate_node, bottom_nodes[0], bulk, params, w, l
        )
        right = circuit.mosfet(
            f"{name}_r", top_nodes[1], gate_node, bottom_nodes[1], bulk, params, w, l
        )
    else:
        left = circuit.mosfet(
            f"{name}_l", bottom_nodes[0], gate_node, top_nodes[0], bulk, params, w, l
        )
        right = circuit.mosfet(
            f"{name}_r", bottom_nodes[1], gate_node, top_nodes[1], bulk, params, w, l
        )
    return left, right


def add_bias_diode_stack(
    circuit: Circuit,
    name: str,
    params: MOSFETParams,
    bias_current: float,
    n_stack: int,
    w: float,
    l: float,
    vdd_node: str = "vdd",
) -> list[MOSFET]:
    """Stack of diode-connected devices carrying ``bias_current``.

    Generates gate-bias voltages the way simple bias cells do: the stack's
    intermediate nodes sit at 1, 2, ... stacked ``V_GS`` from the rail.
    The topmost diode node (``{name}_d{n_stack}``) is fed by an ideal
    current source; tap any ``{name}_d<k>`` node as a bias voltage.
    Returns the devices bottom-up.
    """
    if n_stack < 1:
        raise ValueError(f"n_stack must be >= 1, got {n_stack}")
    if bias_current <= 0:
        raise ValueError("bias_current must be positive")
    rail = rail_for(params, vdd_node)
    devices = []
    below = rail
    for k in range(1, n_stack + 1):
        node = f"{name}_d{k}"
        devices.append(
            circuit.mosfet(f"{name}_m{k}", node, node, below, rail, params, w, l)
        )
        below = node
    top = f"{name}_d{n_stack}"
    if params.polarity == "n":
        circuit.isource(f"{name}_ib", vdd_node, top, bias_current)
    else:
        circuit.isource(f"{name}_ib", top, "0", bias_current)
    return devices
