"""Linear netlist elements and independent sources.

Every device implements the same protocol as the MOSFET: node assignment,
``stamp_dc(system, v)`` and ``stamp_ac(system, omega)``.  DC stamps of
independent sources honour ``system.source_scale`` so the Newton solver can
apply source-stepping homotopy without device-specific code.
"""

from __future__ import annotations


class Device:
    """Netlist element protocol.

    Attributes
    ----------
    name:
        Unique instance name within a circuit.
    nodes:
        Tuple of node names this device connects to.
    n_branches:
        Number of extra MNA unknowns (branch currents) it requires.
    """

    n_branches = 0

    def __init__(self, name: str, nodes: tuple[str, ...]):
        self.name = str(name)
        self.nodes = tuple(str(n) for n in nodes)
        self.node_idx: tuple[int, ...] = ()
        self.branch_idx: int = -1

    def assign_nodes(self, index_of):
        """Resolve node names to MNA indices."""
        self.node_idx = tuple(index_of(n) for n in self.nodes)

    def assign_branch(self, index: int):
        """Assign the first branch-current index (if ``n_branches > 0``)."""
        self.branch_idx = int(index)

    def stamp_dc(self, system, v):
        """Stamp the DC (companion) model; default is a no-op (open circuit)."""

    def stamp_ac(self, system, omega: float):
        """Stamp the small-signal model; default is a no-op."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name}, nodes={self.nodes})"


class Resistor(Device):
    """Linear resistor."""

    def __init__(self, name, node_a, node_b, resistance: float):
        super().__init__(name, (node_a, node_b))
        if resistance <= 0:
            raise ValueError(f"{name}: resistance must be positive, got {resistance}")
        self.resistance = float(resistance)

    def stamp_dc(self, system, v):
        a, b = self.node_idx
        system.add_conductance(a, b, 1.0 / self.resistance)

    def stamp_ac(self, system, omega):
        a, b = self.node_idx
        system.add_conductance(a, b, 1.0 / self.resistance)


class Capacitor(Device):
    """Linear capacitor: open at DC, admittance ``j omega C`` in AC."""

    def __init__(self, name, node_a, node_b, capacitance: float):
        super().__init__(name, (node_a, node_b))
        if capacitance < 0:
            raise ValueError(f"{name}: capacitance must be >= 0, got {capacitance}")
        self.capacitance = float(capacitance)

    def stamp_ac(self, system, omega):
        a, b = self.node_idx
        system.add_capacitor(a, b, self.capacitance, omega)


class CurrentSource(Device):
    """Independent current source driving ``dc`` amps from node_from to node_to.

    The ``ac`` magnitude participates only in AC sweeps.  Setting
    ``waveform`` to a callable ``t -> value`` makes the source follow it
    during transient analyses (see :mod:`repro.circuits.transient`).
    """

    def __init__(self, name, node_from, node_to, dc: float, ac: float = 0.0,
                 waveform=None):
        super().__init__(name, (node_from, node_to))
        self.dc = float(dc)
        self.ac = float(ac)
        self.waveform = waveform

    def value_at(self, t: float) -> float:
        """Instantaneous source value at time ``t``."""
        return self.dc if self.waveform is None else float(self.waveform(t))

    def stamp_dc(self, system, v):
        a, b = self.node_idx
        t = getattr(system, "time", None)
        value = self.dc if t is None else self.value_at(t)
        system.add_current_injection(a, b, value * system.source_scale)

    def stamp_ac(self, system, omega):
        if self.ac != 0.0:
            a, b = self.node_idx
            system.add_current_injection(a, b, self.ac)


class VoltageSource(Device):
    """Independent voltage source with one branch-current unknown.

    The branch current is positive when current flows from the circuit
    *into the positive terminal* (SPICE measurement convention).  Setting
    ``waveform`` to a callable ``t -> value`` makes the source follow it
    during transient analyses.
    """

    n_branches = 1

    def __init__(self, name, node_pos, node_neg, dc: float, ac: float = 0.0,
                 waveform=None):
        super().__init__(name, (node_pos, node_neg))
        self.dc = float(dc)
        self.ac = float(ac)
        self.waveform = waveform

    def value_at(self, t: float) -> float:
        """Instantaneous source value at time ``t``."""
        return self.dc if self.waveform is None else float(self.waveform(t))

    def stamp_dc(self, system, v):
        pos, neg = self.node_idx
        t = getattr(system, "time", None)
        value = self.dc if t is None else self.value_at(t)
        system.add_voltage_branch(pos, neg, self.branch_idx, value * system.source_scale)

    def stamp_ac(self, system, omega):
        pos, neg = self.node_idx
        system.add_voltage_branch(pos, neg, self.branch_idx, self.ac)


class VCVS(Device):
    """Voltage-controlled voltage source ``v_out = gain * v_in`` (ideal)."""

    n_branches = 1

    def __init__(self, name, out_pos, out_neg, in_pos, in_neg, gain: float):
        super().__init__(name, (out_pos, out_neg, in_pos, in_neg))
        self.gain = float(gain)

    def _stamp(self, system):
        op, on, ip, in_ = self.node_idx
        br = self.branch_idx
        system.add_matrix(op, br, 1.0)
        system.add_matrix(on, br, -1.0)
        system.add_matrix(br, op, 1.0)
        system.add_matrix(br, on, -1.0)
        system.add_matrix(br, ip, -self.gain)
        system.add_matrix(br, in_, self.gain)

    def stamp_dc(self, system, v):
        self._stamp(system)

    def stamp_ac(self, system, omega):
        self._stamp(system)


class VCCS(Device):
    """Voltage-controlled current source ``i = gm * v_in`` out of out_pos."""

    def __init__(self, name, out_pos, out_neg, in_pos, in_neg, gm: float):
        super().__init__(name, (out_pos, out_neg, in_pos, in_neg))
        self.gm = float(gm)

    def stamp_dc(self, system, v):
        op, on, ip, in_ = self.node_idx
        system.add_vccs(op, on, ip, in_, self.gm)

    def stamp_ac(self, system, omega):
        op, on, ip, in_ = self.node_idx
        system.add_vccs(op, on, ip, in_, self.gm)
