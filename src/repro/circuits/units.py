"""Engineering-unit helpers used by testbenches and reports."""

from __future__ import annotations

import numpy as np

# SI prefixes as multipliers
TERA = 1e12
GIGA = 1e9
MEGA = 1e6
KILO = 1e3
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15

_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
]


def db20(magnitude) -> np.ndarray | float:
    """Convert a voltage-ratio magnitude to decibels (20 log10)."""
    magnitude = np.asarray(magnitude, dtype=float)
    out = 20.0 * np.log10(np.maximum(magnitude, 1e-300))
    return float(out) if out.ndim == 0 else out


def from_db20(db) -> np.ndarray | float:
    """Convert decibels back to a voltage-ratio magnitude."""
    db = np.asarray(db, dtype=float)
    out = 10.0 ** (db / 20.0)
    return float(out) if out.ndim == 0 else out


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert Celsius to Kelvin."""
    return float(temp_c) + 273.15


def format_si(value: float, unit: str = "") -> str:
    """Format a value with an engineering SI prefix (e.g. ``4.7e-12 -> 4.7pF``)."""
    value = float(value)
    if value == 0.0 or not np.isfinite(value):
        return f"{value:g}{unit}"
    magnitude = abs(value)
    for factor, prefix in _PREFIXES:
        if magnitude >= factor:
            return f"{value / factor:.4g}{prefix}{unit}"
    factor, prefix = _PREFIXES[-1]
    return f"{value / factor:.4g}{prefix}{unit}"
