"""Folded-cascode OTA testbench — an extra workload beyond the paper.

Classic single-stage folded cascode: PMOS input pair folded into NMOS
cascode branches with a cascoded PMOS mirror load, diode-stack bias
generation, load-capacitor compensation.  11 design variables.

Included because downstream users of a sizing library want more than the
paper's two circuits; it also exercises the block library
(:mod:`repro.circuits.blocks`).  Specification mirrors the Table I style:

    maximize GAIN   s.t.   UGF > ugf_spec,  PM > pm_spec.
"""

from __future__ import annotations

import numpy as np

from repro.bo.problem import Evaluation
from repro.circuits.ac import log_freqs
from repro.circuits.blocks import (
    add_bias_diode_stack,
    add_cascode_pair,
    add_differential_pair,
)
from repro.circuits.measure import dc_gain_db, phase_margin_deg, unity_gain_frequency
from repro.circuits.mosfet import MOSFETParams, nmos_180, pmos_180
from repro.circuits.netlist import Circuit
from repro.circuits.pvt import NOMINAL, PVTCorner
from repro.circuits.testbenches.base import DesignVariable, SizingProblem
from repro.circuits.units import MEGA, MICRO, PICO
from repro.sim.base import ACSweep, OperatingPoint

_UM = 1e-6


class FoldedCascodeOTAProblem(SizingProblem):
    """Sizing problem for a folded-cascode OTA (11 design variables).

    Variables: input-pair W/L, NMOS bottom W/L, NMOS cascode W/L, PMOS
    mirror/cascode W/L, tail W/L, and the bias current.  The load
    capacitor (which sets the dominant pole) is a testbench constant.
    """

    _VARIABLES = [
        DesignVariable("w_in", 2.0 * _UM, 200.0 * _UM, "m"),
        DesignVariable("l_in", 0.18 * _UM, 2.0 * _UM, "m"),
        DesignVariable("w_nb", 2.0 * _UM, 200.0 * _UM, "m"),
        DesignVariable("l_nb", 0.18 * _UM, 2.0 * _UM, "m"),
        DesignVariable("w_nc", 2.0 * _UM, 200.0 * _UM, "m"),
        DesignVariable("l_nc", 0.18 * _UM, 2.0 * _UM, "m"),
        DesignVariable("w_p", 2.0 * _UM, 200.0 * _UM, "m"),
        DesignVariable("l_p", 0.18 * _UM, 2.0 * _UM, "m"),
        DesignVariable("w_tail", 4.0 * _UM, 400.0 * _UM, "m"),
        DesignVariable("l_tail", 0.18 * _UM, 2.0 * _UM, "m"),
        DesignVariable("ibias", 5.0 * MICRO, 80.0 * MICRO, "A"),
    ]

    def __init__(
        self,
        vdd: float = 1.8,
        cl: float = 2.0 * PICO,
        ugf_spec: float = 60.0 * MEGA,
        pm_spec: float = 60.0,
        corner: PVTCorner = NOMINAL,
        nmos: MOSFETParams = nmos_180,
        pmos: MOSFETParams = pmos_180,
        sweep: tuple[float, float, int] = (10.0, 3e9, 10),
        sim_backend="mna",
    ):
        super().__init__(
            "folded_cascode_ota", list(self._VARIABLES), n_constraints=2,
            sim_backend=sim_backend,
        )
        self.vdd = float(vdd) * corner.vdd_scale
        self.cl = float(cl)
        self.ugf_spec = float(ugf_spec)
        self.pm_spec = float(pm_spec)
        self.corner = corner
        self.nmos = nmos.at_corner(corner.process, corner.temp_k)
        self.pmos = pmos.at_corner(corner.process, corner.temp_k)
        self.freqs = log_freqs(*sweep[:2], points_per_decade=sweep[2])
        self.vcm = 0.5 * self.vdd

    # -- circuit ---------------------------------------------------------------

    def build_circuit(self, x: np.ndarray) -> Circuit:
        """Assemble the folded-cascode netlist from the block library."""
        p = self.as_dict(x)
        ckt = Circuit("folded_cascode_ota")
        vdd = self.vdd

        ckt.vsource("VDD", "vdd", "0", vdd)
        ckt.vsource("VINP", "vinp", "0", self.vcm, ac=1.0)
        ckt.resistor("RFB", "out", "vinn", 1e9)
        ckt.capacitor("CFB", "vinn", "0", 1.0)

        # bias: NMOS two-diode stack for bottom/cascode gates, PMOS stack
        # for the cascode-load gate and tail mirror
        add_bias_diode_stack(ckt, "bn", self.nmos, p["ibias"], 2,
                             w=0.5 * p["w_nb"], l=p["l_nb"])
        add_bias_diode_stack(ckt, "bp", self.pmos, p["ibias"], 2,
                             w=0.5 * p["w_p"], l=p["l_p"])
        # tail current source mirrors the PMOS bias diode bn... (bp_d1)
        ckt.mosfet("MTAIL", "ntail", "bp_d1", "vdd", "vdd", self.pmos,
                   p["w_tail"], p["l_tail"])

        # input pair folds into the NMOS branches at f1/f2
        add_differential_pair(ckt, "min", self.pmos, "vinp", "vinn",
                              "f1", "f2", "ntail", p["w_in"], p["l_in"])
        # NMOS bottom devices (gates at the first diode tap)
        ckt.mosfet("MNB1", "f1", "bn_d1", "0", "0", self.nmos,
                   p["w_nb"], p["l_nb"])
        ckt.mosfet("MNB2", "f2", "bn_d1", "0", "0", self.nmos,
                   p["w_nb"], p["l_nb"])
        # NMOS cascodes up to c1 (diode side) and out
        add_cascode_pair(ckt, "mnc", self.nmos, ("f1", "f2"),
                         ("c1", "out"), "bn_d2", p["w_nc"], p["l_nc"])
        # PMOS cascoded mirror load: mirror gate at c1 (diode side)
        ckt.mosfet("MPM1", "t1", "c1", "vdd", "vdd", self.pmos,
                   p["w_p"], p["l_p"])
        ckt.mosfet("MPM2", "t2", "c1", "vdd", "vdd", self.pmos,
                   p["w_p"], p["l_p"])
        add_cascode_pair(ckt, "mpc", self.pmos, ("c1", "out"),
                         ("t1", "t2"), "bp_d2", p["w_p"], p["l_p"])
        ckt.capacitor("CL", "out", "0", self.cl)
        return ckt

    def _initial_guess(self) -> dict[str, float]:
        vdd, vcm = self.vdd, self.vcm
        return {
            "vdd": vdd, "vinp": vcm, "vinn": vcm, "out": vcm,
            "ntail": vcm + 0.45, "f1": 0.25, "f2": 0.25,
            "c1": vdd - 0.55, "t1": vdd - 0.25, "t2": vdd - 0.25,
            "bn_d1": 0.6, "bn_d2": 1.1, "bp_d1": vdd - 0.6,
            "bp_d2": vdd - 1.1,
        }

    # -- simulation --------------------------------------------------------------

    def analysis_plan(self) -> list:
        """The testbench's analyses: bias point, then the AC sweep at it."""
        return [OperatingPoint(initial=self._initial_guess()), ACSweep(self.freqs)]

    def simulate(self, x: np.ndarray) -> dict:
        """DC + AC analysis; returns gain/UGF/PM and supply current."""
        ckt = self.build_circuit(x)
        raw = self.sim_backend.run(ckt, self.analysis_plan())
        dc, ac = raw.op(), raw.ac()
        tf = ac.transfer("out")
        freqs = ac.freqs
        return {
            "gain_db": float(dc_gain_db(tf)),
            "ugf_hz": float(unity_gain_frequency(freqs, tf)),
            "pm_deg": float(phase_margin_deg(freqs, tf)),
            "idd_a": float(-dc.branch_current("VDD")),
            "vout_dc": dc.voltage("out"),
        }

    def _to_evaluation(self, metrics: dict) -> Evaluation:
        objective = -max(metrics["gain_db"], 0.0)
        g_ugf = (self.ugf_spec - metrics["ugf_hz"]) / self.ugf_spec
        g_pm = (self.pm_spec - metrics["pm_deg"]) / self.pm_spec
        return Evaluation(objective, np.array([g_ugf, g_pm]), metrics=metrics)

    def _failure_evaluation(self) -> Evaluation:
        return Evaluation(0.0, np.array([1.0, 1.0]), metrics={})
