"""Two-stage operational amplifier testbench (paper Fig. 3 / Table I).

Topology — the classic Miller-compensated two-stage OTA of the paper's
figure: PMOS input differential pair (M1/M2) under a PMOS tail source
(M7), NMOS current-mirror load (M3/M4), NMOS common-source second stage
(M5) with PMOS current-source load (M6), RC compensation (R1 + Cc) across
the second stage, bias chain (diode M8 fed by the Ibias source), and load
capacitor CL.

Ten design variables, as in the paper: W/L of the input pair, W/L of the
mirror load, W/L of the second-stage device, W/L shared by the
bias/tail/load PMOS devices (M6/M7 mirror from M8), plus Cc and Ibias.

Specification (eq. 14):

    maximize GAIN   s.t.   UGF > 40 MHz,  PM > 60 deg.

Measurement: the amplifier is DC-biased by a unity-feedback servo (a huge
RC from output to the inverting input — the textbook SPICE open-loop
testbench); the AC sweep then sees an open loop above ~1 Hz, from which
GAIN/UGF/PM are extracted.
"""

from __future__ import annotations

import numpy as np

from repro.bo.problem import Evaluation
from repro.circuits.ac import log_freqs
from repro.circuits.mosfet import MOSFETParams, nmos_180, pmos_180
from repro.circuits.netlist import Circuit
from repro.circuits.measure import dc_gain_db, phase_margin_deg, unity_gain_frequency
from repro.circuits.pvt import NOMINAL, PVTCorner
from repro.circuits.testbenches.base import DesignVariable, SizingProblem
from repro.circuits.units import MEGA, MICRO, PICO
from repro.sim.base import ACSweep, OperatingPoint

_UM = 1e-6


class TwoStageOpAmpProblem(SizingProblem):
    """Sizing problem for the Fig. 3 two-stage op-amp.

    Parameters
    ----------
    vdd:
        Supply voltage [V].
    cl:
        Load capacitance [F].
    ugf_spec, pm_spec:
        Constraint thresholds (paper: 40 MHz, 60 degrees).
    corner:
        PVT condition (Table I uses the nominal corner).
    sweep:
        ``(f_start, f_stop, points_per_decade)`` of the AC analysis.
    sim_backend:
        Simulation engine, see :class:`~repro.circuits.testbenches.base.
        SizingProblem` (default: the built-in MNA engine).
    """

    #: W/L bounds span the common 180 nm analog sizing space; Cc and Ibias
    #: ranges bracket the values hand analysis suggests for the specs.
    _VARIABLES = [
        DesignVariable("w12", 1.0 * _UM, 100.0 * _UM, "m"),
        DesignVariable("l12", 0.18 * _UM, 2.0 * _UM, "m"),
        DesignVariable("w34", 1.0 * _UM, 100.0 * _UM, "m"),
        DesignVariable("l34", 0.18 * _UM, 2.0 * _UM, "m"),
        DesignVariable("w5", 1.0 * _UM, 200.0 * _UM, "m"),
        DesignVariable("l5", 0.18 * _UM, 2.0 * _UM, "m"),
        DesignVariable("w67", 2.0 * _UM, 200.0 * _UM, "m"),
        DesignVariable("l67", 0.18 * _UM, 2.0 * _UM, "m"),
        DesignVariable("cc", 0.2 * PICO, 10.0 * PICO, "F"),
        DesignVariable("ibias", 2.0 * MICRO, 40.0 * MICRO, "A"),
    ]

    def __init__(
        self,
        vdd: float = 1.8,
        cl: float = 2.0 * PICO,
        ugf_spec: float = 40.0 * MEGA,
        pm_spec: float = 60.0,
        # nulling resistor of the RC compensation; ~1/gm5 for typical
        # second-stage bias so the compensation zero sits near/above UGF
        r_comp: float = 800.0,
        corner: PVTCorner = NOMINAL,
        nmos: MOSFETParams = nmos_180,
        pmos: MOSFETParams = pmos_180,
        sweep: tuple[float, float, int] = (10.0, 3e9, 10),
        sim_backend="mna",
    ):
        super().__init__(
            "two_stage_opamp", list(self._VARIABLES), n_constraints=2,
            sim_backend=sim_backend,
        )
        self.vdd = float(vdd) * corner.vdd_scale
        self.cl = float(cl)
        self.ugf_spec = float(ugf_spec)
        self.pm_spec = float(pm_spec)
        self.r_comp = float(r_comp)
        self.corner = corner
        self.nmos = nmos.at_corner(corner.process, corner.temp_k)
        self.pmos = pmos.at_corner(corner.process, corner.temp_k)
        self.freqs = log_freqs(*sweep[:2], points_per_decade=sweep[2])
        self.vcm = 0.5 * self.vdd

    # -- circuit construction ---------------------------------------------------

    def build_circuit(self, x: np.ndarray) -> Circuit:
        """Construct the op-amp netlist for a design vector.

        Exposed publicly so examples can inspect or export the netlist.
        """
        p = self.as_dict(x)
        vdd, vcm = self.vdd, self.vcm
        ckt = Circuit("two_stage_opamp")

        ckt.vsource("VDD", "vdd", "0", vdd)
        # input drive: AC stimulus on vin+, servo feedback on vin-
        ckt.vsource("VINP", "vinp", "0", vcm, ac=1.0)
        ckt.resistor("RFB", "out", "vinn", 1e9)
        ckt.capacitor("CFB", "vinn", "0", 1.0)

        # bias chain: Ibias through diode-connected PMOS M8 sets the PMOS
        # gate rail; M7 (tail) and M6 (2nd-stage load) mirror it
        w8, l8 = 5.0 * _UM, 1.0 * _UM
        ckt.isource("IBIAS", "nbias", "0", p["ibias"])
        ckt.mosfet("M8", "nbias", "nbias", "vdd", "vdd", self.pmos, w8, l8)
        ckt.mosfet("M7", "ntail", "nbias", "vdd", "vdd", self.pmos, p["w67"], p["l67"])
        ckt.mosfet("M6", "out", "nbias", "vdd", "vdd", self.pmos, p["w67"], p["l67"])

        # first stage: PMOS pair M1/M2, NMOS mirror load M3/M4
        ckt.mosfet("M1", "nd1", "vinp", "ntail", "vdd", self.pmos, p["w12"], p["l12"])
        ckt.mosfet("M2", "nd2", "vinn", "ntail", "vdd", self.pmos, p["w12"], p["l12"])
        ckt.mosfet("M3", "nd1", "nd1", "0", "0", self.nmos, p["w34"], p["l34"])
        ckt.mosfet("M4", "nd2", "nd1", "0", "0", self.nmos, p["w34"], p["l34"])

        # second stage: NMOS common source M5 with Miller compensation
        ckt.mosfet("M5", "out", "nd2", "0", "0", self.nmos, p["w5"], p["l5"])
        ckt.resistor("R1", "nd2", "ncomp", self.r_comp)
        ckt.capacitor("CC", "ncomp", "out", p["cc"])
        ckt.capacitor("CL", "out", "0", self.cl)
        return ckt

    def _initial_guess(self) -> dict[str, float]:
        vdd, vcm = self.vdd, self.vcm
        return {
            "vdd": vdd,
            "vinp": vcm,
            "vinn": vcm,
            "nbias": vdd - 0.7,
            "ntail": vcm + 0.5,
            "nd1": 0.5,
            "nd2": 0.5,
            "ncomp": vcm,
            "out": vcm,
        }

    # -- simulation -----------------------------------------------------------------

    def analysis_plan(self) -> list:
        """The testbench's analyses: bias point, then the AC sweep at it."""
        return [OperatingPoint(initial=self._initial_guess()), ACSweep(self.freqs)]

    def simulate(self, x: np.ndarray) -> dict:
        """DC + AC analysis; returns gain/UGF/PM plus bias diagnostics."""
        ckt = self.build_circuit(x)
        raw = self.sim_backend.run(ckt, self.analysis_plan())
        dc, ac = raw.op(), raw.ac()
        tf = ac.transfer("out")
        # measure on the frequencies the backend realized (identical to the
        # requested grid for MNA; ngspice regenerates its own DEC grid)
        freqs = ac.freqs
        gain = dc_gain_db(tf)
        ugf = unity_gain_frequency(freqs, tf)
        pm = phase_margin_deg(freqs, tf)
        idd = -dc.branch_current("VDD")  # current delivered by the supply
        return {
            "gain_db": float(gain),
            "ugf_hz": float(ugf),
            "pm_deg": float(pm),
            "idd_a": float(idd),
            "vout_dc": dc.voltage("out"),
            "regions": {
                name: dc.region(name)
                for name in ("M1", "M2", "M3", "M4", "M5", "M6", "M7", "M8")
            },
        }

    # -- problem mapping ---------------------------------------------------------------

    def _to_evaluation(self, metrics: dict) -> Evaluation:
        # maximize GAIN -> minimize -GAIN (dB).  Broken bias points can
        # measure arbitrarily negative dB gains (-300 dB); below 0 dB the
        # design is "not an amplifier" and the exact value carries no
        # ranking information, so the objective is clamped there — raw
        # measurements stay available in `metrics`.
        objective = -max(metrics["gain_db"], 0.0)
        g_ugf = (self.ugf_spec - metrics["ugf_hz"]) / self.ugf_spec
        g_pm = (self.pm_spec - metrics["pm_deg"]) / self.pm_spec
        return Evaluation(
            objective=objective,
            constraints=np.array([g_ugf, g_pm]),
            metrics=metrics,
        )

    def _failure_evaluation(self) -> Evaluation:
        return Evaluation(objective=0.0, constraints=np.array([1.0, 1.0]), metrics={})
