"""Common machinery for circuit sizing problems.

A sizing testbench is a :class:`~repro.bo.problem.Problem` whose
``evaluate`` runs the circuit simulator.  Design variables are named and
unit-carrying, and simulator failures (non-convergent bias points) are
converted into finite penalty evaluations so the optimizers always receive
usable data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bo.problem import Evaluation, Problem


@dataclass(frozen=True)
class DesignVariable:
    """One named design variable with box bounds (natural units)."""

    name: str
    lower: float
    upper: float
    unit: str = ""

    def __post_init__(self):
        if not np.isfinite(self.lower) or not np.isfinite(self.upper):
            raise ValueError(f"{self.name}: bounds must be finite")
        if self.lower >= self.upper:
            raise ValueError(
                f"{self.name}: lower ({self.lower}) must be < upper ({self.upper})"
            )


class SizingProblem(Problem):
    """Base class for simulator-backed sizing problems.

    Subclasses define ``variables`` (list of :class:`DesignVariable`) and
    implement :meth:`simulate` returning a metrics dict; they also
    implement :meth:`_to_evaluation` mapping metrics to the eq. 1 form.

    ``sim_backend`` selects the simulation engine (a name from
    :data:`repro.sim.base.SIM_BACKENDS` or a
    :class:`~repro.sim.base.SimulatorBackend` instance); resolution is
    lazy so merely constructing a problem never probes for external
    binaries, but string names are validated eagerly so typos fail at
    construction.  The resolved backend's identity enters every
    evaluation cache key via :meth:`cache_context`.
    """

    def __init__(
        self,
        name: str,
        variables: list[DesignVariable],
        n_constraints: int,
        cache_dir=None,
        sim_backend="mna",
    ):
        from repro.sim.base import check_sim_backend

        if not variables:
            raise ValueError("sizing problem needs at least one design variable")
        if isinstance(sim_backend, str):
            check_sim_backend(sim_backend)
        # set before super().__init__: loading a disk cache needs
        # cache_context(), which resolves the backend
        self._sim_backend_spec = sim_backend
        self._sim_backend = None
        self.variables = list(variables)
        lower = np.array([v.lower for v in self.variables])
        upper = np.array([v.upper for v in self.variables])
        super().__init__(name, lower, upper, n_constraints, cache_dir=cache_dir)
        self.n_failures = 0

    @property
    def sim_backend(self):
        """The resolved :class:`~repro.sim.base.SimulatorBackend` (lazy;
        an unavailable external backend falls back to MNA with one
        warning at first use)."""
        if self._sim_backend is None:
            from repro.sim.base import resolve_sim_backend

            self._sim_backend = resolve_sim_backend(self._sim_backend_spec)
        return self._sim_backend

    def cache_context(self) -> tuple:
        """Backend identity ``(name, version)`` — evaluations from one
        engine are never served to a problem configured for another."""
        return self.sim_backend.cache_context()

    @property
    def variable_names(self) -> list[str]:
        """Names of the design variables, in vector order."""
        return [v.name for v in self.variables]

    def as_dict(self, x: np.ndarray) -> dict[str, float]:
        """Map a design vector to a name -> value dict."""
        x = np.asarray(x, dtype=float).ravel()
        if x.shape[0] != self.dim:
            raise ValueError(f"expected {self.dim} variables, got {x.shape[0]}")
        return {v.name: float(val) for v, val in zip(self.variables, x)}

    def simulate(self, x: np.ndarray) -> dict:
        """Run the simulator; return named metrics.  May raise
        :class:`~repro.circuits.dc.ConvergenceError`."""
        raise NotImplementedError

    def _to_evaluation(self, metrics: dict) -> Evaluation:
        """Translate simulator metrics into objective/constraints."""
        raise NotImplementedError

    def _failure_evaluation(self) -> Evaluation:
        """Penalty evaluation used when the simulator fails to converge."""
        raise NotImplementedError

    def evaluate(self, x: np.ndarray) -> Evaluation:
        """Simulate a design; convergence failures become penalties."""
        from repro.circuits.dc import ConvergenceError

        try:
            metrics = self.simulate(x)
        except ConvergenceError:
            self.n_failures += 1
            evaluation = self._failure_evaluation()
            evaluation.metrics["failed"] = True
            return evaluation
        return self._to_evaluation(metrics)
