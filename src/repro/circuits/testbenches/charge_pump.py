"""Charge-pump testbench (paper Fig. 4 / Table II).

The circuit is a PLL charge pump: a cascoded PMOS current source ("up",
output device M1 in the paper's metric names) and a cascoded NMOS current
sink ("dn", M2), each with a replica reference branch, switch devices,
resistor-degenerated mirrors and resistor-generated cascode bias.  The
paper's Table II metrics (eq. 16) are *static current-matching* measures —
max/avg/min of the two output currents over PVT — so the testbench
evaluates each branch quasi-statically over an output-voltage sweep at
every PVT corner (the substitution for transient HSPICE runs documented in
DESIGN.md).

36 design variables, matching the paper's count: W and L of 16 transistors
(reference mirror/cascode/switch-replica, output mirror/cascode/switch,
dummy switch and power-down device, per polarity) plus 4 resistors
(degeneration and cascode-bias per polarity).

Specification (eq. 15/16), currents in microamps:

    minimize FOM = 0.3 * (diff1+diff2+diff3+diff4) + 0.5 * deviation
    s.t. diff1 < 20, diff2 < 20, diff3 < 5, diff4 < 5, deviation < 5

with diff1/2 the up-current spread above/below its average, diff3/4 the
same for the down current, and deviation the worst-case distance of both
averages from the 40 uA target.

Implementation note: because MOS gates draw no current, the reference and
output branches decouple exactly — each corner solves two small reference
netlists once and warm-start-sweeps the two output netlists over Vout
(a :class:`~repro.sim.base.DCTransferSweep`), which keeps a 36-variable,
18-corner evaluation fast enough for the hundreds of simulations per
optimization run.
"""

from __future__ import annotations

import numpy as np

from repro.bo.problem import Evaluation
from repro.circuits.mosfet import MOSFETParams, nmos_040, pmos_040
from repro.circuits.netlist import Circuit
from repro.circuits.pvt import PVTCorner, standard_corners
from repro.circuits.testbenches.base import DesignVariable, SizingProblem
from repro.circuits.units import MICRO
from repro.sim.base import DCTransferSweep, OperatingPoint

_UM = 1e-6

#: the 16 sized transistors: (prefix, role) per polarity
_DEVICES = [
    "mn0",  # N reference mirror (diode)
    "mn1",  # N reference cascode (gate at resistor bias)
    "mnr",  # N reference switch replica (always on)
    "mn2",  # N output mirror
    "mn3",  # N output cascode
    "mns",  # N output switch (on)
    "mnsb",  # N dummy switch (inert at DC)
    "mnpd",  # N power-down device (off at DC)
    "mp0",
    "mp1",
    "mpr",
    "mp2",
    "mp3",
    "mps",
    "mpsb",
    "mppd",
]


def _geometry_variables() -> list[DesignVariable]:
    out = []
    for dev in _DEVICES:
        out.append(DesignVariable(f"w_{dev}", 0.4 * _UM, 40.0 * _UM, "m"))
        out.append(DesignVariable(f"l_{dev}", 0.06 * _UM, 1.0 * _UM, "m"))
    return out


class ChargePumpProblem(SizingProblem):
    """Sizing problem for the Fig. 4 charge pump over PVT corners.

    Parameters
    ----------
    corners:
        PVT corners to evaluate (default: the paper's 18).
    i_target:
        Output current target [A] (paper: 40 uA).
    i_ref, i_casc:
        Reference branch currents, the ``i10u``/``i5u`` sources of Fig. 4.
    n_sweep:
        Output-voltage sweep points per corner and branch.
    """

    def __init__(
        self,
        corners: list[PVTCorner] | None = None,
        vdd: float = 1.8,
        i_target: float = 40.0 * MICRO,
        i_ref: float = 10.0 * MICRO,
        i_casc: float = 5.0 * MICRO,
        n_sweep: int = 7,
        vout_margin: float = 0.2,
        r_compliance: float = 2e6,
        nmos: MOSFETParams = nmos_040,
        pmos: MOSFETParams = pmos_040,
        sim_backend="mna",
    ):
        variables = _geometry_variables() + [
            DesignVariable("r_dn", 500.0, 15e3, "Ohm"),
            DesignVariable("r_dp", 500.0, 15e3, "Ohm"),
            DesignVariable("r_cn", 60e3, 320e3, "Ohm"),
            DesignVariable("r_cp", 60e3, 320e3, "Ohm"),
        ]
        super().__init__(
            "charge_pump", variables, n_constraints=5, sim_backend=sim_backend
        )
        self.corners = list(corners) if corners is not None else standard_corners()
        if not self.corners:
            raise ValueError("need at least one PVT corner")
        self.vdd_nom = float(vdd)
        self.i_target = float(i_target)
        self.i_ref = float(i_ref)
        self.i_casc = float(i_casc)
        self.n_sweep = int(n_sweep)
        self.vout_margin = float(vout_margin)
        #: finite output resistance of the (otherwise ideal) bias current
        #: sources; guarantees the reference branches always have a DC
        #: solution even for sizings that cannot carry the bias current
        self.r_compliance = float(r_compliance)
        self.nmos_nom = nmos
        self.pmos_nom = pmos
        #: mirror ratio the degeneration resistors are pre-scaled for
        self.mirror_ratio = self.i_target / self.i_ref
        # constraint limits in microamps, eq. 15
        self.limits_ua = np.array([20.0, 20.0, 5.0, 5.0, 5.0])

    # -- netlist builders ---------------------------------------------------------

    def build_reference_circuit(
        self, p: dict, polarity: str, nmos: MOSFETParams, pmos: MOSFETParams, vdd: float
    ) -> Circuit:
        """Reference branch netlist for one polarity (``"n"`` or ``"p"``).

        The branch carries ``i_ref`` through switch-replica, cascode and
        diode mirror devices with a degeneration resistor scaled by the
        intended mirror ratio, and produces the mirror gate voltage.
        """
        ckt = Circuit(f"cp_ref_{polarity}")
        ckt.vsource("VDD", "vdd", "0", vdd)
        if polarity == "n":
            vcn = min(self.i_casc * p["r_cn"], vdd)
            ckt.isource("IREF", "vdd", "d1", self.i_ref)
            ckt.resistor("RCOMP", "vdd", "d1", self.r_compliance)
            ckt.mosfet("MNR", "d1", "vdd", "d2", "0", nmos, p["w_mnr"], p["l_mnr"])
            ckt.mosfet("MN1", "d2", "casc", "d3", "0", nmos, p["w_mn1"], p["l_mn1"])
            ckt.mosfet("MN0", "d3", "d3", "src", "0", nmos, p["w_mn0"], p["l_mn0"])
            ckt.resistor("RD", "src", "0", p["r_dn"] * self.mirror_ratio)
            ckt.vsource("VCASC", "casc", "0", vcn)
            # power-down device hangs off the gate-bias node, held off
            ckt.mosfet("MNPD", "d3", "0", "0", "0", nmos, p["w_mnpd"], p["l_mnpd"])
        else:
            vcp = max(vdd - self.i_casc * p["r_cp"], 0.0)
            ckt.isource("IREF", "d1", "0", self.i_ref)
            ckt.resistor("RCOMP", "d1", "0", self.r_compliance)
            ckt.mosfet("MPR", "d1", "0", "d2", "vdd", pmos, p["w_mpr"], p["l_mpr"])
            ckt.mosfet("MP1", "d2", "casc", "d3", "vdd", pmos, p["w_mp1"], p["l_mp1"])
            ckt.mosfet("MP0", "d3", "d3", "src", "vdd", pmos, p["w_mp0"], p["l_mp0"])
            ckt.resistor("RD", "vdd", "src", p["r_dp"] * self.mirror_ratio)
            ckt.vsource("VCASC", "casc", "0", vcp)
            ckt.mosfet("MPPD", "d3", "vdd", "vdd", "vdd", pmos, p["w_mppd"], p["l_mppd"])
        return ckt

    def build_output_circuit(
        self,
        p: dict,
        polarity: str,
        nmos: MOSFETParams,
        pmos: MOSFETParams,
        vdd: float,
        v_gate: float,
        v_casc: float,
        vout: float,
    ) -> Circuit:
        """Output branch netlist: mirror + cascode + switch into a forced
        output voltage source (whose branch current is the measurement)."""
        ckt = Circuit(f"cp_out_{polarity}")
        ckt.vsource("VDD", "vdd", "0", vdd)
        ckt.vsource("VOUT", "out", "0", vout)
        ckt.vsource("VG", "gate", "0", v_gate)
        ckt.vsource("VC", "casc", "0", v_casc)
        if polarity == "n":
            ckt.mosfet("MNS", "out", "vdd", "o1", "0", nmos, p["w_mns"], p["l_mns"])
            ckt.mosfet("MN3", "o1", "casc", "o2", "0", nmos, p["w_mn3"], p["l_mn3"])
            ckt.mosfet("MN2", "o2", "gate", "o3", "0", nmos, p["w_mn2"], p["l_mn2"])
            ckt.resistor("RD", "o3", "0", p["r_dn"])
            # dummy switch: source/drain shorted at the output, gate off
            ckt.mosfet("MNSB", "out", "0", "out", "0", nmos, p["w_mnsb"], p["l_mnsb"])
        else:
            ckt.mosfet("MPS", "out", "0", "o1", "vdd", pmos, p["w_mps"], p["l_mps"])
            ckt.mosfet("MP3", "o1", "casc", "o2", "vdd", pmos, p["w_mp3"], p["l_mp3"])
            ckt.mosfet("MP2", "o2", "gate", "o3", "vdd", pmos, p["w_mp2"], p["l_mp2"])
            ckt.resistor("RD", "vdd", "o3", p["r_dp"])
            ckt.mosfet("MPSB", "out", "vdd", "out", "vdd", pmos, p["w_mpsb"], p["l_mpsb"])
        return ckt

    # -- per-corner evaluation ----------------------------------------------------------

    def _branch_currents(
        self, p: dict, polarity: str, corner: PVTCorner
    ) -> np.ndarray:
        """Output current of one branch over the Vout sweep at one corner."""
        nmos = self.nmos_nom.at_corner(corner.process, corner.temp_k)
        pmos = self.pmos_nom.at_corner(corner.process, corner.temp_k)
        vdd = self.vdd_nom * corner.vdd_scale

        ref = self.build_reference_circuit(p, polarity, nmos, pmos, vdd)
        guess = {"vdd": vdd, "d1": vdd * 0.75, "d2": vdd * 0.55, "d3": vdd * 0.35,
                 "src": 0.05}
        if polarity == "p":
            guess = {"vdd": vdd, "d1": vdd * 0.25, "d2": vdd * 0.45,
                     "d3": vdd * 0.65, "src": vdd - 0.05}
        ref_op = self.sim_backend.run(ref, [OperatingPoint(initial=guess)]).op()
        v_gate = ref_op.voltage("d3")
        v_casc = ref_op.voltage("casc")

        vout_lo = self.vout_margin
        vout_hi = vdd - self.vout_margin
        sweep = np.linspace(vout_lo, vout_hi, self.n_sweep)
        ckt = self.build_output_circuit(
            p, polarity, nmos, pmos, vdd, v_gate, v_casc, float(sweep[0])
        )
        raw = self.sim_backend.run(
            ckt, [DCTransferSweep("VOUT", tuple(float(v) for v in sweep))]
        )
        i_br = raw.sweep().branch_current("VOUT")
        # the P branch pushes current into VOUT's + terminal (positive by
        # the SPICE convention); the N branch pulls it out (negative)
        return i_br if polarity == "p" else -i_br

    # -- simulation -------------------------------------------------------------------

    def simulate(self, x: np.ndarray) -> dict:
        """Eq. 16 metrics over all PVT corners (currents in microamps)."""
        p = self.as_dict(x)
        up_spread_hi = []  # IM1_max - IM1_avg per corner
        up_spread_lo = []
        dn_spread_hi = []
        dn_spread_lo = []
        up_avg_err = []
        dn_avg_err = []
        for corner in self.corners:
            i_up = self._branch_currents(p, "p", corner)
            i_dn = self._branch_currents(p, "n", corner)
            up_avg = float(np.mean(i_up))
            dn_avg = float(np.mean(i_dn))
            up_spread_hi.append(float(np.max(i_up)) - up_avg)
            up_spread_lo.append(up_avg - float(np.min(i_up)))
            dn_spread_hi.append(float(np.max(i_dn)) - dn_avg)
            dn_spread_lo.append(dn_avg - float(np.min(i_dn)))
            up_avg_err.append(abs(up_avg - self.i_target))
            dn_avg_err.append(abs(dn_avg - self.i_target))

        scale = 1.0 / MICRO
        diff1 = max(up_spread_hi) * scale
        diff2 = max(up_spread_lo) * scale
        diff3 = max(dn_spread_hi) * scale
        diff4 = max(dn_spread_lo) * scale
        deviation = (max(up_avg_err) + max(dn_avg_err)) * scale
        diff = diff1 + diff2 + diff3 + diff4
        fom = 0.3 * diff + 0.5 * deviation
        return {
            "diff1_ua": diff1,
            "diff2_ua": diff2,
            "diff3_ua": diff3,
            "diff4_ua": diff4,
            "deviation_ua": deviation,
            "diff_ua": diff,
            "fom": fom,
        }

    # -- problem mapping ----------------------------------------------------------------

    def _to_evaluation(self, metrics: dict) -> Evaluation:
        values = np.array(
            [
                metrics["diff1_ua"],
                metrics["diff2_ua"],
                metrics["diff3_ua"],
                metrics["diff4_ua"],
                metrics["deviation_ua"],
            ]
        )
        constraints = (values - self.limits_ua) / self.limits_ua
        return Evaluation(
            objective=metrics["fom"], constraints=constraints, metrics=metrics
        )

    def _failure_evaluation(self) -> Evaluation:
        return Evaluation(
            objective=200.0, constraints=np.ones(self.n_constraints), metrics={}
        )
