"""Sizing testbenches for the paper's evaluation circuits (plus extras).

* :class:`TwoStageOpAmpProblem` — the Fig. 3 Miller-compensated two-stage
  operational amplifier (Table I experiment),
* :class:`ChargePumpProblem` — the Fig. 4 charge pump evaluated over 18
  PVT corners (Table II experiment),
* :class:`FoldedCascodeOTAProblem` — an additional workload beyond the
  paper, built from the :mod:`repro.circuits.blocks` library.
"""

from repro.circuits.testbenches.base import DesignVariable, SizingProblem
from repro.circuits.testbenches.charge_pump import ChargePumpProblem
from repro.circuits.testbenches.folded_cascode import FoldedCascodeOTAProblem
from repro.circuits.testbenches.two_stage_opamp import TwoStageOpAmpProblem

__all__ = [
    "ChargePumpProblem",
    "DesignVariable",
    "FoldedCascodeOTAProblem",
    "SizingProblem",
    "TwoStageOpAmpProblem",
]
