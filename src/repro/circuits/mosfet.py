"""Level-1+ MOSFET model: square law with channel-length modulation, body
effect and overlap/junction capacitances.

Why Level 1 is the right fidelity here: the sizing trade-offs the paper's
optimizer must navigate — gm vs. bias current, output conductance vs.
channel length (lambda ~ 1/L), mirror matching vs. V_DS imbalance,
pole/zero placement vs. device capacitance — are all first-order phenomena
that the square-law model reproduces.  The optimizers only ever see the
simulated performances, so any model with those couplings yields the same
*algorithmic* comparison as a foundry PDK.

Conventions: a single evaluation routine computes the drain current of an
NMOS-convention device; PMOS is the exact sign mirror (all terminal
voltages and the current negated), and drain/source swap (``v_ds < 0``
during Newton iterations) is handled symmetrically.  The evaluation
returns the current *and* its four partial derivatives w.r.t. the terminal
voltages, which is precisely what the MNA companion stamp needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.circuits.pvt import ProcessCorner

_TEMP_REF_K = 300.15  # 27 C
_VTH_TEMP_COEFF = -2e-3  # V/K
_MOBILITY_TEMP_EXP = -1.5


@dataclass(frozen=True)
class MOSFETParams:
    """Process parameters of one device polarity.

    All values use NMOS sign conventions and SI units; PMOS devices share
    the same (positive) ``vth0`` magnitude through the sign mirror.

    Attributes
    ----------
    polarity:
        ``"n"`` or ``"p"``.
    vth0:
        Zero-bias threshold voltage magnitude [V].
    kp:
        Transconductance parameter ``mu * Cox`` [A/V^2].
    lambda_l:
        Channel-length-modulation coefficient normalized by length [m/V]:
        ``lambda = lambda_l / L``, so longer channels give flatter
        saturation currents (the knob behind mirror-matching physics).
    gamma:
        Body-effect coefficient [V^0.5].
    phi:
        Surface potential ``2 phi_F`` [V].
    cox:
        Gate-oxide capacitance per area [F/m^2].
    cov:
        Gate overlap capacitance per width [F/m].
    cj_w:
        Junction capacitance of drain/source per width [F/m].
    """

    polarity: str
    vth0: float
    kp: float
    lambda_l: float
    gamma: float = 0.45
    phi: float = 0.85
    cox: float = 8.5e-3
    cov: float = 3.0e-10
    cj_w: float = 5.0e-10

    def __post_init__(self):
        if self.polarity not in ("n", "p"):
            raise ValueError(f"polarity must be 'n' or 'p', got {self.polarity!r}")
        if self.vth0 <= 0 or self.kp <= 0:
            raise ValueError("vth0 and kp magnitudes must be positive")
        if self.lambda_l < 0 or self.gamma < 0 or self.phi <= 0:
            raise ValueError("lambda_l/gamma must be >= 0 and phi > 0")

    def at_temperature(self, temp_k: float) -> "MOSFETParams":
        """Parameters shifted to junction temperature ``temp_k``."""
        if temp_k <= 0:
            raise ValueError(f"temperature must be positive Kelvin, got {temp_k}")
        vth = self.vth0 + _VTH_TEMP_COEFF * (temp_k - _TEMP_REF_K)
        kp = self.kp * (temp_k / _TEMP_REF_K) ** _MOBILITY_TEMP_EXP
        return replace(self, vth0=max(vth, 0.05), kp=kp)

    def at_process(self, corner: ProcessCorner) -> "MOSFETParams":
        """Parameters shifted to a process corner."""
        if self.polarity == "n":
            shift, scale = corner.nmos_vth_shift, corner.nmos_kp_scale
        else:
            shift, scale = corner.pmos_vth_shift, corner.pmos_kp_scale
        return replace(self, vth0=max(self.vth0 + shift, 0.05), kp=self.kp * scale)

    def at_corner(self, corner: ProcessCorner, temp_k: float) -> "MOSFETParams":
        """Process shift then temperature shift (order is immaterial here)."""
        return self.at_process(corner).at_temperature(temp_k)


# Generic parameter sets loosely patterned on 180 nm and 40 nm nodes.
nmos_180 = MOSFETParams("n", vth0=0.45, kp=3.0e-4, lambda_l=5.0e-8)
pmos_180 = MOSFETParams("p", vth0=0.45, kp=8.0e-5, lambda_l=6.0e-8, gamma=0.4)
nmos_040 = MOSFETParams("n", vth0=0.40, kp=4.5e-4, lambda_l=6.0e-8, phi=0.8)
pmos_040 = MOSFETParams("p", vth0=0.40, kp=1.8e-4, lambda_l=7.0e-8, phi=0.8)


@dataclass
class MOSOperatingPoint:
    """Bias-point summary of one device (NMOS-convention voltages)."""

    ids: float
    vgs: float
    vds: float
    vsb: float
    vov: float
    gm: float
    gds: float
    gmb: float
    region: str  # "cutoff" | "triode" | "saturation"


def _square_law(vgs, vds, vsb, vth0, beta, lam, gamma, phi):
    """Square-law current and small-signal params; requires ``vds >= 0``.

    Returns ``(ids, gm, gds, gmb_pos, vov, region)`` with
    ``gmb_pos = d ids / d vbs >= 0``.
    """
    body_arg = max(phi + vsb, 0.05)
    vth = vth0 + gamma * (math.sqrt(body_arg) - math.sqrt(phi))
    vov = vgs - vth
    if vov <= 0.0:
        return 0.0, 0.0, 0.0, 0.0, vov, "cutoff"
    clm = 1.0 + lam * vds
    if vds < vov:
        core = vov * vds - 0.5 * vds * vds
        ids = beta * core * clm
        gm = beta * vds * clm
        gds = beta * ((vov - vds) * clm + core * lam)
        region = "triode"
    else:
        ids = 0.5 * beta * vov * vov * clm
        gm = beta * vov * clm
        gds = 0.5 * beta * vov * vov * lam
        region = "saturation"
    gmb_pos = gm * gamma / (2.0 * math.sqrt(body_arg))
    return ids, gm, gds, gmb_pos, vov, region


def _nmos_eval(vd, vg, vs, vb, vth0, beta, lam, gamma, phi):
    """NMOS drain current ``I(d->s)`` and partials w.r.t. (vd, vg, vs, vb).

    Handles drain/source swap so the function is defined (and continuous)
    for any terminal voltages the Newton iteration may visit.
    """
    if vd >= vs:
        vgs, vds, vsb = vg - vs, vd - vs, vs - vb
        ids, gm, gds, gmb, vov, region = _square_law(
            vgs, vds, vsb, vth0, beta, lam, gamma, phi
        )
        # I = F(vgs, vds, vsb): translate to terminal partials
        g_d = gds
        g_g = gm
        g_b = gmb
        g_s = -(gm + gds + gmb)
        op = MOSOperatingPoint(ids, vgs, vds, vsb, vov, gm, gds, gmb, region)
        return ids, g_d, g_g, g_s, g_b, op
    # swapped: the physical source is the 'd' terminal
    vgs, vds, vsb = vg - vd, vs - vd, vd - vb
    ids_r, gm, gds, gmb, vov, region = _square_law(
        vgs, vds, vsb, vth0, beta, lam, gamma, phi
    )
    ids = -ids_r
    # reverse current I(d->s) = -F(vg - vd, vs - vd, vd - vb)
    g_s = -gds
    g_g = -gm
    g_b = -gmb
    g_d = gm + gds + gmb
    op = MOSOperatingPoint(ids, vgs, -vds, vsb, vov, gm, gds, gmb, region)
    return ids, g_d, g_g, g_s, g_b, op


class MOSFET:
    """Four-terminal MOSFET netlist element.

    Parameters
    ----------
    name:
        Instance name (``"M1"``).
    drain, gate, source, bulk:
        Node names.
    params:
        :class:`MOSFETParams` (already corner/temperature adjusted by the
        testbench if applicable).
    w, l:
        Channel width and length [m].
    m:
        Parallel multiplier.
    """

    n_branches = 0

    def __init__(self, name, drain, gate, source, bulk, params: MOSFETParams, w, l, m=1):
        if w <= 0 or l <= 0:
            raise ValueError(f"{name}: W and L must be positive, got {w}, {l}")
        if m < 1:
            raise ValueError(f"{name}: multiplier must be >= 1, got {m}")
        self.name = str(name)
        self.nodes = (str(drain), str(gate), str(source), str(bulk))
        self.params = params
        self.w = float(w)
        self.l = float(l)
        self.m = int(m)
        self.node_idx: tuple[int, ...] = ()
        self.last_op: MOSOperatingPoint | None = None

    # -- electrical evaluation ---------------------------------------------------

    @property
    def beta(self) -> float:
        """Effective transconductance factor ``m * kp * W / L``."""
        return self.m * self.params.kp * self.w / self.l

    @property
    def lam(self) -> float:
        """Channel-length modulation ``lambda = lambda_l / L`` [1/V]."""
        return self.params.lambda_l / self.l

    def evaluate(self, vd, vg, vs, vb):
        """Drain-to-source current and terminal partials at a bias point.

        For PMOS the evaluation mirrors all signs: ``I_p(v) = -I_n(-v)``,
        whose partials equal the NMOS partials evaluated at the negated
        voltages.
        """
        p = self.params
        if p.polarity == "n":
            ids, g_d, g_g, g_s, g_b, op = _nmos_eval(
                vd, vg, vs, vb, p.vth0, self.beta, self.lam, p.gamma, p.phi
            )
        else:
            ids_n, g_d, g_g, g_s, g_b, op = _nmos_eval(
                -vd, -vg, -vs, -vb, p.vth0, self.beta, self.lam, p.gamma, p.phi
            )
            ids = -ids_n
            op.ids = ids
        self.last_op = op
        return ids, g_d, g_g, g_s, g_b

    # -- MNA stamps ---------------------------------------------------------------

    def assign_nodes(self, index_of):
        """Resolve node names to MNA indices (called by the circuit)."""
        self.node_idx = tuple(index_of(n) for n in self.nodes)

    def stamp_dc(self, system, v):
        """Companion-model stamp: linearized drain current at the current
        iterate ``v`` plus the equivalent current source."""
        d, g, s, b = self.node_idx
        volts = [0.0 if i < 0 else v[i] for i in (d, g, s, b)]
        ids, g_d, g_g, g_s, g_b = self.evaluate(*volts)
        partials = (g_d, g_g, g_s, g_b)
        ieq = ids - sum(gk * vk for gk, vk in zip(partials, volts))
        for gk, node in zip(partials, (d, g, s, b)):
            system.add_matrix(d, node, gk)
            system.add_matrix(s, node, -gk)
        system.add_rhs(d, -ieq)
        system.add_rhs(s, ieq)

    def stamp_ac(self, system, omega: float):
        """Small-signal stamp at the stored DC operating point."""
        if self.last_op is None:
            raise RuntimeError(f"{self.name}: stamp_ac before DC solve")
        d, g, s, b = self.node_idx
        op = self.last_op
        # transconductances: current d->s controlled by vgs and vbs
        system.add_vccs(d, s, g, s, op.gm if op.region != "cutoff" else 0.0)
        system.add_vccs(d, s, b, s, op.gmb)
        system.add_conductance(d, s, op.gds)
        cgs, cgd, cgb = self._gate_caps(op)
        cj = self.params.cj_w * self.w * self.m
        system.add_capacitor(g, s, cgs, omega)
        system.add_capacitor(g, d, cgd, omega)
        system.add_capacitor(g, b, cgb, omega)
        system.add_capacitor(d, b, cj, omega)
        system.add_capacitor(s, b, cj, omega)

    def _gate_caps(self, op: MOSOperatingPoint) -> tuple[float, float, float]:
        area_cap = self.params.cox * self.w * self.l * self.m
        cov = self.params.cov * self.w * self.m
        if op.region == "saturation":
            return (2.0 / 3.0) * area_cap + cov, cov, 0.0
        if op.region == "triode":
            return 0.5 * area_cap + cov, 0.5 * area_cap + cov, 0.0
        return cov, cov, area_cap

    def __repr__(self) -> str:
        w_um, l_um = self.w * 1e6, self.l * 1e6
        return (
            f"MOSFET({self.name}, {self.params.polarity}mos, "
            f"W={w_um:.3g}u, L={l_um:.3g}u, m={self.m})"
        )
