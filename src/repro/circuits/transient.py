"""Transient (time-domain) analysis via companion-model integration.

Each time step solves the nonlinear circuit with capacitors replaced by
their trapezoidal companion models (a conductance ``2C/dt`` in parallel
with a history current source); the first step uses backward Euler to
avoid the trapezoidal start-up ringing.  Nonlinear devices are treated
quasi-statically through their ordinary DC stamps — device capacitances
are not integrated (the explicit capacitors of a testbench dominate the
dynamics at the time scales these analyses are used for; AC analysis
covers small-signal device capacitance effects).

Time-varying stimuli: any :class:`~repro.circuits.devices.VoltageSource`
or :class:`CurrentSource` whose ``waveform`` attribute is set to a
callable ``t -> value`` follows it during transient runs (and uses its
plain ``dc`` value at ``t <= 0`` DC analyses).  :func:`pulse` and
:func:`sine` build SPICE-style waveform callables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.devices import Capacitor, CurrentSource, VoltageSource
from repro.circuits.dc import ConvergenceError, DCAnalysis
from repro.circuits.mna import MNASystem
from repro.circuits.netlist import Circuit


def pulse(v1: float, v2: float, delay: float, rise: float, fall: float,
          width: float, period: float | None = None):
    """SPICE ``PULSE(v1 v2 td tr tf pw per)`` waveform factory."""
    if rise < 0 or fall < 0 or width < 0:
        raise ValueError("rise/fall/width must be non-negative")
    edge = max(rise, 1e-15)
    fall_edge = max(fall, 1e-15)

    def waveform(t: float) -> float:
        if period is not None:
            if period <= 0:
                raise ValueError("period must be positive")
            t = (t - delay) % period if t >= delay else t - delay
        else:
            t = t - delay
        if t < 0:
            return v1
        if t < rise:
            return v1 + (v2 - v1) * t / edge
        if t < rise + width:
            return v2
        if t < rise + width + fall:
            return v2 + (v1 - v2) * (t - rise - width) / fall_edge
        return v1

    return waveform


def sine(offset: float, amplitude: float, freq: float, delay: float = 0.0):
    """SPICE ``SIN(vo va freq td)`` waveform factory."""
    if freq <= 0:
        raise ValueError("freq must be positive")

    def waveform(t: float) -> float:
        if t < delay:
            return offset
        return offset + amplitude * np.sin(2.0 * np.pi * freq * (t - delay))

    return waveform


@dataclass
class TransientResult:
    """Waveforms of one transient run: ``x[k]`` is the solution at
    ``times[k]``."""

    circuit: Circuit
    times: np.ndarray
    x: np.ndarray

    def voltage(self, node: str) -> np.ndarray:
        """Voltage waveform of a named node."""
        idx = self.circuit.node_index(node)
        if idx < 0:
            return np.zeros(len(self.times))
        return self.x[:, idx].copy()

    def branch_current(self, device_name: str) -> np.ndarray:
        """Branch-current waveform of a voltage-defined device."""
        device = self.circuit.device(device_name)
        if device.n_branches == 0:
            raise ValueError(f"{device_name!r} has no branch current")
        return self.x[:, device.branch_idx].copy()


class TransientAnalysis:
    """Fixed-step transient simulation of a circuit.

    Parameters
    ----------
    circuit:
        Circuit to simulate (finalized automatically).
    max_iterations, vtol, reltol, max_step, gmin:
        Newton controls per time step (see :class:`DCAnalysis`).
    """

    def __init__(
        self,
        circuit: Circuit,
        max_iterations: int = 100,
        vtol: float = 1e-9,
        reltol: float = 1e-6,
        max_step: float = 0.5,
        gmin: float = 1e-12,
    ):
        self.circuit = circuit
        self.max_iterations = int(max_iterations)
        self.vtol = float(vtol)
        self.reltol = float(reltol)
        self.max_step = float(max_step)
        self.gmin = float(gmin)
        circuit.finalize()
        self._caps = [d for d in circuit.devices if isinstance(d, Capacitor)]
        self._others = [d for d in circuit.devices if not isinstance(d, Capacitor)]

    def run(self, t_stop: float, dt: float, initial=None) -> TransientResult:
        """Simulate from 0 to ``t_stop`` with fixed step ``dt``.

        The starting state is the DC operating point (with waveform sources
        at their t=0 values) unless ``initial`` (a solution vector) is
        given.
        """
        if t_stop <= 0 or dt <= 0:
            raise ValueError("t_stop and dt must be positive")
        n_steps = int(np.ceil(t_stop / dt))
        times = np.linspace(0.0, n_steps * dt, n_steps + 1)
        n = self.circuit.n_unknowns

        if initial is None:
            x = self._dc_start()
        else:
            x = np.asarray(initial, dtype=float).copy()
            if x.shape != (n,):
                raise ValueError(f"initial vector must have shape ({n},)")

        out = np.empty((n_steps + 1, n))
        out[0] = x
        # capacitor state: (v_ab, i) at the current time point
        state = {}
        for cap in self._caps:
            a, b = cap.node_idx
            vab = self._node_v(x, a) - self._node_v(x, b)
            state[cap.name] = (vab, 0.0)  # i = 0 at the DC point

        for k in range(1, n_steps + 1):
            t = times[k]
            # first step: backward Euler (no history current term)
            use_be = k == 1
            x, state = self._solve_step(x, state, t, dt, use_be)
            out[k] = x
        return TransientResult(self.circuit, times, out)

    # -- internals ----------------------------------------------------------------

    @staticmethod
    def _node_v(x, idx):
        return 0.0 if idx < 0 else x[idx]

    def _solve_step(self, x_prev, state, t, dt, use_be):
        n_nodes = self.circuit.n_nodes
        x = x_prev.copy()
        for _ in range(self.max_iterations):
            system = MNASystem(self.circuit.n_unknowns, gmin=self.gmin)
            system.time = t
            for device in self._others:
                device.stamp_dc(system, x)
            for cap in self._caps:
                self._stamp_cap(system, cap, state[cap.name], dt, use_be)
            system.apply_gmin(n_nodes)
            try:
                x_new = system.solve()
            except np.linalg.LinAlgError as exc:
                raise ConvergenceError(
                    f"transient step at t={t:g}s: singular system"
                ) from exc
            delta = x_new - x
            dv = np.clip(delta[:n_nodes], -self.max_step, self.max_step)
            x[:n_nodes] += dv
            x[n_nodes:] = x_new[n_nodes:]
            tol = self.vtol + self.reltol * np.abs(x[:n_nodes])
            if np.all(np.abs(delta[:n_nodes]) < tol):
                break
        else:
            raise ConvergenceError(f"transient step at t={t:g}s did not converge")

        new_state = {}
        for cap in self._caps:
            a, b = cap.node_idx
            vab = self._node_v(x, a) - self._node_v(x, b)
            g_eq, i_hist = self._companion(cap, state[cap.name], dt, use_be)
            i_new = g_eq * vab - i_hist
            new_state[cap.name] = (vab, i_new)
        return x, new_state

    @staticmethod
    def _companion(cap, cap_state, dt, use_be):
        """Conductance and history current of the integration companion."""
        v_prev, i_prev = cap_state
        if use_be:
            g_eq = cap.capacitance / dt
            i_hist = g_eq * v_prev
        else:  # trapezoidal
            g_eq = 2.0 * cap.capacitance / dt
            i_hist = g_eq * v_prev + i_prev
        return g_eq, i_hist

    def _stamp_cap(self, system, cap, cap_state, dt, use_be):
        a, b = cap.node_idx
        g_eq, i_hist = self._companion(cap, cap_state, dt, use_be)
        system.add_conductance(a, b, g_eq)
        # history current flows a -> b inside the companion source
        system.add_rhs(a, i_hist)
        system.add_rhs(b, -i_hist)

    def _dc_start(self) -> np.ndarray:
        solution = DCAnalysis(
            self.circuit,
            max_iterations=self.max_iterations,
            vtol=self.vtol,
            reltol=self.reltol,
            max_step=self.max_step,
            gmin=self.gmin,
        ).solve()
        return solution.x.copy()
