"""SPICE-subset netlist reader/writer.

The paper's flow drives HSPICE with textual netlists; this module gives the
repository the same interchange surface: circuits can be exported to a
SPICE deck (for inspection or use with a real simulator) and SPICE decks
using the supported card subset can be parsed back into
:class:`~repro.circuits.netlist.Circuit` objects.

Supported cards:

* ``R<name> n+ n- value``            — resistor
* ``C<name> n+ n- value``            — capacitor
* ``V<name> n+ n- [DC] value [AC mag]`` — voltage source
* ``I<name> n+ n- [DC] value [AC mag]`` — current source
* ``E<name> out+ out- in+ in- gain`` — VCVS
* ``G<name> out+ out- in+ in- gm``   — VCCS
* ``M<name> d g s b model W=.. L=.. [M=..]`` — MOSFET
* ``.MODEL name NMOS|PMOS (LEVEL=1 VTO=.. KP=.. LAMBDA=.. GAMMA=.. PHI=..)``
* ``*`` comments, ``+`` continuations, ``.END``, engineering suffixes
  (``k``, ``meg``, ``u``, ``n``, ``p``, ``f``, ...).

``LAMBDA`` is interpreted per SPICE Level 1 as a fixed 1/V value; when
building a :class:`MOSFETParams` we convert it to our length-normalized
``lambda_l`` using the instance L (documented in the parameter docstring).
"""

from __future__ import annotations

import re

from repro.circuits.devices import (
    Capacitor,
    CurrentSource,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
)
from repro.circuits.mosfet import MOSFET, MOSFETParams
from repro.circuits.netlist import Circuit


class SpiceError(ValueError):
    """Raised for malformed netlist input."""


_SUFFIXES = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "x": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
}

_NUMBER_RE = re.compile(
    r"^([+-]?\d*\.?\d+(?:[eE][+-]?\d+)?)(meg|[tgxkmunpf])?[a-z]*$", re.IGNORECASE
)


def parse_value(token: str) -> float:
    """Parse a SPICE number with optional engineering suffix (``4.7k``)."""
    token = token.strip()
    match = _NUMBER_RE.match(token)
    if not match:
        raise SpiceError(f"cannot parse value {token!r}")
    value = float(match.group(1))
    suffix = match.group(2)
    if suffix:
        value *= _SUFFIXES[suffix.lower()]
    return value


#: vacuum permittivity x SiO2 relative permittivity [F/m]; converts the
#: model's areal gate capacitance to/from the SPICE TOX card
_EPS_OX = 3.9 * 8.854e-12


def format_value(value: float, precision: int = 6) -> str:
    """Format a number compactly for netlist output.

    The default 6 significant digits keeps decks human-readable; pass
    ``precision=17`` for machine round-trips (``%.17g`` reproduces any
    double exactly through parse -> format -> parse).
    """
    return f"{value:.{int(precision)}g}"


def _join_continuations(lines: list[str]) -> list[str]:
    joined: list[str] = []
    for raw in lines:
        line = raw.rstrip()
        if not line or line.lstrip().startswith("*"):
            continue
        # strip trailing comments
        if "$" in line:
            line = line.split("$", 1)[0].rstrip()
        if line.startswith("+"):
            if not joined:
                raise SpiceError("continuation line with nothing to continue")
            joined[-1] += " " + line[1:].strip()
        else:
            joined.append(line.strip())
    return joined


def _parse_model_card(tokens: list[str], text: str) -> tuple[str, MOSFETParams]:
    if len(tokens) < 3:
        raise SpiceError(f"malformed .MODEL card: {text!r}")
    name = tokens[1].lower()
    mtype = tokens[2].upper()
    if mtype not in ("NMOS", "PMOS"):
        raise SpiceError(f"unsupported model type {mtype!r}")
    body = text.split(None, 3)[3] if len(text.split(None, 3)) > 3 else ""
    body = body.strip().lstrip("(").rstrip(")")
    params: dict[str, float] = {}
    for assignment in re.findall(r"(\w+)\s*=\s*([^\s()]+)", body):
        params[assignment[0].lower()] = parse_value(assignment[1])
    level = params.get("level", 1)
    if int(level) != 1:
        raise SpiceError(f"only LEVEL=1 models supported, got LEVEL={level}")
    vto = abs(params.get("vto", 0.5))
    kp = params.get("kp", 1e-4)
    lam = params.get("lambda", 0.05)
    gamma = params.get("gamma", 0.45)
    phi = params.get("phi", 0.85)
    polarity = "n" if mtype == "NMOS" else "p"
    defaults = MOSFETParams(polarity=polarity, vth0=vto, kp=kp, lambda_l=lam)
    # capacitance cards: TOX encodes the areal gate capacitance, CGSO/CGDO
    # the overlap per width, CJSW the junction sidewall per width
    cox = _EPS_OX / params["tox"] if params.get("tox") else defaults.cox
    cov = params.get("cgso", params.get("cgdo", defaults.cov))
    cj_w = params.get("cjsw", defaults.cj_w)
    # our model uses lambda_l = lambda * L; store the raw SPICE lambda and
    # convert at instance time (see parse_netlist)
    model = MOSFETParams(
        polarity=polarity,
        vth0=vto,
        kp=kp,
        lambda_l=lam,  # placeholder; scaled per instance below
        gamma=gamma,
        phi=phi,
        cox=cox,
        cov=cov,
        cj_w=cj_w,
    )
    return name, model


def parse_netlist(text: str, name: str | None = None) -> Circuit:
    """Parse a SPICE deck (supported subset) into a :class:`Circuit`.

    The first line is treated as the title (SPICE convention) unless it
    looks like a card.  SPICE ``LAMBDA`` (a fixed 1/V) is converted to the
    length-normalized form of :class:`MOSFETParams` per instance:
    ``lambda_l = LAMBDA * L_instance``, which reproduces the SPICE current
    exactly for that instance.
    """
    lines = text.splitlines()
    if not lines:
        raise SpiceError("empty netlist")
    title = None
    first = lines[0].strip()
    if first and not _looks_like_card(first):
        title = first
        lines = lines[1:]
    circuit = Circuit(name or title or "spice_circuit")
    models: dict[str, MOSFETParams] = {}
    pending_mosfets: list[tuple] = []

    for line in _join_continuations(lines):
        tokens = line.split()
        card = tokens[0].lower()
        if card.startswith(".model"):
            model_name, model = _parse_model_card(tokens, line)
            models[model_name] = model
        elif card in (".end", ".ends"):
            break
        elif card.startswith("."):
            continue  # ignore other control cards (.op/.ac/.param ...)
        elif card.startswith("r"):
            _require(len(tokens) >= 4, line)
            circuit.add(
                Resistor(tokens[0], tokens[1], tokens[2], parse_value(tokens[3]))
            )
        elif card.startswith("c"):
            _require(len(tokens) >= 4, line)
            circuit.add(
                Capacitor(tokens[0], tokens[1], tokens[2], parse_value(tokens[3]))
            )
        elif card.startswith("v") or card.startswith("i"):
            cls = VoltageSource if card.startswith("v") else CurrentSource
            waveform, remainder = _parse_waveform(line)
            if waveform is not None:
                dc, ac = _parse_source_values(remainder.split()[3:], line) if (
                    len(remainder.split()) > 3
                ) else (0.0, 0.0)
                source = cls(tokens[0], tokens[1], tokens[2], dc, ac)
                source.waveform = waveform
                source.dc = waveform(0.0)  # DC analyses see the t=0 value
                circuit.add(source)
            else:
                dc, ac = _parse_source_values(tokens[3:], line)
                circuit.add(cls(tokens[0], tokens[1], tokens[2], dc, ac))
        elif card.startswith("e"):
            _require(len(tokens) >= 6, line)
            circuit.add(
                VCVS(tokens[0], *tokens[1:5], parse_value(tokens[5]))
            )
        elif card.startswith("g"):
            _require(len(tokens) >= 6, line)
            circuit.add(
                VCCS(tokens[0], *tokens[1:5], parse_value(tokens[5]))
            )
        elif card.startswith("m"):
            _require(len(tokens) >= 6, line)
            geometry = {"m": 1.0}
            for key, value in re.findall(r"(\w+)\s*=\s*([^\s]+)", line):
                geometry[key.lower()] = parse_value(value)
            if "w" not in geometry or "l" not in geometry:
                raise SpiceError(f"MOSFET card missing W= or L=: {line!r}")
            pending_mosfets.append(
                (tokens[0], tokens[1:5], tokens[5].lower(), geometry)
            )
        else:
            raise SpiceError(f"unsupported card: {line!r}")

    for mname, nodes, model_name, geometry in pending_mosfets:
        if model_name not in models:
            raise SpiceError(f"MOSFET {mname!r} references unknown model {model_name!r}")
        base = models[model_name]
        length = geometry["l"]
        params = MOSFETParams(
            polarity=base.polarity,
            vth0=base.vth0,
            kp=base.kp,
            lambda_l=base.lambda_l * length,  # SPICE lambda -> per-length form
            gamma=base.gamma,
            phi=base.phi,
            cox=base.cox,
            cov=base.cov,
            cj_w=base.cj_w,
        )
        circuit.add(
            MOSFET(
                mname, *nodes, params=params,
                w=geometry["w"], l=length, m=int(geometry.get("m", 1)),
            )
        )
    return circuit


_WAVEFORM_RE = re.compile(r"(PULSE|SIN)\s*\(([^)]*)\)", re.IGNORECASE)


def _parse_waveform(line: str):
    """Extract a SPICE ``PULSE(...)``/``SIN(...)`` transient waveform.

    Returns ``(waveform_callable | None, line_without_the_waveform)``.
    ``PULSE(v1 v2 td tr tf pw [per])`` and ``SIN(vo va freq [td])`` follow
    the standard SPICE argument orders.
    """
    from repro.circuits.transient import pulse, sine

    match = _WAVEFORM_RE.search(line)
    if not match:
        return None, line
    kind = match.group(1).upper()
    args = [parse_value(tok) for tok in match.group(2).split()]
    if kind == "PULSE":
        if len(args) < 6:
            raise SpiceError(f"PULSE needs >= 6 arguments: {line!r}")
        v1, v2, td, tr, tf, pw = args[:6]
        period = args[6] if len(args) > 6 else None
        waveform = pulse(v1, v2, td, tr, tf, pw, period)
    else:
        if len(args) < 3:
            raise SpiceError(f"SIN needs >= 3 arguments: {line!r}")
        vo, va, freq = args[:3]
        td = args[3] if len(args) > 3 else 0.0
        waveform = sine(vo, va, freq, td)
    remainder = line[: match.start()] + line[match.end():]
    return waveform, remainder.strip()


#: minimum token counts for each element card letter
_CARD_MIN_TOKENS = {"r": 4, "c": 4, "v": 4, "i": 4, "e": 6, "g": 6, "m": 6}


def _looks_like_card(line: str) -> bool:
    """Heuristic used only on the first line (SPICE's title line).

    SPICE treats line 1 as a free-text title; many machine-written decks
    start directly with a card instead.  A line counts as a card when it
    starts with a comment/control/continuation marker or with a known
    element letter *and* carries enough tokens to be well-formed — so
    ``"my amplifier title"`` stays a title even though it starts with 'm'.
    """
    stripped = line.strip()
    if not stripped:
        return False
    if stripped[0] in "*+.":
        return True
    letter = stripped[0].lower()
    if letter not in _CARD_MIN_TOKENS:
        return False
    tokens = stripped.split()
    if len(tokens) < _CARD_MIN_TOKENS[letter]:
        return False
    if letter == "m":
        lowered = stripped.lower()
        return "w=" in lowered and "l=" in lowered
    # element cards carry a numeric value in a known position
    value_pos = _CARD_MIN_TOKENS[letter] - 1
    candidates = [tokens[value_pos]]
    if letter in ("v", "i"):
        if _WAVEFORM_RE.search(stripped):
            return True
        candidates.extend(t for t in tokens[3:] if t.lower() not in ("dc", "ac"))
    for token in candidates:
        try:
            parse_value(token)
            return True
        except SpiceError:
            continue
    return False


def _parse_source_values(tokens: list[str], line: str) -> tuple[float, float]:
    dc, ac = 0.0, 0.0
    i = 0
    seen_value = False
    while i < len(tokens):
        token = tokens[i].lower()
        if token == "dc":
            _require(i + 1 < len(tokens), line)
            dc = parse_value(tokens[i + 1])
            seen_value = True
            i += 2
        elif token == "ac":
            _require(i + 1 < len(tokens), line)
            ac = parse_value(tokens[i + 1])
            i += 2
        else:
            dc = parse_value(tokens[i])
            seen_value = True
            i += 1
    if not seen_value and ac == 0.0:
        raise SpiceError(f"source card without value: {line!r}")
    return dc, ac


def _require(condition: bool, line: str):
    if not condition:
        raise SpiceError(f"malformed card: {line!r}")


def write_netlist(
    circuit: Circuit, title: str | None = None, precision: int = 6
) -> str:
    """Serialize a circuit to a SPICE deck (round-trips with
    :func:`parse_netlist` for the supported device set).

    MOSFET models are emitted per instance (``.MODEL mod_<name>``) because
    our parameter sets are per-device after corner adjustment; the model
    cards carry the capacitance parameters (TOX/CGSO/CGDO/CJSW) so AC
    behavior round-trips, not just the DC equations.  ``precision`` is the
    significant-digit count of every number (6 for readable decks, 17 for
    exact machine round-trips).

    SPICE dispatches on a card's first letter, but our circuits allow
    free-form device names (bias blocks generate ``bn_m1``-style MOSFETs);
    such names get the canonical type letter prefixed (``Mbn_m1``) so the
    deck is legal for :func:`parse_netlist` and real simulators alike.
    Prefixed names are already canonical on re-parse, so a deck reaches a
    textual fixpoint after a single write/parse round trip.
    """

    def fmt(value: float) -> str:
        return format_value(value, precision)

    emitted: set[str] = set()

    def card_name(device, letter: str) -> str:
        name = device.name
        if not name.lower().startswith(letter):
            name = letter.upper() + name
        if name.lower() in emitted:
            raise SpiceError(
                f"cannot serialize circuit {circuit.name!r}: device name "
                f"{device.name!r} collides with another card named {name!r}"
            )
        emitted.add(name.lower())
        return name

    lines = [title or f"* {circuit.name}"]
    model_cards: list[str] = []
    for device in circuit.devices:
        if isinstance(device, Resistor):
            a, b = device.nodes
            lines.append(f"{card_name(device, 'r')} {a} {b} {fmt(device.resistance)}")
        elif isinstance(device, Capacitor):
            a, b = device.nodes
            lines.append(f"{card_name(device, 'c')} {a} {b} {fmt(device.capacitance)}")
        elif isinstance(device, VoltageSource) or isinstance(device, CurrentSource):
            a, b = device.nodes
            letter = "v" if isinstance(device, VoltageSource) else "i"
            card = f"{card_name(device, letter)} {a} {b} DC {fmt(device.dc)}"
            if device.ac:
                card += f" AC {fmt(device.ac)}"
            lines.append(card)
        elif isinstance(device, VCVS):
            lines.append(
                f"{card_name(device, 'e')} {' '.join(device.nodes)} {fmt(device.gain)}"
            )
        elif isinstance(device, VCCS):
            lines.append(
                f"{card_name(device, 'g')} {' '.join(device.nodes)} {fmt(device.gm)}"
            )
        elif isinstance(device, MOSFET):
            name = card_name(device, "m")
            model_name = f"mod_{name.lower()}"
            p = device.params
            mtype = "NMOS" if p.polarity == "n" else "PMOS"
            spice_lambda = p.lambda_l / device.l
            model_cards.append(
                f".MODEL {model_name} {mtype} (LEVEL=1 VTO={fmt(p.vth0)} "
                f"KP={fmt(p.kp)} LAMBDA={fmt(spice_lambda)} "
                f"GAMMA={fmt(p.gamma)} PHI={fmt(p.phi)} "
                f"TOX={fmt(_EPS_OX / p.cox)} "
                f"CGSO={fmt(p.cov)} CGDO={fmt(p.cov)} CJSW={fmt(p.cj_w)})"
            )
            lines.append(
                f"{name} {' '.join(device.nodes)} {model_name} "
                f"W={fmt(device.w)} L={fmt(device.l)} M={device.m}"
            )
        else:
            raise SpiceError(f"cannot serialize device type {type(device).__name__}")
    lines.extend(model_cards)
    lines.append(".END")
    return "\n".join(lines) + "\n"
