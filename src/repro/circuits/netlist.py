"""Circuit container: nodes, devices, and MNA index assignment."""

from __future__ import annotations

from repro.circuits.devices import (
    Capacitor,
    CurrentSource,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
)
from repro.circuits.mosfet import MOSFET, MOSFETParams

GROUND = "0"
#: lower-cased ground spellings; matching is case-insensitive (SPICE node
#: names are), so ``GND``/``Gnd``/``VSS!`` all map to the reference node
_GROUND_ALIASES = {"0", "gnd", "gnd!", "vss!", "ground"}


def is_ground(name) -> bool:
    """Whether a node name is the ground reference (any alias, any case)."""
    return str(name).lower() in _GROUND_ALIASES


class Circuit:
    """A named collection of devices over named nodes.

    Nodes are created implicitly when devices reference them; any of the
    aliases ``0``/``gnd``/``GND`` is the ground reference (MNA index -1).
    Call :meth:`finalize` (done automatically by the analyses) after the
    last device is added to assign matrix indices.
    """

    def __init__(self, name: str = "circuit"):
        self.name = str(name)
        self.devices: list = []
        self._device_by_name: dict[str, object] = {}
        self._node_index: dict[str, int] = {}
        self._n_branches = 0
        self._finalized = False

    # -- construction ------------------------------------------------------------

    def add(self, device) -> object:
        """Add a device instance; names must be unique."""
        if device.name in self._device_by_name:
            raise ValueError(f"duplicate device name {device.name!r}")
        self.devices.append(device)
        self._device_by_name[device.name] = device
        self._finalized = False
        return device

    # convenience constructors -----------------------------------------------------

    def resistor(self, name, a, b, resistance) -> Resistor:
        """Add a resistor and return it."""
        return self.add(Resistor(name, a, b, resistance))

    def capacitor(self, name, a, b, capacitance) -> Capacitor:
        """Add a capacitor and return it."""
        return self.add(Capacitor(name, a, b, capacitance))

    def vsource(self, name, pos, neg, dc, ac=0.0) -> VoltageSource:
        """Add an independent voltage source and return it."""
        return self.add(VoltageSource(name, pos, neg, dc, ac))

    def isource(self, name, node_from, node_to, dc, ac=0.0) -> CurrentSource:
        """Add an independent current source and return it."""
        return self.add(CurrentSource(name, node_from, node_to, dc, ac))

    def vcvs(self, name, out_pos, out_neg, in_pos, in_neg, gain) -> VCVS:
        """Add a voltage-controlled voltage source and return it."""
        return self.add(VCVS(name, out_pos, out_neg, in_pos, in_neg, gain))

    def vccs(self, name, out_pos, out_neg, in_pos, in_neg, gm) -> VCCS:
        """Add a voltage-controlled current source and return it."""
        return self.add(VCCS(name, out_pos, out_neg, in_pos, in_neg, gm))

    def mosfet(self, name, d, g, s, b, params: MOSFETParams, w, l, m=1) -> MOSFET:
        """Add a MOSFET and return it."""
        return self.add(MOSFET(name, d, g, s, b, params, w, l, m))

    # -- lookup ----------------------------------------------------------------------

    def device(self, name: str):
        """Look up a device by name."""
        try:
            return self._device_by_name[name]
        except KeyError:
            raise KeyError(f"no device named {name!r} in circuit {self.name!r}") from None

    @property
    def node_names(self) -> list[str]:
        """All non-ground node names (finalizes the circuit if needed)."""
        self.finalize()
        return sorted(self._node_index, key=self._node_index.get)

    @property
    def n_nodes(self) -> int:
        """Number of non-ground nodes."""
        self.finalize()
        return len(self._node_index)

    @property
    def n_unknowns(self) -> int:
        """MNA system size: node voltages plus branch currents."""
        self.finalize()
        return len(self._node_index) + self._n_branches

    def node_index(self, name: str) -> int:
        """MNA index of a node (-1 for ground)."""
        self.finalize()
        name = str(name)
        if is_ground(name):
            return -1
        try:
            return self._node_index[name]
        except KeyError:
            raise KeyError(f"no node named {name!r} in circuit {self.name!r}") from None

    # -- finalization -----------------------------------------------------------------

    def finalize(self):
        """Assign node and branch indices (idempotent)."""
        if self._finalized:
            return
        if not self.devices:
            raise ValueError(f"circuit {self.name!r} has no devices")
        self._node_index = {}
        for device in self.devices:
            for node in device.nodes:
                node = str(node)
                if is_ground(node) or node in self._node_index:
                    continue
                self._node_index[node] = len(self._node_index)
        n_nodes = len(self._node_index)
        if n_nodes == 0:
            raise ValueError(f"circuit {self.name!r} has only ground nodes")

        def index_of(node_name: str) -> int:
            if is_ground(node_name):
                return -1
            return self._node_index[node_name]

        branch = n_nodes
        for device in self.devices:
            device.assign_nodes(index_of)
            if device.n_branches:
                device.assign_branch(branch)
                branch += device.n_branches
        self._n_branches = branch - n_nodes
        self._finalized = True

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, devices={len(self.devices)}, "
            f"nodes={len(self._node_index) if self._finalized else '?'})"
        )
