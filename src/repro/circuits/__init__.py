"""A small analog circuit simulator: the substrate replacing HSPICE.

Modified-nodal-analysis (MNA) formulation with a damped-Newton DC solver
and a complex-valued small-signal AC sweep, plus a Level-1+ MOSFET model
(square law, channel-length modulation, body effect, overlap capacitance)
with PVT-corner parameter sets.  The two testbenches of the paper's
evaluation (Fig. 3 two-stage op-amp, Fig. 4 charge pump) are built on it.
"""

from repro.circuits.ac import ACAnalysis, ACResult
from repro.circuits.dc import DCAnalysis, DCSolution, ConvergenceError
from repro.circuits.devices import (
    Capacitor,
    CurrentSource,
    Device,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
)
from repro.circuits.measure import (
    dc_gain_db,
    gain_db,
    phase_deg,
    phase_margin_deg,
    unity_gain_frequency,
)
from repro.circuits.mosfet import MOSFET, MOSFETParams, nmos_180, pmos_180
from repro.circuits.netlist import Circuit, GROUND
from repro.circuits.pvt import PVTCorner, ProcessCorner, standard_corners
from repro.circuits.sweep import DCSweep, SweepResult, operating_region_report
from repro.circuits.transient import (
    TransientAnalysis,
    TransientResult,
    pulse,
    sine,
)

__all__ = [
    "ACAnalysis",
    "ACResult",
    "Capacitor",
    "Circuit",
    "ConvergenceError",
    "CurrentSource",
    "DCAnalysis",
    "DCSolution",
    "DCSweep",
    "Device",
    "GROUND",
    "MOSFET",
    "MOSFETParams",
    "PVTCorner",
    "ProcessCorner",
    "Resistor",
    "SweepResult",
    "TransientAnalysis",
    "TransientResult",
    "VCCS",
    "VCVS",
    "VoltageSource",
    "dc_gain_db",
    "gain_db",
    "nmos_180",
    "operating_region_report",
    "phase_deg",
    "phase_margin_deg",
    "pmos_180",
    "pulse",
    "sine",
    "standard_corners",
    "unity_gain_frequency",
]
