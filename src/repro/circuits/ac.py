"""Small-signal AC analysis: complex MNA sweep at a DC operating point."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.dc import DCAnalysis, DCSolution
from repro.circuits.mna import ACSystem
from repro.circuits.netlist import Circuit


@dataclass
class ACResult:
    """Frequency sweep result.

    ``x`` holds the full complex solution per frequency, shape
    ``(n_freqs, n_unknowns)``; :meth:`transfer` extracts a node's phasor.
    """

    circuit: Circuit
    freqs: np.ndarray
    x: np.ndarray

    def transfer(self, node: str) -> np.ndarray:
        """Complex node voltage over the sweep (the transfer function when
        the stimulus has unit AC magnitude)."""
        idx = self.circuit.node_index(node)
        if idx < 0:
            return np.zeros(len(self.freqs), dtype=complex)
        return self.x[:, idx].copy()

    def branch_current(self, device_name: str) -> np.ndarray:
        """Complex branch current of a voltage-defined device over the sweep."""
        device = self.circuit.device(device_name)
        if device.n_branches == 0:
            raise ValueError(f"{device_name!r} has no branch current")
        return self.x[:, device.branch_idx].copy()


class ACAnalysis:
    """Linearized frequency sweep around a converged DC solution.

    The DC solve (which caches every MOSFET's operating point) must be done
    first; :meth:`sweep` accepts the :class:`DCSolution` to make that
    ordering explicit.
    """

    def __init__(self, circuit: Circuit, gmin: float = 1e-12):
        self.circuit = circuit
        self.gmin = float(gmin)
        circuit.finalize()

    def sweep(self, dc_solution: DCSolution, freqs) -> ACResult:
        """Solve the complex MNA system at each frequency."""
        if dc_solution.circuit is not self.circuit:
            raise ValueError("DC solution belongs to a different circuit")
        freqs = np.asarray(freqs, dtype=float).ravel()
        if freqs.size == 0 or np.any(freqs <= 0):
            raise ValueError("frequencies must be positive and non-empty")
        n = self.circuit.n_unknowns
        out = np.empty((freqs.size, n), dtype=complex)
        for k, freq in enumerate(freqs):
            omega = 2.0 * np.pi * freq
            system = ACSystem(n, gmin=self.gmin)
            for device in self.circuit.devices:
                device.stamp_ac(system, omega)
            system.apply_gmin(self.circuit.n_nodes)
            out[k] = system.solve()
        return ACResult(self.circuit, freqs, out)


def operating_point(circuit: Circuit, initial=None, **dc_kwargs) -> DCSolution:
    """Convenience: run a DC analysis with default settings."""
    return DCAnalysis(circuit, **dc_kwargs).solve(initial=initial)


def log_freqs(f_start: float, f_stop: float, points_per_decade: int = 10) -> np.ndarray:
    """Logarithmically spaced sweep frequencies, SPICE ``.AC DEC`` style."""
    if f_start <= 0 or f_stop <= f_start:
        raise ValueError("need 0 < f_start < f_stop")
    if points_per_decade < 1:
        raise ValueError("points_per_decade must be >= 1")
    decades = np.log10(f_stop / f_start)
    n = max(int(np.ceil(decades * points_per_decade)) + 1, 2)
    return np.logspace(np.log10(f_start), np.log10(f_stop), n)
