"""Measurement utilities for frequency responses.

Implements the three op-amp metrics of the paper's Table I experiment:
open-loop GAIN (dB), unity-gain frequency (UGF) and phase margin (PM),
extracted from a swept complex transfer function with log-domain
interpolation between sweep points.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.units import db20


def gain_db(tf: np.ndarray) -> np.ndarray:
    """Magnitude of a complex transfer function in dB."""
    return db20(np.abs(np.asarray(tf, dtype=complex)))


def phase_deg(tf: np.ndarray, unwrap: bool = True) -> np.ndarray:
    """Phase in degrees (unwrapped along the sweep by default)."""
    phase = np.angle(np.asarray(tf, dtype=complex))
    if unwrap:
        phase = np.unwrap(phase)
    return np.degrees(phase)


def dc_gain_db(tf: np.ndarray) -> float:
    """Low-frequency gain: magnitude at the first sweep point, in dB."""
    tf = np.asarray(tf, dtype=complex)
    if tf.size == 0:
        raise ValueError("empty transfer function")
    return float(db20(abs(tf[0])))


def unity_gain_frequency(freqs: np.ndarray, tf: np.ndarray) -> float:
    """First frequency where the magnitude crosses 0 dB (downwards).

    Interpolates log-frequency vs. dB-magnitude between sweep points.
    Returns 0.0 when the response never reaches 0 dB (gain < 1 everywhere)
    and ``freqs[0]`` when it starts below 0 dB — both conventions make the
    ``UGF > spec`` constraint fail cleanly for broken designs.
    """
    freqs = np.asarray(freqs, dtype=float)
    mag_db = gain_db(tf)
    if freqs.shape != mag_db.shape:
        raise ValueError("freqs and tf must have matching shapes")
    if mag_db[0] < 0.0:
        return float(freqs[0])
    above = mag_db >= 0.0
    if np.all(above):
        return 0.0
    k = int(np.argmax(~above))  # first index below 0 dB
    f_lo, f_hi = freqs[k - 1], freqs[k]
    m_lo, m_hi = mag_db[k - 1], mag_db[k]
    if m_lo == m_hi:
        return float(f_lo)
    t = m_lo / (m_lo - m_hi)
    return float(10.0 ** (np.log10(f_lo) + t * (np.log10(f_hi) - np.log10(f_lo))))


def phase_at(freqs: np.ndarray, tf: np.ndarray, freq: float) -> float:
    """Unwrapped phase (degrees, relative to the DC phase) at ``freq``.

    Referencing the phase to its low-frequency value makes the measurement
    independent of whether the measured path is inverting — the standard
    designer's convention for phase-margin reading.
    """
    freqs = np.asarray(freqs, dtype=float)
    phase = phase_deg(tf)
    phase_rel = phase - phase[0]
    return float(np.interp(np.log10(freq), np.log10(freqs), phase_rel))


def phase_margin_deg(freqs: np.ndarray, tf: np.ndarray) -> float:
    """Phase margin ``180 deg + phase(UGF)`` of an open-loop response.

    Returns 0.0 for responses with no unity-gain crossing (already failed
    the UGF constraint anyway).
    """
    ugf = unity_gain_frequency(freqs, tf)
    if ugf <= 0.0:
        return 0.0
    return 180.0 + phase_at(freqs, tf, ugf)


def gain_margin_db(freqs: np.ndarray, tf: np.ndarray) -> float:
    """Gain margin: -|T| in dB at the -180 deg (relative) phase crossing.

    Returns ``inf`` when the phase never reaches -180 degrees within the
    sweep (no crossing implies unconditional stability in-band).
    """
    freqs = np.asarray(freqs, dtype=float)
    phase_rel = phase_deg(tf) - phase_deg(tf)[0]
    mag = gain_db(tf)
    below = phase_rel <= -180.0
    if not np.any(below):
        return float("inf")
    k = int(np.argmax(below))
    if k == 0:
        return float(-mag[0])
    # linear interpolation in log-f for the crossing point
    p_lo, p_hi = phase_rel[k - 1], phase_rel[k]
    t = (p_lo + 180.0) / (p_lo - p_hi)
    log_f = np.log10(freqs[k - 1]) + t * (np.log10(freqs[k]) - np.log10(freqs[k - 1]))
    mag_at = np.interp(log_f, np.log10(freqs), mag)
    return float(-mag_at)
