"""Damped-Newton DC operating-point solver with homotopy fallbacks.

The solver uses the standard SPICE recipe:

1. companion-model Newton iteration (each nonlinear device stamps its
   linearization at the current iterate),
2. per-step voltage limiting (trust region) to tame the square-law's
   quadratic overshoot,
3. ``gmin`` stepping and source stepping as fallbacks when plain Newton
   fails to converge from the initial guess.

Testbenches call this hundreds of times per optimization run, so failures
must be *reported* (raised as :class:`ConvergenceError`) rather than
silently returning garbage — the sizing problem maps them to penalty
evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.mna import MNASystem
from repro.circuits.mosfet import MOSFET, MOSOperatingPoint
from repro.circuits.netlist import Circuit


class ConvergenceError(RuntimeError):
    """Raised when the DC operating point cannot be found."""


@dataclass
class DCSolution:
    """Converged DC solution with name-based accessors."""

    circuit: Circuit
    x: np.ndarray
    iterations: int

    def voltage(self, node: str) -> float:
        """DC voltage of a named node (0.0 for ground)."""
        idx = self.circuit.node_index(node)
        return 0.0 if idx < 0 else float(self.x[idx])

    def branch_current(self, device_name: str) -> float:
        """Branch current of a voltage-defined device (SPICE sign convention:
        positive into the positive terminal)."""
        device = self.circuit.device(device_name)
        if device.n_branches == 0:
            raise ValueError(f"{device_name!r} has no branch current")
        return float(self.x[device.branch_idx])

    def op(self, device_name: str) -> MOSOperatingPoint:
        """Operating point of a MOSFET."""
        device = self.circuit.device(device_name)
        if not isinstance(device, MOSFET):
            raise TypeError(f"{device_name!r} is not a MOSFET")
        if device.last_op is None:
            raise RuntimeError("device has no cached operating point")
        return device.last_op


class DCAnalysis:
    """Newton-based DC operating-point analysis for a circuit.

    Parameters
    ----------
    circuit:
        The circuit to solve (finalized automatically).
    max_iterations:
        Newton iterations per attempt.
    vtol, reltol:
        Convergence test: every voltage update must satisfy
        ``|dv| < vtol + reltol * |v|``.
    max_step:
        Per-iteration voltage-update clamp [V].
    gmin:
        Always-on conductance from each node to ground.
    """

    def __init__(
        self,
        circuit: Circuit,
        max_iterations: int = 200,
        vtol: float = 1e-9,
        reltol: float = 1e-6,
        max_step: float = 0.4,
        gmin: float = 1e-12,
    ):
        self.circuit = circuit
        self.max_iterations = int(max_iterations)
        self.vtol = float(vtol)
        self.reltol = float(reltol)
        self.max_step = float(max_step)
        self.gmin = float(gmin)
        circuit.finalize()

    # -- public API ------------------------------------------------------------

    def solve(self, initial: dict | np.ndarray | None = None) -> DCSolution:
        """Find the DC operating point, trying homotopies if Newton fails."""
        x0 = self._initial_vector(initial)

        x = self._newton(x0, gmin=self.gmin, source_scale=1.0)
        if x is None:
            x = self._gmin_stepping(x0)
        if x is None:
            x = self._source_stepping(x0)
        if x is None:
            raise ConvergenceError(
                f"DC analysis of {self.circuit.name!r} failed to converge"
            )
        iterations = self._last_iterations
        self._refresh_operating_points(x)
        return DCSolution(self.circuit, x, iterations)

    # -- Newton machinery --------------------------------------------------------

    def _initial_vector(self, initial) -> np.ndarray:
        n = self.circuit.n_unknowns
        if initial is None:
            return np.zeros(n)
        if isinstance(initial, dict):
            x0 = np.zeros(n)
            for node, value in initial.items():
                idx = self.circuit.node_index(node)
                if idx >= 0:
                    x0[idx] = float(value)
            return x0
        initial = np.asarray(initial, dtype=float)
        if initial.shape != (n,):
            raise ValueError(f"initial vector must have shape ({n},)")
        return initial.copy()

    def _newton(
        self, x0: np.ndarray, gmin: float, source_scale: float
    ) -> np.ndarray | None:
        n_nodes = self.circuit.n_nodes
        x = x0.copy()
        self._last_iterations = 0
        for iteration in range(1, self.max_iterations + 1):
            system = MNASystem(
                self.circuit.n_unknowns, source_scale=source_scale, gmin=gmin
            )
            for device in self.circuit.devices:
                device.stamp_dc(system, x)
            system.apply_gmin(n_nodes)
            try:
                x_new = system.solve()
            except np.linalg.LinAlgError:
                return None
            if not np.all(np.isfinite(x_new)):
                return None
            delta = x_new - x
            # clamp only voltage updates; branch currents follow linearly
            dv = delta[:n_nodes]
            clipped = np.clip(dv, -self.max_step, self.max_step)
            x[:n_nodes] += clipped
            x[n_nodes:] = x_new[n_nodes:]
            self._last_iterations = iteration
            tol = self.vtol + self.reltol * np.abs(x[:n_nodes])
            if np.all(np.abs(dv) < tol):
                return x
        return None

    def _gmin_stepping(self, x0: np.ndarray) -> np.ndarray | None:
        x = x0.copy()
        for gmin in (1e-2, 1e-4, 1e-6, 1e-8, 1e-10, self.gmin):
            x_next = self._newton(x, gmin=gmin, source_scale=1.0)
            if x_next is None:
                return None
            x = x_next
        return x

    def _source_stepping(self, x0: np.ndarray) -> np.ndarray | None:
        x = x0.copy()
        for scale in (0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0):
            x_next = self._newton(x, gmin=self.gmin, source_scale=scale)
            if x_next is None:
                return None
            x = x_next
        return x

    def _refresh_operating_points(self, x: np.ndarray):
        """Re-stamp once at the solution so devices cache their final op."""
        system = MNASystem(self.circuit.n_unknowns, source_scale=1.0, gmin=self.gmin)
        for device in self.circuit.devices:
            device.stamp_dc(system, x)
