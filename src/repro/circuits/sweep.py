"""DC sweep analysis: transfer curves and operating-region reports.

Sweeps the DC value of one source while re-solving the operating point
with warm starts — the workhorse for transfer characteristics (inverter
VTC, mirror compliance curves) and the same machinery the charge-pump
testbench uses internally for its output-voltage sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.dc import ConvergenceError, DCAnalysis
from repro.circuits.devices import CurrentSource, VoltageSource
from repro.circuits.mosfet import MOSFET
from repro.circuits.netlist import Circuit


@dataclass
class SweepResult:
    """Solutions of a DC sweep: ``x[k]`` corresponds to ``values[k]``."""

    circuit: Circuit
    source_name: str
    values: np.ndarray
    x: np.ndarray

    def voltage(self, node: str) -> np.ndarray:
        """Voltage of a node across the sweep."""
        idx = self.circuit.node_index(node)
        if idx < 0:
            return np.zeros(len(self.values))
        return self.x[:, idx].copy()

    def branch_current(self, device_name: str) -> np.ndarray:
        """Branch current of a voltage-defined device across the sweep."""
        device = self.circuit.device(device_name)
        if device.n_branches == 0:
            raise ValueError(f"{device_name!r} has no branch current")
        return self.x[:, device.branch_idx].copy()


class DCSweep:
    """Sweep one independent source's DC value.

    Parameters
    ----------
    circuit:
        The circuit (finalized automatically).
    source_name:
        Name of the :class:`VoltageSource` or :class:`CurrentSource` to
        sweep; its ``dc`` attribute is mutated during the sweep and
        restored afterwards.
    """

    def __init__(self, circuit: Circuit, source_name: str, **dc_kwargs):
        self.circuit = circuit
        self.source = circuit.device(source_name)
        if not isinstance(self.source, (VoltageSource, CurrentSource)):
            raise TypeError(
                f"{source_name!r} is not an independent source"
            )
        self.analysis = DCAnalysis(circuit, **dc_kwargs)

    def run(self, values, initial=None) -> SweepResult:
        """Solve at each source value, warm-starting from the previous one.

        Points that fail to converge are recorded as NaN rows rather than
        aborting the sweep (compliance-limit regions of current sources
        legitimately have no solution in simplified models).
        """
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            raise ValueError("sweep needs at least one value")
        n = self.circuit.n_unknowns
        out = np.empty((values.size, n))
        original = self.source.dc
        warm = initial
        try:
            for k, value in enumerate(values):
                self.source.dc = float(value)
                try:
                    solution = self.analysis.solve(initial=warm)
                except ConvergenceError:
                    out[k] = np.nan
                    warm = None
                    continue
                out[k] = solution.x
                warm = solution.x.copy()
        finally:
            self.source.dc = original
        return SweepResult(self.circuit, self.source.name, values, out)


def operating_region_report(circuit: Circuit, solution) -> dict[str, dict]:
    """Summarize every MOSFET's bias point after a DC solve.

    Returns ``{device: {region, ids, vgs, vds, vov, gm, gds}}`` — the
    designer's "annotate the schematic" view, used by examples and by
    testbench debugging.
    """
    report = {}
    for device in circuit.devices:
        if not isinstance(device, MOSFET):
            continue
        op = device.last_op
        if op is None:
            continue
        report[device.name] = {
            "region": op.region,
            "ids": op.ids,
            "vgs": op.vgs,
            "vds": op.vds,
            "vov": op.vov,
            "gm": op.gm,
            "gds": op.gds,
        }
    return report
