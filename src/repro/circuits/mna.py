"""Modified-nodal-analysis matrix assembly.

Unknown vector layout: node voltages first (ground excluded, index ``-1``),
then one branch current per voltage-defined element (voltage sources,
VCVS).  Devices stamp themselves through the small API here; stamps aimed
at ground rows/columns are silently dropped, which keeps device code free
of ground special-casing.

Sign conventions (documented once, relied on everywhere):

* rows are KCL equations, "sum of currents *leaving* the node through
  devices equals current injected by sources" (``G v = b``);
* a voltage source's branch current is positive when conventional current
  flows *into its positive terminal* from the circuit (SPICE convention) —
  the charge-pump testbench measures its output currents this way.
"""

from __future__ import annotations

import numpy as np


class MNASystem:
    """Real-valued MNA system for the DC Newton iteration."""

    def __init__(self, size: int, source_scale: float = 1.0, gmin: float = 1e-12):
        if size < 1:
            raise ValueError(f"system size must be >= 1, got {size}")
        self.size = int(size)
        self.matrix = np.zeros((size, size))
        self.rhs = np.zeros(size)
        self.source_scale = float(source_scale)
        self.gmin = float(gmin)

    # -- raw access -------------------------------------------------------------

    def add_matrix(self, row: int, col: int, value: float):
        """Add to one matrix entry; ground indices (< 0) are dropped."""
        if row >= 0 and col >= 0:
            self.matrix[row, col] += value

    def add_rhs(self, row: int, value: float):
        """Add to one right-hand-side entry; ground rows are dropped."""
        if row >= 0:
            self.rhs[row] += value

    # -- common stamps ---------------------------------------------------------------

    def add_conductance(self, node_a: int, node_b: int, g: float):
        """Two-terminal conductance between ``node_a`` and ``node_b``."""
        self.add_matrix(node_a, node_a, g)
        self.add_matrix(node_b, node_b, g)
        self.add_matrix(node_a, node_b, -g)
        self.add_matrix(node_b, node_a, -g)

    def add_vccs(self, out_p: int, out_n: int, in_p: int, in_n: int, gm: float):
        """Current ``gm * (v_inp - v_inn)`` leaving ``out_p``, entering ``out_n``."""
        self.add_matrix(out_p, in_p, gm)
        self.add_matrix(out_p, in_n, -gm)
        self.add_matrix(out_n, in_p, -gm)
        self.add_matrix(out_n, in_n, gm)

    def add_current_injection(self, node_from: int, node_to: int, current: float):
        """Ideal current source driving ``current`` from node_from to node_to."""
        self.add_rhs(node_from, -current)
        self.add_rhs(node_to, current)

    def add_voltage_branch(self, pos: int, neg: int, branch: int, voltage: float):
        """Voltage-source stamp: enforce ``v_pos - v_neg = voltage`` via branch row."""
        self.add_matrix(pos, branch, 1.0)
        self.add_matrix(neg, branch, -1.0)
        self.add_matrix(branch, pos, 1.0)
        self.add_matrix(branch, neg, -1.0)
        self.add_rhs(branch, voltage)

    def apply_gmin(self, n_nodes: int):
        """Tiny conductance from every node to ground.

        Keeps the Jacobian non-singular when devices are cut off or nodes
        float mid-iteration — the standard SPICE ``gmin`` device.
        """
        for i in range(min(n_nodes, self.size)):
            self.matrix[i, i] += self.gmin

    def solve(self) -> np.ndarray:
        """Direct solve of the assembled system."""
        return np.linalg.solve(self.matrix, self.rhs)


class ACSystem:
    """Complex-valued small-signal system ``Y(omega) x = b``."""

    def __init__(self, size: int, gmin: float = 1e-12):
        if size < 1:
            raise ValueError(f"system size must be >= 1, got {size}")
        self.size = int(size)
        self.matrix = np.zeros((size, size), dtype=complex)
        self.rhs = np.zeros(size, dtype=complex)
        self.gmin = float(gmin)
        # AC stamps reuse the DC helpers through duck typing
        self.source_scale = 1.0

    add_matrix = MNASystem.add_matrix
    add_rhs = MNASystem.add_rhs
    add_conductance = MNASystem.add_conductance
    add_vccs = MNASystem.add_vccs
    add_current_injection = MNASystem.add_current_injection
    add_voltage_branch = MNASystem.add_voltage_branch
    apply_gmin = MNASystem.apply_gmin

    def add_capacitor(self, node_a: int, node_b: int, cap: float, omega: float):
        """Capacitor admittance ``j omega C`` between two nodes."""
        y = 1j * omega * cap
        self.add_matrix(node_a, node_a, y)
        self.add_matrix(node_b, node_b, y)
        self.add_matrix(node_a, node_b, -y)
        self.add_matrix(node_b, node_a, -y)

    def solve(self) -> np.ndarray:
        """Direct solve of the assembled complex system."""
        return np.linalg.solve(self.matrix, self.rhs)
