"""Generic constrained surrogate-based Bayesian optimization (Algorithm 1).

The driver is deliberately surrogate-agnostic: the paper's method and the
WEIBO baseline differ *only* in the ``surrogate_factory`` they plug in
(NN-feature-GP ensemble vs. explicit-kernel GP), exactly mirroring the
paper's experimental control.

Per iteration (Fig. 2):

1. fit one fresh surrogate to the objective and one per constraint
   (fresh = newly constructed by the factory, so hyper-parameters are
   randomly re-initialized each round as in Algorithm 1),
2. maximize the wEI acquisition (eq. 7) over the unit box,
3. simulate the proposed design, append it to the dataset.
"""

from __future__ import annotations

import numpy as np

from repro.acquisition.maximize import (
    AcquisitionMaximizer,
    DifferentialEvolutionMaximizer,
)
from repro.acquisition.wei import WeightedExpectedImprovement
from repro.bo.design import make_design
from repro.bo.history import OptimizationResult
from repro.bo.problem import Problem
from repro.utils.rng import ensure_rng


class SurrogateBO:
    """Constrained Bayesian optimization with pluggable surrogates.

    Parameters
    ----------
    problem:
        The :class:`~repro.bo.problem.Problem` to minimize.
    surrogate_factory:
        Callable ``(rng) -> model`` returning a fresh surrogate with
        ``fit(x, y)`` and ``predict(x) -> (mean, var)``.  Called once per
        modelled quantity per iteration.
    n_initial:
        Size of the random initial design (Algorithm 1, line 1).
    max_evaluations:
        Total simulation budget including the initial design.
    initial_design:
        ``"lhs"`` (default), ``"random"`` or ``"sobol"``.
    acq_maximizer:
        Inner-loop engine; defaults to
        :class:`DifferentialEvolutionMaximizer`.
    acquisition:
        ``"wei"`` (paper, eq. 7) or ``"thompson"`` — the latter draws one
        exact posterior function per iteration from weight-space surrogates
        (NN-GP only; an extension documented in DESIGN.md).
    log_space_acq:
        Evaluate wEI in log space.  ``None`` (default) auto-enables it when
        the problem has four or more constraints (the Table II charge pump
        has five, where the plain PF product underflows).
    duplicate_tol:
        Proposals closer than this (in unit-box metric) to an existing
        sample are replaced by a random point — repeating a deterministic
        simulation carries no information.
    seed, verbose, callback:
        Reproducibility / reporting hooks.  ``callback(iteration, result)``
        runs after every evaluation.
    """

    algorithm_name = "SurrogateBO"

    def __init__(
        self,
        problem: Problem,
        surrogate_factory,
        n_initial: int = 30,
        max_evaluations: int = 100,
        initial_design: str = "lhs",
        acq_maximizer: AcquisitionMaximizer | None = None,
        acquisition: str = "wei",
        log_space_acq: bool | None = None,
        duplicate_tol: float = 1e-9,
        seed=None,
        verbose: bool = False,
        callback=None,
        name: str | None = None,
    ):
        if n_initial < 2:
            raise ValueError(f"n_initial must be >= 2, got {n_initial}")
        if max_evaluations < n_initial:
            raise ValueError(
                f"max_evaluations ({max_evaluations}) must cover the initial "
                f"design ({n_initial})"
            )
        self.problem = problem
        self.surrogate_factory = surrogate_factory
        self.n_initial = int(n_initial)
        self.max_evaluations = int(max_evaluations)
        self.initial_design = str(initial_design)
        self.acq_maximizer = acq_maximizer or DifferentialEvolutionMaximizer()
        if acquisition not in ("wei", "thompson"):
            raise ValueError(
                f"acquisition must be 'wei' or 'thompson', got {acquisition!r}"
            )
        self.acquisition = str(acquisition)
        if log_space_acq is None:
            log_space_acq = problem.n_constraints >= 4
        self.log_space_acq = bool(log_space_acq)
        self.duplicate_tol = float(duplicate_tol)
        self.rng = ensure_rng(seed)
        self.verbose = bool(verbose)
        self.callback = callback
        if name is not None:
            self.algorithm_name = name

    # -- main loop ---------------------------------------------------------------

    def run(self) -> OptimizationResult:
        """Execute Algorithm 1 and return the evaluation trace."""
        result = OptimizationResult(self.problem.name, self.algorithm_name)
        unit_x: list[np.ndarray] = []

        for u in make_design(self.initial_design, self.n_initial, self.problem.dim, self.rng):
            self._evaluate_and_record(u, result, unit_x, phase="initial")

        iteration = 0
        while result.n_evaluations < self.max_evaluations:
            iteration += 1
            proposal = self._propose(np.stack(unit_x), result)
            self._evaluate_and_record(proposal, result, unit_x, phase="search")
            if self.verbose:
                best = result.best_objective()
                print(
                    f"[{self.algorithm_name}] iter {iteration:3d} "
                    f"evals {result.n_evaluations:4d} best {best:.6g}"
                )
            if self.callback is not None:
                self.callback(iteration, result)
        return result

    # -- helpers -------------------------------------------------------------------

    def _evaluate_and_record(self, u, result, unit_x, phase):
        evaluation = self.problem.evaluate_unit(u)
        result.append(self.problem.scaler.inverse_transform(u), evaluation, phase=phase)
        unit_x.append(np.asarray(u, dtype=float))

    def _propose(self, x_unit: np.ndarray, result: OptimizationResult) -> np.ndarray:
        objective = _sanitize_targets(result.objectives)
        constraints = result.constraint_matrix

        objective_model = self.surrogate_factory(self.rng)
        objective_model.fit(x_unit, objective)
        constraint_models = []
        for i in range(self.problem.n_constraints):
            model = self.surrogate_factory(self.rng)
            model.fit(x_unit, _sanitize_targets(constraints[:, i]))
            constraint_models.append(model)

        if self.acquisition == "thompson":
            from repro.acquisition.thompson import ThompsonSamplingAcquisition

            acquisition_fn = ThompsonSamplingAcquisition(
                objective_model, constraint_models, rng=self.rng
            )
        else:
            tau = result.best_objective()
            tau = None if not np.isfinite(tau) else tau
            acquisition_fn = WeightedExpectedImprovement(
                objective_model,
                constraint_models,
                tau=tau,
                log_space=self.log_space_acq,
            )
        proposal = self.acq_maximizer.maximize(
            acquisition_fn, self.problem.dim, self.rng
        )
        if self._is_duplicate(proposal, x_unit):
            proposal = self.rng.uniform(0.0, 1.0, size=self.problem.dim)
        return proposal

    def _is_duplicate(self, proposal: np.ndarray, x_unit: np.ndarray) -> bool:
        dists = np.max(np.abs(x_unit - proposal[None, :]), axis=1)
        return bool(np.any(dists < self.duplicate_tol))


def _sanitize_targets(y: np.ndarray) -> np.ndarray:
    """Make simulation outputs digestible for surrogate fitting.

    Two pathologies appear in circuit data: non-finite values from failed
    simulations (mapped to "much worse than anything seen", preserving the
    ranking) and extreme finite outliers from degenerate designs (a broken
    bias point can measure orders of magnitude off), which wreck target
    normalization.  Outliers are winsorized at ``median +- 10 IQR`` — far
    beyond any informative variation, so ordinary targets pass unchanged.
    """
    y = np.asarray(y, dtype=float).copy()
    bad = ~np.isfinite(y)
    if np.any(bad):
        good = y[~bad]
        if good.size == 0:
            y[...] = 0.0
            return y
        span = float(np.ptp(good))
        worst = float(np.max(good))
        y[bad] = worst + max(span, 1.0)
    q25, q50, q75 = np.percentile(y, [25.0, 50.0, 75.0])
    iqr = q75 - q25
    if iqr > 0.0:
        y = np.clip(y, q50 - 10.0 * iqr, q50 + 10.0 * iqr)
    return y
