"""Generic constrained surrogate-based Bayesian optimization (Algorithm 1).

The driver is deliberately surrogate-agnostic: the paper's method and the
WEIBO baseline differ *only* in the ``surrogate_factory`` they plug in
(NN-feature-GP ensemble vs. explicit-kernel GP), exactly mirroring the
paper's experimental control.

Per iteration (Fig. 2):

1. fit one fresh surrogate to the objective and one per constraint
   (fresh = newly constructed by the factory, so hyper-parameters are
   randomly re-initialized each round as in Algorithm 1),
2. maximize the wEI acquisition (eq. 7) over the unit box,
3. simulate the proposed design, append it to the dataset.
"""

from __future__ import annotations

import numpy as np

from repro.acquisition.maximize import (
    AcquisitionMaximizer,
    DifferentialEvolutionMaximizer,
)
from repro.acquisition.wei import WeightedExpectedImprovement
from repro.bo.design import make_design
from repro.bo.history import OptimizationResult
from repro.bo.problem import Problem
from repro.utils.rng import ensure_rng


class SurrogateBO:
    """Constrained Bayesian optimization with pluggable surrogates.

    Parameters
    ----------
    problem:
        The :class:`~repro.bo.problem.Problem` to minimize.
    surrogate_factory:
        Callable ``(rng) -> model`` returning a fresh surrogate with
        ``fit(x, y)`` and ``predict(x) -> (mean, var)``.  Called once per
        modelled quantity per iteration (the per-target loop path used by
        the WEIBO/GP baselines).
    surrogate_bank_factory:
        Callable ``(rng, n_targets) -> bank`` returning a fresh
        :class:`~repro.core.batched_gp.SurrogateBank`-style object with
        ``fit(x, targets)`` (``targets`` of shape ``(n_targets, N)``) and
        ``target_model(t) -> predict-protocol model``.  When provided it
        replaces the per-target factory loop with ONE batched fit of the
        objective and all constraints together (the paper method's hot
        path); ``surrogate_factory`` may still be passed alongside for
        introspection/compatibility but is not called by :meth:`_propose`.
        Only supported with the ``"wei"`` acquisition.
    n_initial:
        Size of the random initial design (Algorithm 1, line 1).
    max_evaluations:
        Total simulation budget including the initial design.
    initial_design:
        ``"lhs"`` (default), ``"random"`` or ``"sobol"``.
    acq_maximizer:
        Inner-loop engine; defaults to
        :class:`DifferentialEvolutionMaximizer`.
    acquisition:
        ``"wei"`` (paper, eq. 7) or ``"thompson"`` — the latter draws one
        exact posterior function per iteration from weight-space surrogates
        (NN-GP only; an extension documented in DESIGN.md).
    log_space_acq:
        Evaluate wEI in log space.  ``None`` (default) auto-enables it when
        the problem has four or more constraints (the Table II charge pump
        has five, where the plain PF product underflows).
    duplicate_tol:
        Proposals closer than this (in unit-box metric) to an existing
        sample are replaced by a random point — repeating a deterministic
        simulation carries no information.
    seed, verbose, callback:
        Reproducibility / reporting hooks.  ``callback(iteration, result)``
        runs after every evaluation.
    """

    algorithm_name = "SurrogateBO"

    def __init__(
        self,
        problem: Problem,
        surrogate_factory=None,
        n_initial: int = 30,
        max_evaluations: int = 100,
        initial_design: str = "lhs",
        acq_maximizer: AcquisitionMaximizer | None = None,
        acquisition: str = "wei",
        log_space_acq: bool | None = None,
        duplicate_tol: float = 1e-9,
        surrogate_bank_factory=None,
        seed=None,
        verbose: bool = False,
        callback=None,
        name: str | None = None,
    ):
        if n_initial < 2:
            raise ValueError(f"n_initial must be >= 2, got {n_initial}")
        if max_evaluations < n_initial:
            raise ValueError(
                f"max_evaluations ({max_evaluations}) must cover the initial "
                f"design ({n_initial})"
            )
        if surrogate_factory is None and surrogate_bank_factory is None:
            raise ValueError(
                "provide surrogate_factory and/or surrogate_bank_factory"
            )
        self.problem = problem
        self.surrogate_factory = surrogate_factory
        self.surrogate_bank_factory = surrogate_bank_factory
        self.n_initial = int(n_initial)
        self.max_evaluations = int(max_evaluations)
        self.initial_design = str(initial_design)
        self.acq_maximizer = acq_maximizer or DifferentialEvolutionMaximizer()
        if acquisition not in ("wei", "thompson"):
            raise ValueError(
                f"acquisition must be 'wei' or 'thompson', got {acquisition!r}"
            )
        if surrogate_bank_factory is not None and acquisition == "thompson":
            raise ValueError(
                "the banked surrogate path supports only the 'wei' acquisition; "
                "use the per-target surrogate_factory for Thompson sampling"
            )
        self.acquisition = str(acquisition)
        if log_space_acq is None:
            log_space_acq = problem.n_constraints >= 4
        self.log_space_acq = bool(log_space_acq)
        self.duplicate_tol = float(duplicate_tol)
        self.rng = ensure_rng(seed)
        self.verbose = bool(verbose)
        self.callback = callback
        if name is not None:
            self.algorithm_name = name

    # -- main loop ---------------------------------------------------------------

    def run(self) -> OptimizationResult:
        """Execute Algorithm 1 and return the evaluation trace."""
        result = OptimizationResult(self.problem.name, self.algorithm_name)
        unit_x: list[np.ndarray] = []
        self._cache_hits0, self._cache_misses0 = self.problem.cache_stats

        for u in make_design(self.initial_design, self.n_initial, self.problem.dim, self.rng):
            self._evaluate_and_record(u, result, unit_x, phase="initial")

        iteration = 0
        while result.n_evaluations < self.max_evaluations:
            iteration += 1
            proposal = self._propose(np.stack(unit_x), result)
            self._evaluate_and_record(proposal, result, unit_x, phase="search")
            if self.verbose:
                best = result.best_objective()
                print(
                    f"[{self.algorithm_name}] iter {iteration:3d} "
                    f"evals {result.n_evaluations:4d} best {best:.6g}"
                )
            if self.callback is not None:
                self.callback(iteration, result)
        return result

    # -- helpers -------------------------------------------------------------------

    def _evaluate_and_record(self, u, result, unit_x, phase):
        evaluation = self.problem.evaluate_unit(u)
        result.append(self.problem.scaler.inverse_transform(u), evaluation, phase=phase)
        unit_x.append(np.asarray(u, dtype=float))
        hits, misses = self.problem.cache_stats
        result.cache_hits = hits - self._cache_hits0
        result.cache_misses = misses - self._cache_misses0

    def _fit_surrogates(self, x_unit: np.ndarray, result: OptimizationResult):
        """Fit this iteration's models; returns ``(objective, constraints)``.

        With a bank factory the objective and every constraint ensemble are
        fitted in ONE batched call; the legacy path invokes the per-target
        factory ``n_constraints + 1`` times.
        """
        objective = _sanitize_targets(result.objectives)
        constraints = result.constraint_matrix

        if self.surrogate_bank_factory is not None:
            n_targets = 1 + self.problem.n_constraints
            targets = np.empty((n_targets, objective.shape[0]))
            targets[0] = objective
            for i in range(self.problem.n_constraints):
                targets[1 + i] = _sanitize_targets(constraints[:, i])
            bank = self.surrogate_bank_factory(self.rng, n_targets)
            bank.fit(x_unit, targets)
            objective_model = bank.target_model(0)
            constraint_models = [
                bank.target_model(1 + i) for i in range(self.problem.n_constraints)
            ]
            return objective_model, constraint_models

        objective_model = self.surrogate_factory(self.rng)
        objective_model.fit(x_unit, objective)
        constraint_models = []
        for i in range(self.problem.n_constraints):
            model = self.surrogate_factory(self.rng)
            model.fit(x_unit, _sanitize_targets(constraints[:, i]))
            constraint_models.append(model)
        return objective_model, constraint_models

    def _propose(self, x_unit: np.ndarray, result: OptimizationResult) -> np.ndarray:
        objective_model, constraint_models = self._fit_surrogates(x_unit, result)

        if self.acquisition == "thompson":
            from repro.acquisition.thompson import ThompsonSamplingAcquisition

            acquisition_fn = ThompsonSamplingAcquisition(
                objective_model, constraint_models, rng=self.rng
            )
        else:
            tau = result.best_objective()
            tau = None if not np.isfinite(tau) else tau
            acquisition_fn = WeightedExpectedImprovement(
                objective_model,
                constraint_models,
                tau=tau,
                log_space=self.log_space_acq,
            )
        proposal = self.acq_maximizer.maximize(
            acquisition_fn, self.problem.dim, self.rng
        )
        if self._is_duplicate(proposal, x_unit):
            proposal = self._resample_non_duplicate(x_unit)
        return proposal

    def _is_duplicate(self, proposal: np.ndarray, x_unit: np.ndarray) -> bool:
        dists = np.max(np.abs(x_unit - proposal[None, :]), axis=1)
        return bool(np.any(dists < self.duplicate_tol))

    _MAX_RESAMPLE_TRIES = 32

    def _resample_non_duplicate(self, x_unit: np.ndarray) -> np.ndarray:
        """Draw a random replacement point that is itself not a duplicate.

        A single uniform draw can land on an already-evaluated design
        (likely with coarse ``duplicate_tol`` or a near-exhausted discrete
        region), which would waste a simulation on a known point; retry a
        bounded number of times and keep the final draw regardless.
        """
        for _ in range(self._MAX_RESAMPLE_TRIES):
            proposal = self.rng.uniform(0.0, 1.0, size=self.problem.dim)
            if not self._is_duplicate(proposal, x_unit):
                return proposal
        return proposal


def _sanitize_targets(y: np.ndarray) -> np.ndarray:
    """Make simulation outputs digestible for surrogate fitting.

    Two pathologies appear in circuit data: non-finite values from failed
    simulations (mapped to "much worse than anything seen", preserving the
    ranking) and extreme finite outliers from degenerate designs (a broken
    bias point can measure orders of magnitude off), which wreck target
    normalization.  Outliers are winsorized at ``median +- 10 IQR`` — far
    beyond any informative variation, so ordinary targets pass unchanged.
    """
    y = np.asarray(y, dtype=float).copy()
    bad = ~np.isfinite(y)
    if np.any(bad):
        good = y[~bad]
        if good.size == 0:
            y[...] = 0.0
            return y
        span = float(np.ptp(good))
        worst = float(np.max(good))
        y[bad] = worst + max(span, 1.0)
    q25, q50, q75 = np.percentile(y, [25.0, 50.0, 75.0])
    iqr = q75 - q25
    if iqr > 0.0:
        y = np.clip(y, q50 - 10.0 * iqr, q50 + 10.0 * iqr)
    return y
