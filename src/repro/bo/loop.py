"""Generic constrained surrogate-based Bayesian optimization (Algorithm 1).

The driver is deliberately surrogate-agnostic: the paper's method and the
WEIBO baseline differ *only* in the ``surrogate_factory`` they plug in
(NN-feature-GP ensemble vs. explicit-kernel GP), exactly mirroring the
paper's experimental control.

Per iteration (Fig. 2):

1. fit one fresh surrogate to the objective and one per constraint
   (fresh = newly constructed by the factory, so hyper-parameters are
   randomly re-initialized each round as in Algorithm 1),
2. propose ``q`` designs by greedy q-point acquisition — the wEI path
   (eq. 7) keeps the batch diverse according to ``pending_strategy``
   (constant-liar/Kriging-believer fantasy updates between picks, local
   penalization of the clean posterior, or hallucinated confidence
   bounds — :mod:`repro.acquisition.penalization`), the Thompson path
   draws ``q`` independent posterior functions,
3. dispatch the batch to a pluggable evaluation executor
   (:mod:`repro.bo.scheduler`) and ingest the simulations as they land,
   recording per-candidate provenance (iteration, batch index, pending
   set) in the history.

``q=1`` with the serial executor reproduces the original single-point
loop bitwise: the surrogate fits, acquisition maximization, duplicate
handling and RNG stream are unchanged (pinned by
``tests/bo/test_scheduler.py``).

With an ``"async-*"`` executor the batch barrier disappears entirely:
the refill-on-completion scheduler (:class:`~repro.bo.scheduler.
AsyncEvaluationScheduler`) keeps ``n_eval_workers`` simulations in
flight, commits each landing immediately, absorbs it into the surrogate
according to ``async_refit`` and proposes a replacement conditioned on
the still-pending set.  ``async-*`` with ``n_eval_workers=1`` degrades
gracefully to the serial single-point loop (same trace, pinned by
``tests/bo/test_async_scheduler.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.acquisition.fantasy import (
    FANTASY_STRATEGIES,
    FantasyModelSet,
    fantasy_lies,
)
from repro.acquisition.maximize import (
    AcquisitionMaximizer,
    DifferentialEvolutionMaximizer,
)
from repro.acquisition.penalization import (
    HallucinatedUCB,
    LocalPenalizer,
    PenalizedAcquisition,
    estimate_lipschitz,
    validate_pending_strategy,
)
from repro.acquisition.wei import WeightedExpectedImprovement
from repro.bo.design import make_design
from repro.bo.history import OptimizationResult
from repro.bo.problem import Problem
from repro.bo.scheduler import (
    AsyncEvaluationScheduler,
    EvaluationScheduler,
    default_pool_workers,
    make_evaluator,
)
from repro.utils.rng import ensure_rng

ASYNC_REFIT_POLICIES = ("full", "fantasy-only")


@dataclass
class _IterationModels:
    """One iteration's fitted surrogates plus their training data.

    ``bank`` is the :class:`~repro.core.batched_gp.SurrogateBank` when the
    batched engine fitted the targets jointly (``None`` on the legacy
    per-target path); the fantasy machinery needs the raw sanitized
    targets either way.  ``lipschitz`` caches the objective posterior's
    Lipschitz estimate for the local-penalization pending strategy (one
    finite-difference sweep per fit, shared by every proposal against
    these models).
    """

    objective: object
    constraints: list
    bank: object | None
    x: np.ndarray
    objective_y: np.ndarray
    constraint_ys: list
    lipschitz: float | None = None


class SurrogateBO:
    """Constrained Bayesian optimization with pluggable surrogates.

    Parameters
    ----------
    problem:
        The :class:`~repro.bo.problem.Problem` to minimize.
    surrogate_factory:
        Callable ``(rng) -> model`` returning a fresh surrogate with
        ``fit(x, y)`` and ``predict(x) -> (mean, var)``.  Called once per
        modelled quantity per iteration (the per-target loop path used by
        the WEIBO/GP baselines).
    surrogate_bank_factory:
        Callable ``(rng, n_targets) -> bank`` returning a fresh
        :class:`~repro.core.batched_gp.SurrogateBank`-style object with
        ``fit(x, targets)`` (``targets`` of shape ``(n_targets, N)``) and
        ``target_model(t) -> predict-protocol model``.  When provided it
        replaces the per-target factory loop with ONE batched fit of the
        objective and all constraints together (the paper method's hot
        path); ``surrogate_factory`` may still be passed alongside for
        introspection/compatibility but is not called by the proposer.
    n_initial:
        Size of the random initial design (Algorithm 1, line 1).
    max_evaluations:
        Total simulation budget including the initial design.
    initial_design:
        ``"lhs"`` (default), ``"random"`` or ``"sobol"``.
    acq_maximizer:
        Inner-loop engine; defaults to
        :class:`DifferentialEvolutionMaximizer`.
    acquisition:
        ``"wei"`` (paper, eq. 7) or ``"thompson"`` — the latter draws
        exact posterior functions from weight-space surrogates (NN-GP
        only; an extension documented in DESIGN.md).  Both support q > 1;
        on the bank path Thompson samples through the stacked predict
        engine (:class:`~repro.acquisition.thompson.
        BankThompsonAcquisition`).
    log_space_acq:
        Evaluate wEI in log space.  ``None`` (default) auto-enables it when
        the problem has four or more constraints (the Table II charge pump
        has five, where the plain PF product underflows).
    duplicate_tol:
        Proposals closer than this (in unit-box metric) to an existing
        sample — or to an earlier pick of the same batch — are replaced by
        a random point; repeating a deterministic simulation carries no
        information.
    q:
        Designs proposed per iteration.  ``1`` (default) is the paper's
        serial loop; larger batches trade a modest per-candidate
        information loss for wall-clock parallelism on the executor.
    executor:
        ``"serial"`` (default), ``"thread"``, ``"process"``,
        ``"async-thread"``, ``"async-process"`` or an
        :class:`~repro.bo.scheduler.EvaluationExecutor` instance.  The
        plain pooled specs evaluate each q-point batch behind a barrier;
        the ``async-*`` specs switch to the refill-on-completion loop:
        one design is proposed per landing, with ``n_eval_workers``
        in-flight evaluations (when unset, ``q > 1`` seeds the in-flight
        count — batch configs keep their parallelism when switched to
        async — else it defaults to :func:`~repro.bo.scheduler.
        default_pool_workers`, the capped host core count).
    n_eval_workers:
        Worker count for the pooled executors; defaults to ``q`` (batch
        mode) or the capped host core count (async mode with ``q=1``).
    fantasy:
        Lie strategy between wEI picks: ``"believer"`` (posterior mean,
        default), ``"cl-min"`` or ``"cl-max"`` (constant liar with the
        best/worst observed objective).  Async proposals use the same
        strategy to condition on the in-flight set.  Only consulted when
        ``pending_strategy="fantasy"``.
    pending_strategy:
        How concurrent (batch-mate / in-flight) designs shape the next
        proposal's acquisition (see :mod:`repro.acquisition.penalization`).
        ``"fantasy"`` (default) absorbs each pending point as a lie
        observation — the PR-2/3 behaviour, bitwise unchanged.
        ``"penalize"`` evaluates wEI on the *clean* posterior and
        multiplies in one local penalty per pending point (exclusion balls
        from a posterior-derived Lipschitz estimate; no fabricated data).
        ``"hallucinate"`` conditions pending points at their posterior
        means (variance shrinks near the in-flight set, the mean surface
        is untouched) and maximizes the optimistic improvement bound
        ``max(tau - (mu - kappa * sigma), 0) * prod PF`` instead of wEI
        (GP-BUCB adapted to constrained minimization).  The non-fantasy
        strategies require ``acquisition="wei"``.
    hallucinate_kappa:
        Confidence multiplier of the ``"hallucinate"`` strategy's bound —
        GP-BUCB's inflated-variance coefficient.  Larger values spread
        concurrent picks further apart.
    async_refit:
        Surrogate policy per async landing.  ``"full"`` (default) refits
        fresh surrogates before every proposal — maximum information, the
        async analogue of Algorithm 1's per-iteration refit.
        ``"fantasy-only"`` absorbs each landing with a posterior-only
        update (:meth:`~repro.core.batched_gp.SurrogateBank.observe` —
        network weights untouched) and runs a *warm-started* full refit
        every ``async_full_refit_every`` landings; needs the bank path
        (``surrogate_bank_factory``).
    async_full_refit_every:
        Landings between warm full refits under ``"fantasy-only"``;
        defaults to the in-flight worker count.
    async_clock:
        Optional :class:`~repro.bo.scheduler.FakeClock` virtualizing the
        async completion order (deterministic replay; used by tests and
        for auditing — production runs leave it ``None``).
    seed, verbose, callback:
        Reproducibility / reporting hooks.  ``callback(iteration, result)``
        runs after every ingested batch (every evaluation when ``q=1``).
    """

    algorithm_name = "SurrogateBO"

    def __init__(
        self,
        problem: Problem,
        surrogate_factory=None,
        n_initial: int = 30,
        max_evaluations: int = 100,
        initial_design: str = "lhs",
        acq_maximizer: AcquisitionMaximizer | None = None,
        acquisition: str = "wei",
        log_space_acq: bool | None = None,
        duplicate_tol: float = 1e-9,
        surrogate_bank_factory=None,
        q: int = 1,
        executor="serial",
        n_eval_workers: int | None = None,
        fantasy: str = "believer",
        pending_strategy: str = "fantasy",
        hallucinate_kappa: float = 2.0,
        async_refit: str = "full",
        async_full_refit_every: int | None = None,
        async_clock=None,
        seed=None,
        verbose: bool = False,
        callback=None,
        name: str | None = None,
    ):
        if n_initial < 2:
            raise ValueError(f"n_initial must be >= 2, got {n_initial}")
        if max_evaluations < n_initial:
            raise ValueError(
                f"max_evaluations ({max_evaluations}) must cover the initial "
                f"design ({n_initial})"
            )
        if surrogate_factory is None and surrogate_bank_factory is None:
            raise ValueError(
                "provide surrogate_factory and/or surrogate_bank_factory"
            )
        if q < 1:
            raise ValueError(f"q must be >= 1, got {q}")
        if fantasy not in FANTASY_STRATEGIES:
            raise ValueError(
                f"fantasy must be one of {FANTASY_STRATEGIES}, got {fantasy!r}"
            )
        if async_refit not in ASYNC_REFIT_POLICIES:
            raise ValueError(
                f"async_refit must be one of {ASYNC_REFIT_POLICIES}, "
                f"got {async_refit!r}"
            )
        if async_full_refit_every is not None and async_full_refit_every < 1:
            raise ValueError(
                f"async_full_refit_every must be >= 1, got {async_full_refit_every}"
            )
        self.problem = problem
        self.surrogate_factory = surrogate_factory
        self.surrogate_bank_factory = surrogate_bank_factory
        self.n_initial = int(n_initial)
        self.max_evaluations = int(max_evaluations)
        self.initial_design = str(initial_design)
        self.acq_maximizer = acq_maximizer or DifferentialEvolutionMaximizer()
        if acquisition not in ("wei", "thompson"):
            raise ValueError(
                f"acquisition must be 'wei' or 'thompson', got {acquisition!r}"
            )
        self.acquisition = str(acquisition)
        if log_space_acq is None:
            log_space_acq = problem.n_constraints >= 4
        self.log_space_acq = bool(log_space_acq)
        self.duplicate_tol = float(duplicate_tol)
        self.q = int(q)
        self.executor = executor
        self.n_eval_workers = None if n_eval_workers is None else int(n_eval_workers)
        self.fantasy = str(fantasy)
        self.pending_strategy = validate_pending_strategy(
            str(pending_strategy), self.acquisition
        )
        if hallucinate_kappa < 0:
            raise ValueError(
                f"hallucinate_kappa must be non-negative, got {hallucinate_kappa}"
            )
        self.hallucinate_kappa = float(hallucinate_kappa)
        self.async_refit = str(async_refit)
        self.async_full_refit_every = (
            None if async_full_refit_every is None else int(async_full_refit_every)
        )
        self.async_clock = async_clock
        self.rng = ensure_rng(seed)
        self.verbose = bool(verbose)
        self.callback = callback
        if name is not None:
            self.algorithm_name = name

    # -- main loop ---------------------------------------------------------------

    def run(self) -> OptimizationResult:
        """Execute Algorithm 1 (batched or asynchronous form); return the trace."""
        result = OptimizationResult(self.problem.name, self.algorithm_name)
        unit_x: list[np.ndarray] = []
        self._cache_hits0, self._cache_misses0 = self.problem.cache_stats

        workers = self.n_eval_workers
        if workers is None and isinstance(self.executor, str):
            spec = self.executor.lower()
            if spec.startswith("async-"):
                # batch configs keep their parallelism when switched to
                # async; otherwise size to the host like the pools do
                workers = self.q if self.q > 1 else default_pool_workers()
            elif self.q > 1 and spec != "serial":
                # the serial executor takes no worker count (make_evaluator
                # rejects one); only pooled specs inherit q as their size
                workers = self.q
        # an executor instance + explicit n_eval_workers is contradictory;
        # make_evaluator raises rather than silently ignoring the count
        evaluator = make_evaluator(self.executor, workers)
        owns_evaluator = evaluator is not self.executor
        try:
            if getattr(evaluator, "async_mode", False):
                n_in_flight = (
                    workers
                    if workers is not None
                    else getattr(evaluator, "n_workers", 1)
                )
                self._run_async(evaluator, result, unit_x, n_in_flight)
                return result
            scheduler = EvaluationScheduler(self.problem, evaluator)
            initial = list(make_design(
                self.initial_design, self.n_initial, self.problem.dim, self.rng
            ))
            scheduler.run_batch(
                initial, result, unit_x, phase="initial", iteration=0
            )
            self._sync_cache_counters(result)

            iteration = 0
            while result.n_evaluations < self.max_evaluations:
                iteration += 1
                q = min(self.q, self.max_evaluations - result.n_evaluations)
                if q == 1:
                    batch = [self._propose(np.stack(unit_x), result)]
                else:
                    batch = self._propose_batch(np.stack(unit_x), result, q)
                scheduler.run_batch(
                    batch, result, unit_x, phase="search", iteration=iteration
                )
                self._sync_cache_counters(result)
                if self.verbose:
                    best = result.best_objective()
                    print(
                        f"[{self.algorithm_name}] iter {iteration:3d} "
                        f"evals {result.n_evaluations:4d} best {best:.6g}"
                    )
                if self.callback is not None:
                    self.callback(iteration, result)
        finally:
            if owns_evaluator:
                evaluator.close()
        return result

    def _run_async(self, evaluator, result, unit_x, n_workers: int) -> None:
        """The refill-on-completion loop (``executor="async-*"``).

        The initial design still evaluates as one deterministic batch;
        afterwards :class:`AsyncEvaluationScheduler` keeps ``n_workers``
        simulations in flight, an :class:`_AsyncProposer` absorbs each
        landing according to ``async_refit`` and proposes the replacement
        conditioned on the pending set.  ``callback(landing, result)``
        fires per landing (the async analogue of per-iteration).
        """
        if self.async_refit == "fantasy-only" and self.surrogate_bank_factory is None:
            raise ValueError(
                "async_refit='fantasy-only' requires surrogate_bank_factory "
                "(posterior-only absorbs go through the bank); per-target "
                "surrogate factories must use async_refit='full'"
            )
        scheduler = AsyncEvaluationScheduler(
            self.problem, evaluator, clock=self.async_clock
        )
        initial = list(make_design(
            self.initial_design, self.n_initial, self.problem.dim, self.rng
        ))
        scheduler.run_initial(initial, result, unit_x)
        self._sync_cache_counters(result)
        proposer = _AsyncProposer(self, n_workers)

        def propose(pending_units):
            return proposer.propose(np.stack(unit_x), result, pending_units)

        def on_commit(u, evaluation, committed_result):
            self._sync_cache_counters(committed_result)
            proposer.on_commit(u, evaluation, committed_result)
            landing = committed_result.records[-1].iteration
            if self.verbose:
                best = committed_result.best_objective()
                print(
                    f"[{self.algorithm_name}] landing {landing:3d} "
                    f"evals {committed_result.n_evaluations:4d} best {best:.6g}"
                )
            if self.callback is not None:
                self.callback(landing, committed_result)

        scheduler.run_search(
            result,
            unit_x,
            propose=propose,
            n_workers=n_workers,
            max_evaluations=self.max_evaluations,
            on_commit=on_commit,
            pending_strategy=self.pending_strategy,
        )

    # -- helpers -------------------------------------------------------------------

    def _sync_cache_counters(self, result: OptimizationResult):
        hits, misses = self.problem.cache_stats
        result.cache_hits = hits - self._cache_hits0
        result.cache_misses = misses - self._cache_misses0

    def _evaluate_and_record(self, u, result, unit_x, phase):
        """Serial single-point evaluate (legacy path, kept for tests/tools)."""
        evaluation = self.problem.evaluate_unit(u)
        result.append(self.problem.scaler.inverse_transform(u), evaluation, phase=phase)
        unit_x.append(np.asarray(u, dtype=float))
        self._sync_cache_counters(result)

    def _sanitized_targets(self, result: OptimizationResult):
        """Surrogate-ready targets from the committed history.

        Returns ``(objective, constraint_ys, targets)`` where ``targets``
        stacks the objective and every constraint as the ``(T, N)`` matrix
        the bank's :meth:`~repro.core.batched_gp.SurrogateBank.fit`
        consumes.
        """
        objective = _sanitize_targets(result.objectives)
        constraints = result.constraint_matrix
        constraint_ys = [
            _sanitize_targets(constraints[:, i])
            for i in range(self.problem.n_constraints)
        ]
        targets = np.empty((1 + self.problem.n_constraints, objective.shape[0]))
        targets[0] = objective
        for i, y in enumerate(constraint_ys):
            targets[1 + i] = y
        return objective, constraint_ys, targets

    def _fit_surrogates(self, x_unit: np.ndarray, result: OptimizationResult):
        """Fit this iteration's models; returns an :class:`_IterationModels`.

        With a bank factory the objective and every constraint ensemble are
        fitted in ONE batched call; the legacy path invokes the per-target
        factory ``n_constraints + 1`` times.
        """
        objective, constraint_ys, targets = self._sanitized_targets(result)

        if self.surrogate_bank_factory is not None:
            n_targets = 1 + self.problem.n_constraints
            bank = self.surrogate_bank_factory(self.rng, n_targets)
            bank.fit(x_unit, targets)
            return _IterationModels(
                objective=bank.target_model(0),
                constraints=[
                    bank.target_model(1 + i)
                    for i in range(self.problem.n_constraints)
                ],
                bank=bank,
                x=x_unit,
                objective_y=objective,
                constraint_ys=constraint_ys,
            )

        objective_model = self.surrogate_factory(self.rng)
        objective_model.fit(x_unit, objective)
        constraint_models = []
        for y in constraint_ys:
            model = self.surrogate_factory(self.rng)
            model.fit(x_unit, y)
            constraint_models.append(model)
        return _IterationModels(
            objective=objective_model,
            constraints=constraint_models,
            bank=None,
            x=x_unit,
            objective_y=objective,
            constraint_ys=constraint_ys,
        )

    def _make_acquisition(self, fitted: _IterationModels, result: OptimizationResult):
        """Build one acquisition callable over the current posterior.

        The ``"hallucinate"`` pending strategy swaps wEI for the
        optimistic-improvement bound (GP-BUCB criterion) — the hallucinated
        believer updates between picks then act through the variance term.
        """
        if self.acquisition == "thompson":
            if fitted.bank is not None:
                from repro.acquisition.thompson import BankThompsonAcquisition

                return BankThompsonAcquisition(fitted.bank, rng=self.rng)
            from repro.acquisition.thompson import ThompsonSamplingAcquisition

            return ThompsonSamplingAcquisition(
                fitted.objective, fitted.constraints, rng=self.rng
            )
        tau = result.best_objective()
        tau = None if not np.isfinite(tau) else tau
        if self.pending_strategy == "hallucinate":
            return HallucinatedUCB(
                fitted.objective,
                fitted.constraints,
                tau=tau,
                kappa=self.hallucinate_kappa,
                log_space=self.log_space_acq,
            )
        return WeightedExpectedImprovement(
            fitted.objective,
            fitted.constraints,
            tau=tau,
            log_space=self.log_space_acq,
        )

    def _objective_lipschitz(self, fitted: _IterationModels) -> float:
        """Lipschitz estimate of the objective posterior, cached per fit."""
        if fitted.lipschitz is None:
            if fitted.bank is not None:
                fitted.lipschitz = fitted.bank.estimate_target_lipschitz(0)
            else:
                fitted.lipschitz = estimate_lipschitz(
                    fitted.objective, self.problem.dim
                )
        return fitted.lipschitz

    def _penalized_acquisition(
        self, fitted: _IterationModels, base, pending_units
    ):
        """Wrap ``base`` with local penalties around the pending designs.

        The penalizer incumbent is the best *observed objective* over the
        fitted (sanitized) targets — feasibility ignored — exactly
        Gonzalez et al.'s ``M``: the exclusion-ball argument concerns the
        objective surface the surrogate models over the whole box, not
        the constrained incumbent ``tau``.  Substituting the
        best-feasible value was tried and measurably hurts when
        infeasible low-objective valleys exist (it shrinks every radius
        and the concurrent picks cluster; Gardner-problem regret in
        ``benchmarks/bench_pending_strategies.py`` degrades ~0.17).
        """
        pending = np.atleast_2d(np.asarray(pending_units, dtype=float))
        means, variances = fitted.objective.predict(pending)
        finite = fitted.objective_y[np.isfinite(fitted.objective_y)]
        best = float(np.min(finite)) if finite.size else float("nan")
        penalizer = LocalPenalizer(
            pending,
            means,
            variances,
            best=best,
            lipschitz=self._objective_lipschitz(fitted),
        )
        return PenalizedAcquisition(base, penalizer, log_space=self.log_space_acq)

    def _propose(self, x_unit: np.ndarray, result: OptimizationResult) -> np.ndarray:
        """Single-point proposal (the q=1 fast path; original loop semantics)."""
        fitted = self._fit_surrogates(x_unit, result)
        acquisition_fn = self._make_acquisition(fitted, result)
        proposal = self.acq_maximizer.maximize(
            acquisition_fn, self.problem.dim, self.rng
        )
        if self._is_duplicate(proposal, x_unit):
            proposal = self._resample_non_duplicate(x_unit)
        return proposal

    def _propose_batch(
        self, x_unit: np.ndarray, result: OptimizationResult, q: int
    ) -> list[np.ndarray]:
        """Greedy q-point proposal with fantasy updates between picks.

        One surrogate fit serves all q picks.  On the wEI path the pending
        strategy decides how batch-mates shape pick ``j+1``: ``"fantasy"``
        and ``"hallucinate"`` condition the models on each pick (bank:
        posterior-only ``fantasize``; legacy models:
        :class:`FantasyModelSet` — hallucination always lies the believer
        mean), while ``"penalize"`` leaves the posterior clean and wraps
        the stage acquisition with local penalties around the picks so
        far.  The Thompson path simply draws q independent posterior
        functions.  Every pick also passes the duplicate filter against
        both the evaluated data and its own batch-mates.
        """
        fitted = self._fit_surrogates(x_unit, result)
        if self.acquisition == "wei" and self.pending_strategy == "penalize":
            base = self._make_acquisition(fitted, result)

            def stage_acquisition(j: int, picks: list[np.ndarray]):
                if not picks:
                    return base
                return self._penalized_acquisition(fitted, base, picks)

        else:
            fantasy_set = None
            if self.acquisition == "wei" and fitted.bank is None:
                fantasy_set = FantasyModelSet(
                    fitted.x,
                    fitted.objective,
                    fitted.objective_y,
                    fitted.constraints,
                    fitted.constraint_ys,
                )

            def stage_acquisition(j: int, picks: list[np.ndarray]):
                if j > 0 and self.acquisition == "wei":
                    self._apply_fantasy(fitted, fantasy_set, picks[-1])
                return self._make_acquisition(fitted, result)

        def deduplicate(pick: np.ndarray, picks: list[np.ndarray]):
            known = np.vstack([x_unit, *[p[None, :] for p in picks]])
            if self._is_duplicate(pick, known):
                pick = self._resample_non_duplicate(known)
            return pick

        return self.acq_maximizer.maximize_batch(
            stage_acquisition,
            q,
            self.problem.dim,
            self.rng,
            postprocess=deduplicate,
        )

    def _apply_fantasy(self, fitted: _IterationModels, fantasy_set, pending):
        """Condition the iteration's models on one pending pick.

        Under ``pending_strategy="hallucinate"`` the lie is always the
        believer (posterior-mean) value — by definition a hallucinated
        observation leaves the mean surface untouched and only collapses
        variance at the pending point.
        """
        strategy = (
            "believer" if self.pending_strategy == "hallucinate" else self.fantasy
        )
        obj_lie, cons_lies = fantasy_lies(
            fitted.objective, fitted.constraints, pending,
            fitted.objective_y, strategy,
        )
        if fitted.bank is not None:
            fitted.bank.fantasize(pending, np.array([obj_lie, *cons_lies]))
        else:
            fantasy_set.add_fantasy(pending, obj_lie, cons_lies)

    def _is_duplicate(self, proposal: np.ndarray, x_unit: np.ndarray) -> bool:
        dists = np.max(np.abs(x_unit - proposal[None, :]), axis=1)
        return bool(np.any(dists < self.duplicate_tol))

    _MAX_RESAMPLE_TRIES = 32

    def _resample_non_duplicate(self, x_unit: np.ndarray) -> np.ndarray:
        """Draw a random replacement point that is itself not a duplicate.

        A single uniform draw can land on an already-evaluated design
        (likely with coarse ``duplicate_tol`` or a near-exhausted discrete
        region), which would waste a simulation on a known point; retry a
        bounded number of times and keep the final draw regardless.
        """
        for _ in range(self._MAX_RESAMPLE_TRIES):
            proposal = self.rng.uniform(0.0, 1.0, size=self.problem.dim)
            if not self._is_duplicate(proposal, x_unit):
                return proposal
        return proposal


def _sanitize_targets(y: np.ndarray) -> np.ndarray:
    """Make simulation outputs digestible for surrogate fitting.

    Two pathologies appear in circuit data: non-finite values from failed
    simulations (mapped to "much worse than anything seen", preserving the
    ranking) and extreme finite outliers from degenerate designs (a broken
    bias point can measure orders of magnitude off), which wreck target
    normalization.  Outliers are winsorized at ``median +- 10 IQR`` — far
    beyond any informative variation, so ordinary targets pass unchanged.
    """
    y = np.asarray(y, dtype=float).copy()
    bad = ~np.isfinite(y)
    if np.any(bad):
        good = y[~bad]
        if good.size == 0:
            y[...] = 0.0
            return y
        span = float(np.ptp(good))
        worst = float(np.max(good))
        y[bad] = worst + max(span, 1.0)
    q25, q50, q75 = np.percentile(y, [25.0, 50.0, 75.0])
    iqr = q75 - q25
    if iqr > 0.0:
        y = np.clip(y, q50 - 10.0 * iqr, q50 + 10.0 * iqr)
    return y


def _sanitize_new_target(value: float, existing: np.ndarray) -> float:
    """:func:`_sanitize_targets` for a single late-arriving value.

    The async ``"fantasy-only"`` policy absorbs landings one at a time;
    the same two pathologies apply (non-finite failed simulations,
    degenerate outliers), judged against the already-sanitized committed
    targets.  The periodic full refit re-sanitizes the whole vector, so
    any drift between the incremental and the batch clipping is bounded
    by one refit period.
    """
    existing = np.asarray(existing, dtype=float)
    value = float(value)
    if not np.isfinite(value):
        if existing.size == 0:
            return 0.0
        span = float(np.ptp(existing))
        return float(np.max(existing)) + max(span, 1.0)
    if existing.size:
        q25, q50, q75 = np.percentile(existing, [25.0, 50.0, 75.0])
        iqr = q75 - q25
        if iqr > 0.0:
            value = float(np.clip(value, q50 - 10.0 * iqr, q50 + 10.0 * iqr))
    return value


class _AsyncProposer:
    """Surrogate bookkeeping for the asynchronous loop.

    Owns the refit policy: when to rebuild models (``"full"``: before
    every proposal following a landing; ``"fantasy-only"``: posterior-only
    absorbs with a warm full refit every ``full_refit_every`` landings)
    and how to condition each proposal on the in-flight pending set.
    """

    def __init__(self, bo: SurrogateBO, n_workers: int):
        self.bo = bo
        every = bo.async_full_refit_every
        self.full_refit_every = max(1, int(n_workers)) if every is None else every
        self._fitted: _IterationModels | None = None
        self._fantasy_set: FantasyModelSet | None = None
        self._n_fantasied = 0
        self._landings_since_fit = 0
        self._needs_refit = True

    # -- proposing ---------------------------------------------------------------

    def propose(
        self, x_unit: np.ndarray, result: OptimizationResult, pending_units
    ) -> np.ndarray:
        """One replacement proposal conditioned on the pending set.

        How the pending set enters the acquisition follows
        ``bo.pending_strategy``: ``"penalize"`` keeps the posterior clean
        and multiplies local penalties into the stage acquisition;
        ``"fantasy"``/``"hallucinate"`` condition the models on the
        in-flight designs first (lies vs. believer hallucinations).
        """
        bo = self.bo
        if self._fitted is None or self._needs_refit:
            self._refit(x_unit, result)
        if bo.acquisition == "wei" and bo.pending_strategy == "penalize":
            acquisition = bo._make_acquisition(self._fitted, result)
            if pending_units:
                acquisition = bo._penalized_acquisition(
                    self._fitted, acquisition, pending_units
                )
        else:
            self._condition_on_pending(pending_units)
            acquisition = bo._make_acquisition(self._fitted, result)
        pick = bo.acq_maximizer.maximize(acquisition, bo.problem.dim, bo.rng)
        if pending_units:
            known = np.vstack(
                [x_unit] + [np.asarray(u, dtype=float)[None, :] for u in pending_units]
            )
        else:
            known = x_unit
        if bo._is_duplicate(pick, known):
            pick = bo._resample_non_duplicate(known)
        return pick

    def _refit(self, x_unit: np.ndarray, result: OptimizationResult) -> None:
        bo = self.bo
        warm_bank = (
            self._fitted.bank
            if (
                bo.async_refit == "fantasy-only"
                and self._fitted is not None
                and self._fitted.bank is not None
            )
            else None
        )
        if warm_bank is not None:
            # periodic full refit under "fantasy-only": keep the bank so
            # training warm-starts from the already-learned weights
            objective, constraint_ys, targets = bo._sanitized_targets(result)
            warm_bank.clear_fantasies(update=False)  # fit rebuilds anyway
            warm_bank.fit(x_unit, targets)
            self._fitted = _IterationModels(
                objective=warm_bank.target_model(0),
                constraints=[
                    warm_bank.target_model(1 + i)
                    for i in range(bo.problem.n_constraints)
                ],
                bank=warm_bank,
                x=x_unit,
                objective_y=objective,
                constraint_ys=constraint_ys,
            )
        else:
            self._fitted = bo._fit_surrogates(x_unit, result)
        self._fantasy_set = None
        self._n_fantasied = 0
        self._landings_since_fit = 0
        self._needs_refit = False

    def _condition_on_pending(self, pending_units) -> None:
        """Fantasy-condition the current models on the in-flight designs.

        Serves both conditioning strategies: ``"fantasy"`` applies the
        configured lie, ``"hallucinate"`` the believer mean (forced inside
        :meth:`SurrogateBO._apply_fantasy`); ``"penalize"`` never calls
        this — its posterior stays clean.

        Bank path: the fantasy stack is rebuilt from scratch each proposal
        (posterior-only updates are cheap), so it always mirrors the exact
        pending set even after landings removed members.  Legacy per-target
        models mutate in place and only support a growing pending set —
        guaranteed because the legacy path always runs ``async_refit=
        "full"``, which refits after every landing.
        """
        bo = self.bo
        fitted = self._fitted
        if bo.acquisition != "wei":
            # Thompson diversifies by posterior sampling, not by lies
            return
        if fitted.bank is not None:
            # with pending lies about to be re-applied, the intermediate
            # fantasy-free posterior would never be read — skip its rebuild
            fitted.bank.clear_fantasies(update=not pending_units)
            for u in pending_units:
                bo._apply_fantasy(fitted, None, np.asarray(u, dtype=float))
            return
        if not pending_units:
            return
        if self._fantasy_set is None:
            self._fantasy_set = FantasyModelSet(
                fitted.x,
                fitted.objective,
                fitted.objective_y,
                fitted.constraints,
                fitted.constraint_ys,
            )
        for u in pending_units[self._n_fantasied:]:
            bo._apply_fantasy(fitted, self._fantasy_set, np.asarray(u, dtype=float))
        self._n_fantasied = len(pending_units)

    # -- absorbing landings -------------------------------------------------------

    def on_commit(self, u, evaluation, result: OptimizationResult) -> None:
        """Absorb one landed evaluation according to the refit policy."""
        bo = self.bo
        self._landings_since_fit += 1
        if bo.async_refit == "full" or self._fitted is None:
            self._needs_refit = True
            return
        if self._landings_since_fit >= self.full_refit_every:
            self._needs_refit = True
            return
        fitted = self._fitted
        # observe() rebuilds the posterior; the intermediate fantasy-free
        # rebuild would be wasted work on the landing hot path
        fitted.bank.clear_fantasies(update=False)
        u = np.asarray(u, dtype=float)
        obj = _sanitize_new_target(evaluation.objective, fitted.objective_y)
        cons = [
            _sanitize_new_target(c, ys)
            for c, ys in zip(evaluation.constraints, fitted.constraint_ys)
        ]
        fitted.bank.observe(u, np.array([obj, *cons]))
        # the absorb moved the posterior-mean surface: a cached Lipschitz
        # estimate would mis-scale the penalization exclusion balls until
        # the next full refit, so force a fresh sweep on the next use
        fitted.lipschitz = None
        # keep the training-data view consistent for future lies/refits
        fitted.x = np.vstack([fitted.x, u[None, :]])
        fitted.objective_y = np.append(fitted.objective_y, obj)
        fitted.constraint_ys = [
            np.append(ys, c) for ys, c in zip(fitted.constraint_ys, cons)
        ]
