"""Generic constrained surrogate-based Bayesian optimization (Algorithm 1).

The driver is deliberately surrogate-agnostic: the paper's method and the
WEIBO baseline differ *only* in the ``surrogate_factory`` they plug in
(NN-feature-GP ensemble vs. explicit-kernel GP), exactly mirroring the
paper's experimental control.

Since the ask/tell redesign, :class:`SurrogateBO` is a thin closed-loop
driver over the :class:`~repro.bo.study.Study` state machine: ``run()``
builds a study, pumps its ``ask``/``tell`` cycle through the configured
evaluation executor, and returns the study's history.  All proposal
machinery (surrogate fits, acquisition construction, fantasy/penalty
conditioning, duplicate handling) lives on this class and is shared by
the study, so driving a study manually reproduces ``run()`` bitwise.

Configuration is grouped into typed dataclasses
(:mod:`repro.bo.config`): an :class:`~repro.bo.config.AcquisitionConfig`
(acquisition family, lies/penalties for concurrent picks) and a
:class:`~repro.bo.config.SchedulerConfig` (batch size, executor, async
refit policy).  The historical flat kwargs (``q=``, ``executor=``,
``fantasy=``, ...) still work through a deprecation shim that maps them
onto the configs.

Per iteration (Fig. 2):

1. fit one fresh surrogate to the objective and one per constraint
   (fresh = newly constructed by the factory, so hyper-parameters are
   randomly re-initialized each round as in Algorithm 1),
2. propose ``q`` designs by greedy q-point acquisition — the wEI path
   (eq. 7) keeps the batch diverse according to ``pending_strategy``,
   the Thompson path draws ``q`` independent posterior functions,
3. dispatch the batch to the evaluation executor
   (:mod:`repro.bo.scheduler`) and ingest the simulations as they land,
   recording per-candidate provenance in the history.

``q=1`` with the serial executor reproduces the original single-point
loop bitwise (pinned by ``tests/bo/test_scheduler.py``); the
``"async-*"`` executors switch to the refill-on-completion scheduler
(pinned by ``tests/bo/test_async_scheduler.py``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.acquisition.fantasy import FantasyModelSet, fantasy_lies
from repro.acquisition.maximize import (
    AcquisitionMaximizer,
    DifferentialEvolutionMaximizer,
)
from repro.acquisition.penalization import (
    HallucinatedUCB,
    LocalPenalizer,
    PenalizedAcquisition,
    estimate_lipschitz,
)
from repro.acquisition.spaces import SubspaceMaximizer, incumbent_index
from repro.acquisition.wei import WeightedExpectedImprovement
from repro.bo.config import (
    ASYNC_REFIT_POLICIES,
    AcquisitionConfig,
    SchedulerConfig,
)
from repro.bo.history import OptimizationResult
from repro.bo.problem import Problem
from repro.bo.scheduler import (
    AsyncEvaluationScheduler,
    EvaluationScheduler,
    make_evaluator,
)
from repro.utils.rng import ensure_rng

__all__ = [
    "ASYNC_REFIT_POLICIES",
    "SurrogateBO",
]

#: sentinel distinguishing "not passed" from any legitimate value in the
#: deprecated-kwarg shim
_UNSET = object()


def resolve_config_shim(
    config_cls, provided, config_kwarg, legacy: dict, display: dict, owner: str
):
    """Map explicitly-passed legacy kwargs onto a typed config.

    ``legacy`` maps config field names to the legacy value (or ``_UNSET``
    when the caller did not pass the kwarg); ``display`` renames fields to
    their historical kwarg spelling for the warning text.  Passing any
    legacy kwarg emits a ``DeprecationWarning`` attributed to the caller,
    and conflicts with an explicit config object raise with both values
    named.
    """
    passed = {f: v for f, v in legacy.items() if v is not _UNSET}
    if not passed:
        return provided if provided is not None else config_cls()
    shown = ", ".join(
        f"{display.get(f, f)}={v!r}" for f, v in passed.items()
    )
    if provided is not None:
        raise ValueError(
            f"{owner} received both {config_kwarg}={provided!r} and the "
            f"legacy keyword(s) {shown}; pass everything through "
            f"{config_kwarg}"
        )
    warnings.warn(
        f"{owner} keyword(s) {shown} are deprecated; pass "
        f"{config_kwarg}={config_cls.__name__}(...) instead "
        "(blessed surface: repro.api)",
        DeprecationWarning,
        stacklevel=3,
    )
    return config_cls(**passed)


@dataclass
class _IterationModels:
    """One iteration's fitted surrogates plus their training data.

    ``bank`` is the :class:`~repro.core.batched_gp.SurrogateBank` when the
    batched engine fitted the targets jointly (``None`` on the legacy
    per-target path); the fantasy machinery needs the raw sanitized
    targets either way.  ``lipschitz`` caches the objective posterior's
    Lipschitz estimate for the local-penalization pending strategy (one
    finite-difference sweep per fit, shared by every proposal against
    these models).
    """

    objective: object
    constraints: list
    bank: object | None
    x: np.ndarray
    objective_y: np.ndarray
    constraint_ys: list
    lipschitz: float | None = None


class SurrogateBO:
    """Constrained Bayesian optimization with pluggable surrogates.

    Parameters
    ----------
    problem:
        The :class:`~repro.bo.problem.Problem` to minimize.
    surrogate_factory:
        Callable ``(rng) -> model`` returning a fresh surrogate with
        ``fit(x, y)`` and ``predict(x) -> (mean, var)``.  Called once per
        modelled quantity per iteration (the per-target loop path used by
        the WEIBO/GP baselines).
    surrogate_bank_factory:
        Callable ``(rng, n_targets) -> bank`` returning a fresh
        :class:`~repro.core.batched_gp.SurrogateBank`-style object with
        ``fit(x, targets)`` (``targets`` of shape ``(n_targets, N)``) and
        ``target_model(t) -> predict-protocol model``.  When provided it
        replaces the per-target factory loop with ONE batched fit of the
        objective and all constraints together (the paper method's hot
        path); ``surrogate_factory`` may still be passed alongside for
        introspection/compatibility but is not called by the proposer.
    n_initial:
        Size of the random initial design (Algorithm 1, line 1).
    max_evaluations:
        Total simulation budget including the initial design.
    initial_design:
        ``"lhs"`` (default), ``"random"`` or ``"sobol"``.
    acq_maximizer:
        Inner-loop engine; defaults to
        :class:`DifferentialEvolutionMaximizer`.
    acquisition_config:
        An :class:`~repro.bo.config.AcquisitionConfig`: acquisition family
        (``"wei"``/``"thompson"``), log-space evaluation, duplicate
        tolerance, and the pending-point strategy (fantasy lies, local
        penalization, hallucinated bounds) for concurrent proposals.
    scheduler_config:
        A :class:`~repro.bo.config.SchedulerConfig`: proposals per
        iteration ``q``, the evaluation executor (``"serial"`` /
        ``"thread"`` / ``"process"`` / ``"async-thread"`` /
        ``"async-process"`` or an executor instance), worker counts, the
        asynchronous refit policy, and an optional
        :class:`~repro.bo.scheduler.FakeClock` for deterministic replay.
    seed, verbose, callback:
        Reproducibility / reporting hooks.  ``callback(iteration, result)``
        runs after every ingested batch (every landing in async mode).

    Deprecated keywords
    -------------------
    The historical flat kwargs — ``acquisition``, ``log_space_acq``,
    ``duplicate_tol``, ``fantasy``, ``pending_strategy``,
    ``hallucinate_kappa``, ``proposal_space``, ``trust_region`` (now
    :class:`AcquisitionConfig` fields) and
    ``q``, ``executor``, ``n_eval_workers``, ``async_refit``,
    ``async_full_refit_every``, ``async_clock`` (now
    :class:`SchedulerConfig` fields) — still work and map onto the
    configs, emitting a ``DeprecationWarning``.
    """

    algorithm_name = "SurrogateBO"

    def __init__(
        self,
        problem: Problem,
        surrogate_factory=None,
        n_initial: int = 30,
        max_evaluations: int = 100,
        initial_design: str = "lhs",
        acq_maximizer: AcquisitionMaximizer | None = None,
        acquisition=_UNSET,
        log_space_acq=_UNSET,
        duplicate_tol=_UNSET,
        surrogate_bank_factory=None,
        q=_UNSET,
        executor=_UNSET,
        n_eval_workers=_UNSET,
        fantasy=_UNSET,
        pending_strategy=_UNSET,
        hallucinate_kappa=_UNSET,
        proposal_space=_UNSET,
        trust_region=_UNSET,
        async_refit=_UNSET,
        async_full_refit_every=_UNSET,
        async_clock=_UNSET,
        seed=None,
        verbose: bool = False,
        callback=None,
        name: str | None = None,
        *,
        acquisition_config: AcquisitionConfig | None = None,
        scheduler_config: SchedulerConfig | None = None,
    ):
        if n_initial < 2:
            raise ValueError(f"n_initial must be >= 2, got {n_initial}")
        if max_evaluations < n_initial:
            raise ValueError(
                f"max_evaluations ({max_evaluations}) must cover the initial "
                f"design ({n_initial})"
            )
        if surrogate_factory is None and surrogate_bank_factory is None:
            raise ValueError(
                "provide surrogate_factory and/or surrogate_bank_factory"
            )
        acquisition_config = resolve_config_shim(
            AcquisitionConfig,
            acquisition_config,
            "acquisition_config",
            {
                "acquisition": acquisition,
                "log_space": log_space_acq,
                "duplicate_tol": duplicate_tol,
                "fantasy": fantasy,
                "pending_strategy": pending_strategy,
                "hallucinate_kappa": hallucinate_kappa,
                "proposal_space": proposal_space,
                "trust_region": trust_region,
            },
            {"log_space": "log_space_acq"},
            owner=type(self).__name__,
        )
        scheduler_config = resolve_config_shim(
            SchedulerConfig,
            scheduler_config,
            "scheduler_config",
            {
                "q": q,
                "executor": executor,
                "n_eval_workers": n_eval_workers,
                "async_refit": async_refit,
                "async_full_refit_every": async_full_refit_every,
                "clock": async_clock,
            },
            {"clock": "async_clock"},
            owner=type(self).__name__,
        )
        self.problem = problem
        self.surrogate_factory = surrogate_factory
        self.surrogate_bank_factory = surrogate_bank_factory
        self.n_initial = int(n_initial)
        self.max_evaluations = int(max_evaluations)
        self.initial_design = str(initial_design)
        self.acq_maximizer = acq_maximizer or DifferentialEvolutionMaximizer()
        self.acquisition_config = acquisition_config
        self.scheduler_config = scheduler_config
        #: the active :class:`~repro.acquisition.spaces.ProposalSpace`
        #: instance, or ``None`` for the full box — in which case the
        #: maximizer is left unwrapped and the historical RNG stream /
        #: numerics are bitwise untouched
        self.proposal_space = acquisition_config.resolve_proposal_space()
        if self.proposal_space is not None:
            self.acq_maximizer = SubspaceMaximizer(
                self.proposal_space, self.acq_maximizer
            )
        # flat mirrors of the config fields: the proposal machinery (and a
        # fair amount of downstream code) reads these attributes
        self.acquisition = acquisition_config.acquisition
        self.log_space_acq = acquisition_config.resolve_log_space(
            problem.n_constraints
        )
        self.duplicate_tol = acquisition_config.duplicate_tol
        self.fantasy = acquisition_config.fantasy
        self.pending_strategy = acquisition_config.pending_strategy
        self.hallucinate_kappa = acquisition_config.hallucinate_kappa
        self.hallucinate_delta = acquisition_config.hallucinate_delta
        self.q = scheduler_config.q
        self.executor = scheduler_config.executor
        self.n_eval_workers = scheduler_config.n_eval_workers
        self.async_refit = scheduler_config.async_refit
        self.async_full_refit_every = scheduler_config.async_full_refit_every
        self.async_clock = scheduler_config.clock
        self.rng = ensure_rng(seed)
        self.verbose = bool(verbose)
        self.callback = callback
        if name is not None:
            self.algorithm_name = name
        #: last models fitted by :meth:`_propose` (adopted by the study's
        #: streaming proposer so fresh-fit single proposals are not refitted)
        self._last_fitted: _IterationModels | None = None
        self._cache_hits0, self._cache_misses0 = problem.cache_stats

    # -- main loop ---------------------------------------------------------------

    def run(self) -> OptimizationResult:
        """Execute Algorithm 1 (batched or asynchronous form); return the trace."""
        # the study builds on this module; imported here to avoid a cycle
        from repro.bo.study import Study

        return self.run_study(Study.from_optimizer(self))

    def run_study(self, study) -> OptimizationResult:
        """Drive an ask/tell :class:`~repro.bo.study.Study` to its budget.

        The closed-loop entry point: resolves the configured executor,
        pumps the study's initial design and search proposals through it
        (synchronous q-point batches behind a barrier, or the
        refill-on-completion loop for ``async-*`` executors), and returns
        the study's history.  Accepts a resumed study — already-committed
        evaluations are kept and pending trials are re-submitted.
        """
        workers = self.scheduler_config.resolve_pool_workers()
        # an executor instance + explicit n_eval_workers is contradictory;
        # make_evaluator raises rather than silently ignoring the count
        evaluator = make_evaluator(self.executor, workers)
        owns_evaluator = evaluator is not self.executor
        try:
            if getattr(evaluator, "async_mode", False):
                if self.scheduler_config.farm is not None:
                    self._drive_farm(
                        study,
                        evaluator,
                        self.scheduler_config.resolve_in_flight(),
                    )
                else:
                    self._drive_async(
                        study,
                        evaluator,
                        self.scheduler_config.resolve_in_flight(),
                    )
            else:
                if self.scheduler_config.farm is not None:
                    raise ValueError(
                        "SchedulerConfig.farm requires an asynchronous "
                        f"executor (async-thread/async-process), got "
                        f"{self.executor!r}"
                    )
                self._drive_sync(study, evaluator)
        finally:
            if owns_evaluator:
                evaluator.close()
        return study.result

    def _drive_sync(self, study, evaluator) -> None:
        """The synchronous driver: q-point batches behind a barrier."""
        scheduler = EvaluationScheduler(self.problem, evaluator)
        initial = study.start_initial()
        if initial:
            scheduler.run_trials(initial, study)
        # a resumed study may carry in-flight search trials; evaluate them
        # first (in submission order) so the budget completes and the next
        # batch ask sees a clean pending set
        pending = study.pending_trials()
        if pending:
            scheduler.run_trials(pending, study)
        while study.remaining_capacity > 0:
            q = min(self.q, study.remaining_capacity)
            trials = study.ask(q)
            scheduler.run_trials(trials, study)
            iteration = study.result.records[-1].iteration
            if self.verbose:
                best = study.result.best_objective()
                print(
                    f"[{self.algorithm_name}] iter {iteration:3d} "
                    f"evals {study.result.n_evaluations:4d} best {best:.6g}"
                )
            if self.callback is not None:
                self.callback(iteration, study.result)

    def _drive_async(self, study, evaluator, n_workers: int) -> None:
        """The asynchronous driver: the refill-on-completion loop.

        The initial design still evaluates as one deterministic batch;
        afterwards :class:`AsyncEvaluationScheduler` keeps ``n_workers``
        simulations in flight, asking the study for a replacement per
        landing.  ``callback(landing, result)`` fires per landing (the
        async analogue of per-iteration).
        """
        if self.async_refit == "fantasy-only" and self.surrogate_bank_factory is None:
            raise ValueError(
                "async_refit='fantasy-only' requires surrogate_bank_factory "
                "(posterior-only absorbs go through the bank); per-target "
                "surrogate factories must use async_refit='full'"
            )
        scheduler = AsyncEvaluationScheduler(
            self.problem, evaluator, clock=self.async_clock
        )

        def on_commit(trial, evaluation, result):
            landing = result.records[-1].iteration
            if self.verbose:
                best = result.best_objective()
                print(
                    f"[{self.algorithm_name}] landing {landing:3d} "
                    f"evals {result.n_evaluations:4d} best {best:.6g}"
                )
            if self.callback is not None:
                self.callback(landing, result)

        scheduler.run_study(study, n_workers=n_workers, on_commit=on_commit)

    def _drive_farm(self, study, evaluator, n_workers: int) -> None:
        """The evaluation-farm driver: elastic/speculative refill loop.

        A single-tenant farm over the configured executor.  With the
        default :class:`~repro.bo.config.FarmConfig` (fixed mode, no
        speculation) the driver's trace is pinned bitwise against
        :meth:`_drive_async`; elastic sizing, adaptive q and speculation
        are opted into through the scheduler config.
        """
        if self.async_refit == "fantasy-only" and self.surrogate_bank_factory is None:
            raise ValueError(
                "async_refit='fantasy-only' requires surrogate_bank_factory "
                "(posterior-only absorbs go through the bank); per-target "
                "surrogate factories must use async_refit='full'"
            )
        # the farm package builds on this module; imported here to avoid
        # a cycle
        from repro.farm import EvaluationFarm, FarmStudyDriver

        cfg = self.scheduler_config
        capacity = n_workers
        if cfg.farm.max_in_flight is not None:
            capacity = max(capacity, cfg.farm.max_in_flight)
        if cfg.speculation is not None:
            capacity += cfg.speculation.max_speculative

        def on_commit(trial, evaluation, result):
            landing = result.records[-1].iteration
            if self.verbose:
                best = result.best_objective()
                print(
                    f"[{self.algorithm_name}] landing {landing:3d} "
                    f"evals {result.n_evaluations:4d} best {best:.6g}"
                )
            if self.callback is not None:
                self.callback(landing, result)

        with EvaluationFarm(
            evaluator, capacity=capacity, clock=self.async_clock
        ) as farm:
            tenant = farm.register(
                str(self.problem.name),
                problem=self.problem,
                weight=cfg.farm.weight,
                max_queue=cfg.farm.max_queue,
            )
            driver = FarmStudyDriver(farm, clock=self.async_clock)
            driver.run(
                study,
                tenant,
                target=n_workers,
                config=cfg.farm,
                speculation=cfg.speculation,
                on_commit=on_commit,
            )

    # -- helpers -------------------------------------------------------------------

    def _sync_cache_counters(self, result: OptimizationResult):
        hits, misses = self.problem.cache_stats
        result.cache_hits = hits - self._cache_hits0
        result.cache_misses = misses - self._cache_misses0

    def _evaluate_and_record(self, u, result, unit_x, phase):
        """Serial single-point evaluate (legacy path, kept for tests/tools)."""
        evaluation = self.problem.evaluate_unit(u)
        result.append(self.problem.scaler.inverse_transform(u), evaluation, phase=phase)
        unit_x.append(np.asarray(u, dtype=float))
        self._sync_cache_counters(result)

    def _sanitized_targets(self, result: OptimizationResult):
        """Surrogate-ready targets from the committed history.

        Returns ``(objective, constraint_ys, targets)`` where ``targets``
        stacks the objective and every constraint as the ``(T, N)`` matrix
        the bank's :meth:`~repro.core.batched_gp.SurrogateBank.fit`
        consumes.
        """
        objective = _sanitize_targets(result.objectives)
        constraints = result.constraint_matrix
        constraint_ys = [
            _sanitize_targets(constraints[:, i])
            for i in range(self.problem.n_constraints)
        ]
        targets = np.empty((1 + self.problem.n_constraints, objective.shape[0]))
        targets[0] = objective
        for i, y in enumerate(constraint_ys):
            targets[1 + i] = y
        return objective, constraint_ys, targets

    def _fit_surrogates(self, x_unit: np.ndarray, result: OptimizationResult):
        """Fit this iteration's models; returns an :class:`_IterationModels`.

        With a bank factory the objective and every constraint ensemble are
        fitted in ONE batched call; the legacy path invokes the per-target
        factory ``n_constraints + 1`` times.
        """
        objective, constraint_ys, targets = self._sanitized_targets(result)

        if self.surrogate_bank_factory is not None:
            n_targets = 1 + self.problem.n_constraints
            bank = self.surrogate_bank_factory(self.rng, n_targets)
            bank.fit(x_unit, targets)
            return _IterationModels(
                objective=bank.target_model(0),
                constraints=[
                    bank.target_model(1 + i)
                    for i in range(self.problem.n_constraints)
                ],
                bank=bank,
                x=x_unit,
                objective_y=objective,
                constraint_ys=constraint_ys,
            )

        objective_model = self.surrogate_factory(self.rng)
        objective_model.fit(x_unit, objective)
        constraint_models = []
        for y in constraint_ys:
            model = self.surrogate_factory(self.rng)
            model.fit(x_unit, y)
            constraint_models.append(model)
        return _IterationModels(
            objective=objective_model,
            constraints=constraint_models,
            bank=None,
            x=x_unit,
            objective_y=objective,
            constraint_ys=constraint_ys,
        )

    def _make_acquisition(self, fitted: _IterationModels, result: OptimizationResult):
        """Build one acquisition callable over the current posterior.

        The ``"hallucinate"`` pending strategy swaps wEI for the
        optimistic-improvement bound (GP-BUCB criterion) — the hallucinated
        believer updates between picks then act through the variance term.
        """
        if self.acquisition == "thompson":
            if fitted.bank is not None:
                from repro.acquisition.thompson import BankThompsonAcquisition

                return BankThompsonAcquisition(fitted.bank, rng=self.rng)
            from repro.acquisition.thompson import ThompsonSamplingAcquisition

            return ThompsonSamplingAcquisition(
                fitted.objective, fitted.constraints, rng=self.rng
            )
        tau = result.best_objective()
        tau = None if not np.isfinite(tau) else tau
        if self.pending_strategy == "hallucinate":
            # a "beta-t" schedule re-resolves per proposal: t is the
            # committed-evaluation count, so kappa grows ~ sqrt(log t)
            kappa = self.acquisition_config.resolve_hallucinate_kappa(
                self.problem.dim, result.n_evaluations
            )
            return HallucinatedUCB(
                fitted.objective,
                fitted.constraints,
                tau=tau,
                kappa=kappa,
                log_space=self.log_space_acq,
            )
        return WeightedExpectedImprovement(
            fitted.objective,
            fitted.constraints,
            tau=tau,
            log_space=self.log_space_acq,
        )

    def _objective_lipschitz(self, fitted: _IterationModels) -> float:
        """Lipschitz estimate of the objective posterior, cached per fit."""
        if fitted.lipschitz is None:
            if fitted.bank is not None:
                fitted.lipschitz = fitted.bank.estimate_target_lipschitz(0)
            else:
                fitted.lipschitz = estimate_lipschitz(
                    fitted.objective, self.problem.dim
                )
        return fitted.lipschitz

    def _penalized_acquisition(
        self, fitted: _IterationModels, base, pending_units
    ):
        """Wrap ``base`` with local penalties around the pending designs.

        The penalizer incumbent is the best *observed objective* over the
        fitted (sanitized) targets — feasibility ignored — exactly
        Gonzalez et al.'s ``M``: the exclusion-ball argument concerns the
        objective surface the surrogate models over the whole box, not
        the constrained incumbent ``tau``.  Substituting the
        best-feasible value was tried and measurably hurts when
        infeasible low-objective valleys exist (it shrinks every radius
        and the concurrent picks cluster; Gardner-problem regret in
        ``benchmarks/bench_pending_strategies.py`` degrades ~0.17).
        """
        pending = np.atleast_2d(np.asarray(pending_units, dtype=float))
        means, variances = fitted.objective.predict(pending)
        finite = fitted.objective_y[np.isfinite(fitted.objective_y)]
        best = float(np.min(finite)) if finite.size else float("nan")
        penalizer = LocalPenalizer(
            pending,
            means,
            variances,
            best=best,
            lipschitz=self._objective_lipschitz(fitted),
        )
        return PenalizedAcquisition(base, penalizer, log_space=self.log_space_acq)

    def _prepare_proposal_space(
        self, x_unit: np.ndarray, result: OptimizationResult
    ) -> None:
        """Point the active proposal subspace at the current incumbent.

        A no-op on the full-space path.  ``x_unit`` rows parallel
        ``result.records`` (both append per committed evaluation), so the
        incumbent record's index addresses its unit design directly.
        """
        if self.proposal_space is None:
            return
        idx = incumbent_index(result)
        self.acq_maximizer.set_incumbent(
            None if idx is None or idx >= len(x_unit) else x_unit[idx]
        )

    def _propose(self, x_unit: np.ndarray, result: OptimizationResult) -> np.ndarray:
        """Single-point proposal (the q=1 fast path; original loop semantics)."""
        fitted = self._fit_surrogates(x_unit, result)
        acquisition_fn = self._make_acquisition(fitted, result)
        self._prepare_proposal_space(x_unit, result)
        proposal = self.acq_maximizer.maximize(
            acquisition_fn, self.problem.dim, self.rng
        )
        if self._is_duplicate(proposal, x_unit):
            proposal = self._resample_non_duplicate(x_unit)
        self._last_fitted = fitted
        return proposal

    def _propose_batch(
        self, x_unit: np.ndarray, result: OptimizationResult, q: int
    ) -> list[np.ndarray]:
        """Greedy q-point proposal with fantasy updates between picks.

        One surrogate fit serves all q picks.  On the wEI path the pending
        strategy decides how batch-mates shape pick ``j+1``: ``"fantasy"``
        and ``"hallucinate"`` condition the models on each pick (bank:
        posterior-only ``fantasize``; legacy models:
        :class:`FantasyModelSet` — hallucination always lies the believer
        mean), while ``"penalize"`` leaves the posterior clean and wraps
        the stage acquisition with local penalties around the picks so
        far.  The Thompson path simply draws q independent posterior
        functions.  Every pick also passes the duplicate filter against
        both the evaluated data and its own batch-mates.
        """
        fitted = self._fit_surrogates(x_unit, result)
        if self.acquisition == "wei" and self.pending_strategy == "penalize":
            base = self._make_acquisition(fitted, result)

            def stage_acquisition(j: int, picks: list[np.ndarray]):
                if not picks:
                    return base
                return self._penalized_acquisition(fitted, base, picks)

        else:
            fantasy_set = None
            if self.acquisition == "wei" and fitted.bank is None:
                fantasy_set = FantasyModelSet(
                    fitted.x,
                    fitted.objective,
                    fitted.objective_y,
                    fitted.constraints,
                    fitted.constraint_ys,
                )

            def stage_acquisition(j: int, picks: list[np.ndarray]):
                if j > 0 and self.acquisition == "wei":
                    self._apply_fantasy(fitted, fantasy_set, picks[-1])
                return self._make_acquisition(fitted, result)

        def deduplicate(pick: np.ndarray, picks: list[np.ndarray]):
            known = np.vstack([x_unit, *[p[None, :] for p in picks]])
            if self._is_duplicate(pick, known):
                pick = self._resample_non_duplicate(known)
            return pick

        self._prepare_proposal_space(x_unit, result)
        return self.acq_maximizer.maximize_batch(
            stage_acquisition,
            q,
            self.problem.dim,
            self.rng,
            postprocess=deduplicate,
        )

    def _apply_fantasy(self, fitted: _IterationModels, fantasy_set, pending):
        """Condition the iteration's models on one pending pick.

        Under ``pending_strategy="hallucinate"`` the lie is always the
        believer (posterior-mean) value — by definition a hallucinated
        observation leaves the mean surface untouched and only collapses
        variance at the pending point.
        """
        strategy = (
            "believer" if self.pending_strategy == "hallucinate" else self.fantasy
        )
        obj_lie, cons_lies = fantasy_lies(
            fitted.objective, fitted.constraints, pending,
            fitted.objective_y, strategy,
        )
        if fitted.bank is not None:
            fitted.bank.fantasize(pending, np.array([obj_lie, *cons_lies]))
        else:
            fantasy_set.add_fantasy(pending, obj_lie, cons_lies)

    def _is_duplicate(self, proposal: np.ndarray, x_unit: np.ndarray) -> bool:
        dists = np.max(np.abs(x_unit - proposal[None, :]), axis=1)
        return bool(np.any(dists < self.duplicate_tol))

    _MAX_RESAMPLE_TRIES = 32

    def _resample_non_duplicate(self, x_unit: np.ndarray) -> np.ndarray:
        """Draw a random replacement point that is itself not a duplicate.

        A single uniform draw can land on an already-evaluated design
        (likely with coarse ``duplicate_tol`` or a near-exhausted discrete
        region), which would waste a simulation on a known point; retry a
        bounded number of times and keep the final draw regardless.
        """
        for _ in range(self._MAX_RESAMPLE_TRIES):
            proposal = self.rng.uniform(0.0, 1.0, size=self.problem.dim)
            if not self._is_duplicate(proposal, x_unit):
                return proposal
        return proposal


def _sanitize_targets(y: np.ndarray) -> np.ndarray:
    """Make simulation outputs digestible for surrogate fitting.

    Two pathologies appear in circuit data: non-finite values from failed
    simulations (mapped to "much worse than anything seen", preserving the
    ranking) and extreme finite outliers from degenerate designs (a broken
    bias point can measure orders of magnitude off), which wreck target
    normalization.  Outliers are winsorized at ``median +- 10 IQR`` — far
    beyond any informative variation, so ordinary targets pass unchanged.
    """
    y = np.asarray(y, dtype=float).copy()
    bad = ~np.isfinite(y)
    if np.any(bad):
        good = y[~bad]
        if good.size == 0:
            y[...] = 0.0
            return y
        span = float(np.ptp(good))
        worst = float(np.max(good))
        y[bad] = worst + max(span, 1.0)
    q25, q50, q75 = np.percentile(y, [25.0, 50.0, 75.0])
    iqr = q75 - q25
    if iqr > 0.0:
        y = np.clip(y, q50 - 10.0 * iqr, q50 + 10.0 * iqr)
    return y


def _sanitize_new_target(value: float, existing: np.ndarray) -> float:
    """:func:`_sanitize_targets` for a single late-arriving value.

    The async ``"fantasy-only"`` policy absorbs landings one at a time;
    the same two pathologies apply (non-finite failed simulations,
    degenerate outliers), judged against the already-sanitized committed
    targets.  The periodic full refit re-sanitizes the whole vector, so
    any drift between the incremental and the batch clipping is bounded
    by one refit period.
    """
    existing = np.asarray(existing, dtype=float)
    value = float(value)
    if not np.isfinite(value):
        if existing.size == 0:
            return 0.0
        span = float(np.ptp(existing))
        return float(np.max(existing)) + max(span, 1.0)
    if existing.size:
        q25, q50, q75 = np.percentile(existing, [25.0, 50.0, 75.0])
        iqr = q75 - q25
        if iqr > 0.0:
            value = float(np.clip(value, q50 - 10.0 * iqr, q50 + 10.0 * iqr))
    return value
