"""Run histories and result summaries.

The paper reports, per run: the performances of the best design, and the
*average number of simulations* needed to reach it (Tables I and II).
:class:`OptimizationResult` therefore tracks every evaluation in order and
derives best-feasible / sims-to-best statistics from the trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bo.problem import Evaluation


@dataclass
class EvaluationRecord:
    """One evaluated design in chronological order.

    ``phase`` is ``"initial"`` for the random starting set and ``"search"``
    for points proposed by the optimizer.

    Batch provenance (filled by the propose/evaluate scheduler):

    ``iteration``
        Proposal round this design belongs to (0 for the initial design,
        1, 2, ... for search batches); ``None`` for records appended
        outside the scheduler.
    ``batch_index``
        Position of this design inside its proposal batch (0..q-1).
    ``pending``
        Global record indices of evaluations that were *pending* (proposed
        but not yet simulated) when this design was proposed — i.e. the
        fantasy points the q-point acquisition conditioned on.

    Async (refill-on-completion) provenance, filled by
    :class:`~repro.bo.scheduler.AsyncEvaluationScheduler`:

    ``proposal_id``
        This design's id in the run's proposal ledger
        (:attr:`OptimizationResult.ledger`); ``None`` for synchronous
        records.  Async records are committed in completion order, so
        proposal ids need not be monotone along the trace.
    ``pending_at_proposal``
        Proposal ids (not record indices — the in-flight designs had no
        history row yet) that were pending when this design was proposed:
        the fantasy points its acquisition conditioned on.
    """

    index: int
    x: np.ndarray
    evaluation: Evaluation
    phase: str = "search"
    iteration: int | None = None
    batch_index: int = 0
    pending: tuple[int, ...] = ()
    proposal_id: int | None = None
    pending_at_proposal: tuple[int, ...] = ()

    def __post_init__(self):
        self.x = np.asarray(self.x, dtype=float).ravel()
        if self.phase not in ("initial", "search"):
            raise ValueError(f"unknown phase {self.phase!r}")
        self.batch_index = int(self.batch_index)
        self.pending = tuple(int(i) for i in self.pending)
        if self.proposal_id is not None:
            self.proposal_id = int(self.proposal_id)
        self.pending_at_proposal = tuple(int(i) for i in self.pending_at_proposal)


class OptimizationResult:
    """Chronological record of an optimization run with summary accessors."""

    def __init__(self, problem_name: str, algorithm: str):
        self.problem_name = str(problem_name)
        self.algorithm = str(algorithm)
        self.records: list[EvaluationRecord] = []
        #: simulator-cache traffic during this run (filled by the optimizer
        #: from Problem.cache_stats deltas); hits are proposals answered
        #: from the memoization cache without re-running the simulator
        self.cache_hits = 0
        self.cache_misses = 0
        #: the :class:`~repro.bo.scheduler.ProposalLedger` of an
        #: asynchronous run (proposal/commit order provenance); ``None``
        #: for synchronous runs
        self.ledger = None

    # -- recording ------------------------------------------------------------

    def append(
        self,
        x: np.ndarray,
        evaluation: Evaluation,
        phase: str = "search",
        iteration: int | None = None,
        batch_index: int = 0,
        pending: tuple[int, ...] = (),
        proposal_id: int | None = None,
        pending_at_proposal: tuple[int, ...] = (),
    ):
        """Add one evaluated design to the trace (with batch provenance)."""
        self.records.append(
            EvaluationRecord(
                index=len(self.records),
                x=x,
                evaluation=evaluation,
                phase=phase,
                iteration=iteration,
                batch_index=batch_index,
                pending=pending,
                proposal_id=proposal_id,
                pending_at_proposal=pending_at_proposal,
            )
        )

    # -- bulk views -------------------------------------------------------------

    @property
    def n_evaluations(self) -> int:
        """Total number of simulator calls."""
        return len(self.records)

    @property
    def x_matrix(self) -> np.ndarray:
        """All evaluated designs, shape ``(n, d)``."""
        if not self.records:
            return np.empty((0, 0))
        return np.stack([r.x for r in self.records])

    @property
    def objectives(self) -> np.ndarray:
        """Objective trace, shape ``(n,)``."""
        return np.array([r.evaluation.objective for r in self.records])

    @property
    def constraint_matrix(self) -> np.ndarray:
        """Constraint values, shape ``(n, Nc)`` (``(n, 0)`` if unconstrained)."""
        if not self.records:
            return np.empty((0, 0))
        return np.stack([r.evaluation.constraints for r in self.records])

    @property
    def feasible_mask(self) -> np.ndarray:
        """Boolean mask of feasible evaluations."""
        return np.array([r.evaluation.feasible for r in self.records])

    def batches(self, phase: str | None = "search") -> list[list[EvaluationRecord]]:
        """Records grouped by proposal round, in iteration order.

        Records without scheduler provenance (``iteration is None``) are
        skipped; pass ``phase=None`` to include the initial design as
        iteration 0.
        """
        grouped: dict[int, list[EvaluationRecord]] = {}
        for record in self.records:
            if record.iteration is None:
                continue
            if phase is not None and record.phase != phase:
                continue
            grouped.setdefault(record.iteration, []).append(record)
        return [
            sorted(grouped[it], key=lambda r: r.batch_index)
            for it in sorted(grouped)
        ]

    # -- summaries ----------------------------------------------------------------

    @property
    def success(self) -> bool:
        """True iff any feasible design was found (paper's ``# Success``)."""
        return bool(np.any(self.feasible_mask))

    def best_feasible(self) -> EvaluationRecord | None:
        """The feasible record with the lowest objective, or ``None``."""
        best = None
        for record in self.records:
            if not record.evaluation.feasible:
                continue
            if best is None or record.evaluation.objective < best.evaluation.objective:
                best = record
        return best

    def best_objective(self) -> float:
        """Best feasible objective (``inf`` when no feasible point exists)."""
        best = self.best_feasible()
        return np.inf if best is None else best.evaluation.objective

    def n_sims_to_best(self, rel_tol: float = 1e-9) -> int | None:
        """Simulations spent until the final best value was first reached.

        This is the paper's ``Avg. # Sim`` notion: an algorithm that
        plateaus early gets credit for the simulations it actually needed,
        not for its full budget.  Returns ``None`` for failed runs.
        """
        best = self.best_feasible()
        if best is None:
            return None
        target = best.evaluation.objective
        margin = abs(target) * rel_tol + 1e-12
        for record in self.records:
            if (
                record.evaluation.feasible
                and record.evaluation.objective <= target + margin
            ):
                return record.index + 1
        return best.index + 1

    def n_sims_to_first_feasible(self) -> int | None:
        """Simulations spent until the first feasible design (or ``None``)."""
        mask = self.feasible_mask
        if not np.any(mask):
            return None
        return int(np.argmax(mask)) + 1

    def best_so_far(self) -> np.ndarray:
        """Running best feasible objective per evaluation (inf before any).

        This is the convergence curve used by the example scripts.
        """
        out = np.empty(self.n_evaluations)
        best = np.inf
        for i, record in enumerate(self.records):
            if record.evaluation.feasible:
                best = min(best, record.evaluation.objective)
            out[i] = best
        return out

    def __repr__(self) -> str:
        return (
            f"OptimizationResult({self.algorithm} on {self.problem_name}: "
            f"{self.n_evaluations} evals, best={self.best_objective():.6g})"
        )
