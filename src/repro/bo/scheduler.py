"""Propose/evaluate scheduler: batched dispatch of simulator calls.

The single-point BO loop leaves any multi-core simulation budget idle:
one design is proposed, simulated, and only then is the next one chosen.
This module supplies the evaluation half of the q-point refactor — the
proposal half (q-aware acquisition with constant-liar/fantasy updates)
lives in :mod:`repro.bo.loop` and :mod:`repro.acquisition`.

Three pluggable executors implement the ``evaluate(problem, batch)``
protocol, yielding ``(batch_index, Evaluation)`` pairs *in completion
order*:

* :class:`SerialEvaluator` — in-process, in-order; with ``q=1`` this
  reproduces the legacy loop bitwise.
* :class:`ThreadPoolEvaluator` — a thread pool sharing one problem
  instance (the memoization cache is lock-protected).  Suited to
  simulators that release the GIL or block on subprocess/IO.
* :class:`ProcessPoolEvaluator` — a process pool for CPU-bound Python
  simulators.  The problem is shipped to each worker once (pool
  initializer); workers simulate *uncached* and the parent ingests every
  result into its own cache (:meth:`repro.bo.problem.Problem.
  store_evaluation`), so hit/miss counters and the optional on-disk cache
  stay consistent.  Falls back to serial with a warning when the problem
  cannot be pickled.

:class:`EvaluationScheduler` sits on top: it dispatches one proposal batch,
ingests results as they land (an ``on_arrival`` hook fires in completion
order), and appends them to the :class:`~repro.bo.history.
OptimizationResult` in *batch order* through a reorder buffer.  Batch-order
history is what keeps runs deterministic across executors: the surrogate
refit of iteration ``i+1`` sees the same data matrix row order no matter
which worker finished first, so the same seed and the same ``q`` yield
identical proposal batches on every executor.
"""

from __future__ import annotations

import pickle
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait

import numpy as np

from repro.bo.history import OptimizationResult
from repro.bo.problem import Evaluation, Problem


class EvaluationExecutor:
    """Interface: evaluate a batch of unit-box designs on a problem.

    Implementations yield ``(batch_index, evaluation)`` pairs in whatever
    order simulations complete; callers must not rely on ordering.
    ``close()`` releases worker resources and must be idempotent.
    """

    name = "abstract"

    def evaluate(self, problem: Problem, batch):
        """Yield ``(batch_index, Evaluation)`` as results complete."""
        raise NotImplementedError

    def close(self):
        """Release pooled workers (no-op by default)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialEvaluator(EvaluationExecutor):
    """Evaluate the batch one by one in the calling process."""

    name = "serial"

    def evaluate(self, problem: Problem, batch):
        for batch_index, u in enumerate(batch):
            yield batch_index, problem.evaluate_unit(u)


class ThreadPoolEvaluator(EvaluationExecutor):
    """Evaluate batch candidates concurrently on a shared thread pool.

    All threads call ``problem.evaluate_unit`` on the *same* problem
    instance; the problem's cache lock keeps the memoization bookkeeping
    consistent.  Python-level simulator code still contends for the GIL —
    use :class:`ProcessPoolEvaluator` for CPU-bound pure-Python simulators.
    """

    name = "thread"

    def __init__(self, n_workers: int = 4):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.n_workers)
        return self._pool

    def evaluate(self, problem: Problem, batch):
        pool = self._ensure_pool()
        futures = {
            pool.submit(problem.evaluate_unit, u): batch_index
            for batch_index, u in enumerate(batch)
        }
        yield from _drain_futures(futures)

    def close(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# Worker-side state for the process pool: each worker receives the problem
# once via the pool initializer instead of with every task.
_WORKER_PROBLEM: Problem | None = None


def _init_worker(problem: Problem):
    global _WORKER_PROBLEM
    _WORKER_PROBLEM = problem


def _worker_evaluate(u: np.ndarray) -> Evaluation:
    """Simulate one design in a worker, bypassing the worker's cache copy.

    The parent process owns all caching: it checks its cache before
    dispatch and stores worker results afterwards, so worker-side caches
    would only drift (and double-write any on-disk store).
    """
    assert _WORKER_PROBLEM is not None, "process pool not initialized"
    return _WORKER_PROBLEM.evaluate_unit_uncached(u)


class ProcessPoolEvaluator(EvaluationExecutor):
    """Evaluate batch candidates on a process pool (true CPU parallelism).

    The problem must be picklable; otherwise the first ``evaluate`` call
    warns and degrades to serial in-process evaluation.  Cache behaviour is
    parent-owned (see :func:`_worker_evaluate`): already-cached candidates
    are answered without dispatch, and fresh simulations are ingested with
    :meth:`~repro.bo.problem.Problem.store_evaluation`.
    """

    name = "process"

    def __init__(self, n_workers: int = 4):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        self._pool: ProcessPoolExecutor | None = None
        self._pool_problem: Problem | None = None
        self._serial_fallback = False

    def _ensure_pool(self, problem: Problem) -> ProcessPoolExecutor | None:
        if self._serial_fallback:
            return None
        if self._pool is not None and self._pool_problem is not problem:
            # a new problem needs freshly initialized workers
            self.close()
        if self._pool is None:
            try:
                pickle.dumps(problem)
            except Exception:
                warnings.warn(
                    "problem is not picklable; ProcessPoolEvaluator falling "
                    "back to serial evaluation (use module-level callables "
                    "or a thread executor)",
                    stacklevel=3,
                )
                self._serial_fallback = True
                return None
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                initializer=_init_worker,
                initargs=(problem,),
            )
            self._pool_problem = problem
        return self._pool

    def evaluate(self, problem: Problem, batch):
        batch = list(batch)
        pool = self._ensure_pool(problem)
        if pool is None:
            yield from SerialEvaluator().evaluate(problem, batch)
            return
        futures = {}
        for batch_index, u in enumerate(batch):
            cached = problem.lookup_cached(u)
            if cached is not None:
                yield batch_index, cached
            else:
                futures[pool.submit(_worker_evaluate, np.asarray(u, dtype=float))] = (
                    batch_index
                )
        for batch_index, evaluation in _drain_futures(futures):
            problem.store_evaluation(batch[batch_index], evaluation)
            yield batch_index, evaluation

    def close(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_problem = None


def _drain_futures(futures: dict):
    """Yield ``(batch_index, result)`` pairs as futures complete."""
    outstanding = set(futures)
    while outstanding:
        done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
        for future in done:
            yield futures[future], future.result()


_EXECUTORS = {
    "serial": SerialEvaluator,
    "thread": ThreadPoolEvaluator,
    "process": ProcessPoolEvaluator,
}


def make_evaluator(spec, n_workers: int | None = None) -> EvaluationExecutor:
    """Resolve an executor spec (name or instance) to an executor.

    ``spec`` is ``"serial"``, ``"thread"``, ``"process"`` or an
    :class:`EvaluationExecutor` instance (returned unchanged, in which case
    ``n_workers`` must be left unset).
    """
    if isinstance(spec, EvaluationExecutor):
        if n_workers is not None:
            raise ValueError("n_workers cannot override an executor instance")
        return spec
    try:
        cls = _EXECUTORS[str(spec).lower()]
    except KeyError:
        raise ValueError(
            f"unknown executor {spec!r}; expected one of {sorted(_EXECUTORS)} "
            "or an EvaluationExecutor instance"
        ) from None
    if cls is SerialEvaluator:
        return cls()
    return cls(n_workers=4 if n_workers is None else n_workers)


class EvaluationScheduler:
    """Dispatch proposal batches and ingest results deterministically.

    Results are handed to ``on_arrival(iteration, batch_index, evaluation)``
    the moment they complete (monitoring/streaming), but are committed to
    the history in batch order via a reorder buffer, so the recorded trace
    — and therefore every downstream surrogate fit — is independent of
    worker scheduling.
    """

    def __init__(self, problem: Problem, executor: EvaluationExecutor, on_arrival=None):
        self.problem = problem
        self.executor = executor
        self.on_arrival = on_arrival

    def run_batch(
        self,
        batch,
        result: OptimizationResult,
        unit_x: list[np.ndarray],
        phase: str,
        iteration: int,
    ) -> None:
        """Evaluate one proposal batch and append it to ``result``.

        ``batch`` is a sequence of unit-box design vectors.  Search-phase
        candidate ``j`` records the global indices of its batch-mates
        ``0..j-1`` as its pending-at-propose-time set (those were the
        fantasy points its acquisition conditioned on); the initial design
        is generated jointly, so its pending sets are empty.
        """
        batch = [np.asarray(u, dtype=float) for u in batch]
        base = result.n_evaluations
        buffered: dict[int, Evaluation] = {}
        next_up = 0
        for batch_index, evaluation in self.executor.evaluate(self.problem, batch):
            if self.on_arrival is not None:
                self.on_arrival(iteration, batch_index, evaluation)
            buffered[batch_index] = evaluation
            while next_up in buffered:
                pending = (
                    tuple(range(base, base + next_up)) if phase == "search" else ()
                )
                u = batch[next_up]
                result.append(
                    self.problem.scaler.inverse_transform(u),
                    buffered.pop(next_up),
                    phase=phase,
                    iteration=iteration,
                    batch_index=next_up,
                    pending=pending,
                )
                unit_x.append(u)
                next_up += 1
        if next_up != len(batch):
            raise RuntimeError(
                f"executor returned {next_up}/{len(batch)} batch results"
            )
