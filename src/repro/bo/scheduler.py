"""Propose/evaluate schedulers: batched and fully asynchronous dispatch.

The single-point BO loop leaves any multi-core simulation budget idle:
one design is proposed, simulated, and only then is the next one chosen.
This module supplies the evaluation half of the q-point refactor — the
proposal half (q-aware acquisition with constant-liar/fantasy updates)
lives in :mod:`repro.bo.loop` and :mod:`repro.acquisition`.

Two schedulers build on the executors below:

* :class:`EvaluationScheduler` — the synchronous q-point scheduler of
  PR 2: one proposal batch is dispatched, the loop blocks at a barrier
  until the whole batch lands, results commit in batch order.
* :class:`AsyncEvaluationScheduler` — the refill-on-completion loop:
  ``n_workers`` evaluations stay in flight at all times, each landing is
  committed immediately (completion order) and a replacement proposal —
  conditioned on the still-pending set via fantasies — is submitted the
  moment the surrogate has absorbed the landing.  No barrier: a slow
  simulation never stalls the rest of the pool.

Async determinism is *conditional*: the recorded trace is a pure
function of ``(seed, completion order)``.  Every run carries a
:class:`ProposalLedger` (``result.ledger``) recording, per proposal, the
pending set it was conditioned on and the order in which proposals
landed, so a trace can be audited or replayed.  Tests pin the contract
by driving the completion order from a deterministic :class:`FakeClock`
(virtual evaluation durations), under which async-thread and
async-process runs are bitwise identical.

Three pluggable executors implement the ``evaluate(problem, batch)``
protocol, yielding ``(batch_index, Evaluation)`` pairs *in completion
order*:

* :class:`SerialEvaluator` — in-process, in-order; with ``q=1`` this
  reproduces the legacy loop bitwise.
* :class:`ThreadPoolEvaluator` — a thread pool sharing one problem
  instance (the memoization cache is lock-protected).  Suited to
  simulators that release the GIL or block on subprocess/IO.
* :class:`ProcessPoolEvaluator` — a process pool for CPU-bound Python
  simulators.  The problem is shipped to each worker once (pool
  initializer); workers simulate *uncached* and the parent ingests every
  result into its own cache (:meth:`repro.bo.problem.Problem.
  store_evaluation`), so hit/miss counters and the optional on-disk cache
  stay consistent.  Falls back to serial with a warning when the problem
  cannot be pickled.

:class:`EvaluationScheduler` sits on top: it dispatches one proposal batch,
ingests results as they land (an ``on_arrival`` hook fires in completion
order), and appends them to the :class:`~repro.bo.history.
OptimizationResult` in *batch order* through a reorder buffer.  Batch-order
history is what keeps runs deterministic across executors: the surrogate
refit of iteration ``i+1`` sees the same data matrix row order no matter
which worker finished first, so the same seed and the same ``q`` yield
identical proposal batches on every executor.
"""

from __future__ import annotations

import copy
import os
import pickle
import warnings
import zlib
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass

import numpy as np

from repro.bo.config import check_count
from repro.bo.history import OptimizationResult
from repro.bo.problem import Evaluation, Problem


def _completed_future(value) -> Future:
    """An already-resolved future (cached/serial results in async mode)."""
    future: Future = Future()
    future.set_result(value)
    return future


#: ceiling on the *default* pool size: simulation workloads saturate well
#: before the core counts of large hosts, and oversized default pools only
#: add fork/teardown latency.  Explicit ``n_workers`` is never capped.
MAX_DEFAULT_WORKERS = 8


def default_pool_workers() -> int:
    """Default worker count for pooled executors: ``os.cpu_count()``, capped."""
    return max(1, min(os.cpu_count() or 1, MAX_DEFAULT_WORKERS))


class EvaluationExecutor:
    """Interface: evaluate a batch of unit-box designs on a problem.

    Implementations yield ``(batch_index, evaluation)`` pairs in whatever
    order simulations complete; callers must not rely on ordering.
    ``close()`` releases worker resources and must be idempotent.

    Pooled executors additionally implement the *async protocol* used by
    :class:`AsyncEvaluationScheduler`: ``submit(problem, u)`` returns a
    future resolving to the :class:`~repro.bo.problem.Evaluation`, and
    ``collect(problem, u, future)`` retrieves the result (performing any
    parent-side cache bookkeeping exactly once).  ``async_mode`` marks
    the executor specs that opt the BO loop into the refill-on-completion
    scheduler instead of the batch barrier.
    """

    name = "abstract"
    #: True for the ``"async-*"`` executor specs: the BO loop runs the
    #: refill-on-completion scheduler instead of the q-point barrier.
    async_mode = False

    def evaluate(self, problem: Problem, batch):
        """Yield ``(batch_index, Evaluation)`` as results complete."""
        raise NotImplementedError

    def submit(self, problem: Problem, u: np.ndarray) -> Future:
        """Dispatch one unit-box design; returns a future of its Evaluation."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support asynchronous submission"
        )

    def collect(self, problem: Problem, u: np.ndarray, future: Future) -> Evaluation:
        """Block on one submitted future and return its evaluation."""
        return future.result()

    def close(self):
        """Release pooled workers (no-op by default)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialEvaluator(EvaluationExecutor):
    """Evaluate the batch one by one in the calling process."""

    name = "serial"

    def evaluate(self, problem: Problem, batch):
        for batch_index, u in enumerate(batch):
            yield batch_index, problem.evaluate_unit(u)


class ThreadPoolEvaluator(EvaluationExecutor):
    """Evaluate batch candidates concurrently on a shared thread pool.

    All threads call ``problem.evaluate_unit`` on the *same* problem
    instance; the problem's cache lock keeps the memoization bookkeeping
    consistent.  Python-level simulator code still contends for the GIL —
    use :class:`ProcessPoolEvaluator` for CPU-bound pure-Python simulators.
    """

    name = "thread"

    def __init__(self, n_workers: int | None = None):
        if n_workers is None:
            n_workers = default_pool_workers()
        self.n_workers = check_count("n_workers", n_workers)
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.n_workers)
        return self._pool

    def evaluate(self, problem: Problem, batch):
        pool = self._ensure_pool()
        futures = {
            pool.submit(problem.evaluate_unit, u): batch_index
            for batch_index, u in enumerate(batch)
        }
        yield from _drain_futures(futures)

    def submit(self, problem: Problem, u: np.ndarray) -> Future:
        """Dispatch one design to the pool (memoization stays parent-side)."""
        return self._ensure_pool().submit(
            problem.evaluate_unit, np.asarray(u, dtype=float)
        )

    def close(self):
        """Shut the pool down; queued-but-unstarted work is cancelled.

        ``cancel_futures=True`` makes shutdown exception-safe: when a
        poisoned evaluation aborts a batch mid-flight, the not-yet-started
        tasks are dropped instead of being waited on, so closing never
        blocks on work nobody will consume.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


# Worker-side state for the process pool: each worker receives the problem
# once via the pool initializer instead of with every task.
_WORKER_PROBLEM: Problem | None = None


def _init_worker(problem: Problem):
    global _WORKER_PROBLEM
    _WORKER_PROBLEM = problem


def _worker_evaluate(u: np.ndarray) -> Evaluation:
    """Simulate one design in a worker, bypassing the worker's cache copy.

    The parent process owns all caching: it checks its cache before
    dispatch and stores worker results afterwards, so worker-side caches
    would only drift (and double-write any on-disk store).
    """
    assert _WORKER_PROBLEM is not None, "process pool not initialized"
    return _WORKER_PROBLEM.evaluate_unit_uncached(u)


class ProcessPoolEvaluator(EvaluationExecutor):
    """Evaluate batch candidates on a process pool (true CPU parallelism).

    The problem must be picklable; otherwise the first ``evaluate`` call
    warns and degrades to serial in-process evaluation.  Cache behaviour is
    parent-owned (see :func:`_worker_evaluate`): already-cached candidates
    are answered without dispatch, and fresh simulations are ingested with
    :meth:`~repro.bo.problem.Problem.store_evaluation`.
    """

    name = "process"

    def __init__(self, n_workers: int | None = None):
        if n_workers is None:
            n_workers = default_pool_workers()
        self.n_workers = check_count("n_workers", n_workers)
        self._pool: ProcessPoolExecutor | None = None
        self._pool_problem: Problem | None = None
        self._serial_fallback = False
        # futures whose results still need ingesting into the parent cache
        # (async submissions dispatched to workers; cached/serial-fallback
        # futures are excluded)
        self._needs_store: set[Future] = set()

    def _ensure_pool(self, problem: Problem) -> ProcessPoolExecutor | None:
        if self._serial_fallback:
            return None
        if self._pool is not None and self._pool_problem is not problem:
            # a new problem needs freshly initialized workers
            self.close()
        if self._pool is None:
            # ship a cache-stripped copy: workers simulate uncached by
            # design (the parent owns all caching), so serializing a
            # possibly-large warm memoization cache to every worker would
            # be pure pickle/transfer waste
            shipped = copy.copy(problem)
            shipped._eval_cache = {}
            try:
                pickle.dumps(shipped)
            except Exception:
                warnings.warn(
                    "problem is not picklable; ProcessPoolEvaluator falling "
                    "back to serial evaluation (use module-level callables "
                    "or a thread executor)",
                    stacklevel=3,
                )
                self._serial_fallback = True
                return None
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                initializer=_init_worker,
                initargs=(shipped,),
            )
            self._pool_problem = problem
        return self._pool

    def evaluate(self, problem: Problem, batch):
        batch = list(batch)
        pool = self._ensure_pool(problem)
        if pool is None:
            yield from SerialEvaluator().evaluate(problem, batch)
            return
        futures = {}
        for batch_index, u in enumerate(batch):
            cached = problem.lookup_cached(u)
            if cached is not None:
                yield batch_index, cached
            else:
                futures[pool.submit(_worker_evaluate, np.asarray(u, dtype=float))] = (
                    batch_index
                )
        for batch_index, evaluation in _drain_futures(futures):
            problem.store_evaluation(batch[batch_index], evaluation)
            yield batch_index, evaluation

    def submit(self, problem: Problem, u: np.ndarray) -> Future:
        """Dispatch one design to a worker (cache answered parent-side).

        Already-cached designs resolve immediately without touching the
        pool; fresh simulations are ingested into the parent cache by
        :meth:`collect` (exactly once per future).
        """
        u = np.asarray(u, dtype=float)
        pool = self._ensure_pool(problem)
        if pool is None:
            return _completed_future(problem.evaluate_unit(u))
        cached = problem.lookup_cached(u)
        if cached is not None:
            return _completed_future(cached)
        future = pool.submit(_worker_evaluate, u)
        self._needs_store.add(future)
        return future

    def collect(self, problem: Problem, u: np.ndarray, future: Future) -> Evaluation:
        evaluation = future.result()
        if future in self._needs_store:
            self._needs_store.discard(future)
            problem.store_evaluation(u, evaluation)
        return evaluation

    def close(self):
        """Shut the pool down, cancelling queued work (see base class)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
            self._pool_problem = None
            self._needs_store.clear()


class AsyncThreadEvaluator(ThreadPoolEvaluator):
    """Thread pool driven by the refill-on-completion scheduler.

    Identical machinery to :class:`ThreadPoolEvaluator`; the distinct spec
    (``executor="async-thread"``) is what opts the BO loop into
    :class:`AsyncEvaluationScheduler` instead of the q-point barrier.
    """

    name = "async-thread"
    async_mode = True


class AsyncProcessEvaluator(ProcessPoolEvaluator):
    """Process pool driven by the refill-on-completion scheduler."""

    name = "async-process"
    async_mode = True


def _drain_futures(futures: dict):
    """Yield ``(batch_index, result)`` pairs as futures complete.

    Exception-safe: when a result raises (poisoned objective) or the
    consumer abandons the generator, every still-outstanding future is
    cancelled so pool shutdown never waits on work nobody will read.
    """
    outstanding = set(futures)
    try:
        while outstanding:
            done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
            for future in done:
                yield futures[future], future.result()
    finally:
        for future in outstanding:
            future.cancel()


_EXECUTORS = {
    "serial": SerialEvaluator,
    "thread": ThreadPoolEvaluator,
    "process": ProcessPoolEvaluator,
    "async-thread": AsyncThreadEvaluator,
    "async-process": AsyncProcessEvaluator,
}


def make_evaluator(spec, n_workers: int | None = None) -> EvaluationExecutor:
    """Resolve an executor spec (name or instance) to an executor.

    ``spec`` is ``"serial"``, ``"thread"``, ``"process"``,
    ``"async-thread"``, ``"async-process"`` or an
    :class:`EvaluationExecutor` instance (returned unchanged, in which case
    ``n_workers`` must be left unset).  Pooled specs default their worker
    count to :func:`default_pool_workers`; the serial spec rejects an
    explicit ``n_workers`` instead of silently ignoring it — a caller
    writing ``make_evaluator("serial", n_workers=8)`` almost certainly
    meant a pooled executor.
    """
    if isinstance(spec, EvaluationExecutor):
        if n_workers is not None:
            raise ValueError(
                f"n_workers={n_workers} cannot override the executor "
                f"instance {spec!r}; size the instance at construction"
            )
        return spec
    try:
        cls = _EXECUTORS[str(spec).lower()]
    except KeyError:
        raise ValueError(
            f"unknown executor {spec!r}; expected one of {sorted(_EXECUTORS)} "
            "or an EvaluationExecutor instance"
        ) from None
    if cls is SerialEvaluator:
        if n_workers is not None:
            raise ValueError(
                f"the serial executor evaluates in-process; n_workers="
                f"{n_workers} has no effect (use a 'thread'/'process'/"
                "'async-*' executor for pooled evaluation)"
            )
        return cls()
    return cls(n_workers=n_workers)


class EvaluationScheduler:
    """Dispatch proposal batches and ingest results deterministically.

    Results are handed to ``on_arrival(iteration, batch_index, evaluation)``
    the moment they complete (monitoring/streaming), but are committed to
    the history in batch order via a reorder buffer, so the recorded trace
    — and therefore every downstream surrogate fit — is independent of
    worker scheduling.
    """

    def __init__(self, problem: Problem, executor: EvaluationExecutor, on_arrival=None):
        self.problem = problem
        self.executor = executor
        self.on_arrival = on_arrival

    def run_batch(
        self,
        batch,
        result: OptimizationResult,
        unit_x: list[np.ndarray],
        phase: str,
        iteration: int,
    ) -> None:
        """Evaluate one proposal batch and append it to ``result``.

        ``batch`` is a sequence of unit-box design vectors.  Search-phase
        candidate ``j`` records the global indices of its batch-mates
        ``0..j-1`` as its pending-at-propose-time set (those were the
        fantasy points its acquisition conditioned on); the initial design
        is generated jointly, so its pending sets are empty.
        """
        batch = [np.asarray(u, dtype=float) for u in batch]
        base = result.n_evaluations

        def commit(next_up: int, evaluation: Evaluation) -> None:
            pending = (
                tuple(range(base, base + next_up)) if phase == "search" else ()
            )
            u = batch[next_up]
            result.append(
                self.problem.scaler.inverse_transform(u),
                evaluation,
                phase=phase,
                iteration=iteration,
                batch_index=next_up,
                pending=pending,
            )
            unit_x.append(u)

        self._ingest_in_batch_order(batch, commit, lambda batch_index: iteration)

    def run_trials(self, trials, study) -> None:
        """Evaluate one batch of study trials; tell the study in batch order.

        The ask/tell face of :meth:`run_batch`: ``trials`` come from
        :meth:`~repro.bo.study.Study.ask` and results are committed via
        :meth:`~repro.bo.study.Study.tell` through the same reorder
        buffer, so the recorded history — and every downstream surrogate
        fit — is independent of worker scheduling.
        """
        trials = list(trials)
        batch = [trial.u for trial in trials]

        def arrival_iteration(batch_index: int):
            # streaming (single-ask) trials are numbered at tell time; the
            # tells of this call happen in batch order, so such a trial
            # will land as the study's next iteration — report that, not
            # None, to honor the on_arrival(iteration, ...) contract
            trial = trials[batch_index]
            if trial.iteration is not None:
                return trial.iteration
            return study._iteration + 1

        self._ingest_in_batch_order(
            batch,
            lambda next_up, evaluation: study.tell(trials[next_up], evaluation),
            arrival_iteration,
        )

    def _ingest_in_batch_order(self, batch, commit, arrival_iteration) -> None:
        """Shared ingest loop: stream arrivals, commit through a reorder buffer."""
        buffered: dict[int, Evaluation] = {}
        next_up = 0
        for batch_index, evaluation in self.executor.evaluate(self.problem, batch):
            if self.on_arrival is not None:
                self.on_arrival(
                    arrival_iteration(batch_index), batch_index, evaluation
                )
            buffered[batch_index] = evaluation
            while next_up in buffered:
                commit(next_up, buffered.pop(next_up))
                next_up += 1
        if next_up != len(batch):
            raise RuntimeError(
                f"executor returned {next_up}/{len(batch)} batch results"
            )


# -- asynchronous (refill-on-completion) scheduling --------------------------------


@dataclass
class ProposalEntry:
    """One proposal's provenance in the async ledger.

    ``pending_at_proposal`` holds the proposal ids that were in flight
    (submitted, not yet landed) when this design was proposed — the
    fantasy points its acquisition conditioned on.
    ``n_landed_at_submit`` is how many earlier proposals had already
    landed at submission time; ``committed_at`` is this proposal's own
    landing sequence number (1-based completion order, ``None`` while in
    flight) and ``record_index`` the history row it landed in — so for
    any pending id ``p``: ``entry(p).committed_at > n_landed_at_submit``.
    ``virtual_ready`` is the fake-clock completion time when a
    :class:`FakeClock` drives the run (``None`` in wall-clock mode).
    ``strategy`` records how the proposal's acquisition absorbed the
    pending set (``"fantasy"``, ``"penalize"`` or ``"hallucinate"`` — see
    :mod:`repro.acquisition.penalization`), so replays and audits know
    which coordination rule produced each design.  ``retracted`` marks a
    proposal abandoned via :meth:`~repro.bo.study.Study.retract` — it
    never landed and never will, but its provenance (what later proposals
    conditioned on) stays auditable.  ``speculative`` marks a proposal
    asked opportunistically by the evaluation farm (:mod:`repro.farm`) to
    fill otherwise-idle workers; a speculative proposal either commits
    like any demanded landing (promotion) or ends retracted
    (abandonment), and the flag survives both so audits can separate
    demanded from speculated work.
    """

    proposal_id: int
    u: tuple
    pending_at_proposal: tuple[int, ...]
    n_landed_at_submit: int
    virtual_ready: float | None = None
    committed_at: int | None = None
    record_index: int | None = None
    strategy: str = "fantasy"
    retracted: bool = False
    speculative: bool = False


class ProposalLedger:
    """Replayable record of an asynchronous run's proposal/commit order.

    The async trace is a pure function of ``(seed, completion order)``;
    the ledger captures the completion order — plus each proposal's
    pending-set provenance — so a run can be audited, compared across
    executors, or replayed: re-running with the same seed and a clock
    that reproduces ``completion_order`` yields the identical trace
    (pinned in ``tests/bo/test_async_scheduler.py``).
    """

    def __init__(self):
        self.entries: list[ProposalEntry] = []
        self._n_committed = 0

    def open(
        self,
        u: np.ndarray,
        pending: tuple[int, ...],
        virtual_ready: float | None = None,
        strategy: str = "fantasy",
        speculative: bool = False,
    ) -> ProposalEntry:
        """Register a new proposal; returns its entry (id = position)."""
        entry = ProposalEntry(
            proposal_id=len(self.entries),
            u=tuple(np.asarray(u, dtype=float).ravel().tolist()),
            pending_at_proposal=tuple(int(i) for i in pending),
            n_landed_at_submit=self._n_committed,
            virtual_ready=virtual_ready,
            strategy=str(strategy),
            speculative=bool(speculative),
        )
        self.entries.append(entry)
        return entry

    def commit(self, proposal_id: int, record_index: int) -> ProposalEntry:
        """Mark one proposal as landed (next completion sequence number)."""
        entry = self.entries[proposal_id]
        if entry.committed_at is not None:
            raise ValueError(f"proposal {proposal_id} committed twice")
        if entry.retracted:
            kind = "speculative " if entry.speculative else ""
            raise ValueError(
                f"{kind}proposal {proposal_id} "
                f"(strategy={entry.strategy!r}) was retracted and cannot "
                "commit; a retracted proposal never lands"
            )
        self._n_committed += 1
        entry.committed_at = self._n_committed
        entry.record_index = int(record_index)
        return entry

    def retract(self, proposal_id: int) -> ProposalEntry:
        """Mark one in-flight proposal as abandoned (never landing)."""
        entry = self.entries[proposal_id]
        if entry.committed_at is not None:
            raise ValueError(
                f"proposal {proposal_id} already committed and cannot be "
                "retracted"
            )
        if entry.retracted:
            raise ValueError(f"proposal {proposal_id} retracted twice")
        entry.retracted = True
        return entry

    def entry(self, proposal_id: int) -> ProposalEntry:
        """The ledger entry for one proposal id."""
        return self.entries[proposal_id]

    @property
    def completion_order(self) -> list[int]:
        """Proposal ids in the order they landed (in-flight ones omitted)."""
        committed = [e for e in self.entries if e.committed_at is not None]
        return [e.proposal_id for e in sorted(committed, key=lambda e: e.committed_at)]

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return (
            f"ProposalLedger({len(self.entries)} proposals, "
            f"{self._n_committed} committed)"
        )


class FakeClock:
    """Deterministic virtual evaluation durations for async replay.

    Real async runs commit in wall-clock completion order, which varies
    with machine load; under a fake clock the scheduler instead assigns
    every submission a *virtual* duration — a pure function of the design
    point — and always commits the in-flight proposal with the earliest
    virtual completion time.  The pool still evaluates in parallel; only
    the commit order is virtualized.  Same seed + same clock ⇒ the same
    completion order on every executor, making async-thread and
    async-process runs bitwise comparable (the pinned determinism test).

    ``duration_fn(u) -> float`` overrides the default, which hashes the
    rounded unit coordinates (CRC32 — stable across processes and runs)
    into ``base + spread * frac``.
    """

    def __init__(self, base: float = 1.0, spread: float = 1.0, duration_fn=None):
        if base < 0 or spread < 0:
            raise ValueError(
                f"base and spread must be non-negative, got base={base}, "
                f"spread={spread}"
            )
        self.base = float(base)
        self.spread = float(spread)
        self.duration_fn = duration_fn

    def duration(self, u: np.ndarray) -> float:
        """Virtual evaluation time of one unit-box design."""
        if self.duration_fn is not None:
            return float(self.duration_fn(u))
        payload = np.ascontiguousarray(
            np.round(np.asarray(u, dtype=float), 12)
        ).tobytes()
        frac = (zlib.crc32(payload) & 0xFFFFFFFF) / float(0xFFFFFFFF)
        return self.base + self.spread * frac


@dataclass
class _InFlight:
    """One submitted-but-unlanded proposal tracked by the async scheduler.

    Provenance (the pending set at proposal time) lives only in the
    ledger entry for ``proposal_id`` — single source of truth.
    """

    proposal_id: int
    u: np.ndarray
    future: Future
    seq: int
    virtual_ready: float | None = None


@dataclass
class _InFlightTrial:
    """One submitted-but-unlanded study trial (the ask/tell loop)."""

    trial: object
    future: Future
    seq: int
    virtual_ready: float | None = None


class AsyncEvaluationScheduler:
    """Refill-on-completion evaluation loop (fully asynchronous BO).

    Keeps ``n_workers`` evaluations in flight at all times: the moment any
    single evaluation lands it is committed to the history (completion
    order — there is no reorder barrier), the caller's ``on_commit`` hook
    absorbs it into the surrogate, and a replacement point — proposed by
    the ``propose`` callback conditioned on the still-pending set — is
    submitted immediately.  Budget accounting is exact: committed plus
    in-flight never exceeds ``max_evaluations``, and the pool drains at
    the end so the committed count equals the budget.

    Determinism: the trace is a pure function of the seed and the
    completion order; pass ``clock`` (a :class:`FakeClock`) to virtualize
    the completion order and make runs bitwise reproducible across
    executors.  On any exception, in-flight futures are cancelled before
    propagating, so executor shutdown never hangs on abandoned work.
    """

    def __init__(
        self,
        problem: Problem,
        executor: EvaluationExecutor,
        clock: FakeClock | None = None,
        on_arrival=None,
    ):
        self.problem = problem
        self.executor = executor
        self.clock = clock
        self.on_arrival = on_arrival
        self.ledger = ProposalLedger()

    # -- initial design -----------------------------------------------------------

    def run_initial(
        self, batch, result: OptimizationResult, unit_x: list[np.ndarray]
    ) -> None:
        """Evaluate the initial design concurrently, commit in design order.

        The initial design is generated jointly (no pending-set
        conditioning), so its commit order is fixed to the design order —
        identical to the synchronous scheduler — keeping the post-initial
        surrogate state independent of worker timing.
        """
        batch = [np.asarray(u, dtype=float) for u in batch]
        futures = [self.executor.submit(self.problem, u) for u in batch]
        try:
            for batch_index, (u, future) in enumerate(zip(batch, futures)):
                evaluation = self.executor.collect(self.problem, u, future)
                result.append(
                    self.problem.scaler.inverse_transform(u),
                    evaluation,
                    phase="initial",
                    iteration=0,
                    batch_index=batch_index,
                )
                unit_x.append(u)
        except BaseException:
            for future in futures:
                future.cancel()
            raise

    # -- search phase -------------------------------------------------------------

    def run_search(
        self,
        result: OptimizationResult,
        unit_x: list[np.ndarray],
        propose,
        n_workers: int,
        max_evaluations: int,
        on_commit=None,
        pending_strategy: str = "fantasy",
    ) -> None:
        """Run the refill loop until ``max_evaluations`` are committed.

        ``propose(pending_units)`` returns the next unit-box design given
        the list of still-pending points (in submission order — the
        sequential-conditioning order for fantasy updates);
        ``on_commit(u, evaluation, result)`` runs after each landing is
        appended to the history (the surrogate-absorb hook).
        ``pending_strategy`` is recorded verbatim in each ledger entry's
        provenance — it names the coordination rule ``propose`` applies to
        the pending set (the scheduler itself is strategy-agnostic).
        """
        n_workers = check_count("n_workers", n_workers)
        result.ledger = self.ledger
        in_flight: list[_InFlight] = []
        seq = 0
        now = 0.0
        try:
            while True:
                # refill: keep the pool saturated without exceeding budget
                while (
                    len(in_flight) < n_workers
                    and result.n_evaluations + len(in_flight) < max_evaluations
                ):
                    pending_units = [task.u for task in in_flight]
                    pending_ids = tuple(task.proposal_id for task in in_flight)
                    u = np.asarray(propose(pending_units), dtype=float)
                    ready = None if self.clock is None else now + self.clock.duration(u)
                    entry = self.ledger.open(
                        u, pending_ids, virtual_ready=ready,
                        strategy=pending_strategy,
                    )
                    future = self.executor.submit(self.problem, u)
                    in_flight.append(
                        _InFlight(
                            proposal_id=entry.proposal_id,
                            u=u,
                            future=future,
                            seq=seq,
                            virtual_ready=ready,
                        )
                    )
                    seq += 1
                if not in_flight:
                    break
                task = self._next_completed(in_flight)
                in_flight.remove(task)
                evaluation = self.executor.collect(self.problem, task.u, task.future)
                if task.virtual_ready is not None:
                    now = max(now, task.virtual_ready)
                if self.on_arrival is not None:
                    self.on_arrival(task.proposal_id, evaluation)
                landing = self.ledger._n_committed + 1
                record_index = result.n_evaluations
                result.append(
                    self.problem.scaler.inverse_transform(task.u),
                    evaluation,
                    phase="search",
                    iteration=landing,
                    batch_index=0,
                    proposal_id=task.proposal_id,
                    pending_at_proposal=self.ledger.entry(
                        task.proposal_id
                    ).pending_at_proposal,
                )
                unit_x.append(task.u)
                self.ledger.commit(task.proposal_id, record_index)
                if on_commit is not None:
                    on_commit(task.u, evaluation, result)
        except BaseException:
            # a poisoned evaluation (or interrupt) must not orphan workers:
            # cancel everything still queued before propagating
            for task in in_flight:
                task.future.cancel()
            raise

    # -- ask/tell (study-driven) form ----------------------------------------------

    def run_study(self, study, n_workers: int, on_commit=None) -> None:
        """Drive an ask/tell study through the refill-on-completion loop.

        The study owns all optimizer state (proposals, ledger, history,
        refit policy); this scheduler is purely the evaluation pump: it
        keeps ``n_workers`` trials in flight, commits each landing via
        :meth:`~repro.bo.study.Study.tell` in completion order, and asks
        for a replacement immediately.  A resumed study's pending trials
        are re-submitted first (in their original submission order, with
        their recorded virtual completion times), so a checkpointed run
        continues on the same trace.  ``on_commit(trial, evaluation,
        result)`` runs after each landing is absorbed.
        """
        n_workers = check_count("n_workers", n_workers)
        initial = study.start_initial()
        if initial:
            self.run_initial_trials(initial, study)
        ledger = study.ledger
        in_flight: list[_InFlightTrial] = []
        seq = 0
        # recover the virtual clock from the committed ledger entries so a
        # resumed fake-clock run continues on the original timeline
        now = 0.0
        for entry in ledger.entries:
            if entry.committed_at is not None and entry.virtual_ready is not None:
                now = max(now, entry.virtual_ready)
        try:
            for trial in study.pending_trials():
                ready = ledger.entry(trial.proposal_id).virtual_ready
                future = self.executor.submit(self.problem, trial.u)
                in_flight.append(_InFlightTrial(trial, future, seq, ready))
                seq += 1
            while True:
                # refill: keep the pool saturated without exceeding budget
                while len(in_flight) < n_workers and study.remaining_capacity > 0:
                    trial = study.ask(1)[0]
                    ready = (
                        None
                        if self.clock is None
                        else now + self.clock.duration(trial.u)
                    )
                    # the scheduler owns timing: annotate the study's
                    # ledger entry so checkpoints carry the virtual clock
                    ledger.entry(trial.proposal_id).virtual_ready = ready
                    future = self.executor.submit(self.problem, trial.u)
                    in_flight.append(_InFlightTrial(trial, future, seq, ready))
                    seq += 1
                if not in_flight:
                    break
                task = self._next_completed(in_flight)
                in_flight.remove(task)
                evaluation = self.executor.collect(
                    self.problem, task.trial.u, task.future
                )
                if task.virtual_ready is not None:
                    now = max(now, task.virtual_ready)
                if self.on_arrival is not None:
                    self.on_arrival(task.trial.proposal_id, evaluation)
                study.tell(task.trial, evaluation)
                if on_commit is not None:
                    on_commit(task.trial, evaluation, study.result)
        except BaseException:
            # a poisoned evaluation (or interrupt) must not orphan workers:
            # cancel everything still queued before propagating
            for task in in_flight:
                task.future.cancel()
            raise

    def run_initial_trials(self, trials, study) -> None:
        """Evaluate initial-design trials concurrently, tell in design order.

        The ask/tell face of :meth:`run_initial`: the initial design is
        generated jointly (no pending-set conditioning), so its commit
        order is fixed to the design order — identical to the synchronous
        scheduler — keeping the post-initial surrogate state independent
        of worker timing.
        """
        trials = list(trials)
        futures = [self.executor.submit(self.problem, t.u) for t in trials]
        try:
            for trial, future in zip(trials, futures):
                evaluation = self.executor.collect(self.problem, trial.u, future)
                study.tell(trial, evaluation)
        except BaseException:
            for future in futures:
                future.cancel()
            raise

    def _next_completed(self, in_flight: list[_InFlight]) -> _InFlight:
        """The in-flight task to commit next.

        Wall-clock mode waits for the first real completion (submission
        order breaks ties when several land together); fake-clock mode
        picks the earliest virtual completion time and blocks on that
        specific future, making the commit order machine-independent.
        """
        if self.clock is not None:
            return min(in_flight, key=lambda t: (t.virtual_ready, t.seq))
        done, _ = wait(
            {task.future for task in in_flight}, return_when=FIRST_COMPLETED
        )
        ready = [task for task in in_flight if task.future in done]
        return min(ready, key=lambda t: t.seq)
