"""Constrained black-box optimization framework.

Problem definitions (eq. 1 form), initial experimental designs, run
histories, the ask/tell :class:`Study` state machine, typed optimizer
configs, and the generic surrogate-based Bayesian-optimization driver
(Algorithm 1) that the paper's NN-GP method and the WEIBO baseline share.
Evaluation dispatch is pluggable: synchronous q-point batches behind a
barrier (:class:`EvaluationScheduler`), the fully asynchronous
refill-on-completion loop (:class:`AsyncEvaluationScheduler`), or any
external backend driving :class:`Study` directly.
"""

from repro.bo.config import (
    AcquisitionConfig,
    SchedulerConfig,
    SurrogateConfig,
)
from repro.bo.design import latin_hypercube, random_uniform, sobol_points
from repro.bo.history import EvaluationRecord, OptimizationResult
from repro.bo.loop import SurrogateBO
from repro.bo.problem import Evaluation, FunctionProblem, Problem
from repro.bo.scheduler import (
    AsyncEvaluationScheduler,
    AsyncProcessEvaluator,
    AsyncThreadEvaluator,
    EvaluationExecutor,
    EvaluationScheduler,
    FakeClock,
    ProcessPoolEvaluator,
    ProposalLedger,
    SerialEvaluator,
    ThreadPoolEvaluator,
    make_evaluator,
)
from repro.bo.study import BudgetExhausted, Study, StudyError, Trial

__all__ = [
    "AcquisitionConfig",
    "AsyncEvaluationScheduler",
    "AsyncProcessEvaluator",
    "AsyncThreadEvaluator",
    "BudgetExhausted",
    "Evaluation",
    "EvaluationExecutor",
    "EvaluationRecord",
    "EvaluationScheduler",
    "FakeClock",
    "FunctionProblem",
    "OptimizationResult",
    "Problem",
    "ProcessPoolEvaluator",
    "ProposalLedger",
    "SchedulerConfig",
    "SerialEvaluator",
    "Study",
    "StudyError",
    "SurrogateBO",
    "SurrogateConfig",
    "ThreadPoolEvaluator",
    "Trial",
    "latin_hypercube",
    "make_evaluator",
    "random_uniform",
    "sobol_points",
]
