"""Constrained black-box optimization framework.

Problem definitions (eq. 1 form), initial experimental designs, run
histories and the generic surrogate-based Bayesian-optimization driver
(Algorithm 1) that the paper's NN-GP method and the WEIBO baseline share.
Evaluation dispatch is pluggable: synchronous q-point batches behind a
barrier (:class:`EvaluationScheduler`) or the fully asynchronous
refill-on-completion loop (:class:`AsyncEvaluationScheduler`).
"""

from repro.bo.design import latin_hypercube, random_uniform, sobol_points
from repro.bo.history import EvaluationRecord, OptimizationResult
from repro.bo.loop import SurrogateBO
from repro.bo.problem import Evaluation, FunctionProblem, Problem
from repro.bo.scheduler import (
    AsyncEvaluationScheduler,
    AsyncProcessEvaluator,
    AsyncThreadEvaluator,
    EvaluationExecutor,
    EvaluationScheduler,
    FakeClock,
    ProcessPoolEvaluator,
    ProposalLedger,
    SerialEvaluator,
    ThreadPoolEvaluator,
    make_evaluator,
)

__all__ = [
    "AsyncEvaluationScheduler",
    "AsyncProcessEvaluator",
    "AsyncThreadEvaluator",
    "Evaluation",
    "EvaluationExecutor",
    "EvaluationRecord",
    "EvaluationScheduler",
    "FakeClock",
    "FunctionProblem",
    "OptimizationResult",
    "Problem",
    "ProcessPoolEvaluator",
    "ProposalLedger",
    "SerialEvaluator",
    "SurrogateBO",
    "ThreadPoolEvaluator",
    "latin_hypercube",
    "make_evaluator",
    "random_uniform",
    "sobol_points",
]
