"""Constrained black-box optimization framework.

Problem definitions (eq. 1 form), initial experimental designs, run
histories and the generic surrogate-based Bayesian-optimization driver
(Algorithm 1) that the paper's NN-GP method and the WEIBO baseline share.
"""

from repro.bo.design import latin_hypercube, random_uniform, sobol_points
from repro.bo.history import EvaluationRecord, OptimizationResult
from repro.bo.loop import SurrogateBO
from repro.bo.problem import Evaluation, FunctionProblem, Problem

__all__ = [
    "Evaluation",
    "EvaluationRecord",
    "FunctionProblem",
    "OptimizationResult",
    "Problem",
    "SurrogateBO",
    "latin_hypercube",
    "random_uniform",
    "sobol_points",
]
