"""Constrained optimization problem definitions (paper eq. 1).

Every sizing task is expressed as

    minimize f(x)   subject to   g_i(x) < 0,  i = 1..Nc,

over a box of design variables.  Maximization specs (e.g. the op-amp's
"maximize GAIN") are encoded by negating the objective at the testbench
level; constraint specs like ``UGF > 40 MHz`` become ``g = 40 MHz - UGF``
(normalized by the testbench so surrogate targets are O(1)).
"""

from __future__ import annotations

import json
import os
import re
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.utils.scaling import BoxScaler
from repro.utils.validation import check_vector_1d


@dataclass
class Evaluation:
    """Outcome of one (simulated) design evaluation.

    Attributes
    ----------
    objective:
        Figure of merit ``f(x)`` to minimize.
    constraints:
        Values ``g_i(x)``; the design is feasible iff all are ``< 0``.
    metrics:
        Raw named performances (GAIN in dB, UGF in Hz, ...) for reporting;
        not used by the optimizers.
    """

    objective: float
    constraints: np.ndarray
    metrics: dict = field(default_factory=dict)

    def __post_init__(self):
        self.objective = float(self.objective)
        self.constraints = np.asarray(self.constraints, dtype=float).ravel()

    @property
    def feasible(self) -> bool:
        """True iff every constraint satisfies ``g_i(x) < 0``."""
        return bool(np.all(self.constraints < 0.0))

    @property
    def violation(self) -> float:
        """Total positive constraint violation (0 when feasible)."""
        return float(np.sum(np.maximum(self.constraints, 0.0)))


class Problem:
    """Base class for constrained minimization problems over a box.

    Subclasses implement :meth:`evaluate`; this class provides bound
    handling, the unit-box mapping every optimizer works in, and a
    memoization cache over :meth:`evaluate_unit` so repeated proposals
    never re-run the (deterministic) simulator.

    With ``cache_dir`` set, the memoization cache is additionally persisted
    to disk (one JSON-lines file per problem name), so expensive
    SPICE-level evaluations survive across processes and sessions: existing
    entries are loaded at construction and every fresh simulation is
    appended.  Cache lookups and stores are lock-protected, so the thread
    executor of the batch scheduler can share one problem instance.
    """

    #: unit-box coordinates are rounded to this many decimals for the cache
    #: key.  The 1e-12 resolution is three orders finer than the
    #: optimizers' default duplicate tolerance (1e-9), so any proposal the
    #: optimizer accepts as "new" maps to its own cache entry; only exact
    #: (or solver-noise-level) re-proposals hit the cache.  If you lower an
    #: optimizer's ``duplicate_tol`` below 1e-12, raise this accordingly —
    #: the cache resolution must stay finer than the duplicate tolerance
    #: or distinct accepted proposals could alias one entry.
    cache_decimals = 12

    #: set False (class- or instance-level) to disable memoization — e.g.
    #: for stochastic simulators, where caching would freeze the first
    #: noise realization of each design
    cache_evaluations = True

    def __init__(
        self, name: str, lower, upper, n_constraints: int, cache_dir=None
    ):
        if n_constraints < 0:
            raise ValueError(f"n_constraints must be >= 0, got {n_constraints}")
        self.name = str(name)
        self.scaler = BoxScaler(lower, upper)
        self.n_constraints = int(n_constraints)
        self._eval_cache: dict[tuple, Evaluation] = {}
        self.n_cache_hits = 0
        self.n_cache_misses = 0
        self._cache_lock = threading.Lock()
        self.cache_dir = None if cache_dir is None else str(cache_dir)
        if self.cache_dir is not None:
            self._load_disk_cache()

    # The lock cannot cross process boundaries; recreate it on unpickle so
    # problems stay shippable to process-pool evaluation workers.
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_cache_lock"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._cache_lock = threading.Lock()

    @property
    def dim(self) -> int:
        """Number of design variables d."""
        return self.scaler.dim

    @property
    def lower(self) -> np.ndarray:
        """Lower variable bounds."""
        return self.scaler.lower

    @property
    def upper(self) -> np.ndarray:
        """Upper variable bounds."""
        return self.scaler.upper

    def evaluate(self, x: np.ndarray) -> Evaluation:
        """Simulate one design point ``x`` (in natural units)."""
        raise NotImplementedError

    def cache_context(self) -> tuple:
        """Identity of the evaluation machinery, mixed into cache keys.

        Problems whose numbers depend on more than the design vector (for
        example which simulator backend ran, see
        :meth:`repro.sim.base.SimulatorBackend.cache_context`) override
        this; entries recorded under one context are never served — in
        memory or from disk — to a problem configured with another.  The
        default empty tuple keeps plain problems' keys and on-disk cache
        schema unchanged.
        """
        return ()

    def cache_key(self, u: np.ndarray) -> tuple:
        """Memoization key: evaluation context + rounded unit coordinates."""
        u = check_vector_1d(u, "u", length=self.dim)
        u_clipped = np.clip(u, 0.0, 1.0)
        coords = tuple(np.round(u_clipped, self.cache_decimals).tolist())
        return tuple(self.cache_context()) + coords

    def lookup_cached(self, u: np.ndarray, count: bool = True) -> Evaluation | None:
        """Return the memoized evaluation of ``u`` or ``None``.

        ``count=True`` (the default) increments the hit counter on success;
        a miss never increments the miss counter — only an actual
        simulation (:meth:`evaluate_unit` / :meth:`store_evaluation`) does.
        """
        if not self.cache_evaluations:
            return None
        with self._cache_lock:
            cached = self._eval_cache.get(self.cache_key(u))
            if cached is not None and count:
                self.n_cache_hits += 1
        return cached

    def store_evaluation(self, u: np.ndarray, evaluation: Evaluation) -> None:
        """Record a simulation performed elsewhere (e.g. a worker process).

        Counts as a cache miss — the simulator genuinely ran, just not in
        this process — and persists to the on-disk cache when configured.
        With memoization disabled the call is a no-op (no counters, no
        store), mirroring :meth:`evaluate_unit`, so the recorded cache
        statistics stay identical across executors.
        """
        if not self.cache_evaluations:
            return
        with self._cache_lock:
            self.n_cache_misses += 1
            key = self.cache_key(u)
            self._eval_cache[key] = evaluation
            self._append_disk_entry(key, evaluation)

    def evaluate_unit_uncached(self, u: np.ndarray) -> Evaluation:
        """Simulate unit-box coordinates directly, bypassing the cache.

        Used by process-pool evaluation workers: the parent process owns
        the cache (lookups before dispatch, :meth:`store_evaluation` after
        results land), so workers must not maintain divergent copies.
        """
        u = check_vector_1d(u, "u", length=self.dim)
        u_clipped = np.clip(u, 0.0, 1.0)
        return self.evaluate(self.scaler.inverse_transform(u_clipped))

    def evaluate_unit(self, u: np.ndarray) -> Evaluation:
        """Evaluate a point given in unit-box coordinates (memoized).

        Results are cached keyed on the rounded unit coordinates (see
        :attr:`cache_decimals`); :attr:`n_cache_hits` / misses count the
        lookups and :meth:`clear_evaluation_cache` resets the store.
        """
        u = check_vector_1d(u, "u", length=self.dim)
        u_clipped = np.clip(u, 0.0, 1.0)
        if not self.cache_evaluations:
            return self.evaluate(self.scaler.inverse_transform(u_clipped))
        key = self.cache_key(u)
        with self._cache_lock:
            cached = self._eval_cache.get(key)
            if cached is not None:
                self.n_cache_hits += 1
                return cached
        evaluation = self.evaluate(self.scaler.inverse_transform(u_clipped))
        with self._cache_lock:
            self.n_cache_misses += 1
            self._eval_cache[key] = evaluation
            self._append_disk_entry(key, evaluation)
        return evaluation

    @property
    def cache_stats(self) -> tuple[int, int]:
        """Lifetime ``(hits, misses)`` of the evaluation cache."""
        return self.n_cache_hits, self.n_cache_misses

    def clear_evaluation_cache(self):
        """Drop all memoized evaluations (counters and disk files are kept)."""
        with self._cache_lock:
            self._eval_cache.clear()

    # -- on-disk persistence -------------------------------------------------------

    @property
    def _disk_cache_path(self) -> str | None:
        if self.cache_dir is None:
            return None
        slug = re.sub(r"[^A-Za-z0-9._-]+", "_", self.name) or "problem"
        return os.path.join(self.cache_dir, f"{slug}.evals.jsonl")

    def _load_disk_cache(self):
        """Warm the in-memory cache from the JSON-lines store (if present).

        Entries recorded under a different :meth:`cache_context` (e.g. a
        different simulator backend or version) are skipped, not loaded
        under the current context.
        """
        path = self._disk_cache_path
        if path is None or not os.path.exists(path):
            return
        context = tuple(self.cache_context())
        for entry in self._read_disk_entries(path):
            try:
                coords = tuple(float(v) for v in entry["key"])
                entry_context = tuple(entry.get("context", ()))
                evaluation = Evaluation(
                    objective=entry["objective"],
                    constraints=np.asarray(entry["constraints"], dtype=float),
                    metrics=dict(entry.get("metrics", {})),
                )
            except (KeyError, TypeError, ValueError):
                continue  # tolerate a torn final line from a crashed run
            if len(coords) == self.dim and entry_context == context:
                self._eval_cache[context + coords] = evaluation

    @staticmethod
    def _read_disk_entries(path: str):
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except ValueError:
                    continue

    def _append_disk_entry(self, key: tuple, evaluation: Evaluation):
        """Persist one simulation (caller holds the cache lock).

        ``key`` is a full cache key (context prefix + coordinates); the
        context is stored as its own field — and omitted entirely when
        empty, keeping the historical schema for context-free problems.
        """
        path = self._disk_cache_path
        if path is None:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        context = tuple(self.cache_context())
        entry = {
            "key": list(key[len(context):]),
            "objective": evaluation.objective,
            "constraints": evaluation.constraints.tolist(),
            "metrics": _json_safe(evaluation.metrics),
        }
        if context:
            entry["context"] = _json_safe(list(context))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry) + "\n")

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, d={self.dim}, "
            f"Nc={self.n_constraints})"
        )


def _json_safe(value):
    """Best-effort conversion of metric payloads to JSON-serializable types.

    Simulator metrics are floats in practice; anything exotic is stringified
    rather than failing the cache write.
    """
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class FunctionProblem(Problem):
    """Problem built from plain Python callables.

    Parameters
    ----------
    objective:
        ``f(x) -> float`` to minimize.
    constraints:
        Sequence of ``g_i(x) -> float`` callables with the ``< 0`` feasible
        convention (may be empty).
    metrics:
        Optional ``(x, objective, constraints) -> dict`` hook to record
        named performances.
    cache_dir:
        Optional directory for the persistent on-disk evaluation cache.
    """

    def __init__(
        self,
        name: str,
        lower,
        upper,
        objective,
        constraints=(),
        metrics=None,
        cache_dir=None,
    ):
        super().__init__(
            name, lower, upper, n_constraints=len(constraints), cache_dir=cache_dir
        )
        self._objective = objective
        self._constraints = list(constraints)
        self._metrics = metrics

    def evaluate(self, x: np.ndarray) -> Evaluation:
        x = check_vector_1d(x, "x", length=self.dim)
        obj = float(self._objective(x))
        cons = np.array([float(g(x)) for g in self._constraints])
        metrics = {}
        if self._metrics is not None:
            metrics = dict(self._metrics(x, obj, cons))
        return Evaluation(objective=obj, constraints=cons, metrics=metrics)
