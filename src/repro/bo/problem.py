"""Constrained optimization problem definitions (paper eq. 1).

Every sizing task is expressed as

    minimize f(x)   subject to   g_i(x) < 0,  i = 1..Nc,

over a box of design variables.  Maximization specs (e.g. the op-amp's
"maximize GAIN") are encoded by negating the objective at the testbench
level; constraint specs like ``UGF > 40 MHz`` become ``g = 40 MHz - UGF``
(normalized by the testbench so surrogate targets are O(1)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.scaling import BoxScaler
from repro.utils.validation import check_vector_1d


@dataclass
class Evaluation:
    """Outcome of one (simulated) design evaluation.

    Attributes
    ----------
    objective:
        Figure of merit ``f(x)`` to minimize.
    constraints:
        Values ``g_i(x)``; the design is feasible iff all are ``< 0``.
    metrics:
        Raw named performances (GAIN in dB, UGF in Hz, ...) for reporting;
        not used by the optimizers.
    """

    objective: float
    constraints: np.ndarray
    metrics: dict = field(default_factory=dict)

    def __post_init__(self):
        self.objective = float(self.objective)
        self.constraints = np.asarray(self.constraints, dtype=float).ravel()

    @property
    def feasible(self) -> bool:
        """True iff every constraint satisfies ``g_i(x) < 0``."""
        return bool(np.all(self.constraints < 0.0))

    @property
    def violation(self) -> float:
        """Total positive constraint violation (0 when feasible)."""
        return float(np.sum(np.maximum(self.constraints, 0.0)))


class Problem:
    """Base class for constrained minimization problems over a box.

    Subclasses implement :meth:`evaluate`; this class provides bound
    handling, the unit-box mapping every optimizer works in, and a
    memoization cache over :meth:`evaluate_unit` so repeated proposals
    never re-run the (deterministic) simulator.
    """

    #: unit-box coordinates are rounded to this many decimals for the cache
    #: key.  The 1e-12 resolution is three orders finer than the
    #: optimizers' default duplicate tolerance (1e-9), so any proposal the
    #: optimizer accepts as "new" maps to its own cache entry; only exact
    #: (or solver-noise-level) re-proposals hit the cache.  If you lower an
    #: optimizer's ``duplicate_tol`` below 1e-12, raise this accordingly —
    #: the cache resolution must stay finer than the duplicate tolerance
    #: or distinct accepted proposals could alias one entry.
    cache_decimals = 12

    #: set False (class- or instance-level) to disable memoization — e.g.
    #: for stochastic simulators, where caching would freeze the first
    #: noise realization of each design
    cache_evaluations = True

    def __init__(self, name: str, lower, upper, n_constraints: int):
        if n_constraints < 0:
            raise ValueError(f"n_constraints must be >= 0, got {n_constraints}")
        self.name = str(name)
        self.scaler = BoxScaler(lower, upper)
        self.n_constraints = int(n_constraints)
        self._eval_cache: dict[tuple, Evaluation] = {}
        self.n_cache_hits = 0
        self.n_cache_misses = 0

    @property
    def dim(self) -> int:
        """Number of design variables d."""
        return self.scaler.dim

    @property
    def lower(self) -> np.ndarray:
        """Lower variable bounds."""
        return self.scaler.lower

    @property
    def upper(self) -> np.ndarray:
        """Upper variable bounds."""
        return self.scaler.upper

    def evaluate(self, x: np.ndarray) -> Evaluation:
        """Simulate one design point ``x`` (in natural units)."""
        raise NotImplementedError

    def evaluate_unit(self, u: np.ndarray) -> Evaluation:
        """Evaluate a point given in unit-box coordinates (memoized).

        Results are cached keyed on the rounded unit coordinates (see
        :attr:`cache_decimals`); :attr:`n_cache_hits` / misses count the
        lookups and :meth:`clear_evaluation_cache` resets the store.
        """
        u = check_vector_1d(u, "u", length=self.dim)
        u_clipped = np.clip(u, 0.0, 1.0)
        if not self.cache_evaluations:
            return self.evaluate(self.scaler.inverse_transform(u_clipped))
        key = tuple(np.round(u_clipped, self.cache_decimals).tolist())
        cached = self._eval_cache.get(key)
        if cached is not None:
            self.n_cache_hits += 1
            return cached
        self.n_cache_misses += 1
        evaluation = self.evaluate(self.scaler.inverse_transform(u_clipped))
        self._eval_cache[key] = evaluation
        return evaluation

    @property
    def cache_stats(self) -> tuple[int, int]:
        """Lifetime ``(hits, misses)`` of the evaluation cache."""
        return self.n_cache_hits, self.n_cache_misses

    def clear_evaluation_cache(self):
        """Drop all memoized evaluations (counters are kept)."""
        self._eval_cache.clear()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, d={self.dim}, "
            f"Nc={self.n_constraints})"
        )


class FunctionProblem(Problem):
    """Problem built from plain Python callables.

    Parameters
    ----------
    objective:
        ``f(x) -> float`` to minimize.
    constraints:
        Sequence of ``g_i(x) -> float`` callables with the ``< 0`` feasible
        convention (may be empty).
    metrics:
        Optional ``(x, objective, constraints) -> dict`` hook to record
        named performances.
    """

    def __init__(
        self,
        name: str,
        lower,
        upper,
        objective,
        constraints=(),
        metrics=None,
    ):
        super().__init__(name, lower, upper, n_constraints=len(constraints))
        self._objective = objective
        self._constraints = list(constraints)
        self._metrics = metrics

    def evaluate(self, x: np.ndarray) -> Evaluation:
        x = check_vector_1d(x, "x", length=self.dim)
        obj = float(self._objective(x))
        cons = np.array([float(g(x)) for g in self._constraints])
        metrics = {}
        if self._metrics is not None:
            metrics = dict(self._metrics(x, obj, cons))
        return Evaluation(objective=obj, constraints=cons, metrics=metrics)
