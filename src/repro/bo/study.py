"""Ask/tell optimizer core: the BO loop inverted into a state machine.

The paper's Algorithm 1 is a propose -> simulate -> absorb cycle.  The
historical ``SurrogateBO.run()`` owned all three stages, so only the
executors this library ships could drive simulations.  :class:`Study`
inverts that control flow: it owns the optimizer state — surrogate bank,
history, proposal ledger, RNG, and the pending set — and exposes it as an
ask/tell protocol, so *any* evaluation backend (a SPICE license queue, a
cluster scheduler, a human at a lab bench) can supply results at its own
pace::

    study = Study(problem, surrogate=SurrogateConfig(), seed=0)
    for trial in study.start_initial():
        study.tell(trial, my_simulator(trial.x))
    while not study.done:
        trial = study.ask()[0]
        study.tell(trial, my_simulator(trial.x))
    print(study.best())

``SurrogateBO.run()`` and both schedulers are thin drivers over this
class, and the pinned PR-2/3/4 traces are bitwise unchanged:

* telling each ``ask()`` result immediately (serial, q = 1) reproduces
  the legacy single-point loop exactly — same surrogate fits, same RNG
  stream, same history;
* ``ask(q)`` is the greedy q-point batch proposal, ``ask(1)`` with
  trials outstanding is the asynchronous pending-conditioned proposal
  (fantasy lies / local penalization / hallucinated bounds, per the
  :class:`~repro.bo.config.AcquisitionConfig`);
* the commit order is the tell order, so an external backend replaying a
  recorded completion order reproduces an asynchronous run bitwise.

:meth:`checkpoint` / :meth:`Study.resume` persist the whole state machine
(history, ledger, RNG stream, pending set, and — under
``async_refit="fantasy-only"`` — the warm surrogate bank) through
:mod:`repro.utils.serialization`, so a killed 10k-evaluation run restarts
losslessly: a resume at any landing continues on the exact trace of the
uninterrupted run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.acquisition.fantasy import FantasyModelSet
from repro.bo.design import make_design
from repro.bo.history import EvaluationRecord, OptimizationResult
from repro.bo.loop import SurrogateBO, _IterationModels, _sanitize_new_target
from repro.bo.problem import Evaluation, Problem
from repro.bo.scheduler import ProposalLedger

CHECKPOINT_FORMAT = "repro.study/v1"


class StudyError(ValueError):
    """An ask/tell protocol violation (unknown trial, wrong phase, ...).

    Every class in the taxonomy carries a stable machine-readable
    :attr:`code` — the BO service uses these verbatim as wire error codes,
    so they are part of the public contract and must never change once
    shipped.  Catching :class:`StudyError` catches the whole taxonomy.
    """

    #: stable error code (wire-safe kebab-case identifier)
    code = "study-error"


class BudgetExhausted(StudyError):
    """``ask()`` was called with no evaluation budget left."""

    code = "budget-exhausted"


class UnknownTrial(StudyError):
    """A trial id this study never handed out (or no longer tracks)."""

    code = "unknown-trial"


class CheckpointMismatch(StudyError):
    """A :meth:`Study.resume` argument disagrees with the checkpoint.

    ``field`` names the offending checkpoint field; ``expected`` is the
    checkpointed value and ``actual`` what ``resume()`` received — the
    message spells out all three so the fix is obvious from the traceback
    (and the service error envelope carries them in ``detail``).
    """

    code = "checkpoint-mismatch"

    def __init__(self, message, *, field=None, expected=None, actual=None):
        super().__init__(message)
        self.field = field
        self.expected = expected
        self.actual = actual


@dataclass
class Trial:
    """One proposed design travelling through the ask/tell cycle.

    ``u`` is the design in unit-box coordinates (what the optimizer
    reasons in), ``x`` the same point in natural units (what a simulator
    consumes).  ``phase`` is ``"initial"`` for the random starting design
    and ``"search"`` for optimizer proposals.  Search trials carry ledger
    provenance: ``proposal_id`` indexes the study's
    :class:`~repro.bo.scheduler.ProposalLedger` and
    ``pending_at_proposal`` names the proposals that were in flight when
    this design was chosen (the points its acquisition conditioned on).
    ``iteration`` is assigned at ask time for batch trials and at tell
    time (commit order) for streaming trials.  ``speculative`` marks a
    trial asked opportunistically by the evaluation farm
    (:mod:`repro.farm`) to fill idle workers — it counts against the
    budget like any pending trial and is either told (promotion) or
    retracted (abandonment); the flag mirrors the ledger entry's.
    """

    id: int
    u: np.ndarray
    x: np.ndarray
    phase: str
    batch_index: int = 0
    iteration: int | None = None
    pending: tuple[int, ...] = ()
    proposal_id: int | None = None
    pending_at_proposal: tuple[int, ...] = ()
    speculative: bool = False

    def __post_init__(self):
        self.u = np.asarray(self.u, dtype=float).ravel()
        self.x = np.asarray(self.x, dtype=float).ravel()


class Study:
    """Ask/tell state machine for constrained surrogate-based BO.

    Parameters
    ----------
    problem:
        The :class:`~repro.bo.problem.Problem` to minimize.
    surrogate:
        A :class:`~repro.bo.config.SurrogateConfig` — builds the paper's
        NN-feature-GP ensemble optimizer (:class:`~repro.core.bo.NNBO`).
        Mutually exclusive with the explicit factories below.
    surrogate_factory, surrogate_bank_factory:
        Explicit surrogate sources (the :class:`~repro.bo.loop.SurrogateBO`
        extension point) for GP baselines or custom models.
    acquisition:
        An :class:`~repro.bo.config.AcquisitionConfig` (defaults apply).
    scheduler:
        A :class:`~repro.bo.config.SchedulerConfig`.  A standalone study
        only reads its concurrency-policy fields (``async_refit``,
        ``async_full_refit_every``, worker counts for the refit period);
        the executor fields matter when a driver evaluates the trials.
    n_initial, max_evaluations, initial_design, acq_maximizer, seed, name:
        As on :class:`~repro.bo.loop.SurrogateBO`.

    Construction consumes the RNG exactly like the legacy ``run()`` did
    (the initial design is drawn up front), so a study and a legacy run
    with the same seed share one proposal stream.
    """

    def __init__(
        self,
        problem: Problem,
        *,
        surrogate=None,
        surrogate_factory=None,
        surrogate_bank_factory=None,
        acquisition=None,
        scheduler=None,
        n_initial: int = 30,
        max_evaluations: int = 100,
        initial_design: str = "lhs",
        acq_maximizer=None,
        seed=None,
        name: str | None = None,
        _engine: SurrogateBO | None = None,
        _defer_initial: bool = False,
    ):
        if _engine is not None:
            self.optimizer = _engine
        elif surrogate is not None:
            if surrogate_factory is not None or surrogate_bank_factory is not None:
                raise StudyError(
                    "pass either surrogate=SurrogateConfig(...) or explicit "
                    f"factories, not both (got surrogate={surrogate!r} and "
                    "surrogate_factory/surrogate_bank_factory)"
                )
            # NNBO lives above the driver layer; imported here so that
            # importing repro.bo.study never drags in repro.core eagerly
            from repro.core.bo import NNBO

            self.optimizer = NNBO(
                problem,
                n_initial=n_initial,
                max_evaluations=max_evaluations,
                initial_design=initial_design,
                name=name,
                acq_maximizer=acq_maximizer,
                surrogate=surrogate,
                acquisition_config=acquisition,
                scheduler_config=scheduler,
                seed=seed,
            )
        else:
            self.optimizer = SurrogateBO(
                problem,
                surrogate_factory,
                n_initial=n_initial,
                max_evaluations=max_evaluations,
                initial_design=initial_design,
                acq_maximizer=acq_maximizer,
                surrogate_bank_factory=surrogate_bank_factory,
                acquisition_config=acquisition,
                scheduler_config=scheduler,
                seed=seed,
                name=name,
            )
        self.problem = self.optimizer.problem
        self.result = OptimizationResult(
            self.problem.name, self.optimizer.algorithm_name
        )
        self.ledger = ProposalLedger()
        self.result.ledger = self.ledger
        self._unit_x: list[np.ndarray] = []
        self._pending: dict[int, Trial] = {}
        self._told: set[int] = set()
        self._retracted: set[int] = set()
        self._initial_queue: list[Trial] = []
        self._next_id = 0
        self._iteration = 0
        self._cache_hits0, self._cache_misses0 = self.problem.cache_stats
        # streaming-proposer state (the refit policy of the async loop)
        cfg = self.optimizer.scheduler_config
        every = cfg.async_full_refit_every
        self._full_refit_every = (
            max(1, cfg.resolve_in_flight()) if every is None else every
        )
        self._fitted: _IterationModels | None = None
        self._fantasy_set: FantasyModelSet | None = None
        self._n_fantasied = 0
        self._landings_since_fit = 0
        self._needs_refit = True
        if not _defer_initial:
            self._generate_initial()

    @classmethod
    def from_optimizer(cls, optimizer: SurrogateBO) -> "Study":
        """A study sharing an existing optimizer's configuration and RNG."""
        return cls(optimizer.problem, _engine=optimizer)

    def _generate_initial(self) -> None:
        bo = self.optimizer
        designs = make_design(
            bo.initial_design, bo.n_initial, self.problem.dim, bo.rng
        )
        for j, u in enumerate(designs):
            u = np.asarray(u, dtype=float)
            self._initial_queue.append(
                Trial(
                    id=self._next_id,
                    u=u,
                    x=self.problem.scaler.inverse_transform(u),
                    phase="initial",
                    batch_index=j,
                    iteration=0,
                )
            )
            self._next_id += 1

    # -- introspection ------------------------------------------------------------

    @property
    def rng(self) -> np.random.Generator:
        """The study's RNG (one stream drives design, fits and proposals)."""
        return self.optimizer.rng

    @property
    def n_initial(self) -> int:
        return self.optimizer.n_initial

    @property
    def max_evaluations(self) -> int:
        return self.optimizer.max_evaluations

    @property
    def n_evaluations(self) -> int:
        """Evaluations committed to the history so far."""
        return self.result.n_evaluations

    @property
    def n_pending(self) -> int:
        """Trials asked but not yet told."""
        return len(self._pending)

    @property
    def n_retracted(self) -> int:
        """Search trials dropped via :meth:`retract`."""
        return len(self._retracted)

    @property
    def remaining_capacity(self) -> int:
        """How many more trials may be asked (budget minus committed/pending)."""
        return self.max_evaluations - self.result.n_evaluations - len(self._pending)

    @property
    def done(self) -> bool:
        """True once the full evaluation budget has been committed."""
        return self.result.n_evaluations >= self.max_evaluations

    @property
    def initial_remaining(self) -> int:
        """Initial-design trials not yet handed out by :meth:`ask`."""
        return len(self._initial_queue)

    def pending_trials(self) -> list[Trial]:
        """Asked-but-untold trials, in submission order."""
        return list(self._pending.values())

    def best(self) -> EvaluationRecord | None:
        """The best feasible record so far, or ``None``."""
        return self.result.best_feasible()

    def posterior_std(self, u) -> float | None:
        """Objective-posterior standard deviation at ``u`` (unit box).

        ``None`` before the first surrogate fit.  This is the
        posterior-sharpness signal the evaluation farm's adaptive-q
        policy reads (batches shrink as the posterior sharpens); the
        prediction is a pure read — no RNG, no state mutation — so
        calling it never perturbs the study's trace.
        """
        if self._fitted is None:
            return None
        u = np.atleast_2d(np.asarray(u, dtype=float))
        _, variance = self._fitted.objective.predict(u)
        return float(np.sqrt(max(float(np.mean(variance)), 0.0)))

    def describe(self) -> dict:
        """JSON-safe snapshot of the study state.

        Counters, pending/retracted trial ids, the feasible incumbent and
        short digests of the typed configs — everything a remote client
        needs to render progress without downloading the full history.
        The returned dict contains only plain JSON types
        (``json.dumps(study.describe())`` round-trips losslessly) and
        backs the BO service's ``status`` endpoint.
        """
        from repro.utils import serialization

        best = self.result.best_feasible()
        incumbent = None
        if best is not None:
            incumbent = {
                "index": int(best.index),
                "x": [float(v) for v in best.x],
                "objective": float(best.evaluation.objective),
                "constraints": [float(c) for c in best.evaluation.constraints],
                "feasible": bool(best.evaluation.feasible),
                "phase": str(best.phase),
                "iteration": (
                    None if best.iteration is None else int(best.iteration)
                ),
            }
        digests = {
            "acquisition": serialization.config_digest(
                self.optimizer.acquisition_config
            ),
            "scheduler": serialization.config_digest(
                self.optimizer.scheduler_config
            ),
        }
        surrogate_config = getattr(self.optimizer, "surrogate_config", None)
        if surrogate_config is not None:
            digests["surrogate"] = serialization.config_digest(surrogate_config)
        space = self.optimizer.proposal_space
        return {
            "problem": str(self.problem.name),
            "algorithm": str(self.optimizer.algorithm_name),
            "dim": int(self.problem.dim),
            "n_constraints": int(self.problem.n_constraints),
            "n_initial": int(self.n_initial),
            "max_evaluations": int(self.max_evaluations),
            "n_evaluations": int(self.n_evaluations),
            "n_pending": int(self.n_pending),
            "n_retracted": int(self.n_retracted),
            "initial_remaining": int(self.initial_remaining),
            "remaining_capacity": int(self.remaining_capacity),
            "iteration": int(self._iteration),
            "next_trial_id": int(self._next_id),
            "done": bool(self.done),
            "pending_ids": [int(i) for i in sorted(self._pending)],
            "retracted_ids": [int(i) for i in sorted(self._retracted)],
            "incumbent": incumbent,
            "cache": {
                "hits": int(self.result.cache_hits),
                "misses": int(self.result.cache_misses),
            },
            "async_refit": str(self.optimizer.async_refit),
            "proposal_space": "full" if space is None else str(space.name),
            "config_digests": digests,
            "checkpoint_format": CHECKPOINT_FORMAT,
        }

    # -- ask ---------------------------------------------------------------------

    def start_initial(self) -> list[Trial]:
        """All initial-design trials that still need an evaluation.

        Returns previously asked (pending) initial trials first — so a
        resumed study hands back the in-flight part of its design — then
        drains the remaining queue.  Idempotent once everything is told.
        """
        pending_initial = [
            t for t in self._pending.values() if t.phase == "initial"
        ]
        if self._initial_queue:
            pending_initial.extend(self.ask(len(self._initial_queue)))
        return pending_initial

    def ask(self, n: int = 1, *, speculative: bool = False) -> list[Trial]:
        """Propose up to ``n`` designs to evaluate next.

        While the initial design is being handed out, returns (up to
        ``n``) queued initial trials.  Afterwards ``n == 1`` yields one
        streaming proposal conditioned on the still-pending set and
        ``n > 1`` a greedy q-point batch (which requires an empty pending
        set — batch picks condition only on each other).  Raises
        :class:`BudgetExhausted` once committed plus pending trials reach
        ``max_evaluations``.

        ``speculative=True`` (streaming asks only) marks the trial as an
        opportunistic runner-up proposal — the evaluation farm's idle
        filler.  The proposal machinery is identical (the pending-point
        strategy already spreads runner-up acquisition maxima away from
        the in-flight set); only the ledger/trial provenance differs.
        """
        n = int(n)
        if n < 1:
            raise StudyError(f"n must be >= 1, got {n}")
        if speculative and n != 1:
            raise StudyError(
                f"speculative asks are streaming proposals; ask n=1 per "
                f"speculative trial, got n={n}"
            )
        capacity = self.remaining_capacity
        if capacity <= 0:
            raise BudgetExhausted(
                f"cannot ask for more trials: max_evaluations="
                f"{self.max_evaluations} with {self.result.n_evaluations} "
                f"committed and {len(self._pending)} pending"
            )
        if self._initial_queue:
            if speculative:
                raise StudyError(
                    "speculative proposals require a completed initial "
                    f"design ({len(self._initial_queue)} initial trials "
                    "still queued)"
                )
            take = self._initial_queue[:n]
            del self._initial_queue[: len(take)]
            for trial in take:
                self._pending[trial.id] = trial
            return take
        pending_initial = [
            t.id for t in self._pending.values() if t.phase == "initial"
        ]
        if pending_initial:
            raise StudyError(
                "initial design incomplete: tell() trials "
                f"{pending_initial} before asking for search proposals"
            )
        if n > capacity:
            raise BudgetExhausted(
                f"asked for {n} trials but only {capacity} remain "
                f"(max_evaluations={self.max_evaluations}, "
                f"{self.result.n_evaluations} committed, "
                f"{len(self._pending)} pending)"
            )
        x_unit = np.stack(self._unit_x)
        if n == 1:
            return [self._ask_streaming(x_unit, speculative=speculative)]
        return self._ask_batch(x_unit, n)

    def _ask_streaming(
        self, x_unit: np.ndarray, speculative: bool = False
    ) -> Trial:
        """One proposal conditioned on the current pending set."""
        bo = self.optimizer
        pending = list(self._pending.values())
        pick = self._propose_streaming(x_unit, [t.u for t in pending])
        entry = self.ledger.open(
            pick,
            tuple(t.proposal_id for t in pending),
            strategy=bo.pending_strategy,
            speculative=speculative,
        )
        trial = Trial(
            id=self._next_id,
            u=pick,
            x=self.problem.scaler.inverse_transform(pick),
            phase="search",
            batch_index=0,
            proposal_id=entry.proposal_id,
            pending_at_proposal=entry.pending_at_proposal,
            speculative=speculative,
        )
        self._next_id += 1
        self._pending[trial.id] = trial
        return trial

    def _ask_batch(self, x_unit: np.ndarray, q: int) -> list[Trial]:
        """One greedy q-point proposal batch (no outstanding trials)."""
        bo = self.optimizer
        if self._pending:
            raise StudyError(
                f"ask(n={q}) proposes a joint batch and requires an empty "
                f"pending set, but trials {sorted(self._pending)} are "
                "pending; tell() them first or ask(1) for streaming "
                "proposals"
            )
        self._iteration += 1
        base = self.result.n_evaluations
        picks = bo._propose_batch(x_unit, self.result, q)
        trials: list[Trial] = []
        for j, pick in enumerate(picks):
            entry = self.ledger.open(
                pick,
                tuple(t.proposal_id for t in trials),
                strategy=bo.pending_strategy,
            )
            trial = Trial(
                id=self._next_id,
                u=pick,
                x=self.problem.scaler.inverse_transform(pick),
                phase="search",
                batch_index=j,
                iteration=self._iteration,
                pending=tuple(range(base, base + j)),
                proposal_id=entry.proposal_id,
                pending_at_proposal=entry.pending_at_proposal,
            )
            self._next_id += 1
            self._pending[trial.id] = trial
            trials.append(trial)
        return trials

    # -- tell --------------------------------------------------------------------

    def tell(self, trial, evaluation) -> EvaluationRecord:
        """Commit one evaluated trial to the history.

        ``trial`` is a :class:`Trial` from :meth:`ask` (or its integer
        id); ``evaluation`` an :class:`~repro.bo.problem.Evaluation`, an
        ``(objective, constraints)`` pair, or a bare objective for
        unconstrained problems.  Commits happen in tell order — that *is*
        the completion order of an asynchronous run — and each search
        landing is absorbed into the surrogate according to the
        scheduler config's ``async_refit`` policy.  Non-finite objectives
        are accepted (failed simulations carry information); they are
        sanitized at surrogate-fit time, exactly as in the closed loop.
        """
        trial_id = trial.id if isinstance(trial, Trial) else int(trial)
        task = self._pending.get(trial_id)
        if task is None:
            if trial_id in self._told:
                raise StudyError(
                    f"trial {trial_id} was already told; each trial commits "
                    "exactly once"
                )
            if trial_id in self._retracted:
                raise StudyError(
                    f"trial {trial_id} was retracted; a retracted trial "
                    "cannot be told"
                )
            raise UnknownTrial(
                f"unknown trial id {trial_id}; pending ids: "
                f"{sorted(self._pending)}"
            )
        evaluation = self._coerce_evaluation(evaluation)
        del self._pending[trial_id]
        record_index = self.result.n_evaluations
        space = self.optimizer.proposal_space
        improved = (
            self._improves_incumbent(evaluation)
            if (task.phase == "search" and space is not None)
            else None
        )
        if task.phase == "initial":
            self.result.append(
                self.problem.scaler.inverse_transform(task.u),
                evaluation,
                phase="initial",
                iteration=0,
                batch_index=task.batch_index,
            )
        else:
            if task.iteration is None:
                # streaming trials number by commit (landing) order
                self._iteration += 1
                task.iteration = self._iteration
            self.result.append(
                self.problem.scaler.inverse_transform(task.u),
                evaluation,
                phase="search",
                iteration=task.iteration,
                batch_index=task.batch_index,
                pending=task.pending,
                proposal_id=task.proposal_id,
                pending_at_proposal=task.pending_at_proposal,
            )
            self.ledger.commit(task.proposal_id, record_index)
        self._unit_x.append(task.u)
        self._told.add(trial_id)
        self._sync_cache_counters()
        if task.phase == "search":
            self._absorb(task.u, evaluation)
        if improved is not None:
            space.observe(improved)
        return self.result.records[-1]

    def _improves_incumbent(self, evaluation: Evaluation) -> bool:
        """Would committing ``evaluation`` improve the incumbent?

        The success signal of adaptive proposal spaces (the trust region's
        expand/shrink counters): a feasible landing strictly beating the
        best feasible objective, the first feasible landing ever, or —
        while nothing is feasible yet — a landing lowering the smallest
        total violation seen.  Called before the evaluation is appended.
        """
        best = self.result.best_feasible()
        if best is not None:
            return bool(
                evaluation.feasible
                and evaluation.objective < best.evaluation.objective
            )
        if evaluation.feasible:
            return True
        if not self.result.records:
            return True
        floor = min(
            r.evaluation.violation
            if np.isfinite(r.evaluation.violation)
            else np.inf
            for r in self.result.records
        )
        violation = evaluation.violation
        return bool(np.isfinite(violation) and violation < floor)

    def retract(self, trial) -> Trial:
        """Drop an asked-but-untold trial, freeing its budget slot.

        The BO-as-a-service primitive: a client that timed out mid-flight
        (or a speculative evaluation that lost its race) abandons its
        trial instead of telling a result.  An *initial-design* trial is
        re-queued at the front of the design queue — the design point
        itself is part of the seeded experiment plan and will be handed
        out again by the next :meth:`ask`.  A *search* trial is removed
        from the pending set (its fantasies/penalties disappear from the
        next proposal automatically — conditioning is rebuilt from the
        live pending set each ask) and its ledger entry is marked
        retracted, keeping the provenance trail honest.  Telling a
        retracted trial afterwards raises; retraction round-trips through
        :meth:`checkpoint`/:meth:`resume`.
        """
        trial_id = trial.id if isinstance(trial, Trial) else int(trial)
        task = self._pending.get(trial_id)
        if task is None:
            if trial_id in self._told:
                raise StudyError(
                    f"trial {trial_id} was already told; only pending "
                    "trials can be retracted"
                )
            if trial_id in self._retracted:
                raise StudyError(f"trial {trial_id} was already retracted")
            raise UnknownTrial(
                f"unknown trial id {trial_id}; pending ids: "
                f"{sorted(self._pending)}"
            )
        del self._pending[trial_id]
        if task.phase == "initial":
            self._initial_queue.insert(0, task)
            return task
        self._retracted.add(trial_id)
        if task.proposal_id is not None:
            self.ledger.retract(task.proposal_id)
        return task

    def _coerce_evaluation(self, evaluation) -> Evaluation:
        if isinstance(evaluation, Evaluation):
            if evaluation.constraints.shape[0] != self.problem.n_constraints:
                raise StudyError(
                    f"evaluation has {evaluation.constraints.shape[0]} "
                    f"constraints but problem {self.problem.name!r} defines "
                    f"{self.problem.n_constraints}"
                )
            return evaluation
        if isinstance(evaluation, (int, float, np.floating, np.integer)):
            if self.problem.n_constraints:
                raise StudyError(
                    f"problem {self.problem.name!r} has "
                    f"{self.problem.n_constraints} constraints; tell() needs "
                    f"an Evaluation, got bare objective {evaluation!r}"
                )
            return Evaluation(float(evaluation), np.empty(0))
        if isinstance(evaluation, (tuple, list)) and len(evaluation) == 2:
            objective, constraints = evaluation
            return self._coerce_evaluation(
                Evaluation(float(objective), np.asarray(constraints, dtype=float))
            )
        raise StudyError(
            "tell() accepts an Evaluation, an (objective, constraints) "
            f"pair, or a bare objective; got {evaluation!r}"
        )

    def _sync_cache_counters(self) -> None:
        hits, misses = self.problem.cache_stats
        self.result.cache_hits = hits - self._cache_hits0
        self.result.cache_misses = misses - self._cache_misses0

    # -- streaming proposer (the async refit policy) -------------------------------

    def _propose_streaming(self, x_unit: np.ndarray, pending_units) -> np.ndarray:
        """One proposal conditioned on ``pending_units``.

        The refit policy follows the scheduler config: ``"full"`` rebuilds
        fresh surrogates after every landing, ``"fantasy-only"`` reuses
        the posterior-absorbed models with warm full refits every
        ``async_full_refit_every`` landings.  How the pending set enters
        the acquisition follows the acquisition config's
        ``pending_strategy`` (lies, penalties, or hallucinated bounds).
        """
        bo = self.optimizer
        if self._fitted is None or self._needs_refit:
            if bo.async_refit == "full" and not pending_units:
                # the canonical fresh-fit single-point proposal: same
                # models, same RNG stream — and tools that wrap
                # ``optimizer._propose`` keep observing every pick
                pick = bo._propose(x_unit, self.result)
                fitted = bo._last_fitted
                if fitted is not None:
                    self._fitted = fitted
                    self._fantasy_set = None
                    self._n_fantasied = 0
                    self._landings_since_fit = 0
                    self._needs_refit = False
                return pick
            self._refit(x_unit)
        if bo.acquisition == "wei" and bo.pending_strategy == "penalize":
            acquisition = bo._make_acquisition(self._fitted, self.result)
            if pending_units:
                acquisition = bo._penalized_acquisition(
                    self._fitted, acquisition, pending_units
                )
        else:
            self._condition_on_pending(pending_units)
            acquisition = bo._make_acquisition(self._fitted, self.result)
        bo._prepare_proposal_space(x_unit, self.result)
        pick = bo.acq_maximizer.maximize(acquisition, bo.problem.dim, bo.rng)
        if pending_units:
            known = np.vstack(
                [x_unit]
                + [np.asarray(u, dtype=float)[None, :] for u in pending_units]
            )
        else:
            known = x_unit
        if bo._is_duplicate(pick, known):
            pick = bo._resample_non_duplicate(known)
        return pick

    def _refit(self, x_unit: np.ndarray) -> None:
        """Rebuild the iteration models (warm-starting the bank when allowed)."""
        bo = self.optimizer
        warm_bank = (
            self._fitted.bank
            if (
                bo.async_refit == "fantasy-only"
                and self._fitted is not None
                and self._fitted.bank is not None
            )
            else None
        )
        if warm_bank is not None:
            # periodic full refit under "fantasy-only": keep the bank so
            # training warm-starts from the already-learned weights
            objective, constraint_ys, targets = bo._sanitized_targets(self.result)
            warm_bank.clear_fantasies(update=False)  # fit rebuilds anyway
            warm_bank.fit(x_unit, targets)
            self._fitted = _IterationModels(
                objective=warm_bank.target_model(0),
                constraints=[
                    warm_bank.target_model(1 + i)
                    for i in range(bo.problem.n_constraints)
                ],
                bank=warm_bank,
                x=x_unit,
                objective_y=objective,
                constraint_ys=constraint_ys,
            )
        else:
            self._fitted = bo._fit_surrogates(x_unit, self.result)
        self._fantasy_set = None
        self._n_fantasied = 0
        self._landings_since_fit = 0
        self._needs_refit = False

    def _condition_on_pending(self, pending_units) -> None:
        """Fantasy-condition the current models on the in-flight designs.

        Serves both conditioning strategies: ``"fantasy"`` applies the
        configured lie, ``"hallucinate"`` the believer mean; ``"penalize"``
        never calls this — its posterior stays clean.  Bank path: the
        fantasy stack is rebuilt from scratch each proposal (posterior-only
        updates are cheap), so it always mirrors the exact pending set even
        after landings removed members.  Legacy per-target models mutate in
        place and only support a growing pending set — guaranteed because
        the legacy path always runs ``async_refit="full"``, which refits
        after every landing.
        """
        bo = self.optimizer
        fitted = self._fitted
        if bo.acquisition != "wei":
            # Thompson diversifies by posterior sampling, not by lies
            return
        if fitted.bank is not None:
            # with pending lies about to be re-applied, the intermediate
            # fantasy-free posterior would never be read — skip its rebuild
            fitted.bank.clear_fantasies(update=not pending_units)
            for u in pending_units:
                bo._apply_fantasy(fitted, None, np.asarray(u, dtype=float))
            return
        if not pending_units:
            return
        if self._fantasy_set is None:
            self._fantasy_set = FantasyModelSet(
                fitted.x,
                fitted.objective,
                fitted.objective_y,
                fitted.constraints,
                fitted.constraint_ys,
            )
        for u in pending_units[self._n_fantasied:]:
            bo._apply_fantasy(fitted, self._fantasy_set, np.asarray(u, dtype=float))
        self._n_fantasied = len(pending_units)

    def _absorb(self, u: np.ndarray, evaluation: Evaluation) -> None:
        """Absorb one landed evaluation according to the refit policy."""
        bo = self.optimizer
        self._landings_since_fit += 1
        if bo.async_refit == "full" or self._fitted is None:
            self._needs_refit = True
            return
        if self._landings_since_fit >= self._full_refit_every:
            self._needs_refit = True
            return
        fitted = self._fitted
        if fitted.bank is None:
            # per-target models cannot absorb posterior-only; fall back to
            # a full refit on the next ask
            self._needs_refit = True
            return
        # observe() rebuilds the posterior; the intermediate fantasy-free
        # rebuild would be wasted work on the landing hot path
        fitted.bank.clear_fantasies(update=False)
        u = np.asarray(u, dtype=float)
        obj = _sanitize_new_target(evaluation.objective, fitted.objective_y)
        cons = [
            _sanitize_new_target(c, ys)
            for c, ys in zip(evaluation.constraints, fitted.constraint_ys)
        ]
        fitted.bank.observe(u, np.array([obj, *cons]))
        # the absorb moved the posterior-mean surface: a cached Lipschitz
        # estimate would mis-scale the penalization exclusion balls until
        # the next full refit, so force a fresh sweep on the next use
        fitted.lipschitz = None
        # keep the training-data view consistent for future lies/refits
        fitted.x = np.vstack([fitted.x, u[None, :]])
        fitted.objective_y = np.append(fitted.objective_y, obj)
        fitted.constraint_ys = [
            np.append(ys, c) for ys, c in zip(fitted.constraint_ys, cons)
        ]

    # -- persistence --------------------------------------------------------------

    def checkpoint(self, path) -> Path:
        """Write the complete study state to ``path`` (JSON).

        Captures the committed history (with ledger provenance), the
        pending set, the undrawn initial design, the RNG stream position
        and the iteration counters — everything needed for
        :meth:`resume` to continue the run losslessly.  The resumed trace
        is bitwise identical to the uninterrupted one at any landing
        (after a :meth:`tell`, before further asks: the next ask refits
        from the restored history and RNG position) and, on the batched
        engine, also between asks: whenever the live fit would be reused
        by the next proposal, the warm surrogate state (bank weights,
        scales and the incrementally sanitized targets) is serialized
        alongside and restored exactly, so a checkpoint taken right after
        an ask — the BO service checkpoints after *every* state mutation —
        continues without consuming RNG the uninterrupted run would not
        have.  Legacy per-target surrogates (``surrogate_factory``) carry
        no serializable warm state; their between-ask resumes refit and
        are deterministic but not bitwise.
        """
        from repro.utils import serialization

        payload = {
            "format": CHECKPOINT_FORMAT,
            "problem": self.problem.name,
            "algorithm": self.optimizer.algorithm_name,
            "n_initial": self.n_initial,
            "max_evaluations": self.max_evaluations,
            "initial_design": self.optimizer.initial_design,
            "acquisition_config": serialization.config_payload(
                self.optimizer.acquisition_config
            ),
            "scheduler_config": serialization.config_payload(
                self.optimizer.scheduler_config
            ),
            "rng_state": serialization.rng_state_to_dict(self.rng),
            "iteration": self._iteration,
            "next_trial_id": self._next_id,
            "told": sorted(self._told),
            "retracted": sorted(self._retracted),
            "landings_since_fit": self._landings_since_fit,
            "result": serialization.result_to_dict(self.result),
            "unit_x": [u.tolist() for u in self._unit_x],
            "initial_queue": [_trial_to_dict(t) for t in self._initial_queue],
            "pending": [_trial_to_dict(t) for t in self._pending.values()],
        }
        space = self.optimizer.proposal_space
        if space is not None:
            # adaptive proposal-space state (trust-region length/counters)
            # is live optimizer state: a resumed study must continue with
            # the exact region the interrupted run had reached
            payload["proposal_space"] = {
                "name": space.name,
                "state": space.state_to_dict(),
            }
        fitted = self._fitted
        if (
            fitted is not None
            and fitted.bank is not None
            and (
                self.optimizer.async_refit == "fantasy-only"
                or not self._needs_refit
            )
        ):
            # the warm bank is live state under "fantasy-only" (absorbed
            # landings and warm-started periodic refits both read it) and,
            # under "full", whenever the current fit is still reusable
            # (needs_refit False — i.e. the checkpoint was taken after an
            # ask, before the next landing): the uninterrupted run would
            # serve the next streaming proposal from this fit without
            # touching the RNG, so a bitwise resume must restore it rather
            # than refit (fantasies are rebuilt from the pending set per
            # proposal and are deliberately dropped)
            payload["needs_refit"] = bool(self._needs_refit)
            payload["warm_surrogate"] = {
                "bank": serialization.bank_state_to_dict(fitted.bank),
                "objective_y": np.asarray(
                    fitted.objective_y, dtype=float
                ).tolist(),
                "constraint_ys": [
                    np.asarray(ys, dtype=float).tolist()
                    for ys in fitted.constraint_ys
                ],
                "lipschitz": (
                    None if fitted.lipschitz is None else float(fitted.lipschitz)
                ),
            }
        path = Path(path)
        path.write_text(json.dumps(payload, indent=1))
        return path

    @classmethod
    def resume(cls, path, problem: Problem, **study_kwargs) -> "Study":
        """Rebuild a study from a :meth:`checkpoint` file.

        ``problem`` and the surrogate source (``surrogate=`` config or the
        explicit factories) cannot travel through JSON and must be passed
        again, identical to the original construction; the budget and
        design parameters are restored from the checkpoint and must not be
        re-passed.  Pending trials stay pending — a driver re-submits them
        (:meth:`pending_trials`) and the run continues.
        """
        from repro.utils import serialization

        payload = json.loads(Path(path).read_text())
        marker = payload.get("format")
        if marker != CHECKPOINT_FORMAT:
            raise CheckpointMismatch(
                f"{path} is not a study checkpoint: field 'format' is "
                f"{marker!r}, expected {CHECKPOINT_FORMAT!r}",
                field="format",
                expected=CHECKPOINT_FORMAT,
                actual=marker,
            )
        if payload["problem"] != problem.name:
            raise CheckpointMismatch(
                f"checkpoint field 'problem' is {payload['problem']!r} "
                f"but resume() received problem {problem.name!r}",
                field="problem",
                expected=payload["problem"],
                actual=problem.name,
            )
        for key in ("n_initial", "max_evaluations", "initial_design"):
            if key in study_kwargs:
                raise CheckpointMismatch(
                    f"{key} is restored from the checkpoint (checkpoint "
                    f"{key}={payload[key]!r}, resume() got "
                    f"{key}={study_kwargs[key]!r}); do not pass it to "
                    "resume()",
                    field=key,
                    expected=payload[key],
                    actual=study_kwargs[key],
                )
        study = cls(
            problem,
            n_initial=payload["n_initial"],
            max_evaluations=payload["max_evaluations"],
            initial_design=payload["initial_design"],
            _defer_initial=True,
            **study_kwargs,
        )
        serialization.restore_rng_state(study.rng, payload["rng_state"])
        study.result = serialization.result_from_dict(payload["result"])
        study.ledger = study.result.ledger
        if study.ledger is None:
            study.ledger = ProposalLedger()
            study.result.ledger = study.ledger
        study._unit_x = [
            np.asarray(u, dtype=float) for u in payload["unit_x"]
        ]
        study._iteration = int(payload["iteration"])
        study._next_id = int(payload["next_trial_id"])
        study._told = set(int(i) for i in payload["told"])
        study._retracted = set(int(i) for i in payload.get("retracted", []))
        saved_space = payload.get("proposal_space")
        space = study.optimizer.proposal_space
        if saved_space is not None:
            if space is None or space.name != saved_space["name"]:
                built = space.name if space is not None else "full"
                raise CheckpointMismatch(
                    "checkpoint field 'proposal_space' is "
                    f"{saved_space['name']!r} but resume() built {built!r}; "
                    "pass the same AcquisitionConfig as the original study",
                    field="proposal_space",
                    expected=saved_space["name"],
                    actual=built,
                )
            space.restore_state(saved_space["state"])
        elif space is not None:
            raise CheckpointMismatch(
                "checkpoint field 'proposal_space' is 'full' but resume() "
                f"built {space.name!r}; pass the same AcquisitionConfig as "
                "the original study",
                field="proposal_space",
                expected="full",
                actual=space.name,
            )
        study._landings_since_fit = int(payload["landings_since_fit"])
        study._initial_queue = [
            _trial_from_dict(d, problem) for d in payload["initial_queue"]
        ]
        study._pending = {}
        for entry in payload["pending"]:
            trial = _trial_from_dict(entry, problem)
            study._pending[trial.id] = trial
        # future cache deltas continue from the checkpointed totals even
        # though this problem instance's counters start wherever they are
        hits, misses = problem.cache_stats
        study._cache_hits0 = hits - study.result.cache_hits
        study._cache_misses0 = misses - study.result.cache_misses
        warm = payload.get("warm_surrogate")
        if warm is not None and study.optimizer.surrogate_bank_factory is not None:
            # rebuild the warm bank under a throwaway RNG (the study's
            # stream must stay exactly where the checkpoint left it) and
            # overwrite the fresh weights with the serialized state
            bank = study.optimizer.surrogate_bank_factory(
                np.random.default_rng(0), 1 + problem.n_constraints
            )
            serialization.restore_bank_state(bank, warm["bank"])
            study._fitted = _IterationModels(
                objective=bank.target_model(0),
                constraints=[
                    bank.target_model(1 + i)
                    for i in range(problem.n_constraints)
                ],
                bank=bank,
                x=np.asarray(bank.gp._x_train, dtype=float),
                objective_y=np.asarray(warm["objective_y"], dtype=float),
                constraint_ys=[
                    np.asarray(ys, dtype=float)
                    for ys in warm["constraint_ys"]
                ],
                lipschitz=warm.get("lipschitz"),
            )
            study._needs_refit = bool(payload.get("needs_refit", True))
        else:
            # no warm surrogate travelled with the checkpoint; force a
            # fresh fit on the first post-resume proposal
            study._needs_refit = True
        return study

    def __repr__(self) -> str:
        return (
            f"Study({self.optimizer.algorithm_name} on {self.problem.name!r}: "
            f"{self.result.n_evaluations}/{self.max_evaluations} committed, "
            f"{len(self._pending)} pending)"
        )


def _trial_to_dict(trial: Trial) -> dict:
    return {
        "id": trial.id,
        "u": trial.u.tolist(),
        "phase": trial.phase,
        "batch_index": trial.batch_index,
        "iteration": trial.iteration,
        "pending": list(trial.pending),
        "proposal_id": trial.proposal_id,
        "pending_at_proposal": list(trial.pending_at_proposal),
        "speculative": trial.speculative,
    }


def _trial_from_dict(data: dict, problem: Problem) -> Trial:
    u = np.asarray(data["u"], dtype=float)
    return Trial(
        id=int(data["id"]),
        u=u,
        x=problem.scaler.inverse_transform(u),
        phase=data["phase"],
        batch_index=int(data["batch_index"]),
        iteration=data["iteration"],
        pending=tuple(int(i) for i in data["pending"]),
        proposal_id=data["proposal_id"],
        pending_at_proposal=tuple(int(i) for i in data["pending_at_proposal"]),
        speculative=bool(data.get("speculative", False)),
    )


__all__ = [
    "BudgetExhausted",
    "CHECKPOINT_FORMAT",
    "CheckpointMismatch",
    "Study",
    "StudyError",
    "Trial",
    "UnknownTrial",
]
