"""Initial experimental designs over the unit box.

Algorithm 1 begins with a randomly generated training set; Latin-hypercube
sampling is the default because with 30 samples in 10 dimensions (Table I
setting) pure uniform sampling frequently leaves whole coordinate ranges
unexplored.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import qmc

from repro.utils.rng import ensure_rng


def random_uniform(n: int, dim: int, rng=None) -> np.ndarray:
    """Uniform i.i.d. samples in ``[0, 1]^dim``, shape ``(n, dim)``."""
    _check_counts(n, dim)
    rng = ensure_rng(rng)
    return rng.uniform(0.0, 1.0, size=(n, dim))


def latin_hypercube(n: int, dim: int, rng=None) -> np.ndarray:
    """Latin-hypercube design: one sample per axis-aligned stratum.

    Each coordinate column is a random permutation of the ``n`` strata with
    a uniform jitter inside each stratum, guaranteeing marginal coverage.
    """
    _check_counts(n, dim)
    rng = ensure_rng(rng)
    samples = np.empty((n, dim))
    strata = (np.arange(n) + 0.0) / n
    width = 1.0 / n
    for d in range(dim):
        jitter = rng.uniform(0.0, width, size=n)
        samples[:, d] = rng.permutation(strata + jitter)
    return np.clip(samples, 0.0, 1.0)


def sobol_points(n: int, dim: int, rng=None) -> np.ndarray:
    """Scrambled Sobol low-discrepancy points (via scipy.stats.qmc)."""
    _check_counts(n, dim)
    rng = ensure_rng(rng)
    seed = int(rng.integers(0, 2**31 - 1))
    sampler = qmc.Sobol(d=dim, scramble=True, seed=seed)
    return sampler.random(n)


DESIGNS = {
    "random": random_uniform,
    "lhs": latin_hypercube,
    "sobol": sobol_points,
}


def make_design(name: str, n: int, dim: int, rng=None) -> np.ndarray:
    """Generate an initial design by name (``random``/``lhs``/``sobol``)."""
    try:
        fn = DESIGNS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown design {name!r}; choose from {sorted(DESIGNS)}"
        ) from None
    return fn(n, dim, rng)


def _check_counts(n: int, dim: int):
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
