"""Typed configuration objects for the ask/tell optimizer core.

Four PRs of scheduler/acquisition/surrogate knobs accreted onto the
``SurrogateBO``/``NNBO`` constructors as a flat kwarg pile (``q``,
``executor``, ``fantasy``, ``pending_strategy``, ``async_refit``, ...).
This module replaces that pile with three small dataclasses, grouped the
way the knobs actually interact:

* :class:`SurrogateConfig` — the paper's NN-feature-GP ensemble
  hyper-parameters (Sec. III) and the training-engine choice,
* :class:`AcquisitionConfig` — how the next design is chosen (acquisition
  family, log-space evaluation, duplicate handling) and how concurrent
  proposals shape each other (fantasy lies, local penalization,
  hallucinated bounds),
* :class:`SchedulerConfig` — how proposals are evaluated (batch size,
  executor, worker counts, asynchronous refit policy, virtual clock).

Validation lives in ``__post_init__`` — a config object that exists is a
config object that is valid, and every error message names the offending
value.  The configs are frozen: derive variants with
:func:`dataclasses.replace` instead of mutating shared instances.

The legacy constructor kwargs keep working through a deprecation shim in
:class:`~repro.bo.loop.SurrogateBO` / :class:`~repro.core.bo.NNBO` that
maps them onto these configs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, is_dataclass

from repro.acquisition.fantasy import FANTASY_STRATEGIES
from repro.acquisition.penalization import validate_pending_strategy
from repro.acquisition.spaces import PROPOSAL_SPACES, TrustRegionConfig

#: surrogate update policies of the asynchronous (refill-on-completion) loop
ASYNC_REFIT_POLICIES = ("full", "fantasy-only")

#: executor specs resolvable by :func:`repro.bo.scheduler.make_evaluator`
EXECUTOR_SPECS = ("serial", "thread", "process", "async-thread", "async-process")

#: sizing policies of the evaluation farm (:mod:`repro.farm`)
FARM_MODES = ("fixed", "elastic")

#: adaptive schedules accepted by ``AcquisitionConfig.hallucinate_kappa``
KAPPA_SCHEDULES = ("beta-t",)

#: training engines for the NN-feature-GP ensembles
SURROGATE_ENGINES = ("auto", "batched", "loop")

#: array backends for the batched engine (see :mod:`repro.backend`)
SURROGATE_BACKENDS = ("auto", "numpy", "torch", "cupy")

ACQUISITIONS = ("wei", "thompson")


def check_count(name: str, value, minimum: int = 1) -> int:
    """Validate an integer count, naming the offending value on failure.

    Shared by the configs, the executors and the schedulers so the
    ``n_workers``/``q``-style checks stay consistent (they used to be
    duplicated between ``SurrogateBO.__init__`` and
    ``AsyncEvaluationScheduler.run_search`` with drifting messages).
    """
    value = int(value)
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_choice(name: str, value: str, choices) -> str:
    """Validate a string spec against its allowed values."""
    value = str(value)
    if value not in choices:
        raise ValueError(f"{name} must be one of {tuple(choices)}, got {value!r}")
    return value


@dataclass(frozen=True)
class SurrogateConfig:
    """NN-feature-GP ensemble hyper-parameters (paper Sec. III).

    The paper's defaults: K = 5 members per modelled quantity, two hidden
    layers of 50 units, 50 features, 300 training epochs.  ``engine``
    selects the training program: ``"batched"`` fits all K x T members as
    one stacked tensor program, ``"loop"`` trains them one by one (the
    original, numerically equivalent path), ``"auto"`` picks ``"batched"``
    except for single-point Thompson (which keeps the loop path so
    historical seeded runs are preserved).

    ``backend`` selects the batched engine's array backend
    (:mod:`repro.backend`): ``"numpy"`` (default, bitwise-reference path),
    ``"torch"`` / ``"cupy"`` (soft dependencies), or ``"auto"`` (first
    importable accelerator, falling back to numpy).  ``device`` names the
    accelerator device (e.g. ``"cuda:0"``); ``linalg_threads`` spreads
    the numpy path's per-slice Cholesky/solve loops over a thread pool
    (LAPACK releases the GIL), serial when ``None``.  The loop engine
    ignores all three.
    """

    n_ensemble: int = 5
    hidden_dims: tuple = (50, 50)
    n_features: int = 50
    activation: str = "relu"
    output_activation: str = "tanh"
    epochs: int = 300
    lr: float = 5e-3
    pretrain_epochs: int = 0
    patience: int | None = 60
    engine: str = "auto"
    backend: str = "numpy"
    device: str | None = None
    linalg_threads: int | None = None

    def __post_init__(self):
        object.__setattr__(self, "n_ensemble", check_count("n_ensemble", self.n_ensemble))
        object.__setattr__(self, "hidden_dims", tuple(int(h) for h in self.hidden_dims))
        object.__setattr__(self, "n_features", check_count("n_features", self.n_features))
        object.__setattr__(self, "epochs", check_count("epochs", self.epochs))
        object.__setattr__(self, "pretrain_epochs", int(self.pretrain_epochs))
        if self.lr <= 0:
            raise ValueError(f"lr must be positive, got {self.lr}")
        check_choice("engine", self.engine, SURROGATE_ENGINES)
        object.__setattr__(
            self,
            "backend",
            check_choice("backend", str(self.backend).lower(), SURROGATE_BACKENDS),
        )
        if self.device is not None:
            object.__setattr__(self, "device", str(self.device))
        if self.linalg_threads is not None:
            object.__setattr__(
                self,
                "linalg_threads",
                check_count("linalg_threads", self.linalg_threads),
            )

    def resolve_engine(self, acquisition: str, q: int) -> str:
        """The concrete engine for an acquisition family and batch size."""
        if self.engine != "auto":
            return self.engine
        # single-point Thompson stays on the loop path so seeded runs from
        # before the bank grew posterior sampling are preserved; q-point
        # Thompson wants the stacked predict path
        return "loop" if (acquisition == "thompson" and q == 1) else "batched"

    def resolve_backend(self):
        """The configured :class:`~repro.backend.base.ArrayNamespace`.

        Raises :class:`~repro.backend.BackendNotAvailable` when an
        explicitly requested soft-dependency backend is not installed.
        """
        from repro.backend import get_namespace

        return get_namespace(
            self.backend, device=self.device, linalg_threads=self.linalg_threads
        )

    # -- factory builders -----------------------------------------------------
    # The core model classes import repro.bo (the driver layer), so these
    # imports are deferred to keep repro.bo.config import-light and
    # cycle-free.

    def member_factory(self, input_dim: int):
        """``(rng) -> NeuralFeatureGP`` for one ensemble member."""
        from repro.core.feature_gp import NeuralFeatureGP

        def make_member(rng):
            return NeuralFeatureGP(
                input_dim=input_dim,
                hidden_dims=self.hidden_dims,
                n_features=self.n_features,
                activation=self.activation,
                output_activation=self.output_activation,
                seed=rng,
            )

        return make_member

    def trainer_factory(self):
        """A fresh per-member trainer (loop engine)."""
        from repro.core.trainer import FeatureGPTrainer

        return FeatureGPTrainer(
            epochs=self.epochs,
            lr=self.lr,
            pretrain_epochs=self.pretrain_epochs,
            patience=self.patience,
        )

    def batched_trainer_factory(self):
        """A fresh stacked trainer (batched engine)."""
        from repro.core.trainer import BatchedFeatureGPTrainer

        return BatchedFeatureGPTrainer(
            epochs=self.epochs,
            lr=self.lr,
            pretrain_epochs=self.pretrain_epochs,
            patience=self.patience,
        )

    def bank_factory(self, input_dim: int):
        """``(rng, n_targets) -> SurrogateBank`` for the batched engine."""
        from repro.core.batched_gp import SurrogateBank

        xb = self.resolve_backend()

        def make_bank(rng, n_targets):
            return SurrogateBank(
                input_dim=input_dim,
                n_targets=n_targets,
                n_members=self.n_ensemble,
                hidden_dims=self.hidden_dims,
                n_features=self.n_features,
                activation=self.activation,
                output_activation=self.output_activation,
                trainer_factory=self.batched_trainer_factory,
                seed=rng,
                backend=xb,
            )

        return make_bank


@dataclass(frozen=True)
class AcquisitionConfig:
    """How the next design is chosen and how concurrent picks interact.

    ``log_space`` of ``None`` auto-enables log-space wEI when the problem
    has four or more constraints (the Table II charge pump has five, where
    the plain PF product underflows).  ``fantasy`` is the lie strategy
    between wEI picks; ``pending_strategy`` decides how batch-mate /
    in-flight designs shape each proposal's acquisition (see
    :mod:`repro.acquisition.penalization`); ``hallucinate_kappa`` is the
    GP-BUCB confidence multiplier of the ``"hallucinate"`` strategy —
    either a constant float or the adaptive schedule name ``"beta-t"``
    (see :meth:`resolve_hallucinate_kappa`), whose failure probability
    ``hallucinate_delta`` tunes.

    ``proposal_space`` picks where the inner-loop maximizer searches
    (see :mod:`repro.acquisition.spaces`): ``"full"`` — the whole unit
    box, today's path, bitwise unchanged; ``"line"`` — a random 1-D line
    through the incumbent (LinEasyBO-style, cheap at high dimension);
    ``"trust-region"`` — a TuRBO-style adaptive box around the incumbent
    whose knobs live in ``trust_region`` (a
    :class:`~repro.acquisition.spaces.TrustRegionConfig` or dict).
    """

    acquisition: str = "wei"
    log_space: bool | None = None
    duplicate_tol: float = 1e-9
    fantasy: str = "believer"
    pending_strategy: str = "fantasy"
    hallucinate_kappa: float | str = 2.0
    hallucinate_delta: float = 0.1
    proposal_space: str = "full"
    trust_region: TrustRegionConfig | None = None

    def __post_init__(self):
        check_choice("acquisition", self.acquisition, ACQUISITIONS)
        object.__setattr__(
            self,
            "proposal_space",
            check_choice(
                "proposal_space",
                str(self.proposal_space).replace("_", "-").lower(),
                PROPOSAL_SPACES,
            ),
        )
        if self.trust_region is not None:
            if isinstance(self.trust_region, dict):
                object.__setattr__(
                    self, "trust_region", TrustRegionConfig(**self.trust_region)
                )
            elif not isinstance(self.trust_region, TrustRegionConfig):
                raise ValueError(
                    "trust_region must be a TrustRegionConfig or dict, got "
                    f"{type(self.trust_region).__name__}"
                )
            if self.proposal_space != "trust-region":
                raise ValueError(
                    "trust_region is only meaningful with "
                    f"proposal_space='trust-region', got {self.proposal_space!r}"
                )
        if self.fantasy not in FANTASY_STRATEGIES:
            raise ValueError(
                f"fantasy must be one of {FANTASY_STRATEGIES}, got {self.fantasy!r}"
            )
        validate_pending_strategy(self.pending_strategy, self.acquisition)
        if isinstance(self.hallucinate_kappa, str):
            object.__setattr__(
                self,
                "hallucinate_kappa",
                check_choice(
                    "hallucinate_kappa",
                    self.hallucinate_kappa.lower(),
                    KAPPA_SCHEDULES,
                ),
            )
        else:
            if self.hallucinate_kappa < 0:
                raise ValueError(
                    f"hallucinate_kappa must be non-negative, got "
                    f"{self.hallucinate_kappa}"
                )
            object.__setattr__(
                self, "hallucinate_kappa", float(self.hallucinate_kappa)
            )
        if not 0.0 < float(self.hallucinate_delta) < 1.0:
            raise ValueError(
                f"hallucinate_delta must be in (0, 1), got "
                f"{self.hallucinate_delta}"
            )
        object.__setattr__(
            self, "hallucinate_delta", float(self.hallucinate_delta)
        )
        if self.duplicate_tol < 0:
            raise ValueError(
                f"duplicate_tol must be non-negative, got {self.duplicate_tol}"
            )
        object.__setattr__(self, "duplicate_tol", float(self.duplicate_tol))

    def resolve_log_space(self, n_constraints: int) -> bool:
        """The concrete log-space flag for a problem's constraint count."""
        if self.log_space is None:
            return n_constraints >= 4
        return bool(self.log_space)

    def resolve_hallucinate_kappa(self, dim: int, t: int) -> float:
        """The concrete GP-BUCB confidence multiplier at landing ``t``.

        A float config is a constant schedule.  ``"beta-t"`` is the
        information-theoretic GP-UCB/GP-BUCB schedule (Srinivas et al.
        2010; Desautels et al. 2014): ``beta_t = 2 log(d t^2 pi^2 /
        (6 delta))`` and ``kappa_t = sqrt(beta_t)`` — growing like
        ``sqrt(log t)``, so hallucinated batches keep a
        high-probability optimism bound as landings accumulate instead
        of over-exploiting a sharpening posterior.
        """
        if not isinstance(self.hallucinate_kappa, str):
            return self.hallucinate_kappa
        t = max(1, int(t))
        d = max(1, int(dim))
        beta = 2.0 * math.log(
            d * t * t * math.pi**2 / (6.0 * self.hallucinate_delta)
        )
        return math.sqrt(max(beta, 0.0))

    def resolve_proposal_space(self):
        """A fresh (mutable) proposal-space instance, or ``None`` for full.

        Each optimizer builds its own instance: trust regions carry
        adaptive state, so sharing one across studies would couple their
        traces.
        """
        from repro.acquisition.spaces import make_proposal_space

        return make_proposal_space(self.proposal_space, self.trust_region)


@dataclass(frozen=True)
class FarmConfig:
    """Per-tenant policy knobs for the evaluation farm (:mod:`repro.farm`).

    ``mode="fixed"`` keeps the in-flight target at the scheduler's
    resolved worker count — with speculation off this path is pinned
    bitwise against :class:`~repro.bo.scheduler.AsyncEvaluationScheduler`.
    ``mode="elastic"`` resizes the target between asks from the
    evaluation-time EWMA and the farm's queue depth: roughly
    ``eval_ewma / propose_cost_s`` evaluations fit in one proposal
    cycle, clamped to ``[min_in_flight, max_in_flight]`` and backed off
    while the shared pool is oversubscribed.  ``propose_cost_s`` is a
    config constant rather than a wall-clock measurement so elastic
    decisions stay deterministic under a
    :class:`~repro.bo.scheduler.FakeClock`.

    ``adaptive_q`` shrinks the target toward ``q_min`` as the objective
    posterior sharpens (the std of each new proposal, tracked as an
    EWMA against the first post-initial proposal's std) — late in a run
    big concurrent batches mostly buy redundant evaluations.

    ``eval_timeout_s`` bounds any single evaluation; a timed-out trial
    is retracted and its budget slot freed.  ``weight`` and
    ``max_queue`` are this tenant's fair-share weight and backpressure
    bound on the shared farm.
    """

    mode: str = "fixed"
    min_in_flight: int = 1
    max_in_flight: int | None = None
    ewma_alpha: float = 0.3
    propose_cost_s: float = 1.0
    adaptive_q: bool = False
    q_min: int = 1
    eval_timeout_s: float | None = None
    weight: float = 1.0
    max_queue: int | None = None

    def __post_init__(self):
        check_choice("mode", self.mode, FARM_MODES)
        object.__setattr__(
            self, "min_in_flight", check_count("min_in_flight", self.min_in_flight)
        )
        if self.max_in_flight is not None:
            object.__setattr__(
                self,
                "max_in_flight",
                check_count("max_in_flight", self.max_in_flight),
            )
            if self.max_in_flight < self.min_in_flight:
                raise ValueError(
                    f"max_in_flight ({self.max_in_flight}) must be >= "
                    f"min_in_flight ({self.min_in_flight})"
                )
        if not 0.0 < float(self.ewma_alpha) <= 1.0:
            raise ValueError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        object.__setattr__(self, "ewma_alpha", float(self.ewma_alpha))
        if float(self.propose_cost_s) <= 0:
            raise ValueError(
                f"propose_cost_s must be positive, got {self.propose_cost_s}"
            )
        object.__setattr__(self, "propose_cost_s", float(self.propose_cost_s))
        object.__setattr__(self, "adaptive_q", bool(self.adaptive_q))
        object.__setattr__(self, "q_min", check_count("q_min", self.q_min))
        if self.eval_timeout_s is not None:
            if float(self.eval_timeout_s) <= 0:
                raise ValueError(
                    f"eval_timeout_s must be positive, got {self.eval_timeout_s}"
                )
            object.__setattr__(
                self, "eval_timeout_s", float(self.eval_timeout_s)
            )
        if float(self.weight) <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        object.__setattr__(self, "weight", float(self.weight))
        if self.max_queue is not None:
            object.__setattr__(
                self, "max_queue", check_count("max_queue", self.max_queue)
            )


@dataclass(frozen=True)
class SpeculationConfig:
    """Speculative-evaluation policy of the evaluation farm.

    When the farm has spare capacity beyond a tenant's in-flight target,
    the driver asks up to ``max_speculative`` extra *speculative* trials
    — runner-up acquisition maxima (the pending-point strategy already
    spreads them away from the in-flight set) that would otherwise wait
    for the next refit.  A speculative trial whose evaluation completes
    commits like any landing; one overtaken by events is promoted into
    the regular target when a slot frees (a bookkeeping flip — no new
    proposal needed), and one still unpromoted after
    ``max_age_landings`` subsequent landings is abandoned via
    :meth:`~repro.bo.study.Study.retract`, freeing its budget slot.
    """

    max_speculative: int = 1
    max_age_landings: int = 4

    def __post_init__(self):
        object.__setattr__(
            self,
            "max_speculative",
            check_count("max_speculative", self.max_speculative),
        )
        object.__setattr__(
            self,
            "max_age_landings",
            check_count("max_age_landings", self.max_age_landings),
        )


@dataclass(frozen=True)
class SchedulerConfig:
    """How proposals are dispatched to simulations.

    ``q`` designs are proposed per iteration and evaluated on ``executor``
    (a spec string or an :class:`~repro.bo.scheduler.EvaluationExecutor`
    instance).  The ``async-*`` specs switch to the refill-on-completion
    loop, where ``async_refit`` picks the surrogate policy per landing and
    ``clock`` (a :class:`~repro.bo.scheduler.FakeClock`) optionally
    virtualizes the completion order for deterministic replay.

    ``farm`` (a :class:`FarmConfig` or dict) routes asynchronous runs
    through the evaluation-farm driver (:mod:`repro.farm`) instead of
    the plain refill loop — required for elastic sizing, adaptive q and
    speculation; ``speculation`` (a :class:`SpeculationConfig` or dict)
    enables speculative evaluation on that driver.
    """

    q: int = 1
    executor: object = "serial"
    n_eval_workers: int | None = None
    async_refit: str = "full"
    async_full_refit_every: int | None = None
    clock: object = None
    farm: FarmConfig | None = None
    speculation: SpeculationConfig | None = None

    def __post_init__(self):
        object.__setattr__(self, "q", check_count("q", self.q))
        if isinstance(self.executor, str):
            check_choice("executor", self.executor.lower(), EXECUTOR_SPECS)
        if self.n_eval_workers is not None:
            object.__setattr__(
                self,
                "n_eval_workers",
                check_count("n_eval_workers", self.n_eval_workers),
            )
        check_choice("async_refit", self.async_refit, ASYNC_REFIT_POLICIES)
        if self.async_full_refit_every is not None:
            object.__setattr__(
                self,
                "async_full_refit_every",
                check_count("async_full_refit_every", self.async_full_refit_every),
            )
        if self.farm is not None:
            if isinstance(self.farm, dict):
                object.__setattr__(self, "farm", FarmConfig(**self.farm))
            elif not isinstance(self.farm, FarmConfig):
                raise ValueError(
                    "farm must be a FarmConfig or dict, got "
                    f"{type(self.farm).__name__}"
                )
        if self.speculation is not None:
            if isinstance(self.speculation, dict):
                object.__setattr__(
                    self, "speculation", SpeculationConfig(**self.speculation)
                )
            elif not isinstance(self.speculation, SpeculationConfig):
                raise ValueError(
                    "speculation must be a SpeculationConfig or dict, got "
                    f"{type(self.speculation).__name__}"
                )
            if self.farm is None:
                raise ValueError(
                    "speculation requires the farm driver; pass "
                    "farm=FarmConfig(...) alongside speculation"
                )

    @property
    def is_async(self) -> bool:
        """True when the executor spec opts into the refill-on-completion loop."""
        if isinstance(self.executor, str):
            return self.executor.lower().startswith("async-")
        return bool(getattr(self.executor, "async_mode", False))

    def resolve_pool_workers(self) -> int | None:
        """Worker count handed to :func:`~repro.bo.scheduler.make_evaluator`.

        Mirrors the historical ``SurrogateBO.run`` resolution exactly (the
        pinned traces depend on it): an explicit ``n_eval_workers`` always
        wins; otherwise async specs size to ``q`` when batching was
        configured (batch configs keep their parallelism when switched to
        async) or to the capped host core count, and plain pooled specs
        inherit ``q`` as their size.  The serial spec takes no count.
        """
        from repro.bo.scheduler import default_pool_workers

        if self.n_eval_workers is not None or not isinstance(self.executor, str):
            return self.n_eval_workers
        spec = self.executor.lower()
        if spec.startswith("async-"):
            return self.q if self.q > 1 else default_pool_workers()
        if self.q > 1 and spec != "serial":
            return self.q
        return None

    def resolve_in_flight(self) -> int:
        """Target number of concurrent evaluations in asynchronous mode."""
        workers = self.resolve_pool_workers()
        if workers is not None:
            return workers
        return int(getattr(self.executor, "n_workers", 1))


def config_to_dict(config) -> dict:
    """JSON-safe dictionary form of a config (object-valued fields skipped).

    Used by study checkpoints for provenance/validation; executor
    instances and virtual clocks cannot round-trip through JSON and are
    recorded by type name instead.
    """
    payload = {}
    for f in fields(config):
        value = getattr(config, f.name)
        if isinstance(value, tuple):
            value = list(value)
        elif is_dataclass(value) and not isinstance(value, type):
            value = config_to_dict(value)
        elif not isinstance(value, (str, int, float, bool, type(None))):
            value = type(value).__name__
        payload[f.name] = value
    return payload


__all__ = [
    "ACQUISITIONS",
    "ASYNC_REFIT_POLICIES",
    "AcquisitionConfig",
    "EXECUTOR_SPECS",
    "FARM_MODES",
    "FarmConfig",
    "KAPPA_SCHEDULES",
    "PROPOSAL_SPACES",
    "SURROGATE_BACKENDS",
    "SURROGATE_ENGINES",
    "SchedulerConfig",
    "SpeculationConfig",
    "SurrogateConfig",
    "TrustRegionConfig",
    "check_choice",
    "check_count",
    "config_to_dict",
]
