"""The blessed public surface of the reproduction.

Everything a downstream user needs is importable from here, and only the
names in ``__all__`` are covered by the deprecation policy — internals
(module paths, private helpers, constructor kwargs outside the typed
configs) may change between versions without notice.

Three ways in, from highest- to lowest-level:

* **Closed loop** — :class:`NNBO` / :class:`SurrogateBO`: construct with
  a :class:`Problem` and the typed configs, call ``run()``, read the
  :class:`OptimizationResult`.
* **Ask/tell** — :class:`Study`: the optimizer as a state machine; your
  code owns evaluation (external simulator farms, license queues,
  humans) and feeds results back with ``tell``.  ``checkpoint()`` /
  ``Study.resume()`` persist a run across process restarts.
* **As a service** — :class:`StudyServer` / :class:`StudyClient`: a
  multi-study HTTP server over :class:`StudyStore` (durable, leased,
  resumable) whose client mirrors the ``Study`` API one-for-one —
  same methods, same exception types (:class:`StudyError` and
  subclasses cross the wire as stable codes under
  :data:`PROTOCOL_VERSION`), bitwise-identical traces.
* **Shared evaluation** — :class:`EvaluationFarm` /
  :class:`FarmStudyDriver`: one executor pool serving many concurrent
  studies with weighted fair share, backpressure and mid-run resize,
  plus elastic in-flight sizing and speculative runner-up evaluation
  (configured per closed loop via :class:`FarmConfig` /
  :class:`SpeculationConfig` on :class:`SchedulerConfig`).
* **Building blocks** — the testbench problems of the paper's two
  evaluation circuits, the executor factory, the deterministic replay
  clock, run (de)serialization, and the array-backend selectors
  (:func:`get_namespace` / :func:`available_backends`) behind
  ``SurrogateConfig(backend=...)``.
* **Simulator backends** — the pluggable engine layer of
  :mod:`repro.sim`: :class:`SimulatorBackend` implementations
  (:class:`MNABackend`, :class:`NgspiceBackend`) selected by the
  testbenches' ``sim_backend`` knob, :func:`problem_from_netlist` to
  size an existing SPICE deck, and :class:`CornerRobustProblem` for
  worst-case-over-PVT studies.

Example (ask/tell against an external evaluator)::

    from repro.api import Study, SurrogateConfig

    study = Study(problem, surrogate=SurrogateConfig(), seed=0)
    for trial in study.start_initial():
        study.tell(trial, external_simulate(trial.x))
    while not study.done:
        trial = study.ask()[0]
        study.tell(trial, external_simulate(trial.x))
    print(study.best())
"""

from repro.backend import (
    BackendNotAvailable,
    available_backends,
    get_namespace,
)
from repro.baselines import DifferentialEvolution, GASPAD, WEIBO
from repro.bo.config import (
    PROPOSAL_SPACES,
    AcquisitionConfig,
    FarmConfig,
    SchedulerConfig,
    SpeculationConfig,
    SurrogateConfig,
    TrustRegionConfig,
)
from repro.bo.history import EvaluationRecord, OptimizationResult
from repro.bo.loop import SurrogateBO
from repro.bo.problem import Evaluation, FunctionProblem, Problem
from repro.bo.scheduler import (
    EvaluationExecutor,
    FakeClock,
    ProposalLedger,
    make_evaluator,
)
from repro.bo.study import (
    BudgetExhausted,
    CheckpointMismatch,
    Study,
    StudyError,
    Trial,
    UnknownTrial,
)
from repro.circuits.testbenches import (
    ChargePumpProblem,
    FoldedCascodeOTAProblem,
    TwoStageOpAmpProblem,
)
from repro.core import NNBO
from repro.farm import (
    EvaluationFarm,
    EvaluationTimeout,
    FarmError,
    FarmJob,
    FarmSaturated,
    FarmStudyDriver,
)
from repro.sim import (
    SIM_BACKENDS,
    CornerRobustProblem,
    MNABackend,
    NgspiceBackend,
    SimulatorBackend,
    SimulatorNotAvailable,
    problem_from_netlist,
    resolve_sim_backend,
)
from repro.service import (
    PROTOCOL_VERSION,
    ServiceError,
    StudyClient,
    StudyServer,
    StudyStore,
)
from repro.utils.serialization import (
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)

__all__ = [
    "AcquisitionConfig",
    "BackendNotAvailable",
    "BudgetExhausted",
    "ChargePumpProblem",
    "CheckpointMismatch",
    "CornerRobustProblem",
    "DifferentialEvolution",
    "Evaluation",
    "EvaluationExecutor",
    "EvaluationFarm",
    "EvaluationRecord",
    "EvaluationTimeout",
    "FakeClock",
    "FarmConfig",
    "FarmError",
    "FarmJob",
    "FarmSaturated",
    "FarmStudyDriver",
    "FoldedCascodeOTAProblem",
    "FunctionProblem",
    "GASPAD",
    "MNABackend",
    "NNBO",
    "NgspiceBackend",
    "OptimizationResult",
    "PROPOSAL_SPACES",
    "PROTOCOL_VERSION",
    "Problem",
    "ProposalLedger",
    "SIM_BACKENDS",
    "SchedulerConfig",
    "ServiceError",
    "SimulatorBackend",
    "SimulatorNotAvailable",
    "SpeculationConfig",
    "Study",
    "StudyClient",
    "StudyError",
    "StudyServer",
    "StudyStore",
    "SurrogateBO",
    "SurrogateConfig",
    "Trial",
    "TrustRegionConfig",
    "TwoStageOpAmpProblem",
    "UnknownTrial",
    "WEIBO",
    "available_backends",
    "get_namespace",
    "load_result",
    "make_evaluator",
    "problem_from_netlist",
    "resolve_sim_backend",
    "result_from_dict",
    "result_to_dict",
    "save_result",
]
