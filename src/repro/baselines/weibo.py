"""WEIBO baseline: Bayesian optimization with an explicit-kernel GP.

Reproduces the method of Lyu et al. (TCAS-I 2018), reference [2] of the
paper: Gaussian-process surrogates with the ARD Gaussian kernel (Sec. II-C),
constant mean, MLE hyper-parameters, and the weighted-EI acquisition
(eq. 7).  It shares the entire :class:`~repro.bo.loop.SurrogateBO` driver
with the paper's method — the surrogate model is the only difference, which
is exactly the comparison the paper makes.
"""

from __future__ import annotations

from repro.bo.config import AcquisitionConfig
from repro.bo.loop import SurrogateBO
from repro.bo.problem import Problem
from repro.gp.gpr import GPRegression
from repro.gp.kernels import make_kernel


class WEIBO(SurrogateBO):
    """GP-based constrained Bayesian optimization (paper's main baseline).

    Parameters
    ----------
    kernel:
        Kernel name (``"gaussian"``/``"rbf"``/``"matern52"``); the reference
        method uses the Gaussian kernel.
    n_restarts:
        MLE restarts per surrogate fit — the O(N^3) cost center that the
        paper's NN model removes.
    """

    algorithm_name = "WEIBO"

    def __init__(
        self,
        problem: Problem,
        n_initial: int = 30,
        max_evaluations: int = 100,
        kernel: str = "gaussian",
        n_restarts: int = 2,
        acq_maximizer=None,
        log_space_acq: bool | None = None,
        seed=None,
        verbose: bool = False,
        callback=None,
    ):
        self.kernel_name = str(kernel)
        self.n_restarts = int(n_restarts)

        def surrogate_factory(rng):
            return GPRegression(
                kernel=make_kernel(self.kernel_name, problem.dim),
                n_restarts=self.n_restarts,
                seed=rng,
            )

        super().__init__(
            problem,
            surrogate_factory,
            n_initial=n_initial,
            max_evaluations=max_evaluations,
            acq_maximizer=acq_maximizer,
            acquisition_config=AcquisitionConfig(log_space=log_space_acq),
            seed=seed,
            verbose=verbose,
            callback=callback,
        )
