"""GASPAD baseline: GP-assisted differential evolution with prescreening.

Re-implements the surrogate-assisted evolutionary framework of Liu et al.
(TCAD 2014), reference [11] of the paper: differential-evolution variation
operators generate a batch of child candidates each generation, Gaussian-
process surrogates (trained on *all* simulations so far) prescreen them,
and only the most promising child is actually simulated.

Prescreening ranks children by a surrogate analogue of Deb's rules using
optimistic (lower-confidence-bound) estimates:

1. children whose every constraint LCB is negative (plausibly feasible)
   rank by the objective LCB,
2. the rest rank by predicted total constraint violation,

so one simulation per generation is spent on the candidate most likely to
advance the search — the mechanism that puts GASPAD between plain DE and
full Bayesian optimization in simulation efficiency (paper Tables I, II).
"""

from __future__ import annotations

import numpy as np

from repro.bo.design import latin_hypercube
from repro.bo.history import OptimizationResult
from repro.bo.loop import _sanitize_targets
from repro.bo.problem import Evaluation, Problem
from repro.gp.gpr import GPRegression
from repro.gp.kernels import make_kernel
from repro.utils.rng import ensure_rng


class GASPAD:
    """Surrogate-assisted DE for constrained sizing (paper baseline [11]).

    Parameters
    ----------
    problem:
        Constrained problem to minimize.
    n_initial:
        Initial Latin-hypercube simulations.
    pop_size:
        Evolutionary population size (best ``pop_size`` simulated designs).
    children_per_gen:
        Candidates generated and prescreened per generation.
    kappa:
        LCB optimism factor for prescreening.
    max_evaluations:
        Total simulation budget.
    """

    algorithm_name = "GASPAD"

    def __init__(
        self,
        problem: Problem,
        n_initial: int = 30,
        pop_size: int = 20,
        children_per_gen: int = 40,
        kappa: float = 2.0,
        max_evaluations: int = 200,
        kernel: str = "gaussian",
        n_restarts: int = 1,
        mutation: float = 0.6,
        crossover: float = 0.9,
        seed=None,
        verbose: bool = False,
    ):
        if pop_size < 5:
            raise ValueError(f"pop_size must be >= 5, got {pop_size}")
        if n_initial < pop_size:
            raise ValueError("n_initial must be >= pop_size")
        if max_evaluations < n_initial:
            raise ValueError("budget must cover the initial design")
        self.problem = problem
        self.n_initial = int(n_initial)
        self.pop_size = int(pop_size)
        self.children_per_gen = int(children_per_gen)
        self.kappa = float(kappa)
        self.max_evaluations = int(max_evaluations)
        self.kernel_name = str(kernel)
        self.n_restarts = int(n_restarts)
        self.mutation = float(mutation)
        self.crossover = float(crossover)
        self.rng = ensure_rng(seed)
        self.verbose = bool(verbose)

    # -- main loop -------------------------------------------------------------

    def run(self) -> OptimizationResult:
        """Run the surrogate-assisted evolution until budget exhaustion."""
        result = OptimizationResult(self.problem.name, self.algorithm_name)
        archive_x: list[np.ndarray] = []
        archive_eval: list[Evaluation] = []

        for u in latin_hypercube(self.n_initial, self.problem.dim, self.rng):
            self._simulate(u, result, archive_x, archive_eval, phase="initial")

        generation = 0
        while result.n_evaluations < self.max_evaluations:
            generation += 1
            population = self._select_population(archive_x, archive_eval)
            children = self._generate_children(population)
            best_child = self._prescreen(children, archive_x, archive_eval)
            self._simulate(best_child, result, archive_x, archive_eval)
            if self.verbose:
                print(
                    f"[GASPAD] gen {generation:3d} evals {result.n_evaluations:4d} "
                    f"best {result.best_objective():.6g}"
                )
        return result

    # -- pieces -----------------------------------------------------------------

    def _simulate(self, u, result, archive_x, archive_eval, phase="search"):
        evaluation = self.problem.evaluate_unit(u)
        result.append(
            self.problem.scaler.inverse_transform(u), evaluation, phase=phase
        )
        archive_x.append(np.asarray(u, dtype=float))
        archive_eval.append(evaluation)

    def _select_population(self, archive_x, archive_eval) -> np.ndarray:
        """Best ``pop_size`` archive members under the feasibility rules."""
        order = sorted(
            range(len(archive_eval)),
            key=lambda i: (
                not archive_eval[i].feasible,
                archive_eval[i].objective
                if archive_eval[i].feasible
                else archive_eval[i].violation,
            ),
        )
        chosen = order[: self.pop_size]
        return np.stack([archive_x[i] for i in chosen])

    def _generate_children(self, population: np.ndarray) -> np.ndarray:
        n_pop, dim = population.shape
        children = np.empty((self.children_per_gen, dim))
        for c in range(self.children_per_gen):
            target = self.rng.integers(0, n_pop)
            choices = [j for j in range(n_pop) if j != target]
            r1, r2, r3 = self.rng.choice(choices, size=3, replace=False)
            mutant = population[r1] + self.mutation * (
                population[r2] - population[r3]
            )
            mutant = np.clip(mutant, 0.0, 1.0)
            cross = self.rng.uniform(size=dim) < self.crossover
            cross[self.rng.integers(0, dim)] = True
            children[c] = np.where(cross, mutant, population[target])
        return children

    def _prescreen(self, children, archive_x, archive_eval) -> np.ndarray:
        """Rank children on GP surrogates; return the most promising one."""
        x_train = np.stack(archive_x)
        objective = _sanitize_targets(
            np.array([e.objective for e in archive_eval])
        )
        obj_model = self._fit_gp(x_train, objective)
        obj_lcb = self._lcb(obj_model, children)

        n_constraints = self.problem.n_constraints
        if n_constraints == 0:
            return children[int(np.argmin(obj_lcb))].copy()

        constraint_matrix = np.stack([e.constraints for e in archive_eval])
        con_lcbs = np.empty((len(children), n_constraints))
        for i in range(n_constraints):
            model = self._fit_gp(x_train, constraint_matrix[:, i])
            con_lcbs[:, i] = self._lcb(model, children)

        plausibly_feasible = np.all(con_lcbs < 0.0, axis=1)
        violation = np.sum(np.maximum(con_lcbs, 0.0), axis=1)
        # rank: feasible-by-LCB children by objective LCB, others by violation
        key = np.where(plausibly_feasible, obj_lcb, np.inf)
        if np.any(plausibly_feasible):
            return children[int(np.argmin(key))].copy()
        return children[int(np.argmin(violation))].copy()

    def _fit_gp(self, x_train, y_train) -> GPRegression:
        model = GPRegression(
            kernel=make_kernel(self.kernel_name, self.problem.dim),
            n_restarts=self.n_restarts,
            seed=self.rng,
        )
        model.fit(x_train, y_train)
        return model

    def _lcb(self, model: GPRegression, x: np.ndarray) -> np.ndarray:
        mean, var = model.predict(x)
        return mean - self.kappa * np.sqrt(np.maximum(var, 1e-18))
