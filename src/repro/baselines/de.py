"""Plain differential evolution with feasibility-rule constraint handling.

The paper's weakest baseline (reference [7]): a population-based global
optimizer that consumes roughly an order of magnitude more simulations
than the surrogate methods (Tables I and II give DE budgets of 1100 and
~2000 simulations).

Constraint handling follows Deb's feasibility rules, the standard choice
for evolutionary sizing:

1. a feasible candidate beats any infeasible one,
2. two infeasible candidates compare by total constraint violation,
3. two feasible candidates compare by objective value.
"""

from __future__ import annotations

import numpy as np

from repro.bo.design import latin_hypercube
from repro.bo.history import OptimizationResult
from repro.bo.problem import Evaluation, Problem
from repro.utils.rng import ensure_rng


def feasibility_key(evaluation: Evaluation) -> tuple[int, float]:
    """Sort key implementing Deb's rules (smaller is better)."""
    if evaluation.feasible:
        return (0, evaluation.objective)
    return (1, evaluation.violation)


def better(a: Evaluation, b: Evaluation) -> bool:
    """True iff evaluation ``a`` beats ``b`` under the feasibility rules."""
    return feasibility_key(a) < feasibility_key(b)


class DifferentialEvolution:
    """DE/rand/1/bin over the unit box with Deb-rule selection.

    Parameters
    ----------
    problem:
        Constrained problem to minimize.
    pop_size:
        Population size; the initial population counts toward the budget.
    max_evaluations:
        Total simulation budget.
    mutation, crossover:
        DE control parameters F and CR.
    """

    algorithm_name = "DE"

    def __init__(
        self,
        problem: Problem,
        pop_size: int = 50,
        max_evaluations: int = 1000,
        mutation: float = 0.6,
        crossover: float = 0.9,
        seed=None,
        verbose: bool = False,
    ):
        if pop_size < 5:
            raise ValueError(f"pop_size must be >= 5, got {pop_size}")
        if max_evaluations < pop_size:
            raise ValueError("budget must at least cover the initial population")
        self.problem = problem
        self.pop_size = int(pop_size)
        self.max_evaluations = int(max_evaluations)
        self.mutation = float(mutation)
        self.crossover = float(crossover)
        self.rng = ensure_rng(seed)
        self.verbose = bool(verbose)

    def run(self) -> OptimizationResult:
        """Evolve until the simulation budget is exhausted."""
        result = OptimizationResult(self.problem.name, self.algorithm_name)
        dim = self.problem.dim
        population = latin_hypercube(self.pop_size, dim, self.rng)
        fitness: list[Evaluation] = []
        for u in population:
            evaluation = self.problem.evaluate_unit(u)
            result.append(
                self.problem.scaler.inverse_transform(u), evaluation, phase="initial"
            )
            fitness.append(evaluation)

        generation = 0
        while result.n_evaluations < self.max_evaluations:
            generation += 1
            for i in range(self.pop_size):
                if result.n_evaluations >= self.max_evaluations:
                    break
                trial = self._trial_vector(population, i)
                evaluation = self.problem.evaluate_unit(trial)
                result.append(
                    self.problem.scaler.inverse_transform(trial), evaluation
                )
                if better(evaluation, fitness[i]):
                    population[i] = trial
                    fitness[i] = evaluation
            if self.verbose:
                print(
                    f"[DE] gen {generation:3d} evals {result.n_evaluations:4d} "
                    f"best {result.best_objective():.6g}"
                )
        return result

    def _trial_vector(self, population: np.ndarray, target: int) -> np.ndarray:
        n_pop, dim = population.shape
        choices = [j for j in range(n_pop) if j != target]
        r1, r2, r3 = self.rng.choice(choices, size=3, replace=False)
        mutant = population[r1] + self.mutation * (population[r2] - population[r3])
        mutant = np.clip(mutant, 0.0, 1.0)
        cross = self.rng.uniform(size=dim) < self.crossover
        cross[self.rng.integers(0, dim)] = True
        return np.where(cross, mutant, population[target])
