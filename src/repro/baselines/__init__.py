"""Reference algorithms the paper compares against (Sec. IV).

* :class:`WEIBO` — classic-GP Bayesian optimization with weighted EI
  (Lyu et al., TCAS-I 2018),
* :class:`GASPAD` — GP-assisted differential evolution with surrogate
  prescreening (Liu et al., TCAD 2014),
* :class:`DifferentialEvolution` — plain DE with feasibility-rule
  constraint handling (Liu et al., Integration 2009).

All three consume the same :class:`~repro.bo.problem.Problem` interface
and produce the same :class:`~repro.bo.history.OptimizationResult`, so the
statistics harness treats every algorithm identically.
"""

from repro.baselines.de import DifferentialEvolution
from repro.baselines.gaspad import GASPAD
from repro.baselines.weibo import WEIBO

__all__ = ["DifferentialEvolution", "GASPAD", "WEIBO"]
