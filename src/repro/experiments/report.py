"""Markdown report generation from saved optimization runs.

Paired with :mod:`repro.utils.serialization`: long experiments dump one
JSON per run, and this module aggregates directories of them into the
paper-style tables of EXPERIMENTS.md::

    python -m repro.experiments.report results/table1/*.json

Runs are grouped by their recorded ``algorithm`` name; each group becomes
one column.
"""

from __future__ import annotations

import argparse
from collections import defaultdict
from pathlib import Path

from repro.bo.history import OptimizationResult
from repro.experiments.runner import summarize
from repro.experiments.tables import render_markdown_table, render_table
from repro.utils.serialization import load_result

DEFAULT_ROWS = ["mean", "median", "best", "worst", "Avg. # Sim", "# Success"]


def group_results(results: list[OptimizationResult]) -> dict[str, list]:
    """Bucket runs by algorithm name, preserving first-seen order."""
    groups: dict[str, list] = defaultdict(list)
    for result in results:
        groups[result.algorithm].append(result)
    return dict(groups)


def columns_from_results(
    results: list[OptimizationResult], negate_objective: bool = False
) -> dict[str, dict]:
    """Summary columns (one per algorithm) from a mixed list of runs.

    ``negate_objective`` flips signs for maximization-style reporting
    (the op-amp tables report GAIN, whose objective is ``-GAIN``).
    """
    if not results:
        raise ValueError("no results to report")
    sign = -1.0 if negate_objective else 1.0
    columns: dict[str, dict] = {}
    for name, runs in group_results(results).items():
        summary = summarize(runs)
        # the sign flip alone maps min-objective <-> max-performance: the
        # lowest objective (summary.best) becomes the highest performance
        columns[name] = {
            "mean": sign * summary.mean,
            "median": sign * summary.median,
            "best": sign * summary.best,
            "worst": sign * summary.worst,
            "Avg. # Sim": summary.avg_sims,
            "# Success": summary.success_rate,
        }
    return columns


def report_from_files(
    paths, title: str = "Results", negate_objective: bool = False,
    markdown: bool = False,
) -> str:
    """Load runs from JSON files and render the summary table."""
    results = [load_result(Path(p)) for p in paths]
    columns = columns_from_results(results, negate_objective=negate_objective)
    if markdown:
        return render_markdown_table(DEFAULT_ROWS, columns)
    return render_table(title, DEFAULT_ROWS, columns)


def main(argv=None) -> str:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="saved run JSON files")
    parser.add_argument("--title", default="Results")
    parser.add_argument("--negate", action="store_true",
                        help="report -objective (maximization tables)")
    parser.add_argument("--markdown", action="store_true")
    args = parser.parse_args(argv)
    text = report_from_files(
        args.files, title=args.title, negate_objective=args.negate,
        markdown=args.markdown,
    )
    print(text)
    return text


if __name__ == "__main__":
    main()
