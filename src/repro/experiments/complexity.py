"""Sec. III-D complexity claim: NN-GP trains in O(N), classic GP in O(N^3).

Measures wall-clock time for (a) one marginal-likelihood evaluation with
gradients and (b) a batch prediction, as the training-set size N grows with
the feature dimension M fixed.  The paper's claim is about the *scaling
shape*: the classic GP's likelihood evaluation is dominated by an N x N
Cholesky (cubic), while the NN-GP works through the M x M A-matrix (linear
in N).  The companion benchmark ``benchmarks/bench_complexity.py`` asserts
the shape; this module prints the full table::

    python -m repro.experiments.complexity
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.core import NeuralFeatureGP
from repro.gp import GPRegression, RBF
from repro.experiments.tables import render_table


def _time_call(fn, repeats: int = 3) -> float:
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_scaling(
    sizes=(32, 64, 128, 256, 512),
    dim: int = 10,
    n_features: int = 50,
    n_test: int = 256,
    seed: int = 0,
) -> dict[str, dict]:
    """Time likelihood evaluation and prediction for both model families.

    Returns ``{row_label: {column: value}}``-style data for rendering; the
    rows are training-set sizes, the columns the four timed operations (ms).
    """
    rng = np.random.default_rng(seed)
    x_test = rng.uniform(size=(n_test, dim))
    columns: dict[str, dict] = {
        "GP train-step (ms)": {},
        "NN-GP train-step (ms)": {},
        "GP predict (ms)": {},
        "NN-GP predict (ms)": {},
    }
    for n in sizes:
        label = f"N={n}"
        x = rng.uniform(size=(n, dim))
        y = np.sin(x.sum(axis=1)) + 0.01 * rng.normal(size=n)

        gp = GPRegression(kernel=RBF(dim), optimize=False, seed=0)
        gp.fit(x, y)
        theta = gp._get_theta()
        columns["GP train-step (ms)"][label] = 1e3 * _time_call(
            lambda: gp._nll_and_grad(theta)
        )
        columns["GP predict (ms)"][label] = 1e3 * _time_call(
            lambda: gp.predict(x_test)
        )

        nngp = NeuralFeatureGP(dim, hidden_dims=(50, 50), n_features=n_features, seed=0)
        nngp._x_train = x
        nngp._z_train = nngp._y_scaler.fit_transform(y)

        def nn_train_step():
            feats = nngp.features(x)
            _, dfeats, _, _ = nngp.marginal_nll(feats, nngp._z_train, with_grads=True)
            nngp.backprop_feature_grad(dfeats)

        columns["NN-GP train-step (ms)"][label] = 1e3 * _time_call(nn_train_step)
        nngp.update_posterior()
        columns["NN-GP predict (ms)"][label] = 1e3 * _time_call(
            lambda: nngp.predict(x_test)
        )
    return columns


def fit_power_law(sizes, times) -> float:
    """Least-squares slope of log(time) vs log(N) — the empirical exponent."""
    sizes = np.asarray(sizes, dtype=float)
    times = np.asarray(times, dtype=float)
    slope, _ = np.polyfit(np.log(sizes), np.log(times), 1)
    return float(slope)


def main(argv=None) -> str:
    """CLI entry point; prints the timing table and fitted exponents."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-n", type=int, default=512)
    args = parser.parse_args(argv)
    sizes = [n for n in (32, 64, 128, 256, 512, 1024) if n <= args.max_n]
    columns = measure_scaling(sizes=sizes)
    labels = [f"N={n}" for n in sizes]
    table = render_table(
        "Sec. III-D: surrogate training/prediction scaling vs N",
        labels,
        columns,
    )
    print(table)
    gp_slope = fit_power_law(sizes, [columns["GP train-step (ms)"][x] for x in labels])
    nn_slope = fit_power_law(
        sizes, [columns["NN-GP train-step (ms)"][x] for x in labels]
    )
    print(f"\nempirical exponent, GP train-step:    {gp_slope:.2f} (theory ~3)")
    print(f"empirical exponent, NN-GP train-step: {nn_slope:.2f} (theory ~1)")
    return table


if __name__ == "__main__":
    main()
