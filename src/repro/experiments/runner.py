"""Multi-run statistics harness.

The paper averages every algorithm over repeated runs (10 for the op-amp,
12 for the charge pump) and reports, per algorithm: performance metrics of
the best design, the spread (mean/median/best/worst) of the best objective
across runs, the average number of simulations, and the success count.
This module produces exactly those statistics from lists of
:class:`~repro.bo.history.OptimizationResult`.
"""

from __future__ import annotations

import pickle
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

import numpy as np

from repro.bo.config import AcquisitionConfig, SchedulerConfig, SurrogateConfig
from repro.bo.history import OptimizationResult


@dataclass
class AlgorithmSummary:
    """Paper-style summary of repeated runs of one algorithm."""

    algorithm: str
    n_runs: int
    n_success: int
    best_objectives: np.ndarray  # per successful run
    sims_to_best: np.ndarray  # per successful run
    best_run_metrics: dict = field(default_factory=dict)

    @property
    def mean(self) -> float:
        """Mean best objective across successful runs."""
        return float(np.mean(self.best_objectives)) if self.n_success else np.nan

    @property
    def median(self) -> float:
        """Median best objective across successful runs."""
        return float(np.median(self.best_objectives)) if self.n_success else np.nan

    @property
    def best(self) -> float:
        """Best (lowest) objective over all runs."""
        return float(np.min(self.best_objectives)) if self.n_success else np.nan

    @property
    def worst(self) -> float:
        """Worst (highest) best-objective over successful runs."""
        return float(np.max(self.best_objectives)) if self.n_success else np.nan

    @property
    def avg_sims(self) -> float:
        """Paper's ``Avg. # Sim``: mean simulations to reach the final best."""
        return float(np.mean(self.sims_to_best)) if self.n_success else np.nan

    @property
    def success_rate(self) -> str:
        """``#Success`` in the paper's ``k/n`` format."""
        return f"{self.n_success}/{self.n_runs}"


def _execute_run(make_optimizer, run_seed: int) -> OptimizationResult:
    """One repeat, executable in a worker process (module-level for pickle)."""
    return make_optimizer(run_seed).run()


def run_repeats(
    make_optimizer,
    n_repeats: int,
    seed: int = 0,
    verbose: bool = False,
    n_workers: int | None = None,
) -> list[OptimizationResult]:
    """Run ``make_optimizer(seed_i)`` for ``n_repeats`` independent seeds.

    ``make_optimizer`` receives a distinct integer seed per repeat and must
    return an object with ``run() -> OptimizationResult``.

    ``n_workers`` opts into a process pool: repeats are independent (each
    run is fully determined by its own seed), so with ``n_workers > 1``
    they execute concurrently and are returned in the same seed order the
    serial path uses — the per-seed streams, and therefore the evaluation
    traces, are identical either way.  One caveat: when ``make_optimizer``
    closes over a *shared* ``Problem`` instance, its memoization cache
    accumulates across runs serially but is copied per worker in parallel,
    so the informational ``cache_hits``/``cache_misses`` counters on the
    results may differ between the two modes (the recorded evaluations do
    not — the simulators are deterministic).  ``make_optimizer`` must be
    picklable for the pool (a module-level function or
    ``functools.partial``, not a lambda); an unpicklable factory falls
    back to the serial path with a warning.
    """
    if n_repeats < 1:
        raise ValueError(f"n_repeats must be >= 1, got {n_repeats}")
    rng = np.random.default_rng(seed)
    seeds = [int(s) for s in rng.integers(0, 2**31 - 1, size=n_repeats)]

    n_workers = 1 if n_workers is None else int(n_workers)
    if n_workers > 1:
        try:
            pickle.dumps(make_optimizer)
        except Exception:
            warnings.warn(
                "make_optimizer is not picklable; running repeats serially "
                "(use a module-level factory to enable n_workers)",
                stacklevel=2,
            )
            n_workers = 1

    if n_workers > 1:
        with ProcessPoolExecutor(max_workers=min(n_workers, n_repeats)) as pool:
            futures = {
                pool.submit(_execute_run, make_optimizer, run_seed): i
                for i, run_seed in enumerate(seeds)
            }
            # stream progress as runs land; results return in seed order
            results: list[OptimizationResult | None] = [None] * n_repeats
            outstanding = set(futures)
            try:
                while outstanding:
                    done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                    for future in done:
                        i = futures[future]
                        results[i] = future.result()
                        if verbose:
                            result = results[i]
                            print(
                                f"  run {i + 1}/{n_repeats}: "
                                f"best={result.best_objective():.6g} "
                                f"evals={result.n_evaluations} success={result.success}"
                            )
            except BaseException:
                # a failed repeat must not block shutdown on every other
                # still-running repeat: drop the queued ones and re-raise
                for future in outstanding:
                    future.cancel()
                raise
        return results

    results = []
    for i, run_seed in enumerate(seeds):
        optimizer = make_optimizer(run_seed)
        result = optimizer.run()
        results.append(result)
        if verbose:
            print(
                f"  run {i + 1}/{n_repeats}: best={result.best_objective():.6g} "
                f"evals={result.n_evaluations} success={result.success}"
            )
    return results


def nnbo_configs(config):
    """Build NN-BO's typed configs from a table experiment config.

    The Table I/II configs carry the same flat fields (budgets, model
    sizes, scheduler knobs); this maps them onto the
    (:class:`SurrogateConfig`, :class:`AcquisitionConfig`,
    :class:`SchedulerConfig`) triple the ask/tell-era constructors take,
    so the CLIs never touch the deprecated kwarg pile.
    """
    surrogate = SurrogateConfig(
        n_ensemble=config.n_ensemble,
        hidden_dims=config.hidden_dims,
        n_features=config.n_features,
        epochs=config.epochs,
        backend=getattr(config, "backend", "numpy"),
        device=getattr(config, "device", None),
        linalg_threads=getattr(config, "linalg_threads", None),
    )
    acquisition = AcquisitionConfig(
        pending_strategy=config.pending_strategy,
        proposal_space=getattr(config, "proposal_space", "full"),
    )
    scheduler = SchedulerConfig(
        q=config.q,
        executor=config.eval_executor,
        n_eval_workers=config.n_eval_workers,
        async_refit=config.async_refit,
    )
    return surrogate, acquisition, scheduler


def add_scheduler_arguments(parser) -> None:
    """The evaluation-scheduler argparse options shared by the table drivers.

    One definition keeps the Table I and Table II CLIs accepting the same
    flags with the same help text; pair with
    :func:`apply_scheduler_arguments`.
    """
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size for the repeated runs of each algorithm",
    )
    parser.add_argument(
        "--q", type=int, default=None,
        help="NN-BO designs proposed per iteration (batch acquisition)",
    )
    parser.add_argument(
        "--eval-executor",
        choices=("serial", "thread", "process", "async-thread", "async-process"),
        default=None,
        help="where NN-BO's simulations run; async-* switches to the "
        "refill-on-completion scheduler (no batch barrier)",
    )
    parser.add_argument(
        "--eval-workers", type=int, default=None,
        help="worker count for the evaluation executor (default: q, or "
        "the capped host core count for async executors)",
    )
    parser.add_argument(
        "--async-refit", choices=("full", "fantasy-only"), default=None,
        help="async surrogate policy per landing: full refit vs. "
        "posterior-only absorb with periodic warm refits",
    )
    parser.add_argument(
        "--pending-strategy",
        choices=("fantasy", "penalize", "hallucinate"),
        default=None,
        help="how NN-BO's batch-mate / in-flight designs shape each "
        "proposal: fantasy lies (default), local penalization on the "
        "clean posterior, or hallucinated-UCB believer conditioning",
    )
    parser.add_argument(
        "--proposal-space",
        choices=("full", "line", "trust-region"),
        default=None,
        help="where NN-BO's inner-loop maximizer searches: the full unit "
        "box (default), a random 1-D line through the incumbent "
        "(cheap at high dimension), or a TuRBO-style trust region",
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "numpy", "torch", "cupy"),
        default=None,
        help="array backend for NN-BO's batched surrogate engine "
        "(numpy is the bitwise-reference default; torch/cupy need the "
        "matching package installed; auto picks the first available "
        "accelerator)",
    )
    parser.add_argument(
        "--device", default=None,
        help="accelerator device for the array backend (e.g. cuda:0)",
    )
    parser.add_argument(
        "--linalg-threads", type=int, default=None,
        help="thread count for the numpy backend's per-slice "
        "Cholesky/solve loops (default: serial)",
    )
    parser.add_argument(
        "--sim-backend",
        choices=("mna", "ngspice"),
        default=None,
        help="circuit simulator the testbench drives: the built-in MNA "
        "engine (bitwise-reproducible default) or an external ngspice "
        "binary (falls back to MNA with a warning when not installed)",
    )


def apply_scheduler_arguments(args, config) -> None:
    """Copy the :func:`add_scheduler_arguments` flags onto a table config.

    Only explicitly passed flags override the config's preset defaults.
    """
    if args.workers is not None:
        config.n_workers = args.workers
    if args.q is not None:
        config.q = args.q
    if args.eval_executor is not None:
        config.eval_executor = args.eval_executor
    if args.eval_workers is not None:
        config.n_eval_workers = args.eval_workers
    if args.async_refit is not None:
        config.async_refit = args.async_refit
    if args.pending_strategy is not None:
        config.pending_strategy = args.pending_strategy
    if args.proposal_space is not None:
        config.proposal_space = args.proposal_space
    if args.backend is not None:
        config.backend = args.backend
    if args.device is not None:
        config.device = args.device
    if args.linalg_threads is not None:
        config.linalg_threads = args.linalg_threads
    if args.sim_backend is not None:
        config.sim_backend = args.sim_backend


def summarize(results: list[OptimizationResult]) -> AlgorithmSummary:
    """Aggregate repeated runs into an :class:`AlgorithmSummary`."""
    if not results:
        raise ValueError("no results to summarize")
    algorithm = results[0].algorithm
    successes = [r for r in results if r.success]
    best_objectives = np.array([r.best_objective() for r in successes])
    sims = np.array([r.n_sims_to_best() for r in successes], dtype=float)
    best_run_metrics: dict = {}
    if successes:
        best_run = min(successes, key=lambda r: r.best_objective())
        record = best_run.best_feasible()
        if record is not None:
            best_run_metrics = dict(record.evaluation.metrics)
    return AlgorithmSummary(
        algorithm=algorithm,
        n_runs=len(results),
        n_success=len(successes),
        best_objectives=best_objectives,
        sims_to_best=sims,
        best_run_metrics=best_run_metrics,
    )
