"""Table I experiment: two-stage op-amp sizing (paper Sec. IV-A).

Setup, following the paper: 10 design variables, specs UGF > 40 MHz and
PM > 60 deg, GAIN maximized; 30 initial samples; simulation budgets of 100
(ours and WEIBO), 200 (GASPAD) and 1100 (DE); repeated runs averaged.

Run scaled down (CI-friendly)::

    python -m repro.experiments.table1 --preset quick

or at paper scale::

    python -m repro.experiments.table1 --preset paper
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from repro.baselines import DifferentialEvolution, GASPAD, WEIBO
from repro.circuits.testbenches import TwoStageOpAmpProblem
from repro.core import NNBO
from repro.experiments.runner import (
    add_scheduler_arguments,
    apply_scheduler_arguments,
    nnbo_configs,
    run_repeats,
    summarize,
)
from repro.experiments.tables import render_table

ROW_LABELS = [
    "UGF (MHz)",
    "PM (deg)",
    "mean",
    "median",
    "best",
    "worst",
    "Avg. # Sim",
    "# Success",
]


@dataclass
class Table1Config:
    """Budgets and model sizes for the Table I experiment.

    ``n_workers`` parallelizes the repeated runs of each algorithm across a
    process pool; ``q``/``eval_executor``/``n_eval_workers`` are the
    batch-proposal knobs of the NN-BO scheduler (q designs per iteration,
    evaluated on the chosen executor).  The ``async-thread`` /
    ``async-process`` executors switch NN-BO to the refill-on-completion
    loop (``n_eval_workers`` in-flight simulations, ``async_refit``
    choosing full vs. fantasy-only surrogate updates per landing).
    """

    n_repeats: int = 10
    n_initial: int = 30
    bo_budget: int = 100
    gaspad_budget: int = 200
    de_budget: int = 1100
    n_ensemble: int = 5
    epochs: int = 300
    hidden_dims: tuple = (50, 50)
    n_features: int = 50
    algorithms: tuple = ("NN-BO", "WEIBO", "GASPAD", "DE")
    seed: int = 2019
    verbose: bool = False
    n_workers: int | None = None
    q: int = 1
    eval_executor: str = "serial"
    n_eval_workers: int | None = None
    async_refit: str = "full"
    pending_strategy: str = "fantasy"
    proposal_space: str = "full"
    backend: str = "numpy"
    device: str | None = None
    linalg_threads: int | None = None
    sim_backend: str = "mna"
    problem_kwargs: dict = field(default_factory=dict)


QUICK = Table1Config(
    n_repeats=2,
    n_initial=12,
    bo_budget=30,
    gaspad_budget=45,
    de_budget=120,
    n_ensemble=3,
    epochs=100,
    hidden_dims=(24, 24),
    n_features=20,
)

PAPER = Table1Config()


def make_problem(config: Table1Config) -> TwoStageOpAmpProblem:
    """Fresh testbench instance (stateless across runs except counters)."""
    kwargs = dict(config.problem_kwargs)
    kwargs.setdefault("sim_backend", config.sim_backend)
    return TwoStageOpAmpProblem(**kwargs)


def make_optimizer(name: str, config: Table1Config, problem, seed: int):
    """Construct one of the four compared algorithms with its budget."""
    if name == "NN-BO":
        surrogate, acquisition, scheduler = nnbo_configs(config)
        return NNBO(
            problem,
            n_initial=config.n_initial,
            max_evaluations=config.bo_budget,
            surrogate=surrogate,
            acquisition_config=acquisition,
            scheduler_config=scheduler,
            seed=seed,
        )
    if name == "WEIBO":
        return WEIBO(
            problem,
            n_initial=config.n_initial,
            max_evaluations=config.bo_budget,
            seed=seed,
        )
    if name == "GASPAD":
        return GASPAD(
            problem,
            n_initial=config.n_initial,
            pop_size=min(20, config.n_initial),
            max_evaluations=config.gaspad_budget,
            seed=seed,
        )
    if name == "DE":
        return DifferentialEvolution(
            problem,
            pop_size=50 if config.de_budget >= 500 else 15,
            max_evaluations=config.de_budget,
            seed=seed,
        )
    raise ValueError(f"unknown algorithm {name!r}")


def summary_to_column(summary) -> dict:
    """Map an :class:`AlgorithmSummary` to the Table I row values.

    The objective is ``-GAIN`` (dB); rows report GAIN, so signs flip and
    mean/worst swap roles relative to the raw minimization statistics.
    """
    metrics = summary.best_run_metrics
    return {
        "UGF (MHz)": metrics.get("ugf_hz", float("nan")) / 1e6,
        "PM (deg)": metrics.get("pm_deg", float("nan")),
        "mean": -summary.mean,
        "median": -summary.median,
        "best": -summary.best,
        "worst": -summary.worst,
        "Avg. # Sim": summary.avg_sims,
        "# Success": summary.success_rate,
    }


@dataclass
class OptimizerFactory:
    """Picklable per-seed optimizer factory (one per algorithm column).

    Lambdas cannot cross process boundaries, which kept the table drivers
    serial even after ``run_repeats`` grew ``n_workers``; this module-level
    callable pickles cleanly, so repeated runs parallelize.
    """

    name: str
    config: Table1Config

    def __call__(self, seed: int):
        return make_optimizer(self.name, self.config, make_problem(self.config), seed)


def run_experiment(config: Table1Config) -> dict[str, dict]:
    """Run all configured algorithms; returns ``{algorithm: column}``."""
    columns: dict[str, dict] = {}
    for name in config.algorithms:
        if config.verbose:
            print(f"[table1] running {name} x{config.n_repeats}")
        results = run_repeats(
            OptimizerFactory(name, config),
            n_repeats=config.n_repeats,
            seed=config.seed,
            verbose=config.verbose,
            n_workers=config.n_workers,
        )
        columns[name] = summary_to_column(summarize(results))
    return columns


def main(argv=None) -> str:
    """CLI entry point; prints and returns the rendered table."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--preset", choices=("quick", "paper"), default="quick",
        help="quick: scaled-down budgets; paper: the full Table I setup",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    add_scheduler_arguments(parser)
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    config = QUICK if args.preset == "quick" else PAPER
    if args.repeats is not None:
        config.n_repeats = args.repeats
    if args.seed is not None:
        config.seed = args.seed
    apply_scheduler_arguments(args, config)
    config.verbose = not args.quiet
    columns = run_experiment(config)
    table = render_table(
        "Table I: two-stage op-amp optimization (GAIN in dB)",
        ROW_LABELS,
        columns,
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
