"""Convergence-curve experiment: best feasible objective vs. simulations.

The paper reports only end-of-run statistics (Tables I/II); the natural
companion figure — the best-so-far trajectory per algorithm — is what the
"accelerate the follow-up optimization procedure" claim looks like over a
run.  This module produces that series for any subset of the four
algorithms on the op-amp testbench::

    python -m repro.experiments.convergence --budget 60 --repeats 3

Curves are averaged pointwise over repeats (infeasible prefixes excluded
per point) and printed as a sims-vs-GAIN table that can be plotted
directly.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.baselines import DifferentialEvolution, GASPAD, WEIBO
from repro.circuits.testbenches import TwoStageOpAmpProblem
from repro.core import NNBO
from repro.experiments.runner import run_repeats
from repro.experiments.tables import render_table


def make_optimizer(name: str, seed: int, n_initial: int, budget: int):
    """One of the four algorithms at a shared simulation budget."""
    problem = TwoStageOpAmpProblem()
    if name == "NN-BO":
        return NNBO(problem, n_initial=n_initial, max_evaluations=budget,
                    n_ensemble=3, hidden_dims=(32, 32), n_features=24,
                    epochs=150, seed=seed)
    if name == "WEIBO":
        return WEIBO(problem, n_initial=n_initial, max_evaluations=budget,
                     seed=seed)
    if name == "GASPAD":
        return GASPAD(problem, n_initial=n_initial,
                      pop_size=min(15, n_initial), max_evaluations=budget,
                      seed=seed)
    if name == "DE":
        return DifferentialEvolution(problem, pop_size=15,
                                     max_evaluations=budget, seed=seed)
    raise ValueError(f"unknown algorithm {name!r}")


def mean_convergence(results) -> np.ndarray:
    """Pointwise mean of best-so-far curves, ignoring infeasible prefixes."""
    curves = np.stack([r.best_so_far() for r in results])
    with np.errstate(invalid="ignore"):
        masked = np.where(np.isfinite(curves), curves, np.nan)
        return np.nanmean(masked, axis=0)


def run_convergence(
    algorithms=("NN-BO", "WEIBO", "GASPAD", "DE"),
    n_initial: int = 15,
    budget: int = 60,
    n_repeats: int = 3,
    seed: int = 0,
    checkpoints=None,
    verbose: bool = False,
) -> dict[str, dict]:
    """Average convergence value at checkpoint simulation counts.

    Returns ``{algorithm: {"@ sims N": mean best GAIN (dB)}}``.
    """
    if checkpoints is None:
        step = max(budget // 6, 1)
        checkpoints = list(range(n_initial, budget + 1, step))
    columns: dict[str, dict] = {}
    for name in algorithms:
        if verbose:
            print(f"[convergence] {name} x{n_repeats}")
        results = run_repeats(
            lambda s, _n=name: make_optimizer(_n, s, n_initial, budget),
            n_repeats=n_repeats,
            seed=seed,
            verbose=verbose,
        )
        curve = mean_convergence(results)
        column = {}
        for k in checkpoints:
            idx = min(k, len(curve)) - 1
            value = curve[idx]
            column[f"@ {k} sims"] = -value if np.isfinite(value) else None
        columns[name] = column
    return columns


def main(argv=None) -> str:
    """CLI entry point; prints the convergence table (GAIN in dB)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=60)
    parser.add_argument("--initial", type=int, default=15)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--algorithms", nargs="+",
        default=["NN-BO", "WEIBO", "GASPAD", "DE"],
    )
    args = parser.parse_args(argv)
    columns = run_convergence(
        algorithms=tuple(args.algorithms),
        n_initial=args.initial,
        budget=args.budget,
        n_repeats=args.repeats,
        seed=args.seed,
        verbose=True,
    )
    labels = list(next(iter(columns.values())).keys())
    table = render_table(
        "Convergence: mean best GAIN (dB) vs simulations", labels, columns
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
