"""Experiment harness reproducing the paper's evaluation (Sec. IV).

* ``runner``      — multi-run statistics (mean/median/best/worst, Avg#Sim,
  #Success) in the exact shape of the paper's tables,
* ``tables``      — text rendering of paper-style result tables,
* ``table1``      — the Table I two-stage op-amp experiment,
* ``table2``      — the Table II charge-pump experiment,
* ``complexity``  — the Sec. III-D training/prediction scaling claim,
* ``ablation``    — ensemble-size and training-mode ablations.

Each experiment module is runnable: ``python -m repro.experiments.table1``.
"""

from repro.experiments.runner import AlgorithmSummary, run_repeats, summarize
from repro.experiments.tables import render_table

__all__ = ["AlgorithmSummary", "render_table", "run_repeats", "summarize"]
