"""Table II experiment: charge-pump sizing over PVT corners (Sec. IV-B).

Setup, following the paper: 36 design variables, 18 PVT corners, five
constraints (eq. 15), FOM of eq. 16 minimized; 100 initial samples,
simulation budgets of 790 (ours/WEIBO reference budget) and ~2000 for the
evolutionary baselines; 12 repeated runs.

Run scaled down::

    python -m repro.experiments.table2 --preset quick

or at paper scale (takes hours — each simulation solves 18 corners)::

    python -m repro.experiments.table2 --preset paper
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from repro.baselines import DifferentialEvolution, GASPAD, WEIBO
from repro.circuits.testbenches import ChargePumpProblem
from repro.core import NNBO
from repro.experiments.runner import (
    add_scheduler_arguments,
    apply_scheduler_arguments,
    nnbo_configs,
    run_repeats,
    summarize,
)
from repro.experiments.tables import render_table

ROW_LABELS = [
    "diff1",
    "diff2",
    "diff3",
    "diff4",
    "deviation",
    "mean",
    "median",
    "best",
    "worst",
    "Avg. # Sim",
    "# Success",
]


@dataclass
class Table2Config:
    """Budgets and model sizes for the Table II experiment.

    ``n_workers`` parallelizes the repeated runs of each algorithm across a
    process pool; ``q``/``eval_executor``/``n_eval_workers`` are the
    batch-proposal knobs of the NN-BO scheduler (q designs per iteration,
    evaluated on the chosen executor — the 18-corner charge-pump
    simulations are the workload batching was built for).  The
    ``async-thread``/``async-process`` executors drop the batch barrier
    entirely (refill-on-completion with ``async_refit`` update policy) —
    the right mode when corner counts make simulation times heterogeneous.
    """

    n_repeats: int = 12
    n_initial: int = 100
    bo_budget: int = 790
    gaspad_budget: int = 2000
    de_budget: int = 2000
    n_ensemble: int = 5
    epochs: int = 300
    hidden_dims: tuple = (50, 50)
    n_features: int = 50
    algorithms: tuple = ("NN-BO", "WEIBO", "GASPAD", "DE")
    seed: int = 2019
    verbose: bool = False
    n_workers: int | None = None
    q: int = 1
    eval_executor: str = "serial"
    n_eval_workers: int | None = None
    async_refit: str = "full"
    pending_strategy: str = "fantasy"
    proposal_space: str = "full"
    backend: str = "numpy"
    device: str | None = None
    linalg_threads: int | None = None
    sim_backend: str = "mna"
    problem_kwargs: dict = field(default_factory=dict)


QUICK = Table2Config(
    n_repeats=2,
    n_initial=20,
    bo_budget=40,
    gaspad_budget=60,
    de_budget=120,
    n_ensemble=3,
    epochs=80,
    hidden_dims=(32, 32),
    n_features=24,
)

PAPER = Table2Config()


def make_problem(config: Table2Config) -> ChargePumpProblem:
    """Fresh charge-pump testbench."""
    kwargs = dict(config.problem_kwargs)
    kwargs.setdefault("sim_backend", config.sim_backend)
    return ChargePumpProblem(**kwargs)


def make_optimizer(name: str, config: Table2Config, problem, seed: int):
    """Construct one of the four compared algorithms with its budget."""
    if name == "NN-BO":
        surrogate, acquisition, scheduler = nnbo_configs(config)
        return NNBO(
            problem,
            n_initial=config.n_initial,
            max_evaluations=config.bo_budget,
            surrogate=surrogate,
            acquisition_config=acquisition,
            scheduler_config=scheduler,
            seed=seed,
        )
    if name == "WEIBO":
        return WEIBO(
            problem,
            n_initial=config.n_initial,
            max_evaluations=config.bo_budget,
            seed=seed,
        )
    if name == "GASPAD":
        return GASPAD(
            problem,
            n_initial=config.n_initial,
            pop_size=min(20, config.n_initial),
            max_evaluations=config.gaspad_budget,
            seed=seed,
        )
    if name == "DE":
        return DifferentialEvolution(
            problem,
            pop_size=50 if config.de_budget >= 500 else 15,
            max_evaluations=config.de_budget,
            seed=seed,
        )
    raise ValueError(f"unknown algorithm {name!r}")


def summary_to_column(summary) -> dict:
    """Map an :class:`AlgorithmSummary` to the Table II row values."""
    metrics = summary.best_run_metrics
    return {
        "diff1": metrics.get("diff1_ua", float("nan")),
        "diff2": metrics.get("diff2_ua", float("nan")),
        "diff3": metrics.get("diff3_ua", float("nan")),
        "diff4": metrics.get("diff4_ua", float("nan")),
        "deviation": metrics.get("deviation_ua", float("nan")),
        "mean": summary.mean,
        "median": summary.median,
        "best": summary.best,
        "worst": summary.worst,
        "Avg. # Sim": summary.avg_sims,
        "# Success": summary.success_rate,
    }


@dataclass
class OptimizerFactory:
    """Picklable per-seed optimizer factory (one per algorithm column).

    Module-level (unlike the lambdas it replaces) so that
    ``run_repeats(n_workers=...)`` can ship it to pool workers.
    """

    name: str
    config: Table2Config

    def __call__(self, seed: int):
        return make_optimizer(self.name, self.config, make_problem(self.config), seed)


def run_experiment(config: Table2Config) -> dict[str, dict]:
    """Run all configured algorithms; returns ``{algorithm: column}``."""
    columns: dict[str, dict] = {}
    for name in config.algorithms:
        if config.verbose:
            print(f"[table2] running {name} x{config.n_repeats}")
        results = run_repeats(
            OptimizerFactory(name, config),
            n_repeats=config.n_repeats,
            seed=config.seed,
            verbose=config.verbose,
            n_workers=config.n_workers,
        )
        columns[name] = summary_to_column(summarize(results))
    return columns


def main(argv=None) -> str:
    """CLI entry point; prints and returns the rendered table."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--preset", choices=("quick", "paper"), default="quick",
        help="quick: scaled-down budgets; paper: the full Table II setup",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    add_scheduler_arguments(parser)
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    config = QUICK if args.preset == "quick" else PAPER
    if args.repeats is not None:
        config.n_repeats = args.repeats
    if args.seed is not None:
        config.seed = args.seed
    apply_scheduler_arguments(args, config)
    config.verbose = not args.quiet
    columns = run_experiment(config)
    table = render_table(
        "Table II: charge-pump optimization (currents in uA, FOM of eq. 16)",
        ROW_LABELS,
        columns,
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
