"""Ablations of the paper's design choices (Sec. III-B/III-C).

Two studies, each runnable via ``python -m repro.experiments.ablation``:

* **Ensemble size K** — the paper fixes K = 5 "empirically".  We measure
  held-out negative log predictive density (NLPD) and RMSE on circuit-like
  targets as K varies; eq. 13's disagreement term should improve NLPD
  markedly from K = 1 to K = 3..5 with diminishing returns after.
* **Training mode** — direct likelihood maximization (the paper) vs. a
  DNGO-style MSE pre-training warm start.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import DeepEnsemble, FeatureGPTrainer, NeuralFeatureGP
from repro.experiments.tables import render_table
from repro.utils.rng import ensure_rng


def _toy_response(x: np.ndarray) -> np.ndarray:
    """Smooth multi-scale target resembling a normalized circuit response."""
    return (
        np.sin(3.0 * x[:, 0]) * np.cos(2.0 * x[:, 1])
        + 0.5 * x[:, 0] * x[:, 1]
        + 0.3 * np.exp(-((x[:, 0] - 0.5) ** 2) * 8.0)
    )


def nlpd(y_true: np.ndarray, mean: np.ndarray, var: np.ndarray) -> float:
    """Mean negative log predictive density under the Gaussian prediction."""
    var = np.maximum(var, 1e-12)
    return float(
        np.mean(0.5 * np.log(2.0 * np.pi * var) + 0.5 * (y_true - mean) ** 2 / var)
    )


def _make_member(dim: int, epochs: int):
    def factory(rng):
        return NeuralFeatureGP(dim, hidden_dims=(32, 32), n_features=24, seed=rng)

    def fit(ensemble, x, y):
        for member in ensemble.members:
            member.fit(x, y, trainer=FeatureGPTrainer(epochs=epochs))

    return factory, fit


def ensemble_size_study(
    k_values=(1, 3, 5, 10),
    n_train: int = 40,
    n_test: int = 300,
    epochs: int = 200,
    n_trials: int = 3,
    seed: int = 0,
) -> dict[str, dict]:
    """NLPD/RMSE of the moment-matched ensemble vs. member count K."""
    rng = ensure_rng(seed)
    columns: dict[str, dict] = {}
    for k in k_values:
        nlpds, rmses = [], []
        for _ in range(n_trials):
            x = rng.uniform(size=(n_train, 2))
            y = _toy_response(x) + 0.02 * rng.normal(size=n_train)
            x_test = rng.uniform(size=(n_test, 2))
            y_test = _toy_response(x_test)
            factory, fit = _make_member(2, epochs)
            ensemble = DeepEnsemble.create(factory, n_members=k, seed=rng)
            fit(ensemble, x, y)
            mean, var = ensemble.predict(x_test)
            nlpds.append(nlpd(y_test, mean, var))
            rmses.append(float(np.sqrt(np.mean((mean - y_test) ** 2))))
        columns[f"K={k}"] = {
            "NLPD": float(np.mean(nlpds)),
            "RMSE": float(np.mean(rmses)),
        }
    return columns


def training_mode_study(
    n_train: int = 40,
    n_test: int = 300,
    epochs: int = 200,
    n_trials: int = 3,
    seed: int = 0,
) -> dict[str, dict]:
    """Direct NLL training (paper) vs. MSE pre-training warm start."""
    rng = ensure_rng(seed)
    modes = {
        "direct NLL (paper)": FeatureGPTrainer(epochs=epochs),
        "MSE pretrain + NLL": FeatureGPTrainer(
            epochs=epochs, pretrain_epochs=epochs // 2
        ),
    }
    columns: dict[str, dict] = {}
    for name, trainer_proto in modes.items():
        nlpds, rmses = [], []
        for _ in range(n_trials):
            x = rng.uniform(size=(n_train, 2))
            y = _toy_response(x) + 0.02 * rng.normal(size=n_train)
            x_test = rng.uniform(size=(n_test, 2))
            y_test = _toy_response(x_test)
            model = NeuralFeatureGP(2, hidden_dims=(32, 32), n_features=24,
                                    seed=int(rng.integers(2**31)))
            trainer = FeatureGPTrainer(
                epochs=trainer_proto.epochs,
                pretrain_epochs=trainer_proto.pretrain_epochs,
            )
            model.fit(x, y, trainer=trainer)
            mean, var = model.predict(x_test)
            nlpds.append(nlpd(y_test, mean, var))
            rmses.append(float(np.sqrt(np.mean((mean - y_test) ** 2))))
        columns[name] = {
            "NLPD": float(np.mean(nlpds)),
            "RMSE": float(np.mean(rmses)),
        }
    return columns


def main(argv=None) -> str:
    """CLI entry point; prints both ablation tables."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=3)
    args = parser.parse_args(argv)
    out = []
    columns = ensemble_size_study(n_trials=args.trials)
    out.append(render_table(
        "Ablation: ensemble size K (eq. 13)", ["NLPD", "RMSE"], columns
    ))
    columns = training_mode_study(n_trials=args.trials)
    out.append(render_table(
        "Ablation: training mode (Sec. III-B)", ["NLPD", "RMSE"], columns
    ))
    text = "\n\n".join(out)
    print(text)
    return text


if __name__ == "__main__":
    main()
