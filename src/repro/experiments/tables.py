"""Text rendering of paper-style result tables.

The paper's Tables I and II put algorithms in columns and statistics in
rows; :func:`render_table` reproduces that layout for terminal output and
EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np


def _format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    value = float(value)
    if not np.isfinite(value):
        return "-"
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e5 or magnitude < 1e-3:
        return f"{value:.3g}"
    return f"{value:.2f}"


def render_table(
    title: str,
    row_labels: list[str],
    columns: dict[str, dict],
) -> str:
    """Render a paper-style table.

    Parameters
    ----------
    title:
        Heading printed above the table.
    row_labels:
        Statistics to show, in order (keys into each column dict).
    columns:
        ``{algorithm_name: {row_label: value}}`` in column order.

    Returns the formatted multi-line string.
    """
    if not columns:
        raise ValueError("table needs at least one column")
    headers = ["Metric", *columns.keys()]
    rows = []
    for label in row_labels:
        rows.append([label, *(_format_cell(columns[c].get(label)) for c in columns)])
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rows))
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_markdown_table(
    row_labels: list[str],
    columns: dict[str, dict],
) -> str:
    """Same data as :func:`render_table` but as GitHub-flavoured markdown."""
    if not columns:
        raise ValueError("table needs at least one column")
    header = "| Metric | " + " | ".join(columns.keys()) + " |"
    rule = "|---" * (len(columns) + 1) + "|"
    lines = [header, rule]
    for label in row_labels:
        cells = [_format_cell(columns[c].get(label)) for c in columns]
        lines.append(f"| {label} | " + " | ".join(cells) + " |")
    return "\n".join(lines)
