"""CuPy backend: the stacked engine on CUDA via cupy arrays.

Importing this module requires ``cupy``; :func:`repro.backend.get_namespace`
guards the import and raises :class:`~repro.backend.BackendNotAvailable`
naming the missing package when it is absent.

CuPy mirrors the numpy API closely, so most portable ops are literal
``cupy`` functions.  Math runs in float64 and randomness is drawn
host-side from numpy generators then transferred (the shared policies —
see ``repro.backend.base``).  Factorizations use the batched
``cupy.linalg.cholesky`` with the numpy path's relative-jitter ladder;
posterior solves run through ``cupyx.scipy.linalg.solve_triangular``
pairs on the stacked factors.
"""

from __future__ import annotations

import numpy as np

import cupy
from cupyx.scipy import linalg as cusla

from repro.backend.base import ArrayNamespace
from repro.gp.linalg import JITTER_START, CholeskyError


class CupyNamespace(ArrayNamespace):
    """CuPy namespace; see module docstring."""

    name = "cupy"
    is_numpy = False

    asarray = staticmethod(cupy.asarray)
    zeros = staticmethod(cupy.zeros)
    ones = staticmethod(cupy.ones)
    full = staticmethod(cupy.full)
    eye = staticmethod(cupy.eye)
    empty = staticmethod(cupy.empty)
    zeros_like = staticmethod(cupy.zeros_like)
    empty_like = staticmethod(cupy.empty_like)
    stack = staticmethod(cupy.stack)
    concatenate = staticmethod(cupy.concatenate)
    vstack = staticmethod(cupy.vstack)
    swapaxes = staticmethod(cupy.swapaxes)
    where = staticmethod(cupy.where)
    clip = staticmethod(cupy.clip)
    exp = staticmethod(cupy.exp)
    log = staticmethod(cupy.log)
    sqrt = staticmethod(cupy.sqrt)
    tanh = staticmethod(cupy.tanh)
    logaddexp = staticmethod(cupy.logaddexp)
    maximum = staticmethod(cupy.maximum)
    isfinite = staticmethod(cupy.isfinite)
    sum = staticmethod(cupy.sum)

    def __init__(self, device: str | int | None = None, linalg_threads: int | None = None):
        if device is None:
            self._device_id = 0
        else:
            text = str(device)
            self._device_id = int(text.split(":")[-1]) if ":" in text else int(text)
        self.device = f"cuda:{self._device_id}"
        # slice loops are fused into batched cupy calls on this backend;
        # the CPU threading knob is numpy-path-only
        self.linalg_threads = linalg_threads

    @staticmethod
    def diagonal(x):
        return cupy.diagonal(x, axis1=-2, axis2=-1)

    @staticmethod
    def copy(x):
        return x.copy()

    # -- transfer ---------------------------------------------------------------

    def to_device(self, array):
        with cupy.cuda.Device(self._device_id):
            return cupy.asarray(array)

    def from_device(self, array) -> np.ndarray:
        if isinstance(array, cupy.ndarray):
            return cupy.asnumpy(array)
        return np.asarray(array)

    def as_index(self, idx):
        return self.to_device(np.asarray(idx))

    # -- linalg -----------------------------------------------------------------

    def batched_cholesky(self, mats, max_tries: int = 6):
        """Batched ``cupy.linalg.cholesky`` with relative-jitter escalation."""
        eye = self.eye(mats.shape[-1])
        diag_mean = cupy.maximum(self.diagonal(mats).mean(axis=-1), 0.0)
        diag_mean = cupy.where(diag_mean > 0, diag_mean, cupy.ones_like(diag_mean))
        jitter = cupy.zeros(mats.shape[0])
        for attempt in range(max_tries):
            try:
                return cupy.linalg.cholesky(mats + jitter[:, None, None] * eye)
            except cupy.linalg.LinAlgError:
                jitter = diag_mean * (JITTER_START * 10.0**attempt)
        raise CholeskyError(
            f"batched Cholesky failed after {max_tries} jitter attempts"
        )

    def batched_cholesky_solve(self, chol, u):
        """Batched ``A^{-1} u`` via two stacked triangular solves."""
        return self.batched_solve_r_and_inverse(chol, u, with_inverse=False)[0]

    def batched_solve_r_and_inverse(self, chol, u, with_inverse: bool = True):
        """Batched ``(A^{-1} u, A^{-1})`` through per-slice triangular solves."""
        s_stack, m = u.shape
        if with_inverse:
            eye = cupy.broadcast_to(self.eye(m), (s_stack, m, m))
            rhs = cupy.concatenate([u[..., None], eye], axis=2)
        else:
            rhs = u[..., None]
        sol = cupy.empty_like(rhs)
        for s in range(s_stack):
            tmp = cusla.solve_triangular(chol[s], rhs[s], lower=True)
            sol[s] = cusla.solve_triangular(
                chol[s], tmp, lower=True, trans="T"
            )
        if with_inverse:
            return sol[..., 0], cupy.ascontiguousarray(sol[..., 1:])
        return sol[..., 0], None

    def solve_lower_transposed(self, chol_2d, rhs):
        """Single-slice ``L^T x = rhs`` (posterior weight sampling)."""
        return cusla.solve_triangular(chol_2d, rhs, lower=True, trans="T")
