"""The default (and reference) backend: plain numpy on the host CPU.

Every portable op below is the *literal numpy function* — ``xb.stack is
np.stack`` — so code routed through this namespace executes the identical
call sequence the pre-backend engine made, which is how the numpy path
keeps its bitwise-equivalence guarantee by construction rather than by
testing alone.

The one capability numpy gains over the raw functions is ``linalg_threads``:
the per-slice LAPACK loops (Cholesky factorizations and posterior solves
over the ``(S, M, M)`` stack) run across a thread pool when the knob is
set.  Slices are independent, each executes the exact serial kernel, and
LAPACK releases the GIL — so threading changes wall-clock only, never a
bit of the results.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import lapack as _lapack

from repro.backend.base import ArrayNamespace
from repro.gp.linalg import (
    batched_jitter_cholesky,
    map_slices as _map_slices,
    solve_r_and_inverse,
)


class NumpyNamespace(ArrayNamespace):
    """Host-CPU numpy namespace; see module docstring."""

    name = "numpy"
    is_numpy = True
    device = "cpu"

    # -- portable ops: literal numpy functions ---------------------------------

    asarray = staticmethod(np.asarray)
    zeros = staticmethod(np.zeros)
    ones = staticmethod(np.ones)
    full = staticmethod(np.full)
    eye = staticmethod(np.eye)
    empty = staticmethod(np.empty)
    zeros_like = staticmethod(np.zeros_like)
    empty_like = staticmethod(np.empty_like)
    stack = staticmethod(np.stack)
    concatenate = staticmethod(np.concatenate)
    vstack = staticmethod(np.vstack)
    swapaxes = staticmethod(np.swapaxes)
    where = staticmethod(np.where)
    clip = staticmethod(np.clip)
    exp = staticmethod(np.exp)
    log = staticmethod(np.log)
    sqrt = staticmethod(np.sqrt)
    tanh = staticmethod(np.tanh)
    logaddexp = staticmethod(np.logaddexp)
    maximum = staticmethod(np.maximum)
    isfinite = staticmethod(np.isfinite)
    sum = staticmethod(np.sum)

    def __init__(self, device: str | None = None, linalg_threads: int | None = None):
        if device not in (None, "cpu"):
            raise ValueError(
                f"the numpy backend runs on the host CPU only, got device={device!r}"
            )
        if linalg_threads is not None and int(linalg_threads) < 1:
            raise ValueError(f"linalg_threads must be >= 1, got {linalg_threads}")
        self.linalg_threads = None if linalg_threads is None else int(linalg_threads)

    # -- array helpers ----------------------------------------------------------

    @staticmethod
    def diagonal(x: np.ndarray) -> np.ndarray:
        return np.diagonal(x, axis1=-2, axis2=-1)

    @staticmethod
    def copy(x: np.ndarray) -> np.ndarray:
        return x.copy()

    # -- transfer: everything already lives on the host -------------------------

    def to_device(self, array):
        return array

    def from_device(self, array) -> np.ndarray:
        return array

    def as_index(self, idx):
        return idx

    # -- slice loops / linalg ----------------------------------------------------

    def map_slices(self, fn, count: int) -> None:
        _map_slices(fn, count, self.linalg_threads)

    def batched_cholesky(self, mats: np.ndarray) -> np.ndarray:
        """Per-slice LAPACK ``dpotrf`` with jitter fallback, optionally threaded."""
        return batched_jitter_cholesky(mats, threads=self.linalg_threads)

    def batched_cholesky_solve(self, chol: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Per-slice ``A^{-1} u`` from the stacked lower factors."""
        out = np.empty_like(u)

        def solve(s: int) -> None:
            out[s] = _lapack.dpotrs(chol[s], u[s], lower=1)[0]

        self.map_slices(solve, chol.shape[0])
        return out

    def batched_solve_r_and_inverse(
        self, chol: np.ndarray, u: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-slice ``(A^{-1} u, A^{-1})`` sharing one ``dpotrs`` each."""
        s_stack, m = u.shape
        r = np.empty((s_stack, m))
        a_inv = np.empty_like(chol)

        def solve(s: int) -> None:
            r[s], a_inv[s] = solve_r_and_inverse(chol[s], u[s])

        self.map_slices(solve, s_stack)
        return r, a_inv

    def solve_lower_transposed(self, chol_2d: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Single-slice ``L^T x = rhs`` (posterior weight sampling)."""
        return _lapack.dtrtrs(chol_2d, rhs, lower=1, trans=1)[0]
