"""The array-namespace contract the stacked engine codes against.

``repro.backend`` follows the shape of the Python array-API standard: the
engine never imports ``numpy``/``torch``/``cupy`` for hot-path math —
instead every stacked model owns a *namespace object* ``xb`` and calls
``xb.stack`` / ``xb.exp`` / ``xb.batched_cholesky`` / ..., so the same
code runs on whichever array library the namespace wraps.

Contract
--------

A namespace provides four groups of operations:

* **portable array ops** (``asarray``, ``stack``, ``concatenate``,
  ``swapaxes``, ``where``, ``clip``, elementwise math, reductions) with
  numpy ``axis`` semantics;
* **transfer ops** — ``to_device`` (host numpy array -> backend array,
  dtype preserved), ``from_device`` (backend array -> host numpy array),
  and ``as_index`` (host integer/boolean index -> whatever the backend's
  fancy indexing accepts);
* **seeded randomness** — ``standard_normal(rng, shape)`` draws from the
  *host* :class:`numpy.random.Generator` and transfers the result.  This
  is the cross-backend determinism policy: every RNG-dependent quantity
  (weight inits, posterior eps draws) comes from the same numpy stream
  regardless of backend, so backends differ only in floating-point
  reduction order (gated at 1e-5), never in which random numbers they
  consumed;
* **non-portable linalg** — batched Cholesky with jitter escalation
  (``batched_cholesky``), batched posterior solves
  (``batched_solve_r_and_inverse`` / ``batched_cholesky_solve``), a
  single-slice transposed triangular solve (``solve_lower_transposed``),
  and the ``map_slices`` hook the numpy backend uses to thread per-slice
  LAPACK loops.

Dtype policy: all backends compute in float64.  The engine's numerical
guarantees (numpy bitwise equivalence, 1e-5 accelerator gate) are stated
for float64; a float32 backend would need its own tolerance story.

Adding a backend means subclassing :class:`ArrayNamespace`, filling in
the four groups for the new library, and registering the name in
``repro.backend.get_namespace``.  The numpy namespace is special: its
portable ops are the *literal numpy functions*, which is what makes the
default path bitwise identical to pre-backend code by construction.
"""

from __future__ import annotations

import numpy as np


class ArrayNamespace:
    """Base class for array-library namespaces (see module docstring).

    Subclasses set ``name``/``is_numpy`` and implement the array,
    transfer and linalg groups.  Only the pieces shared verbatim across
    backends live here.
    """

    name: str = "abstract"
    is_numpy: bool = False
    device = None
    linalg_threads: int | None = None

    # -- seeded randomness (shared policy: draw on host, then transfer) --------

    def standard_normal(self, rng: np.random.Generator, shape) -> object:
        """A seeded N(0, 1) draw usable on this backend.

        Always consumes the host numpy generator (see module docstring:
        the determinism policy), then transfers the values.
        """
        return self.to_device(rng.standard_normal(shape))

    # -- transfer defaults ------------------------------------------------------

    def to_device(self, array):
        raise NotImplementedError

    def from_device(self, array) -> np.ndarray:
        raise NotImplementedError

    def as_index(self, idx):
        """Adapt a host integer/boolean index array for fancy indexing."""
        raise NotImplementedError

    # -- slice-loop hook --------------------------------------------------------

    def map_slices(self, fn, count: int) -> None:
        """Run ``fn(s)`` for ``s in range(count)``; backends may parallelize."""
        for s in range(count):
            fn(s)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(device={self.device!r})"
