"""PyTorch backend: the stacked engine on torch tensors (CPU or CUDA).

Importing this module requires ``torch``; :func:`repro.backend.get_namespace`
guards the import and raises :class:`~repro.backend.BackendNotAvailable`
naming the missing package when it is absent.

All math runs in ``torch.float64`` (the engine's dtype policy) and all
randomness is drawn host-side from numpy generators then transferred
(the determinism policy — see ``repro.backend.base``), so a torch run
consumes exactly the random stream a numpy run does.  Results differ
from numpy only through GEMM/factorization reduction order; the
posterior-equivalence tests gate that at 1e-5.

Batched factorizations use ``torch.linalg.cholesky_ex`` (one fused call
for the whole ``(S, M, M)`` stack, no per-slice Python loop) with the
same relative-jitter escalation ladder the numpy path applies, and the
posterior solves use ``torch.cholesky_solve`` on the concatenated
``[u | I]`` right-hand side.
"""

from __future__ import annotations

import numpy as np

import torch

from repro.backend.base import ArrayNamespace
from repro.gp.linalg import JITTER_START, CholeskyError


class TorchNamespace(ArrayNamespace):
    """Torch namespace; see module docstring."""

    name = "torch"
    is_numpy = False

    def __init__(self, device: str | None = None, linalg_threads: int | None = None):
        self.torch = torch
        self.device = torch.device(device if device is not None else "cpu")
        self.dtype = torch.float64
        # slice loops are fused into batched torch calls on this backend;
        # the CPU threading knob is numpy-path-only
        self.linalg_threads = linalg_threads

    # -- creation ---------------------------------------------------------------

    def asarray(self, x, dtype=None):
        return torch.as_tensor(x, dtype=self.dtype, device=self.device)

    def zeros(self, shape):
        return torch.zeros(shape, dtype=self.dtype, device=self.device)

    def ones(self, shape):
        return torch.ones(shape, dtype=self.dtype, device=self.device)

    def full(self, shape, value):
        shape = (shape,) if isinstance(shape, int) else tuple(shape)
        return torch.full(shape, float(value), dtype=self.dtype, device=self.device)

    def eye(self, n):
        return torch.eye(n, dtype=self.dtype, device=self.device)

    def empty(self, shape):
        return torch.empty(shape, dtype=self.dtype, device=self.device)

    def zeros_like(self, x):
        return torch.zeros_like(x)

    def empty_like(self, x):
        return torch.empty_like(x)

    # -- manipulation -----------------------------------------------------------

    def stack(self, seq, axis=0):
        return torch.stack([self.asarray(a) for a in seq], dim=axis)

    def concatenate(self, seq, axis=0):
        return torch.cat([self.asarray(a) for a in seq], dim=axis)

    def vstack(self, seq):
        return torch.vstack([self.asarray(a) for a in seq])

    def swapaxes(self, x, axis1, axis2):
        return torch.swapaxes(x, axis1, axis2)

    def where(self, cond, a, b):
        if not torch.is_tensor(a):
            a = torch.as_tensor(a, dtype=self.dtype, device=self.device)
        if not torch.is_tensor(b):
            b = torch.as_tensor(b, dtype=self.dtype, device=self.device)
        return torch.where(cond, a, b)

    def clip(self, x, lo, hi):
        return torch.clamp(x, min=lo, max=hi)

    def diagonal(self, x):
        return torch.diagonal(x, dim1=-2, dim2=-1)

    def copy(self, x):
        return x.clone()

    # -- math -------------------------------------------------------------------

    def exp(self, x):
        return torch.exp(x)

    def log(self, x):
        return torch.log(self.asarray(x))

    def sqrt(self, x):
        return torch.sqrt(self.asarray(x))

    def tanh(self, x):
        return torch.tanh(x)

    def logaddexp(self, a, b):
        return torch.logaddexp(self.asarray(a), self.asarray(b))

    def maximum(self, a, b):
        return torch.maximum(self.asarray(a), self.asarray(b))

    def isfinite(self, x):
        return torch.isfinite(x)

    def sum(self, x, axis=None):
        if axis is None:
            return torch.sum(x)
        return torch.sum(x, dim=axis)

    # -- transfer ---------------------------------------------------------------

    def to_device(self, array):
        return torch.as_tensor(array, device=self.device)

    def from_device(self, array) -> np.ndarray:
        if torch.is_tensor(array):
            return array.detach().cpu().numpy()
        return np.asarray(array)

    def as_index(self, idx):
        return torch.as_tensor(np.asarray(idx), device=self.device)

    # -- linalg -----------------------------------------------------------------

    def batched_cholesky(self, mats, max_tries: int = 6):
        """Fused ``cholesky_ex`` over the stack with relative-jitter escalation.

        Mirrors the numpy ladder (start ``JITTER_START * mean(diag)``,
        x10 per retry) but applies jitter to the whole failing stack at
        once — torch reports failures per slice via ``info``, and adding
        jitter only where needed would force a slice loop.
        """
        chol, info = torch.linalg.cholesky_ex(mats)
        if not bool((info != 0).any()):
            return chol
        eye = self.eye(mats.shape[-1])
        diag_mean = torch.clamp(self.diagonal(mats).mean(dim=-1), min=0.0)
        diag_mean = torch.where(diag_mean > 0, diag_mean, torch.ones_like(diag_mean))
        for attempt in range(max_tries):
            jitter = diag_mean * (JITTER_START * 10.0**attempt)
            chol_j, info = torch.linalg.cholesky_ex(
                mats + jitter[:, None, None] * eye
            )
            bad = (info != 0)[:, None, None]
            chol = torch.where(bad.expand_as(chol), chol, chol_j)
            if not bool(bad.any()):
                return chol
        raise CholeskyError(
            f"batched Cholesky failed after {max_tries} jitter attempts"
        )

    def batched_cholesky_solve(self, chol, u):
        """Batched ``A^{-1} u`` from the stacked lower factors."""
        return torch.cholesky_solve(u[..., None], chol, upper=False)[..., 0]

    def batched_solve_r_and_inverse(self, chol, u):
        """Batched ``(A^{-1} u, A^{-1})`` via one ``cholesky_solve`` on ``[u | I]``."""
        s_stack, m = u.shape
        eye = self.eye(m).expand(s_stack, m, m)
        rhs = torch.cat([u[..., None], eye], dim=2)
        sol = torch.cholesky_solve(rhs, chol, upper=False)
        return sol[..., 0], sol[..., 1:].contiguous()

    def solve_lower_transposed(self, chol_2d, rhs):
        """Single-slice ``L^T x = rhs`` (posterior weight sampling)."""
        sol = torch.linalg.solve_triangular(
            chol_2d.mT, rhs[:, None], upper=True
        )
        return sol[:, 0]
