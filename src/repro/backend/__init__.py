"""Pluggable array backends for the stacked surrogate engine.

The engine (``repro.nn.batched``, ``repro.core.batched_gp``,
``repro.core.trainer``) codes against a small array-namespace contract
(:mod:`repro.backend.base`) instead of numpy directly, so the identical
stacked tensor program runs on:

* ``"numpy"`` — the default and reference path, bitwise identical to the
  pre-backend engine (its namespace ops *are* the numpy functions), with
  an optional ``linalg_threads`` knob that spreads the per-slice LAPACK
  loops over a thread pool;
* ``"torch"`` — PyTorch tensors on CPU or CUDA (soft dependency);
* ``"cupy"`` — CuPy arrays on CUDA (soft dependency);
* ``"auto"`` — the first importable accelerator backend (torch, then
  cupy), falling back to numpy.

Use :func:`get_namespace` to obtain a namespace and pass it (or just the
name) to :class:`~repro.core.batched_gp.SurrogateBank` /
:class:`~repro.bo.config.SurrogateConfig` via their ``backend`` argument.
"""

from __future__ import annotations

from importlib import util as _importlib_util

from repro.backend.base import ArrayNamespace

BACKEND_NAMES = ("numpy", "torch", "cupy")

#: pip package that provides each soft-dependency backend
_BACKEND_PACKAGES = {"torch": "torch", "cupy": "cupy"}

#: preference order used by ``backend="auto"``
_AUTO_ORDER = ("torch", "cupy", "numpy")


class BackendNotAvailable(ImportError):
    """A requested array backend's package is not installed.

    Carries ``backend`` (the requested name) and ``package`` (the pip
    distribution that provides it); the message names both so the fix is
    obvious from the traceback alone.  ``code`` is the stable wire error
    code the BO service maps this exception to.
    """

    #: stable error code (wire-safe kebab-case identifier)
    code = "backend-not-available"

    def __init__(self, backend: str, package: str):
        self.backend = str(backend)
        self.package = str(package)
        super().__init__(
            f"array backend {self.backend!r} requires the {self.package!r} "
            f"package, which is not installed; install it "
            f"(e.g. `pip install {self.package}`) or select backend='numpy'"
        )


def _package_importable(name: str) -> bool:
    try:
        return _importlib_util.find_spec(name) is not None
    except (ImportError, ValueError):
        return False


def available_backends() -> tuple[str, ...]:
    """Backend names usable right now (numpy always; others if importable)."""
    names = ["numpy"]
    for name, package in _BACKEND_PACKAGES.items():
        if _package_importable(package):
            names.append(name)
    return tuple(names)


def get_namespace(
    name: str | None = "numpy",
    device: str | None = None,
    linalg_threads: int | None = None,
) -> ArrayNamespace:
    """Construct the array namespace for ``name``.

    ``name`` is one of ``"numpy"`` (default; ``None`` means numpy),
    ``"torch"``, ``"cupy"``, or ``"auto"`` (first importable of torch,
    cupy, numpy).  ``device`` selects the accelerator device (e.g.
    ``"cuda:0"``; numpy accepts only ``"cpu"``); ``linalg_threads``
    threads the numpy path's per-slice LAPACK loops.

    Raises :class:`BackendNotAvailable` when an explicitly requested
    soft-dependency backend is not importable — ``"auto"`` never raises,
    it falls back to numpy.
    """
    if name is None:
        name = "numpy"
    name = str(name).lower()
    if name == "auto":
        for candidate in _AUTO_ORDER:
            if candidate == "numpy" or _package_importable(
                _BACKEND_PACKAGES[candidate]
            ):
                return get_namespace(candidate, device, linalg_threads)
    if name == "numpy":
        from repro.backend.numpy_backend import NumpyNamespace

        return NumpyNamespace(device=device, linalg_threads=linalg_threads)
    if name == "torch":
        try:
            from repro.backend.torch_backend import TorchNamespace
        except ImportError as exc:
            raise BackendNotAvailable("torch", _BACKEND_PACKAGES["torch"]) from exc
        return TorchNamespace(device=device, linalg_threads=linalg_threads)
    if name == "cupy":
        try:
            from repro.backend.cupy_backend import CupyNamespace
        except ImportError as exc:
            raise BackendNotAvailable("cupy", _BACKEND_PACKAGES["cupy"]) from exc
        return CupyNamespace(device=device, linalg_threads=linalg_threads)
    raise ValueError(
        f"unknown array backend {name!r}; choose from "
        f"{('auto',) + BACKEND_NAMES}"
    )


_DEFAULT_NAMESPACE: ArrayNamespace | None = None


def default_namespace() -> ArrayNamespace:
    """The shared default (plain numpy, serial) namespace singleton."""
    global _DEFAULT_NAMESPACE
    if _DEFAULT_NAMESPACE is None:
        _DEFAULT_NAMESPACE = get_namespace("numpy")
    return _DEFAULT_NAMESPACE


def resolve_namespace(backend) -> ArrayNamespace:
    """Normalize a ``backend`` argument into a namespace object.

    Accepts ``None`` (the default numpy singleton), a backend name
    string, or an already-constructed :class:`ArrayNamespace` (passed
    through unchanged, so callers can share one configured namespace
    across models).
    """
    if backend is None:
        return default_namespace()
    if isinstance(backend, str):
        return get_namespace(backend)
    if isinstance(backend, ArrayNamespace):
        return backend
    raise TypeError(
        f"backend must be None, a backend name, or an ArrayNamespace, "
        f"got {type(backend).__name__}"
    )


__all__ = [
    "ArrayNamespace",
    "BACKEND_NAMES",
    "BackendNotAvailable",
    "available_backends",
    "default_namespace",
    "get_namespace",
    "resolve_namespace",
]
