"""Shared utilities: scaling, RNG handling, validation, persistence."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.scaling import BoxScaler, StandardScaler
from repro.utils.serialization import (
    load_model_into,
    load_result,
    save_model,
    save_result,
)
from repro.utils.validation import (
    check_box_bounds,
    check_finite,
    check_matrix_2d,
    check_vector_1d,
)

__all__ = [
    "BoxScaler",
    "StandardScaler",
    "check_box_bounds",
    "check_finite",
    "check_matrix_2d",
    "check_vector_1d",
    "ensure_rng",
    "load_model_into",
    "load_result",
    "save_model",
    "save_result",
    "spawn_rngs",
]
