"""Random-number-generator plumbing.

Every stochastic component in the library accepts a ``seed`` argument that
may be ``None``, an integer, or an already-constructed
:class:`numpy.random.Generator`.  Normalizing that argument in one place
keeps experiments reproducible and lets callers share a generator across
components when they want correlated streams.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an ``int`` seed, or an existing
        ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"seed must be None, int, or Generator, got {type(seed)!r}")


def spawn_rngs(seed, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators from one seed.

    Used by the model ensemble (paper Sec. III-C): each ensemble member gets
    its own stream so that "randomly initializing a set of models" is
    reproducible yet decorrelated.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = ensure_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
