"""Argument-validation helpers shared across the library.

These raise early with messages that name the offending argument; silent
shape coercion is a classic source of wrong-but-plausible surrogate fits.
"""

from __future__ import annotations

import numpy as np


def check_finite(arr: np.ndarray, name: str) -> np.ndarray:
    """Raise ``ValueError`` if ``arr`` contains NaN or infinity."""
    arr = np.asarray(arr, dtype=float)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return arr


def check_matrix_2d(arr, name: str, n_cols: int | None = None) -> np.ndarray:
    """Coerce to a float 2-D array, optionally checking the column count."""
    arr = np.asarray(arr, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    if n_cols is not None and arr.shape[1] != n_cols:
        raise ValueError(
            f"{name} must have {n_cols} columns, got shape {arr.shape}"
        )
    return arr


def check_vector_1d(arr, name: str, length: int | None = None) -> np.ndarray:
    """Coerce to a float 1-D array, optionally checking its length."""
    arr = np.asarray(arr, dtype=float).ravel()
    if length is not None and arr.shape[0] != length:
        raise ValueError(f"{name} must have length {length}, got {arr.shape[0]}")
    return arr


def check_box_bounds(lower, upper) -> tuple[np.ndarray, np.ndarray]:
    """Validate box bounds and return them as float arrays.

    ``lower`` must be strictly below ``upper`` in every coordinate — a zero
    width box would break the affine [0, 1] mapping used throughout.
    """
    lower = np.asarray(lower, dtype=float).ravel()
    upper = np.asarray(upper, dtype=float).ravel()
    if lower.shape != upper.shape:
        raise ValueError(
            f"bound shapes differ: {lower.shape} vs {upper.shape}"
        )
    if lower.size == 0:
        raise ValueError("bounds must be non-empty")
    if not np.all(np.isfinite(lower)) or not np.all(np.isfinite(upper)):
        raise ValueError("bounds must be finite")
    if np.any(lower >= upper):
        bad = np.nonzero(lower >= upper)[0]
        raise ValueError(f"lower >= upper at dimensions {bad.tolist()}")
    return lower, upper
