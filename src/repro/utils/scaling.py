"""Input and output scaling used by every surrogate model.

Surrogates are always fit in normalized coordinates:

* design points live in the unit box via :class:`BoxScaler` (the paper's
  design variables span widths in metres next to currents in amps — six
  orders of magnitude apart), and
* observed objectives/constraints are z-scored via :class:`StandardScaler`
  so GP/NN hyper-priors have a consistent scale.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_box_bounds


class BoxScaler:
    """Affine map between a box ``[lower, upper]`` and the unit cube."""

    def __init__(self, lower, upper):
        self.lower, self.upper = check_box_bounds(lower, upper)
        self.width = self.upper - self.lower

    @property
    def dim(self) -> int:
        """Number of box dimensions."""
        return self.lower.size

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Map points from the box to the unit cube."""
        x = np.asarray(x, dtype=float)
        return (x - self.lower) / self.width

    def inverse_transform(self, u: np.ndarray) -> np.ndarray:
        """Map points from the unit cube back to the box."""
        u = np.asarray(u, dtype=float)
        return self.lower + u * self.width

    def clip(self, x: np.ndarray) -> np.ndarray:
        """Clip points (in box coordinates) into the box."""
        return np.clip(np.asarray(x, dtype=float), self.lower, self.upper)


class LogBoxScaler(BoxScaler):
    """Affine-in-log map between a positive box and the unit cube.

    Sizing variables commonly span decades (channel widths 0.4-40 um,
    resistors 0.5-320 kOhm); searching uniformly in log space puts equal
    resolution on every octave.  Drop-in replacement for :class:`BoxScaler`
    on strictly-positive bounds.
    """

    def __init__(self, lower, upper):
        super().__init__(lower, upper)
        if np.any(self.lower <= 0):
            raise ValueError("LogBoxScaler requires strictly positive bounds")
        self._log_lower = np.log(self.lower)
        self._log_width = np.log(self.upper) - self._log_lower

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Map positive points to the unit cube, uniform per decade."""
        x = np.asarray(x, dtype=float)
        if np.any(x <= 0):
            raise ValueError("LogBoxScaler inputs must be positive")
        return (np.log(x) - self._log_lower) / self._log_width

    def inverse_transform(self, u: np.ndarray) -> np.ndarray:
        """Map unit-cube points back to the (positive) box."""
        u = np.asarray(u, dtype=float)
        return np.exp(self._log_lower + u * self._log_width)


class StandardScaler:
    """Z-score scaler with degenerate-scale protection.

    When all training targets are identical (common in the first BO
    iterations of a heavily-constrained problem where every sample fails
    the same way), the standard deviation collapses; we floor it at a tiny
    positive value so transforms stay finite.
    """

    _MIN_SCALE = 1e-12

    def __init__(self):
        self.mean_ = 0.0
        self.scale_ = 1.0
        self._fitted = False

    def fit(self, y: np.ndarray) -> "StandardScaler":
        """Learn mean/scale from a 1-D target vector."""
        y = np.asarray(y, dtype=float).ravel()
        if y.size == 0:
            raise ValueError("cannot fit StandardScaler on empty data")
        self.mean_ = float(np.mean(y))
        self.scale_ = float(max(np.std(y), self._MIN_SCALE))
        self._fitted = True
        return self

    def transform(self, y: np.ndarray) -> np.ndarray:
        """Z-score ``y`` with the fitted statistics."""
        self._require_fitted()
        return (np.asarray(y, dtype=float) - self.mean_) / self.scale_

    def fit_transform(self, y: np.ndarray) -> np.ndarray:
        """Fit on ``y`` then transform it."""
        return self.fit(y).transform(y)

    def inverse_transform(self, z: np.ndarray) -> np.ndarray:
        """Undo the z-scoring for predictions."""
        self._require_fitted()
        return np.asarray(z, dtype=float) * self.scale_ + self.mean_

    def inverse_transform_variance(self, var: np.ndarray) -> np.ndarray:
        """Undo the z-scoring for predictive *variances* (scale² factor)."""
        self._require_fitted()
        return np.asarray(var, dtype=float) * self.scale_**2

    def _require_fitted(self):
        if not self._fitted:
            raise RuntimeError("StandardScaler used before fit()")
