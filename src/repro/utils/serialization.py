"""Persistence for optimization runs, studies and surrogate models.

Long experiments (Table II at paper scale runs for hours) need restartable
artifacts: runs serialize to JSON (portable, diffable) and NN-GP models to
``.npz`` (exact parameter snapshots).  :func:`result_to_dict` round-trips
the *complete* trace — including scheduler provenance (iteration, batch
index, pending sets) and the asynchronous proposal ledger — so a restored
run can be audited exactly like a live one; these primitives also back
:meth:`repro.bo.study.Study.checkpoint` / ``resume``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.bo.history import OptimizationResult
from repro.bo.problem import Evaluation


def ledger_to_dict(ledger) -> dict | None:
    """JSON-safe form of an asynchronous run's proposal ledger."""
    if ledger is None:
        return None
    return {
        "entries": [
            {
                "proposal_id": entry.proposal_id,
                "u": list(entry.u),
                "pending_at_proposal": list(entry.pending_at_proposal),
                "n_landed_at_submit": entry.n_landed_at_submit,
                "virtual_ready": entry.virtual_ready,
                "committed_at": entry.committed_at,
                "record_index": entry.record_index,
                "strategy": entry.strategy,
                "retracted": entry.retracted,
                "speculative": entry.speculative,
            }
            for entry in ledger.entries
        ]
    }


def ledger_from_dict(data: dict | None):
    """Inverse of :func:`ledger_to_dict`."""
    # repro.utils is imported by the acquisition layer the scheduler sits
    # on, so the ledger classes must load lazily to avoid a cycle
    from repro.bo.scheduler import ProposalEntry, ProposalLedger

    if data is None:
        return None
    ledger = ProposalLedger()
    for item in data.get("entries", ()):
        entry = ProposalEntry(
            proposal_id=int(item["proposal_id"]),
            u=tuple(float(v) for v in item["u"]),
            pending_at_proposal=tuple(
                int(i) for i in item["pending_at_proposal"]
            ),
            n_landed_at_submit=int(item["n_landed_at_submit"]),
            virtual_ready=item.get("virtual_ready"),
            committed_at=item.get("committed_at"),
            record_index=item.get("record_index"),
            strategy=item.get("strategy", "fantasy"),
            retracted=bool(item.get("retracted", False)),
            speculative=bool(item.get("speculative", False)),
        )
        ledger.entries.append(entry)
        if entry.committed_at is not None:
            ledger._n_committed += 1
    return ledger


def result_to_dict(result: OptimizationResult) -> dict:
    """JSON-safe dictionary form of an optimization run.

    Round-trips the full trace: per-record batch/async provenance
    (``iteration``, ``batch_index``, ``pending``, ``proposal_id``,
    ``pending_at_proposal``), the cache counters, and the proposal ledger
    of asynchronous runs (``result.ledger``).  Only scalar metrics
    survive (nested simulator payloads are dropped, as before).
    """
    records = []
    for record in result.records:
        ev = record.evaluation
        metrics = {
            k: v
            for k, v in ev.metrics.items()
            if isinstance(v, (int, float, str, bool))
        }
        records.append(
            {
                "index": record.index,
                "x": record.x.tolist(),
                "phase": record.phase,
                "objective": ev.objective,
                "constraints": ev.constraints.tolist(),
                "metrics": metrics,
                "iteration": record.iteration,
                "batch_index": record.batch_index,
                "pending": list(record.pending),
                "proposal_id": record.proposal_id,
                "pending_at_proposal": list(record.pending_at_proposal),
            }
        )
    return {
        "problem": result.problem_name,
        "algorithm": result.algorithm,
        "records": records,
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "ledger": ledger_to_dict(result.ledger),
    }


def result_from_dict(data: dict) -> OptimizationResult:
    """Inverse of :func:`result_to_dict` (tolerates pre-provenance dicts)."""
    result = OptimizationResult(data["problem"], data["algorithm"])
    for entry in data["records"]:
        evaluation = Evaluation(
            objective=entry["objective"],
            constraints=np.asarray(entry["constraints"], dtype=float),
            metrics=dict(entry.get("metrics", {})),
        )
        result.append(
            np.asarray(entry["x"], dtype=float),
            evaluation,
            phase=entry.get("phase", "search"),
            iteration=entry.get("iteration"),
            batch_index=entry.get("batch_index", 0),
            pending=tuple(entry.get("pending", ())),
            proposal_id=entry.get("proposal_id"),
            pending_at_proposal=tuple(entry.get("pending_at_proposal", ())),
        )
    result.cache_hits = int(data.get("cache_hits", 0))
    result.cache_misses = int(data.get("cache_misses", 0))
    result.ledger = ledger_from_dict(data.get("ledger"))
    return result


def save_result(result: OptimizationResult, path) -> Path:
    """Write a run to a JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(result_to_dict(result), indent=1))
    return path


def load_result(path) -> OptimizationResult:
    """Read a run back from :func:`save_result` output."""
    data = json.loads(Path(path).read_text())
    return result_from_dict(data)


# -- study-checkpoint primitives ----------------------------------------------------


def rng_state_to_dict(rng: np.random.Generator) -> dict:
    """JSON-safe snapshot of a generator's bit-stream position.

    PCG64 (the :func:`numpy.random.default_rng` family) state is plain
    Python integers, which JSON carries at arbitrary precision — the
    restored stream continues bit-exactly.
    """
    return _json_safe_state(rng.bit_generator.state)


def restore_rng_state(rng: np.random.Generator, state: dict) -> np.random.Generator:
    """Restore a snapshot from :func:`rng_state_to_dict` into ``rng``.

    The generator must use the same bit-generator family the snapshot was
    taken from (numpy validates and raises otherwise, naming both).
    """
    rng.bit_generator.state = state
    return rng


def _json_safe_state(value):
    if isinstance(value, dict):
        return {k: _json_safe_state(v) for k, v in value.items()}
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


def config_payload(config) -> dict:
    """JSON-safe form of a typed config (for checkpoint provenance)."""
    from repro.bo.config import config_to_dict

    return config_to_dict(config)


def config_digest(config) -> str:
    """Short stable digest of a typed config.

    SHA-256 over the canonical (sorted-key, compact) JSON form of
    :func:`config_payload`, truncated to 12 hex chars.  Two studies with
    equal digests were built from field-identical configs; the service's
    ``status`` endpoint exposes these so clients can verify a resumed or
    remote study matches their local expectations without shipping whole
    config objects over the wire.
    """
    import hashlib

    blob = json.dumps(config_payload(config), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]


# -- surrogate-bank snapshots (warm fantasy-only resume) ----------------------------


def bank_state_to_dict(bank) -> dict:
    """JSON-safe snapshot of a fitted :class:`~repro.core.batched_gp.SurrogateBank`.

    Captures the learned state only — stacked network weights, GP scales,
    target normalization, and the *real* training set (fantasies are
    deliberately dropped: the streaming proposer rebuilds them from the
    pending set on every proposal).  Floats travel through JSON by
    shortest round-trip repr, so the restored float64 arrays are bitwise
    identical to the live ones.
    """
    gp = bank.gp
    if gp._x_train is None:
        raise ValueError("cannot snapshot an unfitted surrogate bank")
    xb = gp.xb
    host = xb.from_device
    return {
        "n_targets": bank.n_targets,
        "n_members": bank.n_members,
        "network": np.asarray(host(gp.network.get_stacked_params())).tolist(),
        "log_noise": np.asarray(host(gp.log_noise_variance)).tolist(),
        "log_prior": np.asarray(host(gp.log_prior_variance)).tolist(),
        "y_mean": np.asarray(host(gp._y_mean)).tolist(),
        "y_scale": np.asarray(host(gp._y_scale)).tolist(),
        "x_train": np.asarray(gp._x_train).tolist(),
        "z_train": np.asarray(host(gp._z_train)).tolist(),
    }


def restore_bank_state(bank, data: dict):
    """Restore a :func:`bank_state_to_dict` snapshot into a fresh bank.

    The caller provides a bank built with the same architecture (the
    surrogate config's ``bank_factory`` guarantees that); this function
    overwrites its parameters and recomputes the cached posterior, after
    which predictions are bitwise identical to the snapshotted bank's.
    """
    gp = bank.gp
    if (bank.n_targets, bank.n_members) != (
        int(data["n_targets"]),
        int(data["n_members"]),
    ):
        raise ValueError(
            f"bank layout mismatch: snapshot has "
            f"{data['n_targets']} targets x {data['n_members']} members, "
            f"bank has {bank.n_targets} x {bank.n_members}"
        )
    xb = gp.xb
    gp.network.set_stacked_params(
        xb.to_device(np.asarray(data["network"], dtype=float))
    )
    gp.log_noise_variance = xb.to_device(np.asarray(data["log_noise"], dtype=float))
    gp.log_prior_variance = xb.to_device(np.asarray(data["log_prior"], dtype=float))
    gp._y_mean = xb.to_device(np.asarray(data["y_mean"], dtype=float))
    gp._y_scale = xb.to_device(np.asarray(data["y_scale"], dtype=float))
    gp._x_train = np.asarray(data["x_train"], dtype=float)
    gp._z_train = xb.to_device(np.asarray(data["z_train"], dtype=float))
    gp._x_fantasy = []
    gp._z_fantasy = []
    gp.update_posterior()
    bank._pred_cache = None
    return bank


# -- model snapshots ----------------------------------------------------------------


def save_model(model, path) -> Path:
    """Snapshot a :class:`~repro.core.NeuralFeatureGP` to ``.npz``.

    Captures network weights, GP scales, the target scaler and the
    training inputs/targets so the posterior can be rebuilt exactly.
    """
    from repro.core.feature_gp import NeuralFeatureGP

    if not isinstance(model, NeuralFeatureGP):
        raise TypeError(
            f"save_model supports NeuralFeatureGP instances, got "
            f"{type(model).__name__}"
        )
    if model._x_train is None:
        raise ValueError("cannot save an unfitted model")
    path = Path(path)
    np.savez(
        path,
        network=model.network.get_flat_params(),
        log_noise=model.log_noise_variance,
        log_prior=model.log_prior_variance,
        scaler_mean=model._y_scaler.mean_,
        scaler_scale=model._y_scaler.scale_,
        x_train=model._x_train,
        z_train=model._z_train,
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_model_into(model, path):
    """Restore a snapshot into a compatibly-constructed model.

    The caller provides a :class:`NeuralFeatureGP` built with the *same
    architecture* (dims, features, activations); this function restores
    parameters and recomputes the cached posterior.
    """
    data = np.load(Path(path))
    model.network.set_flat_params(data["network"])
    model.log_noise_variance = float(data["log_noise"])
    model.log_prior_variance = float(data["log_prior"])
    model._y_scaler.mean_ = float(data["scaler_mean"])
    model._y_scaler.scale_ = float(data["scaler_scale"])
    model._y_scaler._fitted = True
    model._x_train = data["x_train"]
    model._z_train = data["z_train"]
    model.update_posterior()
    return model
