"""Persistence for optimization runs and surrogate models.

Long experiments (Table II at paper scale runs for hours) need restartable
artifacts: runs serialize to JSON (portable, diffable) and NN-GP models to
``.npz`` (exact parameter snapshots).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.bo.history import OptimizationResult
from repro.bo.problem import Evaluation


def result_to_dict(result: OptimizationResult) -> dict:
    """JSON-safe dictionary form of an optimization run."""
    records = []
    for record in result.records:
        ev = record.evaluation
        metrics = {
            k: v
            for k, v in ev.metrics.items()
            if isinstance(v, (int, float, str, bool))
        }
        records.append(
            {
                "index": record.index,
                "x": record.x.tolist(),
                "phase": record.phase,
                "objective": ev.objective,
                "constraints": ev.constraints.tolist(),
                "metrics": metrics,
            }
        )
    return {
        "problem": result.problem_name,
        "algorithm": result.algorithm,
        "records": records,
    }


def result_from_dict(data: dict) -> OptimizationResult:
    """Inverse of :func:`result_to_dict`."""
    result = OptimizationResult(data["problem"], data["algorithm"])
    for entry in data["records"]:
        evaluation = Evaluation(
            objective=entry["objective"],
            constraints=np.asarray(entry["constraints"], dtype=float),
            metrics=dict(entry.get("metrics", {})),
        )
        result.append(np.asarray(entry["x"], dtype=float), evaluation,
                      phase=entry.get("phase", "search"))
    return result


def save_result(result: OptimizationResult, path) -> Path:
    """Write a run to a JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(result_to_dict(result), indent=1))
    return path


def load_result(path) -> OptimizationResult:
    """Read a run back from :func:`save_result` output."""
    data = json.loads(Path(path).read_text())
    return result_from_dict(data)


def save_model(model, path) -> Path:
    """Snapshot a :class:`~repro.core.NeuralFeatureGP` to ``.npz``.

    Captures network weights, GP scales, the target scaler and the
    training inputs/targets so the posterior can be rebuilt exactly.
    """
    from repro.core.feature_gp import NeuralFeatureGP

    if not isinstance(model, NeuralFeatureGP):
        raise TypeError("save_model supports NeuralFeatureGP instances")
    if model._x_train is None:
        raise ValueError("cannot save an unfitted model")
    path = Path(path)
    np.savez(
        path,
        network=model.network.get_flat_params(),
        log_noise=model.log_noise_variance,
        log_prior=model.log_prior_variance,
        scaler_mean=model._y_scaler.mean_,
        scaler_scale=model._y_scaler.scale_,
        x_train=model._x_train,
        z_train=model._z_train,
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_model_into(model, path):
    """Restore a snapshot into a compatibly-constructed model.

    The caller provides a :class:`NeuralFeatureGP` built with the *same
    architecture* (dims, features, activations); this function restores
    parameters and recomputes the cached posterior.
    """
    data = np.load(Path(path))
    model.network.set_flat_params(data["network"])
    model.log_noise_variance = float(data["log_noise"])
    model.log_prior_variance = float(data["log_prior"])
    model._y_scaler.mean_ = float(data["scaler_mean"])
    model._y_scaler.scale_ = float(data["scaler_scale"])
    model._y_scaler._fitted = True
    model._x_train = data["x_train"]
    model._z_train = data["z_train"]
    model.update_posterior()
    return model
