"""First-order optimizers over flat parameter vectors.

The trainer treats all hyper-parameters (GP noise/prior scales and network
weights, eq. 12) as a single flat vector, so optimizers here are stateful
maps ``(params, grads) -> new params``.
"""

from __future__ import annotations

import numpy as np


class Optimizer:
    """Base interface: stateful first-order update on a flat vector."""

    def step(self, params: np.ndarray, grads: np.ndarray) -> np.ndarray:
        """Return updated parameters given the current gradient."""
        raise NotImplementedError

    def reset(self):
        """Clear internal state (moments, step counters)."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, lr: float = 1e-2, momentum: float = 0.0):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self._velocity: np.ndarray | None = None

    def step(self, params: np.ndarray, grads: np.ndarray) -> np.ndarray:
        params = np.asarray(params, dtype=float)
        grads = np.asarray(grads, dtype=float)
        if self._velocity is None or self._velocity.shape != params.shape:
            self._velocity = np.zeros_like(params)
        self._velocity = self.momentum * self._velocity - self.lr * grads
        return params + self._velocity

    def reset(self):
        self._velocity = None


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias-corrected moment estimates.

    This is the workhorse for maximizing the marginal likelihood (eq. 11):
    the loss surface couples network weights with ``log sigma^2`` terms of very
    different curvature, which per-coordinate step adaptation handles well.
    """

    def __init__(
        self,
        lr: float = 1e-2,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.lr = float(lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: np.ndarray | None = None
        self._v: np.ndarray | None = None
        self._t = 0

    def step(self, params: np.ndarray, grads: np.ndarray) -> np.ndarray:
        params = np.asarray(params, dtype=float)
        grads = np.asarray(grads, dtype=float)
        if self._m is None or self._m.shape != params.shape:
            self._m = np.zeros_like(params)
            self._v = np.zeros_like(params)
            self._t = 0
        self._t += 1
        self._m = self.beta1 * self._m + (1.0 - self.beta1) * grads
        self._v = self.beta2 * self._v + (1.0 - self.beta2) * grads**2
        m_hat = self._m / (1.0 - self.beta1**self._t)
        v_hat = self._v / (1.0 - self.beta2**self._t)
        return params - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def reset(self):
        self._m = None
        self._v = None
        self._t = 0
