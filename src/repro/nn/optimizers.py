"""First-order optimizers over flat parameter vectors.

The trainer treats all hyper-parameters (GP noise/prior scales and network
weights, eq. 12) as a single flat vector, so optimizers here are stateful
maps ``(params, grads) -> new params``.
"""

from __future__ import annotations

import numpy as np


class Optimizer:
    """Base interface: stateful first-order update on a flat vector."""

    def step(self, params: np.ndarray, grads: np.ndarray) -> np.ndarray:
        """Return updated parameters given the current gradient."""
        raise NotImplementedError

    def reset(self):
        """Clear internal state (moments, step counters)."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, lr: float = 1e-2, momentum: float = 0.0):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self._velocity: np.ndarray | None = None

    def step(self, params: np.ndarray, grads: np.ndarray) -> np.ndarray:
        params = np.asarray(params, dtype=float)
        grads = np.asarray(grads, dtype=float)
        if self._velocity is None or self._velocity.shape != params.shape:
            self._velocity = np.zeros_like(params)
        self._velocity = self.momentum * self._velocity - self.lr * grads
        return params + self._velocity

    def reset(self):
        self._velocity = None


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias-corrected moment estimates.

    This is the workhorse for maximizing the marginal likelihood (eq. 11):
    the loss surface couples network weights with ``log sigma^2`` terms of very
    different curvature, which per-coordinate step adaptation handles well.
    """

    def __init__(
        self,
        lr: float = 1e-2,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.lr = float(lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: np.ndarray | None = None
        self._v: np.ndarray | None = None
        self._t = 0

    def step(self, params: np.ndarray, grads: np.ndarray) -> np.ndarray:
        params = np.asarray(params, dtype=float)
        grads = np.asarray(grads, dtype=float)
        if self._m is None or self._m.shape != params.shape:
            self._m = np.zeros_like(params)
            self._v = np.zeros_like(params)
            self._t = 0
        self._t += 1
        self._m = self.beta1 * self._m + (1.0 - self.beta1) * grads
        self._v = self.beta2 * self._v + (1.0 - self.beta2) * grads**2
        m_hat = self._m / (1.0 - self.beta1**self._t)
        v_hat = self._v / (1.0 - self.beta2**self._t)
        return params - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def reset(self):
        self._m = None
        self._v = None
        self._t = 0


class StackedAdam(Optimizer):
    """Adam over an ``(S, P)`` parameter matrix with per-slice state.

    Drives the batched surrogate engine: row ``s`` holds the flat parameter
    vector of stacked network ``s``.  Because Adam is elementwise, each row
    evolves exactly as a scalar-``t`` :class:`Adam` instance dedicated to
    that slice would — *provided* resets and skipped steps are tracked per
    slice, which is what the step counter vector ``t`` and the ``mask``
    argument provide:

    * ``step(params, grads, mask)`` updates only rows where ``mask`` is
      true; masked-out rows keep their parameters and moments untouched
      (the serial trainer's ``continue`` on a non-finite loss),
    * ``reset_slices(mask)`` zeroes the moments and counter of selected
      rows only (the serial trainer's per-member ``optimizer.reset()``).

    :meth:`bind_backend` routes the update through an accelerator array
    namespace (:mod:`repro.backend`); unbound (or bound to numpy) the
    optimizer runs the reference numpy path, whose per-slice evolution is
    bitwise identical to a scalar :class:`Adam` per row.  The step
    counter and masks stay host-side on every backend — they are control
    flow, not tensor math.
    """

    def __init__(
        self,
        lr: float = 1e-2,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.lr = float(lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: np.ndarray | None = None
        self._v: np.ndarray | None = None
        self._t: np.ndarray | None = None
        self._s1: np.ndarray | None = None
        self._s2: np.ndarray | None = None
        self._xb = None

    def bind_backend(self, backend):
        """Route tensor updates through an array namespace.

        ``None`` or a numpy namespace selects the reference numpy path;
        anything else switches :meth:`step`/:meth:`reset_slices` to
        namespace ops so moments stay on the accelerator.
        """
        if backend is None or getattr(backend, "is_numpy", False):
            self._xb = None
        else:
            self._xb = backend

    def step(
        self, params: np.ndarray, grads: np.ndarray, mask: np.ndarray | None = None
    ) -> np.ndarray:
        if self._xb is not None:
            return self._step_backend(params, grads, mask)
        params = np.asarray(params, dtype=float)
        grads = np.asarray(grads, dtype=float)
        if params.ndim != 2:
            raise ValueError(f"StackedAdam expects (S, P) params, got {params.shape}")
        if self._m is None or self._m.shape != params.shape:
            self._m = np.zeros_like(params)
            self._v = np.zeros_like(params)
            self._t = np.zeros(params.shape[0], dtype=int)
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if mask.all():
                mask = None
        if mask is None:
            # fast path (every slice steps): in-place updates through two
            # scratch buffers — every operation matches the serial Adam's
            # expression tree element for element, so per-slice evolution
            # stays bitwise identical while (S, P)-sized temporaries are
            # reused instead of reallocated every step
            if self._s1 is None or self._s1.shape != params.shape:
                self._s1 = np.empty_like(params)
                self._s2 = np.empty_like(params)
            s1, s2 = self._s1, self._s2
            self._t += 1
            np.multiply(grads, 1.0 - self.beta1, out=s1)
            np.multiply(self._m, self.beta1, out=self._m)
            self._m += s1
            np.multiply(grads, grads, out=s2)
            np.multiply(s2, 1.0 - self.beta2, out=s2)
            np.multiply(self._v, self.beta2, out=self._v)
            self._v += s2
            denom1, denom2 = self._bias_denominators(self._t)
            np.divide(self._m, denom1[:, None], out=s1)  # m_hat
            np.divide(self._v, denom2[:, None], out=s2)  # v_hat
            np.multiply(s1, self.lr, out=s1)
            np.sqrt(s2, out=s2)
            s2 += self.eps
            s1 /= s2
            return params - s1
        col = mask[:, None]
        t_new = np.where(mask, self._t + 1, self._t)
        # masked-out rows may carry non-finite gradients; their updates are
        # computed and discarded, so silence the spurious FP warnings
        with np.errstate(invalid="ignore", over="ignore"):
            m_new = np.where(
                col, self.beta1 * self._m + (1.0 - self.beta1) * grads, self._m
            )
            v_new = np.where(
                col, self.beta2 * self._v + (1.0 - self.beta2) * grads**2, self._v
            )
            denom1, denom2 = self._bias_denominators(np.maximum(t_new, 1))
            m_hat = m_new / denom1[:, None]
            v_hat = v_new / denom2[:, None]
            stepped = params - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        self._m, self._v, self._t = m_new, v_new, t_new
        return np.where(col, stepped, params)

    def _step_backend(self, params, grads, mask=None):
        """Accelerator-namespace update; mirrors the numpy expressions.

        Scratch-buffer micro-optimizations are numpy-path-only — on
        accelerators the expression form lets the library fuse/queue the
        kernels itself.
        """
        xb = self._xb
        if params.ndim != 2:
            raise ValueError(
                f"StackedAdam expects (S, P) params, got {tuple(params.shape)}"
            )
        if self._m is None or tuple(self._m.shape) != tuple(params.shape):
            self._m = xb.zeros_like(params)
            self._v = xb.zeros_like(params)
            self._t = np.zeros(params.shape[0], dtype=int)
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if mask.all():
                mask = None
        if mask is None:
            self._t += 1
            self._m = self.beta1 * self._m + (1.0 - self.beta1) * grads
            self._v = self.beta2 * self._v + (1.0 - self.beta2) * grads * grads
            denom1, denom2 = self._bias_denominators(self._t)
            m_hat = self._m / xb.to_device(denom1)[:, None]
            v_hat = self._v / xb.to_device(denom2)[:, None]
            return params - self.lr * m_hat / (xb.sqrt(v_hat) + self.eps)
        col = xb.to_device(mask)[:, None]
        t_new = np.where(mask, self._t + 1, self._t)
        m_new = xb.where(col, self.beta1 * self._m + (1.0 - self.beta1) * grads, self._m)
        v_new = xb.where(
            col, self.beta2 * self._v + (1.0 - self.beta2) * grads * grads, self._v
        )
        denom1, denom2 = self._bias_denominators(np.maximum(t_new, 1))
        m_hat = m_new / xb.to_device(denom1)[:, None]
        v_hat = v_new / xb.to_device(denom2)[:, None]
        stepped = params - self.lr * m_hat / (xb.sqrt(v_hat) + self.eps)
        self._m, self._v, self._t = m_new, v_new, t_new
        return xb.where(col, stepped, params)

    def _bias_denominators(self, t: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-slice ``1 - beta**t`` via Python pow.

        ``np.power`` is not bitwise identical to the scalar ``beta ** t``
        the per-member Adam computes, and the engine guarantees exact
        per-slice equivalence; S is small, so scalar pow per slice is free.
        """
        denom1 = np.array([1.0 - self.beta1 ** int(ti) for ti in t])
        denom2 = np.array([1.0 - self.beta2 ** int(ti) for ti in t])
        return denom1, denom2

    def reset_slices(self, mask: np.ndarray):
        """Zero the moments and step counter of the selected rows."""
        if self._m is None:
            return
        mask = np.asarray(mask, dtype=bool)
        rows = mask if self._xb is None else self._xb.as_index(mask)
        self._m[rows] = 0.0
        self._v[rows] = 0.0
        self._t[mask] = 0

    def reset(self):
        self._m = None
        self._v = None
        self._t = None
        self._s1 = None
        self._s2 = None
