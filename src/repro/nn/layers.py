"""Layer abstraction: forward pass, backward pass, flat parameter access."""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import he_normal, zeros_init


class Layer:
    """Base class for differentiable layers.

    A layer maps a batch ``x`` of shape ``(n, in_dim)`` to ``(n, out_dim)``
    and, given the upstream gradient of a scalar loss w.r.t. its output,
    returns the gradient w.r.t. its input while accumulating gradients
    w.r.t. its own parameters.
    """

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output and cache what backward needs."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Propagate ``dL/d(output)`` to ``dL/d(input)``; store param grads."""
        raise NotImplementedError

    @property
    def params(self) -> list[np.ndarray]:
        """Live references to this layer's parameter arrays."""
        return []

    @property
    def grads(self) -> list[np.ndarray]:
        """Gradients matching :attr:`params`, filled by :meth:`backward`."""
        return []

    def zero_grad(self):
        """Reset accumulated parameter gradients to zero."""
        for g in self.grads:
            g[...] = 0.0


class Linear(Layer):
    """Fully-connected layer ``y = x @ W + b``.

    Parameters
    ----------
    in_dim, out_dim:
        Input/output widths.
    weight_init:
        Callable ``(shape, rng) -> ndarray`` for the weight matrix.
    rng:
        Generator used for the random initialization (ensemble members pass
        independent generators, paper Sec. III-C).
    """

    def __init__(self, in_dim: int, out_dim: int, weight_init=he_normal, rng=None):
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError(f"layer dims must be positive, got {in_dim}x{out_dim}")
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.weight = np.asarray(weight_init((in_dim, out_dim), rng), dtype=float)
        self.bias = zeros_init(out_dim)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.in_dim:
            raise ValueError(
                f"Linear({self.in_dim}->{self.out_dim}) got input shape {x.shape}"
            )
        self._x = x
        return x @ self.weight + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward() called before forward()")
        grad_out = np.asarray(grad_out, dtype=float)
        self.grad_weight += self._x.T @ grad_out
        self.grad_bias += grad_out.sum(axis=0)
        return grad_out @ self.weight.T

    @property
    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    @property
    def grads(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]

    def __repr__(self) -> str:
        return f"Linear({self.in_dim}, {self.out_dim})"
