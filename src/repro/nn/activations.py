"""Element-wise activation layers.

The paper uses ReLU (Sec. III-A); the rest are provided because the
feature-map architecture is configurable and tests exercise them all.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer


class _Activation(Layer):
    """Common caching logic for parameter-free element-wise layers."""

    def __init__(self):
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = np.asarray(x, dtype=float)
        return self._value(self._x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward() called before forward()")
        return np.asarray(grad_out, dtype=float) * self._derivative(self._x)

    def _value(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _derivative(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:
        return type(self).__name__ + "()"


class ReLU(_Activation):
    """Rectified linear unit — the activation in the paper's Fig. 1 network."""

    def _value(self, x):
        return np.maximum(x, 0.0)

    def _derivative(self, x):
        return (x > 0.0).astype(float)


class LeakyReLU(_Activation):
    """Leaky rectifier; ``alpha`` is the negative-side slope."""

    def __init__(self, alpha: float = 0.01):
        super().__init__()
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = float(alpha)

    def _value(self, x):
        return np.where(x > 0.0, x, self.alpha * x)

    def _derivative(self, x):
        return np.where(x > 0.0, 1.0, self.alpha)

    def __repr__(self) -> str:
        return f"LeakyReLU(alpha={self.alpha})"


class Tanh(_Activation):
    """Hyperbolic tangent (DNGO's choice; available for ablations)."""

    def _value(self, x):
        return np.tanh(x)

    def _derivative(self, x):
        return 1.0 - np.tanh(x) ** 2


class Sigmoid(_Activation):
    """Logistic sigmoid."""

    def _value(self, x):
        return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))

    def _derivative(self, x):
        s = self._value(x)
        return s * (1.0 - s)


class Softplus(_Activation):
    """Smooth rectifier ``log(1 + exp(x))``; numerically stabilized."""

    def _value(self, x):
        return np.logaddexp(0.0, x)

    def _derivative(self, x):
        return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


class Identity(_Activation):
    """Pass-through layer (linear output layer marker)."""

    def _value(self, x):
        return x

    def _derivative(self, x):
        return np.ones_like(x)


ACTIVATIONS = {
    "relu": ReLU,
    "leaky_relu": LeakyReLU,
    "tanh": Tanh,
    "sigmoid": Sigmoid,
    "softplus": Softplus,
    "identity": Identity,
}


def make_activation(name: str) -> Layer:
    """Construct an activation layer from its lowercase name."""
    try:
        return ACTIVATIONS[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; choose from {sorted(ACTIVATIONS)}"
        ) from None
