"""Loss functions for plain supervised training of the feature network.

Only used for optional DNGO-style mean-squared-error pre-training
(``FeatureGPTrainer(pretrain_epochs=...)``); the paper's training objective
is the GP marginal likelihood implemented in ``repro.core.feature_gp``.
"""

from __future__ import annotations

import numpy as np


def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error and its gradient w.r.t. ``pred``.

    Returns
    -------
    (loss, grad):
        ``loss`` is the scalar mean of squared residuals over all elements;
        ``grad`` has the shape of ``pred``.
    """
    pred = np.asarray(pred, dtype=float)
    target = np.asarray(target, dtype=float)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: pred {pred.shape} vs target {target.shape}")
    residual = pred - target
    loss = float(np.mean(residual**2))
    grad = 2.0 * residual / residual.size
    return loss, grad
