"""Stacked networks: S independent MLPs trained as one tensor program.

Performance architecture — the stack axis
-----------------------------------------

The paper's surrogate trains K ensemble members for each of T modelled
quantities (objective + constraints), i.e. S = K * T structurally identical
networks per BO iteration.  Looping over them in Python wastes almost all
of the wall-clock on interpreter overhead and tiny GEMMs.  Here every
parameter and activation carries a *leading stack axis* ``S``:

* weights have shape ``(S, in_dim, out_dim)``, biases ``(S, out_dim)``,
* activations have shape ``(S, N, width)``,

so one stacked ``matmul`` call advances all S networks at once (the
stacked matmul dispatches to one GEMM per slice without re-entering
Python).  A shared 2-D input ``(N, in_dim)`` broadcasts across the stack
on the first layer, exactly as if each network had been fed the same
batch.

Array backends
--------------

All stacked tensors live in a pluggable array namespace
(:mod:`repro.backend`): ``backend=None`` (the default) is plain numpy,
while ``"torch"``/``"cupy"`` route the same program through accelerator
GEMMs.  Weight initialization always draws from the host numpy
generators and transfers (the cross-backend determinism policy), so
every backend starts from the identical weights.

Per-slice numerical equivalence
-------------------------------

On the numpy backend each stacked operation applies, slice by slice, the
*same* BLAS kernel the per-member path uses, so slice ``s`` of a
:class:`BatchedSequential` built with ``rngs[s]`` reproduces
``make_mlp(..., rng=rngs[s])`` forward and backward bit-for-bit.  The
equivalence tests in ``tests/nn/test_batched.py`` and
``tests/core/test_batched_gp.py`` pin this contract.  Accelerator
backends reorder GEMM reductions and are gated at tolerance instead
(``tests/backend/``).
"""

from __future__ import annotations

import copy

import numpy as np

from repro.backend import resolve_namespace
from repro.nn.activations import make_activation
from repro.nn.initializers import he_normal, xavier_uniform
from repro.nn.layers import Layer
from repro.utils.rng import ensure_rng


class BatchedLinear(Layer):
    """S independent fully-connected layers evaluated by one stacked matmul.

    Parameters
    ----------
    in_dim, out_dim:
        Per-slice input/output widths.
    rngs:
        One generator per slice; slice ``s``'s weight matrix is drawn with
        ``weight_init((in_dim, out_dim), rngs[s])`` — the identical draw a
        standalone :class:`~repro.nn.layers.Linear` would make, so batched
        and per-member networks can share initial weights exactly.
    weight_init:
        Callable ``(shape, rng) -> ndarray`` used per slice (always
        evaluated on the host: the backend determinism policy).
    backend:
        Array namespace (or name) the parameters live in; ``None`` is the
        numpy default.
    """

    def __init__(self, in_dim: int, out_dim: int, rngs, weight_init=he_normal, backend=None):
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError(f"layer dims must be positive, got {in_dim}x{out_dim}")
        rngs = list(rngs)
        if not rngs:
            raise ValueError("BatchedLinear needs at least one slice rng")
        self.xb = resolve_namespace(backend)
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.n_stack = len(rngs)
        self.weight = self.xb.to_device(
            np.stack(
                [
                    np.asarray(weight_init((in_dim, out_dim), rng), dtype=float)
                    for rng in rngs
                ]
            )
        )
        self.bias = self.xb.zeros((self.n_stack, out_dim))
        self.grad_weight = self.xb.zeros_like(self.weight)
        self.grad_bias = self.xb.zeros_like(self.bias)
        self._x = None

    def forward(self, x):
        x = self.xb.asarray(x, dtype=float)
        if x.ndim == 2:
            # shared input: broadcast one (N, in_dim) batch across the stack
            if x.shape[1] != self.in_dim:
                raise ValueError(
                    f"BatchedLinear({self.in_dim}->{self.out_dim}) got shape {tuple(x.shape)}"
                )
        elif x.ndim == 3:
            if x.shape[0] != self.n_stack or x.shape[2] != self.in_dim:
                raise ValueError(
                    f"BatchedLinear(S={self.n_stack}, {self.in_dim}->{self.out_dim}) "
                    f"got shape {tuple(x.shape)}"
                )
        else:
            raise ValueError(f"input must be 2-D or 3-D, got shape {tuple(x.shape)}")
        self._x = x
        return x @ self.weight + self.bias[:, None, :]

    def backward(self, grad_out):
        if self._x is None:
            raise RuntimeError("backward() called before forward()")
        grad_out = self.xb.asarray(grad_out, dtype=float)
        if self._x.ndim == 2:
            self.grad_weight += self._x.T @ grad_out
        else:
            self.grad_weight += self.xb.swapaxes(self._x, -1, -2) @ grad_out
        self.grad_bias += self.xb.sum(grad_out, axis=1)
        return grad_out @ self.xb.swapaxes(self.weight, -1, -2)

    @property
    def params(self) -> list:
        return [self.weight, self.bias]

    @property
    def grads(self) -> list:
        return [self.grad_weight, self.grad_bias]

    def gather_slices(self, idx) -> "BatchedLinear":
        """A new layer holding copies of the selected slices' parameters."""
        idx = np.asarray(idx, dtype=int)
        sub = object.__new__(BatchedLinear)
        sub.xb = self.xb
        sub.in_dim = self.in_dim
        sub.out_dim = self.out_dim
        sub.n_stack = int(idx.size)
        idx_b = self.xb.as_index(idx)
        sub.weight = self.xb.copy(self.weight[idx_b])
        sub.bias = self.xb.copy(self.bias[idx_b])
        sub.grad_weight = self.xb.zeros_like(sub.weight)
        sub.grad_bias = self.xb.zeros_like(sub.bias)
        sub._x = None
        return sub

    def __repr__(self) -> str:
        return f"BatchedLinear(S={self.n_stack}, {self.in_dim}, {self.out_dim})"


class _BackendActivation(Layer):
    """Element-wise activation evaluated through an array namespace.

    The numpy engine keeps using the plain layers in
    :mod:`repro.nn.activations` (untouched, bitwise guarantee); this class
    mirrors their exact formulas — including the +-60 sigmoid clamp — for
    accelerator backends, where ``np.*`` calls would force host round
    trips.
    """

    _NAMES = ("relu", "leaky_relu", "tanh", "sigmoid", "softplus", "identity")

    def __init__(self, name: str, backend, alpha: float = 0.01):
        name = str(name).lower()
        if name not in self._NAMES:
            raise ValueError(
                f"unknown activation {name!r}; choose from {sorted(self._NAMES)}"
            )
        self.name = name
        self.alpha = float(alpha)
        self.xb = resolve_namespace(backend)
        self._x = None

    def forward(self, x):
        self._x = self.xb.asarray(x, dtype=float)
        return self._value(self._x)

    def backward(self, grad_out):
        if self._x is None:
            raise RuntimeError("backward() called before forward()")
        return self.xb.asarray(grad_out, dtype=float) * self._derivative(self._x)

    def _sigmoid(self, x):
        xb = self.xb
        return 1.0 / (1.0 + xb.exp(-xb.clip(x, -60.0, 60.0)))

    def _value(self, x):
        xb = self.xb
        if self.name == "relu":
            return xb.maximum(x, 0.0)
        if self.name == "leaky_relu":
            return xb.where(x > 0.0, x, self.alpha * x)
        if self.name == "tanh":
            return xb.tanh(x)
        if self.name == "sigmoid":
            return self._sigmoid(x)
        if self.name == "softplus":
            return xb.logaddexp(0.0, x)
        return x

    def _derivative(self, x):
        xb = self.xb
        if self.name == "relu":
            return xb.where(x > 0.0, 1.0, 0.0)
        if self.name == "leaky_relu":
            return xb.where(x > 0.0, 1.0, self.alpha)
        if self.name == "tanh":
            return 1.0 - xb.tanh(x) ** 2
        if self.name == "sigmoid":
            s = self._sigmoid(x)
            return s * (1.0 - s)
        if self.name == "softplus":
            return self._sigmoid(x)
        return xb.zeros_like(x) + 1.0

    def __repr__(self) -> str:
        return f"_BackendActivation({self.name!r}, backend={self.xb.name})"


class BatchedSequential(Layer):
    """Stack-axis counterpart of :class:`~repro.nn.network.Sequential`.

    Besides the usual forward/backward chaining, it exposes the parameters
    as a ``(S, P)`` matrix whose row ``s`` follows the *identical* flat
    layout a per-member ``Sequential.get_flat_params()`` would produce —
    the contract the stacked trainer relies on to mirror the serial one.
    """

    def __init__(self, layers: list[Layer], n_stack: int, backend=None):
        if not layers:
            raise ValueError("BatchedSequential requires at least one layer")
        if n_stack < 1:
            raise ValueError(f"n_stack must be >= 1, got {n_stack}")
        self.layers = list(layers)
        self.n_stack = int(n_stack)
        self.xb = resolve_namespace(backend)

    def forward(self, x):
        out = self.xb.asarray(x, dtype=float)
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_out):
        grad = self.xb.asarray(grad_out, dtype=float)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    @property
    def params(self) -> list:
        return [p for layer in self.layers for p in layer.params]

    @property
    def grads(self) -> list:
        return [g for layer in self.layers for g in layer.grads]

    # -- stacked flat-vector access -------------------------------------------

    @property
    def num_params_per_slice(self) -> int:
        """Scalar parameters per slice (matches the per-member flat size)."""
        return sum(_size(p) // self.n_stack for p in self.params)

    def get_stacked_params(self):
        """Parameters as ``(S, P)``; row ``s`` is slice s's flat vector."""
        return self.xb.concatenate(
            [p.reshape(self.n_stack, -1) for p in self.params], axis=1
        )

    def set_stacked_params(self, flat):
        """Write an ``(S, P)`` matrix back into the live parameter arrays."""
        flat = self.xb.asarray(flat, dtype=float)
        expected = (self.n_stack, self.num_params_per_slice)
        if tuple(flat.shape) != expected:
            raise ValueError(f"expected shape {expected}, got {tuple(flat.shape)}")
        offset = 0
        for p in self.params:
            width = _size(p) // self.n_stack
            p[...] = flat[:, offset : offset + width].reshape(p.shape)
            offset += width

    def get_stacked_grads(self):
        """Parameter gradients as ``(S, P)``, matching the params layout."""
        return self.xb.concatenate(
            [g.reshape(self.n_stack, -1) for g in self.grads], axis=1
        )

    def gather_slices(self, idx) -> "BatchedSequential":
        """A new network over copies of the selected slices.

        Parameterized layers gather their slice rows; stateless activation
        layers are re-instantiated so forward/backward caches never alias
        the parent network.  Slice ``i`` of the gathered network computes
        bitwise what slice ``idx[i]`` of this network computes — the
        contract active-slice compaction in the stacked trainer relies on.
        """
        idx = np.asarray(idx, dtype=int)
        if idx.ndim != 1 or idx.size == 0:
            raise ValueError("idx must be a non-empty 1-D index array")
        if np.any(idx < 0) or np.any(idx >= self.n_stack):
            raise IndexError(f"slice indices out of range [0, {self.n_stack})")
        layers: list[Layer] = []
        for layer in self.layers:
            if hasattr(layer, "gather_slices"):
                layers.append(layer.gather_slices(idx))
            else:
                # stateless layers (activations) keep their configuration
                # via a shallow copy; only the forward cache is detached
                clone = copy.copy(layer)
                if hasattr(clone, "_x"):
                    clone._x = None
                layers.append(clone)
        return BatchedSequential(layers, n_stack=int(idx.size), backend=self.xb)

    def __repr__(self) -> str:
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"BatchedSequential(S={self.n_stack}, [{inner}])"


def _size(p) -> int:
    """Element count of a parameter array (``.size`` is a method on torch)."""
    size = p.size
    return int(size() if callable(size) else size)


def make_batched_mlp(
    input_dim: int,
    hidden_dims: tuple[int, ...] | list[int],
    output_dim: int,
    rngs,
    activation: str = "relu",
    output_activation: str = "identity",
    backend=None,
) -> BatchedSequential:
    """Build S copies of the paper's feature network as one stacked MLP.

    ``rngs`` is a sequence of S seeds/generators, one per slice.  Slice
    ``s`` consumes ``rngs[s]`` in the same layer order as
    :func:`~repro.nn.network.make_mlp`, so it starts from exactly the
    weights ``make_mlp(..., rng=rngs[s])`` would produce — on every
    backend (inits are drawn host-side and transferred).
    """
    xb = resolve_namespace(backend)
    rngs = [ensure_rng(rng) for rng in rngs]
    if not rngs:
        raise ValueError("make_batched_mlp needs at least one slice rng")
    if input_dim <= 0 or output_dim <= 0:
        raise ValueError("input_dim and output_dim must be positive")
    dims = [int(input_dim), *[int(h) for h in hidden_dims], int(output_dim)]
    if any(d <= 0 for d in dims):
        raise ValueError(f"all layer widths must be positive, got {dims}")

    init = he_normal if activation in ("relu", "leaky_relu") else xavier_uniform
    layers: list[Layer] = []
    for i in range(len(dims) - 1):
        layers.append(
            BatchedLinear(dims[i], dims[i + 1], rngs, weight_init=init, backend=xb)
        )
        is_last = i == len(dims) - 2
        name = output_activation if is_last else activation
        if name != "identity":
            if xb.is_numpy:
                layers.append(make_activation(name))
            else:
                layers.append(_BackendActivation(name, xb))
    return BatchedSequential(layers, n_stack=len(rngs), backend=xb)
