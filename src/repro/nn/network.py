"""Sequential network container with flat parameter-vector access.

The GP trainer (``repro.core.trainer``) optimizes the concatenation of
``[log sigma_n^2, log sigma_p^2, network weights]`` with a single Adam
instance, so the container exposes its parameters as one flat vector.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import make_activation
from repro.nn.initializers import he_normal, xavier_uniform
from repro.nn.layers import Layer, Linear
from repro.utils.rng import ensure_rng


class Sequential(Layer):
    """A stack of layers applied in order.

    Supports the full :class:`Layer` protocol, so sequentials nest.
    """

    def __init__(self, layers: list[Layer]):
        if not layers:
            raise ValueError("Sequential requires at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.asarray(x, dtype=float)
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = np.asarray(grad_out, dtype=float)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    @property
    def params(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.params]

    @property
    def grads(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.grads]

    # -- flat-vector access --------------------------------------------------

    @property
    def num_params(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.params)

    def get_flat_params(self) -> np.ndarray:
        """Concatenate all parameters into one 1-D vector."""
        if not self.params:
            return np.empty(0)
        return np.concatenate([p.ravel() for p in self.params])

    def set_flat_params(self, flat: np.ndarray):
        """Write a flat vector back into the live parameter arrays."""
        flat = np.asarray(flat, dtype=float).ravel()
        if flat.size != self.num_params:
            raise ValueError(
                f"expected {self.num_params} parameters, got {flat.size}"
            )
        offset = 0
        for p in self.params:
            p[...] = flat[offset : offset + p.size].reshape(p.shape)
            offset += p.size

    def get_flat_grads(self) -> np.ndarray:
        """Concatenate all parameter gradients into one 1-D vector."""
        if not self.grads:
            return np.empty(0)
        return np.concatenate([g.ravel() for g in self.grads])

    def __repr__(self) -> str:
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential([{inner}])"


def make_mlp(
    input_dim: int,
    hidden_dims: tuple[int, ...] | list[int],
    output_dim: int,
    activation: str = "relu",
    output_activation: str = "identity",
    rng=None,
) -> Sequential:
    """Build the paper's fully-connected feature network (Fig. 1).

    The default configuration — two hidden layers plus input and output
    layers, ReLU activations — matches Sec. III-A: "The neural network
    consists of 4 fully-connected layers including a input layer, 2 hidden
    layers and a output layer. ReLU function is taken as activation
    function."

    Parameters
    ----------
    input_dim:
        Design-space dimension ``d``.
    hidden_dims:
        Widths of the hidden layers.
    output_dim:
        Feature dimension ``M`` of the map ``phi(x)``.
    activation:
        Hidden-layer activation name (default ``"relu"``).
    output_activation:
        Activation after the last linear layer.  ``"identity"`` keeps the
        feature space unbounded; ``"tanh"`` gives DNGO-style basis functions.
    rng:
        Seed or generator for weight initialization.
    """
    rng = ensure_rng(rng)
    if input_dim <= 0 or output_dim <= 0:
        raise ValueError("input_dim and output_dim must be positive")
    dims = [int(input_dim), *[int(h) for h in hidden_dims], int(output_dim)]
    if any(d <= 0 for d in dims):
        raise ValueError(f"all layer widths must be positive, got {dims}")

    init = he_normal if activation in ("relu", "leaky_relu") else xavier_uniform
    layers: list[Layer] = []
    for i in range(len(dims) - 1):
        layers.append(Linear(dims[i], dims[i + 1], weight_init=init, rng=rng))
        is_last = i == len(dims) - 2
        name = output_activation if is_last else activation
        if name != "identity":
            layers.append(make_activation(name))
    return Sequential(layers)
