"""Weight initializers.

The paper's ensemble (Sec. III-C) relies on *random* initialization to
decorrelate members, so every initializer takes an explicit generator.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng


def he_normal(shape: tuple[int, int], rng=None) -> np.ndarray:
    """He-normal initialization, the standard choice for ReLU stacks.

    Variance ``2 / fan_in`` keeps activation magnitudes stable through the
    rectifier, which matters here because feature magnitudes enter the GP
    kernel directly (eq. 9).
    """
    rng = ensure_rng(rng)
    fan_in = shape[0]
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: tuple[int, int], rng=None) -> np.ndarray:
    """Glorot/Xavier uniform initialization for tanh/sigmoid layers."""
    rng = ensure_rng(rng)
    fan_in, fan_out = shape[0], shape[1]
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape)


def zeros_init(shape, rng=None) -> np.ndarray:
    """All-zero initialization (used for biases)."""
    return np.zeros(shape, dtype=float)
