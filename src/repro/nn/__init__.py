"""A small, self-contained neural-network library built on numpy.

The paper's surrogate (Sec. III-A, Fig. 1) needs a 4-layer fully-connected
network whose weights are trained by back-propagating the gradient of the
GP marginal likelihood (eq. 12).  No deep-learning framework is assumed:
this package provides exactly the pieces required — dense layers,
activations, a sequential container with an explicit backward pass, weight
initializers and first-order optimizers — with flat parameter-vector
access so the GP hyper-parameters (sigma_n, sigma_p) and network weights can
be optimized jointly by one Adam instance.
"""

from repro.nn.activations import Identity, LeakyReLU, ReLU, Sigmoid, Softplus, Tanh
from repro.nn.batched import BatchedLinear, BatchedSequential, make_batched_mlp
from repro.nn.initializers import he_normal, xavier_uniform, zeros_init
from repro.nn.layers import Layer, Linear
from repro.nn.losses import mse_loss
from repro.nn.network import Sequential, make_mlp
from repro.nn.optimizers import SGD, Adam, Optimizer, StackedAdam

__all__ = [
    "Adam",
    "BatchedLinear",
    "BatchedSequential",
    "Identity",
    "Layer",
    "LeakyReLU",
    "Linear",
    "Optimizer",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "Softplus",
    "StackedAdam",
    "Tanh",
    "he_normal",
    "make_batched_mlp",
    "make_mlp",
    "mse_loss",
    "xavier_uniform",
    "zeros_init",
]
