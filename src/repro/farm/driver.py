"""Farm-backed study drivers: refill, speculation, elastic control.

:class:`FarmStudyDriver` generalizes
:meth:`~repro.bo.scheduler.AsyncEvaluationScheduler.run_study` to many
concurrent studies sharing one :class:`~repro.farm.farm.EvaluationFarm`,
plus three adaptive behaviours the fixed refill loop cannot express:

* **elastic sizing** — a study's in-flight target tracks
  ``ceil(eval_ewma / propose_cost_s)`` (how many evaluations fit in one
  proposal cycle), backed off while the shared pool is oversubscribed
  and clamped to the configured band;
* **speculative evaluation** — spare capacity runs runner-up proposals
  (``Study.ask(1, speculative=True)``; the pending-point strategy
  already spreads them away from the in-flight set).  A speculative
  flight that completes commits like any landing; one overtaken by
  demand is *promoted* into the regular target (a bookkeeping flip — no
  new proposal); one unpromoted after ``max_age_landings`` landings is
  *abandoned* via :meth:`~repro.bo.study.Study.retract`;
* **adaptive q** — the target shrinks toward ``q_min`` as the objective
  posterior sharpens (proposal-point posterior-std EWMA relative to the
  first post-initial proposal).

Determinism contract: under a :class:`~repro.bo.scheduler.FakeClock`
every decision input is a count, a virtual duration, or a seeded
surrogate read, so the trace is a pure function of ``(seed, completion
order)`` — and with the default fixed/no-speculation config the
single-study trace is pinned *bitwise* against
:class:`~repro.bo.scheduler.AsyncEvaluationScheduler`
(``tests/farm/test_farm_driver.py``).
"""

from __future__ import annotations

import math
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass

from repro.bo.config import FarmConfig, SpeculationConfig, check_count
from repro.farm.errors import EvaluationTimeout, FarmSaturated
from repro.farm.farm import EvaluationFarm, FarmTask, FarmTenant


@dataclass
class FarmJob:
    """One study's seat at the farm: what to run and under which policy.

    ``target`` is the baseline in-flight count (``FarmConfig.mode ==
    "fixed"`` keeps it; elastic mode uses it as the starting point).
    ``config`` / ``speculation`` default to a fixed, non-speculative
    policy; ``on_commit(trial, evaluation, result)`` fires after each
    landing is absorbed.
    """

    study: object
    tenant: FarmTenant
    target: int | None = None
    config: FarmConfig | None = None
    speculation: SpeculationConfig | None = None
    on_commit: object = None


class _Flight:
    """One in-flight trial of one study (driver-side bookkeeping).

    ``speculative`` is the *live* role — promotion flips it to False
    while the trial/ledger provenance keeps recording how the proposal
    was asked.  ``born_landing`` timestamps speculation age in landings.
    """

    __slots__ = ("trial", "task", "seq", "virtual_ready", "speculative", "born_landing")

    def __init__(self, trial, task, seq, virtual_ready, speculative, born_landing):
        self.trial = trial
        self.task = task
        self.seq = seq
        self.virtual_ready = virtual_ready
        self.speculative = speculative
        self.born_landing = born_landing


class _JobState:
    """Mutable per-study driver state (clock, targets, EWMAs, flights)."""

    def __init__(self, job: FarmJob, index: int):
        self.study = job.study
        self.tenant = job.tenant
        self.cfg = job.config if job.config is not None else FarmConfig()
        self.spec = job.speculation
        self.on_commit = job.on_commit
        self.index = index
        base = job.target
        if base is None:
            base = self.cfg.min_in_flight
        self.base_target = check_count("target", base)
        self.target = self.base_target
        self.in_flight: list[_Flight] = []
        self.seq = 0
        self.now = 0.0
        self.landings = 0
        self.eval_ewma: float | None = None
        self.std0: float | None = None
        self.std_ewma: float | None = None
        self.n_speculated = 0
        self.n_promoted = 0
        self.n_abandoned = 0
        self.n_timeouts = 0

    def regular(self) -> list[_Flight]:
        return [f for f in self.in_flight if not f.speculative]

    def speculative(self) -> list[_Flight]:
        return [f for f in self.in_flight if f.speculative]


class FarmStudyDriver:
    """Drive one or many ask/tell studies through a shared farm."""

    def __init__(self, farm: EvaluationFarm, clock=None):
        self.farm = farm
        self.clock = clock

    # -- public entry points ------------------------------------------------------

    def run(
        self,
        study,
        tenant,
        *,
        target: int | None = None,
        config: FarmConfig | None = None,
        speculation: SpeculationConfig | None = None,
        on_commit=None,
    ):
        """Drive a single study to its budget; returns its result."""
        job = FarmJob(
            study=study,
            tenant=tenant,
            target=target,
            config=config,
            speculation=speculation,
            on_commit=on_commit,
        )
        return self.run_studies([job])[0]

    def run_studies(self, jobs):
        """Drive several studies concurrently on the shared farm.

        Studies interleave at landing granularity: each completed
        evaluation is told to its study immediately, that study refills
        (promotions first, then fresh asks, then speculation), and the
        globally next completion is committed — under a fake clock the
        earliest ``(virtual_ready, job, seq)`` across all studies, under
        wall clock the first real completion.  Returns the studies'
        results in job order.
        """
        states = [_JobState(job, i) for i, job in enumerate(jobs)]
        try:
            for st in states:
                initial = st.study.start_initial()
                if initial:
                    self._run_initial(st, initial)
                # recover the virtual clock from the committed ledger so a
                # resumed fake-clock run continues on the original timeline
                for entry in st.study.ledger.entries:
                    if (
                        entry.committed_at is not None
                        and entry.virtual_ready is not None
                    ):
                        st.now = max(st.now, entry.virtual_ready)
                # re-submit a resumed study's pending search trials in
                # their original submission order / recorded virtual times
                for trial in st.study.pending_trials():
                    ready = st.study.ledger.entry(trial.proposal_id).virtual_ready
                    task = self.farm.submit(st.tenant, trial.u)
                    st.in_flight.append(
                        _Flight(
                            trial, task, st.seq, ready,
                            trial.speculative, st.landings,
                        )
                    )
                    st.seq += 1
            while True:
                for st in states:
                    self._refill(st, states)
                if not any(st.in_flight for st in states):
                    break
                st, flight = self._next_completed(states)
                st.in_flight.remove(flight)
                try:
                    evaluation = self.farm.collect(
                        flight.task, timeout=st.cfg.eval_timeout_s
                    )
                except EvaluationTimeout:
                    # the timed-out trial never lands: retract it so its
                    # budget slot frees and the refill proposes afresh
                    st.n_timeouts += 1
                    st.study.retract(flight.trial)
                    continue
                if flight.virtual_ready is not None:
                    st.now = max(st.now, flight.virtual_ready)
                st.study.tell(flight.trial, evaluation)
                st.landings += 1
                self._observe(st, flight)
                self._update_target(st, states)
                self._age_speculation(st)
                if st.on_commit is not None:
                    st.on_commit(flight.trial, evaluation, st.study.result)
        except BaseException:
            # a poisoned evaluation (or interrupt) must not orphan queued
            # work: cancel everything still in flight before propagating
            for st in states:
                for flight in st.in_flight:
                    self.farm.cancel(flight.task)
            raise
        return [st.study.result for st in states]

    # -- phases -------------------------------------------------------------------

    def _run_initial(self, st: _JobState, trials) -> None:
        """Evaluate initial-design trials concurrently, tell in design order.

        Mirrors :meth:`~repro.bo.scheduler.AsyncEvaluationScheduler.
        run_initial_trials`: the initial design is generated jointly, so
        its commit order is fixed to the design order, keeping the
        post-initial surrogate state independent of worker timing.
        """
        tasks: list[FarmTask] = [
            self.farm.submit(st.tenant, t.u) for t in trials
        ]
        try:
            for trial, task in zip(trials, tasks):
                evaluation = self.farm.collect(task)
                st.study.tell(trial, evaluation)
        except BaseException:
            for task in tasks:
                self.farm.cancel(task)
            raise

    def _submit(self, st: _JobState, trial, speculative: bool) -> bool:
        """Annotate timing, hand one asked trial to the farm, track it."""
        ready = (
            None if self.clock is None else st.now + self.clock.duration(trial.u)
        )
        # the driver owns timing: annotate the study's ledger entry so
        # checkpoints carry the virtual clock (same contract as the
        # async scheduler)
        st.study.ledger.entry(trial.proposal_id).virtual_ready = ready
        try:
            task = self.farm.submit(st.tenant, trial.u)
        except FarmSaturated:
            # backpressure: undo the ask so budget accounting stays exact
            st.study.retract(trial)
            return False
        st.in_flight.append(
            _Flight(trial, task, st.seq, ready, speculative, st.landings)
        )
        st.seq += 1
        return True

    def _refill(self, st: _JobState, states) -> None:
        """Fill one study's in-flight set: promote, ask, then speculate."""
        study = st.study
        # promotion: demand first claims in-flight speculation — the
        # proposal is already paid for and already conditioned on the
        # pending set, so flipping its role beats asking afresh
        for flight in st.in_flight:
            if len(st.regular()) >= st.target:
                break
            if flight.speculative:
                flight.speculative = False
                st.n_promoted += 1
        while len(st.regular()) < st.target and study.remaining_capacity > 0:
            trial = study.ask(1)[0]
            self._track_std(st, trial)
            if not self._submit(st, trial, speculative=False):
                break
        if st.spec is None:
            return
        while (
            len(st.speculative()) < st.spec.max_speculative
            and study.remaining_capacity > 0
        ):
            trial = study.ask(1, speculative=True)[0]
            if not self._submit(st, trial, speculative=True):
                break
            st.n_speculated += 1

    def _next_completed(self, states) -> tuple[_JobState, _Flight]:
        """The globally next landing across all studies.

        Fake-clock mode: the smallest ``(virtual_ready, job, seq)`` —
        machine-independent.  Wall-clock mode: wait for the first real
        completion among dispatched futures (job/submission order breaks
        ties when several land together).
        """
        if self.clock is not None:
            return min(
                (
                    (st, flight)
                    for st in states
                    for flight in st.in_flight
                ),
                key=lambda pair: (
                    pair[1].virtual_ready,
                    pair[0].index,
                    pair[1].seq,
                ),
            )
        while True:
            dispatched = {
                flight.task.future: (st, flight)
                for st in states
                for flight in st.in_flight
                if flight.task.future is not None
            }
            if dispatched:
                done, _ = wait(set(dispatched), return_when=FIRST_COMPLETED)
                ready = [dispatched[future] for future in done]
                return min(
                    ready, key=lambda pair: (pair[0].index, pair[1].seq)
                )
            # everything in flight is still queued at the farm (capacity
            # below total demand): wait for the earliest dispatch
            queued = [
                flight.task
                for st in states
                for flight in st.in_flight
                if flight.task.future is None
            ]
            queued[0]._dispatched.wait()

    # -- adaptive control ---------------------------------------------------------

    def _track_std(self, st: _JobState, trial) -> None:
        """Record the proposal-point posterior std (adaptive-q signal)."""
        if not st.cfg.adaptive_q:
            return
        std = st.study.posterior_std(trial.u)
        if std is None:
            return
        if st.std0 is None:
            st.std0 = max(std, 1e-12)
        a = st.cfg.ewma_alpha
        st.std_ewma = (
            std if st.std_ewma is None else a * std + (1.0 - a) * st.std_ewma
        )

    def _observe(self, st: _JobState, flight: _Flight) -> None:
        """Fold one landing's evaluation time into the driver EWMA.

        Under a fake clock the duration is the virtual one — a pure
        function of the design — so elastic decisions replay exactly;
        under wall clock the farm's measured task duration is used.
        """
        if self.clock is not None:
            duration = float(self.clock.duration(flight.trial.u))
        elif flight.task.duration is not None:
            duration = float(flight.task.duration)
        else:
            return
        a = st.cfg.ewma_alpha
        st.eval_ewma = (
            duration
            if st.eval_ewma is None
            else a * duration + (1.0 - a) * st.eval_ewma
        )

    def _update_target(self, st: _JobState, states) -> None:
        """Re-derive the in-flight target after a landing."""
        cfg = st.cfg
        if cfg.mode == "fixed" and not cfg.adaptive_q:
            return
        target = st.base_target
        if cfg.mode == "elastic" and st.eval_ewma is not None:
            # evaluations that fit in one proposal cycle, backed off by
            # the pool's oversubscription (deterministic queue-depth
            # proxy: total in-flight beyond farm capacity)
            target = math.ceil(st.eval_ewma / cfg.propose_cost_s)
            total = sum(len(s.in_flight) for s in states)
            target -= max(0, total - self.farm.capacity)
        if cfg.adaptive_q and st.std0 is not None and st.std_ewma is not None:
            sharpness = min(1.0, st.std_ewma / st.std0)
            target = math.ceil(target * sharpness)
        floor = min(cfg.min_in_flight, cfg.q_min) if cfg.adaptive_q else cfg.min_in_flight
        ceiling = (
            cfg.max_in_flight
            if cfg.max_in_flight is not None
            else max(st.base_target, self.farm.capacity)
        )
        st.target = max(floor, min(int(target), ceiling))

    def _age_speculation(self, st: _JobState) -> None:
        """Abandon speculative flights that outlived their usefulness."""
        if st.spec is None:
            return
        for flight in list(st.in_flight):
            if not flight.speculative:
                continue
            if st.landings - flight.born_landing >= st.spec.max_age_landings:
                st.study.retract(flight.trial)
                self.farm.cancel(flight.task)
                st.in_flight.remove(flight)
                st.n_abandoned += 1


__all__ = ["FarmJob", "FarmStudyDriver"]
