"""repro.farm: elastic multi-tenant evaluation farm with speculation.

The farm decouples *tenants* (studies wanting evaluations) from a
shared worker pool:

* :class:`EvaluationFarm` — the pool itself: weighted fair-share
  dispatch across registered tenants, bounded per-tenant queues with
  backpressure, per-task cancel/timeout, live :meth:`resize`;
* :class:`FarmStudyDriver` — drives one or many ask/tell studies
  through a farm, adding elastic in-flight sizing, speculative
  runner-up evaluation with promote/abandon, and adaptive batch
  shrinking (see :class:`~repro.bo.config.FarmConfig` /
  :class:`~repro.bo.config.SpeculationConfig`);
* the :class:`FarmError` taxonomy with wire-stable codes.

``NNBOLoop`` engages the driver automatically when
``SchedulerConfig.farm`` is set with an asynchronous executor.
"""

from repro.farm.driver import FarmJob, FarmStudyDriver
from repro.farm.errors import (
    EvaluationTimeout,
    FarmError,
    FarmSaturated,
    UnknownTenant,
)
from repro.farm.farm import EvaluationFarm, FarmTask, FarmTenant

__all__ = [
    "EvaluationFarm",
    "EvaluationTimeout",
    "FarmError",
    "FarmJob",
    "FarmSaturated",
    "FarmStudyDriver",
    "FarmTask",
    "FarmTenant",
    "UnknownTenant",
]
