"""The shared evaluation pool: tenancy, fair share, backpressure.

:class:`EvaluationFarm` decouples *who wants evaluations* (tenants —
typically one per :class:`~repro.bo.study.Study`) from *who runs them*
(one executor pool from :mod:`repro.bo.scheduler`).  Tenants submit
unit-box designs; the farm forwards at most ``capacity`` of them to the
executor at a time and queues the rest, picking the next dispatch by
weighted round-robin — the queued tenant with the smallest
``dispatched / weight`` credit goes first, registration order breaking
ties — so one chatty study cannot starve the others.

The farm is a *conduit*, not a scheduler: completion order, virtual
clocks and budget accounting belong to the drivers
(:class:`~repro.farm.driver.FarmStudyDriver`).  What the farm owns is
capacity (``resize()`` changes the dispatch limit mid-run), per-tenant
backpressure (``max_queue`` bounds a tenant's undispatched backlog),
per-task timeout/cancel, and per-tenant evaluation-time EWMA statistics
(the elastic policy's wall-clock signal; under a
:class:`~repro.bo.scheduler.FakeClock` durations come from the clock so
the statistics are deterministic).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import CancelledError, Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field

import numpy as np

from repro.bo.config import check_count
from repro.bo.problem import Evaluation, Problem
from repro.bo.scheduler import EvaluationExecutor, make_evaluator
from repro.farm.errors import (
    EvaluationTimeout,
    FarmError,
    FarmSaturated,
    UnknownTenant,
)


@dataclass
class FarmTenant:
    """One registered study's identity and accounting on the farm.

    ``dispatched / weight`` is the weighted-round-robin credit (smaller
    goes first); ``eval_ewma`` tracks observed evaluation seconds with
    the tenant's ``ewma_alpha``.  Instances are created by
    :meth:`EvaluationFarm.register` — treat the counters as read-only.
    """

    name: str
    problem: Problem
    weight: float = 1.0
    max_queue: int | None = None
    ewma_alpha: float = 0.3
    dispatched: int = 0
    n_completed: int = 0
    eval_ewma: float | None = None
    order: int = 0
    _queue: deque = field(default_factory=deque, repr=False)

    @property
    def queue_depth(self) -> int:
        """Tasks submitted but not yet forwarded to the executor."""
        return len(self._queue)

    def observe(self, seconds: float) -> None:
        """Fold one observed evaluation duration into the EWMA."""
        seconds = float(seconds)
        if self.eval_ewma is None:
            self.eval_ewma = seconds
        else:
            a = self.ewma_alpha
            self.eval_ewma = a * seconds + (1.0 - a) * self.eval_ewma
        self.n_completed += 1


class FarmTask:
    """One submitted design travelling through the farm.

    ``future`` is ``None`` while the task waits in its tenant's queue;
    :meth:`EvaluationFarm.collect` blocks through both stages.  The
    measured ``duration`` (executor-side seconds, completion-callback
    timed) feeds the tenant EWMA.
    """

    __slots__ = (
        "tenant",
        "u",
        "seq",
        "future",
        "cancelled",
        "duration",
        "_dispatched",
        "_started_at",
    )

    def __init__(self, tenant: FarmTenant, u: np.ndarray, seq: int):
        self.tenant = tenant
        self.u = u
        self.seq = seq
        self.future: Future | None = None
        self.cancelled = False
        self.duration: float | None = None
        self._dispatched = threading.Event()
        self._started_at: float | None = None

    def __repr__(self) -> str:
        state = (
            "cancelled"
            if self.cancelled
            else "queued"
            if self.future is None
            else "done"
            if self.future.done()
            else "running"
        )
        return f"FarmTask(#{self.seq} tenant={self.tenant.name!r} {state})"


class EvaluationFarm:
    """A shared, elastic evaluation pool serving many concurrent studies.

    Parameters
    ----------
    executor:
        An executor spec (``"async-thread"`` / ``"async-process"`` / ...)
        or an :class:`~repro.bo.scheduler.EvaluationExecutor` instance.
        Spec strings build (and own) the executor — it is closed with the
        farm; instances stay caller-owned.
    capacity:
        The dispatch limit: at most this many tasks are in the executor
        at once, the rest queue at the farm.  Defaults to the executor's
        worker count.  ``resize()`` changes it mid-run.
    n_workers:
        Worker count for a spec-built executor (defaults like
        :func:`~repro.bo.scheduler.make_evaluator`).
    clock:
        Optional :class:`~repro.bo.scheduler.FakeClock`; when set,
        observed durations come from ``clock.duration(u)`` instead of
        wall time, so tenant statistics are deterministic.
    """

    def __init__(
        self,
        executor="async-thread",
        capacity: int | None = None,
        n_workers: int | None = None,
        clock=None,
    ):
        if isinstance(executor, EvaluationExecutor):
            if n_workers is not None:
                raise ValueError(
                    f"n_workers={n_workers} cannot override the executor "
                    f"instance {executor!r}; size the instance at "
                    "construction"
                )
            self._evaluator = executor
            self._owns_evaluator = False
        else:
            self._evaluator = make_evaluator(executor, n_workers)
            self._owns_evaluator = True
        if capacity is None:
            capacity = int(getattr(self._evaluator, "n_workers", 1))
        self.capacity = check_count("capacity", capacity)
        self.clock = clock
        self._lock = threading.RLock()
        self._tenants: dict[str, FarmTenant] = {}
        self._running: set[FarmTask] = set()
        self._seq = 0
        self._closed = False

    # -- tenancy ------------------------------------------------------------------

    def register(
        self,
        name: str,
        *,
        problem: Problem,
        weight: float = 1.0,
        max_queue: int | None = None,
        ewma_alpha: float = 0.3,
    ) -> FarmTenant:
        """Add one tenant (study) to the farm; returns its handle."""
        weight = float(weight)
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        if not 0.0 < float(ewma_alpha) <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        if max_queue is not None:
            max_queue = check_count("max_queue", max_queue)
        with self._lock:
            self._require_open()
            if name in self._tenants:
                raise FarmError(
                    f"tenant {name!r} is already registered; tenant names "
                    "identify studies and must be unique per farm"
                )
            tenant = FarmTenant(
                name=str(name),
                problem=problem,
                weight=weight,
                max_queue=max_queue,
                ewma_alpha=float(ewma_alpha),
                order=len(self._tenants),
            )
            self._tenants[tenant.name] = tenant
            return tenant

    def unregister(self, tenant) -> None:
        """Remove a tenant, cancelling its queued (undispatched) tasks."""
        with self._lock:
            tenant = self._resolve(tenant)
            for task in tenant._queue:
                task.cancelled = True
                task._dispatched.set()
            tenant._queue.clear()
            del self._tenants[tenant.name]

    def tenants(self) -> list[FarmTenant]:
        """Registered tenants in registration order."""
        with self._lock:
            return sorted(self._tenants.values(), key=lambda t: t.order)

    def tenant(self, name: str) -> FarmTenant:
        """The registered tenant named ``name`` (:class:`UnknownTenant` else)."""
        with self._lock:
            return self._resolve(name)

    def _resolve(self, tenant) -> FarmTenant:
        name = tenant.name if isinstance(tenant, FarmTenant) else str(tenant)
        try:
            return self._tenants[name]
        except KeyError:
            raise UnknownTenant(
                f"unknown tenant {name!r}; registered: "
                f"{sorted(self._tenants)}"
            ) from None

    # -- introspection ------------------------------------------------------------

    @property
    def n_running(self) -> int:
        """Tasks currently dispatched to the executor."""
        with self._lock:
            return len(self._running)

    @property
    def queue_depth(self) -> int:
        """Tasks waiting at the farm across all tenants."""
        with self._lock:
            return sum(len(t._queue) for t in self._tenants.values())

    def describe(self) -> dict:
        """JSON-safe snapshot: capacity, load, and per-tenant statistics."""
        with self._lock:
            return {
                "capacity": int(self.capacity),
                "running": len(self._running),
                "queued": sum(len(t._queue) for t in self._tenants.values()),
                "tenants": {
                    t.name: {
                        "weight": float(t.weight),
                        "queue_depth": len(t._queue),
                        "dispatched": int(t.dispatched),
                        "completed": int(t.n_completed),
                        "eval_ewma_s": (
                            None if t.eval_ewma is None else float(t.eval_ewma)
                        ),
                    }
                    for t in self.tenants()
                },
            }

    # -- capacity -----------------------------------------------------------------

    def resize(self, capacity: int) -> None:
        """Change the dispatch limit mid-run (elastic sizing).

        Growing dispatches queued work immediately; shrinking never
        cancels running tasks — it only gates new dispatches, so the
        running count drains down to the new limit as work completes.
        """
        capacity = check_count("capacity", capacity)
        with self._lock:
            self._require_open()
            self.capacity = capacity
            self._pump()

    # -- submit / collect ---------------------------------------------------------

    def submit(self, tenant, u) -> FarmTask:
        """Enqueue one unit-box design for a tenant.

        Dispatches immediately when a slot is free; otherwise the task
        queues, subject to the tenant's ``max_queue`` backpressure bound
        (:class:`~repro.farm.errors.FarmSaturated`).
        """
        u = np.asarray(u, dtype=float)
        with self._lock:
            self._require_open()
            tenant = self._resolve(tenant)
            if (
                tenant.max_queue is not None
                and len(self._running) >= self.capacity
                and len(tenant._queue) >= tenant.max_queue
            ):
                raise FarmSaturated(
                    f"tenant {tenant.name!r} queue is full "
                    f"({len(tenant._queue)}/{tenant.max_queue} queued, "
                    f"{len(self._running)}/{self.capacity} slots busy); "
                    "drain completions before submitting more"
                )
            task = FarmTask(tenant, u, self._seq)
            self._seq += 1
            tenant._queue.append(task)
            self._pump()
            return task

    def collect(self, task: FarmTask, timeout: float | None = None) -> Evaluation:
        """Block until one task's evaluation is available and return it.

        ``timeout`` (seconds) bounds the whole wait — dispatch queueing
        included; on expiry the task is cancelled and
        :class:`~repro.farm.errors.EvaluationTimeout` raised.  Parent-side
        cache bookkeeping (process pools) happens here exactly once.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        if not task._dispatched.wait(timeout):
            self.cancel(task)
            raise EvaluationTimeout(
                f"{task!r} not dispatched within {timeout:.3f}s "
                f"(farm capacity {self.capacity})"
            )
        if task.cancelled or task.future is None:
            raise FarmError(f"{task!r} was cancelled and has no result")
        remaining = (
            None if deadline is None else max(0.0, deadline - time.monotonic())
        )
        try:
            task.future.result(timeout=remaining)
        except FutureTimeoutError:
            self.cancel(task)
            raise EvaluationTimeout(
                f"{task!r} exceeded its {timeout:.3f}s evaluation timeout"
            ) from None
        except CancelledError:
            raise FarmError(f"{task!r} was cancelled and has no result") from None
        return self._evaluator.collect(task.tenant.problem, task.u, task.future)

    def cancel(self, task: FarmTask) -> bool:
        """Abandon one task; True when no evaluation will (or did) run.

        Queued tasks are removed outright.  Dispatched tasks are
        future-cancelled — an already-running evaluation cannot be
        interrupted (its result is simply never collected), in which
        case False is returned.
        """
        with self._lock:
            task.cancelled = True
            if task.future is None:
                try:
                    task.tenant._queue.remove(task)
                except ValueError:
                    pass
                task._dispatched.set()
                return True
            return task.future.cancel()

    # -- internals ----------------------------------------------------------------

    def _require_open(self) -> None:
        if self._closed:
            raise FarmError("farm is closed")

    def _pick_tenant(self) -> FarmTenant | None:
        """Weighted round-robin: least dispatched-per-weight queued tenant."""
        best = None
        for tenant in self._tenants.values():
            if not tenant._queue:
                continue
            key = (tenant.dispatched / tenant.weight, tenant.order)
            if best is None or key < best[0]:
                best = (key, tenant)
        return None if best is None else best[1]

    def _pump(self) -> None:
        """Forward queued tasks to the executor while slots are free."""
        with self._lock:
            while len(self._running) < self.capacity:
                tenant = self._pick_tenant()
                if tenant is None:
                    return
                task = tenant._queue.popleft()
                if task.cancelled:
                    continue
                task._started_at = time.monotonic()
                tenant.dispatched += 1
                self._running.add(task)
                future = self._evaluator.submit(tenant.problem, task.u)
                task.future = future
                task._dispatched.set()
                # the callback frees the slot (and re-pumps) the moment
                # the evaluation finishes — not when it is collected — so
                # queued work never waits on a slow consumer
                future.add_done_callback(lambda f, t=task: self._on_done(t))

    def _on_done(self, task: FarmTask) -> None:
        finished = time.monotonic()
        with self._lock:
            if task not in self._running:
                return
            self._running.discard(task)
            if task.future is not None and not task.future.cancelled():
                if self.clock is not None:
                    task.duration = float(self.clock.duration(task.u))
                elif task._started_at is not None:
                    task.duration = finished - task._started_at
                if task.duration is not None and not task.cancelled:
                    task.tenant.observe(task.duration)
            if not self._closed:
                self._pump()

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Cancel queued work and release an owned executor (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for tenant in self._tenants.values():
                for task in tenant._queue:
                    task.cancelled = True
                    task._dispatched.set()
                tenant._queue.clear()
            for task in list(self._running):
                if task.future is not None:
                    task.future.cancel()
        if self._owns_evaluator:
            self._evaluator.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"EvaluationFarm({len(self._tenants)} tenants, "
                f"{len(self._running)}/{self.capacity} running, "
                f"{self.queue_depth} queued)"
            )


__all__ = ["EvaluationFarm", "FarmTask", "FarmTenant"]
