"""Error taxonomy of the evaluation farm.

Every class carries a stable machine-readable ``code`` mirroring the
:class:`~repro.bo.study.StudyError` convention, so farm failures that
surface through the BO service can travel the wire as stable
identifiers.  Catching :class:`FarmError` catches the whole taxonomy.
"""


class FarmError(RuntimeError):
    """A farm protocol violation or operational failure."""

    #: stable error code (wire-safe kebab-case identifier)
    code = "farm-error"


class FarmSaturated(FarmError):
    """Backpressure: a tenant's queue bound rejected a submission.

    The farm never buffers unboundedly for a tenant that set
    ``max_queue`` — callers are expected to retry after draining
    completions (or the service maps this to its 503 busy envelope).
    """

    code = "farm-saturated"


class EvaluationTimeout(FarmError):
    """A collected task exceeded its per-task timeout and was cancelled."""

    code = "evaluation-timeout"


class UnknownTenant(FarmError):
    """A tenant name this farm never registered (or already removed)."""

    code = "unknown-tenant"


__all__ = [
    "EvaluationTimeout",
    "FarmError",
    "FarmSaturated",
    "UnknownTenant",
]
