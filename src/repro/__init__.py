"""repro — Bayesian optimization for analog circuit synthesis using neural
networks.

A full reproduction of Zhang et al., "Bayesian Optimization Approach for
Analog Circuit Synthesis Using Neural Network" (DATE 2019), including the
neural-network Gaussian-process surrogate, the constrained BO loop, the
WEIBO/GASPAD/DE baselines, and an MNA circuit-simulator substrate with the
paper's two evaluation circuits.

Quickstart::

    from repro import NNBO
    from repro.benchfns import toy_constrained_quadratic

    result = NNBO(toy_constrained_quadratic(), n_initial=10,
                  max_evaluations=30, seed=0).run()
    print(result.best_feasible())
"""

from repro.baselines import DifferentialEvolution, GASPAD, WEIBO
from repro.bo import (
    AcquisitionConfig,
    Evaluation,
    FunctionProblem,
    OptimizationResult,
    Problem,
    SchedulerConfig,
    Study,
    SurrogateBO,
    SurrogateConfig,
    Trial,
)
from repro.core import DeepEnsemble, FeatureGPTrainer, NeuralFeatureGP, NNBO
from repro.gp import GPRegression, Matern52, RBF

__version__ = "1.1.0"

__all__ = [
    "AcquisitionConfig",
    "DeepEnsemble",
    "DifferentialEvolution",
    "Evaluation",
    "FeatureGPTrainer",
    "FunctionProblem",
    "GASPAD",
    "GPRegression",
    "Matern52",
    "NNBO",
    "NeuralFeatureGP",
    "OptimizationResult",
    "Problem",
    "RBF",
    "SchedulerConfig",
    "Study",
    "SurrogateBO",
    "SurrogateConfig",
    "Trial",
    "WEIBO",
    "__version__",
]
