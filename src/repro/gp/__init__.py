"""Classic Gaussian-process regression with explicitly defined kernels.

This is the surrogate of the baselines (WEIBO, GASPAD) and the comparison
point of the paper: training costs O(N^3) and prediction O(N^2) because the
N x N covariance matrix must be factorized (paper Sec. II-C / III-D).
"""

from repro.gp.gpr import GPRegression
from repro.gp.kernels import Kernel, Matern52, RBF
from repro.gp.linalg import (
    batched_jitter_cholesky,
    jitter_cholesky,
    lapack_jitter_cholesky,
    solve_cholesky,
)
from repro.gp.mean import ConstantMean

__all__ = [
    "ConstantMean",
    "GPRegression",
    "Kernel",
    "Matern52",
    "RBF",
    "batched_jitter_cholesky",
    "jitter_cholesky",
    "lapack_jitter_cholesky",
    "solve_cholesky",
]
