"""Mean functions for GP regression.

The paper's baseline uses a constant mean ``m(x) = mu_0`` (Sec. II-C); it is
treated as one more hyper-parameter estimated by maximum likelihood.
"""

from __future__ import annotations

import numpy as np


class ConstantMean:
    """Constant prior mean ``m(x) = mu_0``."""

    def __init__(self, value: float = 0.0):
        self.value = float(value)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        n = x.shape[0] if x.ndim == 2 else 1
        return np.full(n, self.value)

    def __repr__(self) -> str:
        return f"ConstantMean({self.value:.4g})"
