"""Numerically robust linear algebra for GP regression."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
from scipy import linalg as sla
from scipy.linalg import lapack


class CholeskyError(RuntimeError):
    """Raised when a covariance matrix cannot be factorized even with jitter."""


#: first rung of the jitter ladder, relative to ``mean(diag(mat))``.  The
#: escalation below computes rung ``k`` as ``10.0 ** (k - 10)`` — whose
#: ``k = 0`` value equals this constant bitwise (``10.0 ** -10 == 1e-10``)
#: while keeping every later rung identical to the historical ladder
#: (naive cumulative ``jitter *= 10`` drifts by one ulp at rung 3).
JITTER_START = 1e-10


def jitter_cholesky(mat: np.ndarray, max_tries: int = 6) -> np.ndarray:
    """Lower Cholesky factor of an SPD matrix, adding diagonal jitter on failure.

    Covariance matrices built from nearly-duplicate BO samples are often
    numerically semidefinite; progressively larger jitter (starting at
    exactly ``JITTER_START * mean(diag)``, growing 10x per retry) is the
    standard fix.

    Returns the lower-triangular factor ``L`` with ``L @ L.T ≈ mat``.
    """
    mat = np.asarray(mat, dtype=float)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise ValueError(f"matrix must be square, got shape {mat.shape}")
    diag_mean = float(np.mean(np.diag(mat)))
    if diag_mean <= 0:
        diag_mean = 1.0
    # one identity buffer shared across all retries (the ladder used to
    # rebuild np.eye per attempt)
    eye = np.eye(mat.shape[0])
    jitter = 0.0
    for attempt in range(max_tries):
        try:
            return sla.cholesky(mat + jitter * eye, lower=True)
        except sla.LinAlgError:
            jitter = diag_mean * 10.0 ** (attempt - 10)
    raise CholeskyError(
        f"Cholesky failed after {max_tries} jitter attempts (last jitter {jitter:g})"
    )


def solve_cholesky(chol_lower: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``(L L^T) x = rhs`` given the lower factor ``L``."""
    tmp = sla.solve_triangular(chol_lower, rhs, lower=True)
    return sla.solve_triangular(chol_lower.T, tmp, lower=False)


def log_det_from_cholesky(chol_lower: np.ndarray) -> float:
    """``log |A|`` from the lower Cholesky factor of ``A``."""
    return 2.0 * float(np.sum(np.log(np.diag(chol_lower))))


# -- LAPACK fast path + stacked variant (batched surrogate engine) ---------------
#
# The batched NN-GP assembles one ``(S, M, M)`` stack of A-matrices per
# training step (stack-axis convention: see ``repro.nn.batched``) and
# factorizes it slice by slice through :func:`lapack_jitter_cholesky`.
# Two deliberate choices:
#
# * per-slice ``dpotrf`` rather than stacked ``numpy.linalg.cholesky`` —
#   numpy's version is NOT bitwise identical to scipy's (different
#   row-/column-major traversal around ``dpotrf``), and a one-ulp factor
#   difference amplifies chaotically over hundreds of NN training epochs,
#   breaking the engine's equivalence guarantee;
# * direct LAPACK rather than scipy's high-level wrappers — the wrapper
#   validation overhead (~15 us/call) dominates the actual M ~ 50 LAPACK
#   work when invoked S times per epoch.  At these sizes the per-slice
#   calls are a rounding error next to the stacked GEMMs, which are where
#   the batching speedup lives.
#
# The per-slice loop parallelizes cleanly: slices are independent and the
# LAPACK routines release the GIL, so a thread pool over slices keeps the
# factors bitwise identical (each slice runs the exact serial kernel)
# while using multiple cores.  ``threads`` opts in; the serial loop stays
# the default.


def lapack_jitter_cholesky(mat: np.ndarray) -> np.ndarray:
    """Lower Cholesky factor via direct LAPACK ``dpotrf``.

    Produces the exact factor :func:`jitter_cholesky` (and therefore
    ``scipy.linalg.cholesky``) would — same routine, same values — while
    skipping scipy's per-call validation overhead; failures fall back to
    the jitter ladder.  This is the factorization used by the batched
    surrogate engine's hot path.
    """
    chol, info = lapack.dpotrf(mat, lower=1, clean=1)
    if info != 0:
        return jitter_cholesky(mat)
    return chol


def solve_r_and_inverse(
    chol_s: np.ndarray, u_s: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """One ``dpotrs`` for both ``r = A^{-1}u`` and ``A^{-1}`` itself.

    The concatenated right-hand side ``[u | I]`` is solved column by
    column, so each returned piece is bitwise identical to its standalone
    solve.  The ``A^{-1}`` block is returned in LAPACK's column-major
    layout on purpose: downstream GEMMs depend bitwise on operand
    ordering, and the serial path multiplies the (column-major) scipy
    solve output directly.
    """
    m = u_s.shape[0]
    rhs = np.concatenate([u_s[:, None], np.eye(m)], axis=1)
    sol, _ = lapack.dpotrs(chol_s, rhs, lower=1)
    return sol[:, 0], sol[:, 1:]


def map_slices(fn, count: int, threads: int | None = None) -> None:
    """Run ``fn(s)`` for every slice index, optionally across a thread pool.

    ``fn`` must write its results into preallocated output arrays (slices
    are disjoint, so concurrent writes never alias).  With ``threads`` of
    ``None``/``0``/``1`` this is the plain serial loop; otherwise a pool of
    ``threads`` workers maps over the indices — each slice still executes
    the identical serial kernel, so results are bitwise independent of the
    thread count.
    """
    if not threads or threads <= 1 or count <= 1:
        for s in range(count):
            fn(s)
        return
    with ThreadPoolExecutor(max_workers=min(int(threads), count)) as pool:
        # list() drains the iterator so worker exceptions propagate
        list(pool.map(fn, range(count)))


def batched_jitter_cholesky(mats: np.ndarray, threads: int | None = None) -> np.ndarray:
    """Lower Cholesky factors of an SPD stack ``(S, M, M)``.

    Each slice is factorized with :func:`lapack_jitter_cholesky`, so
    jitter escalation on one ill-conditioned member cannot perturb the
    others and every factor is bitwise identical to the serial path's.
    ``threads`` spreads the slice loop over a thread pool (LAPACK releases
    the GIL); the factors do not depend on the thread count.
    """
    mats = np.asarray(mats, dtype=float)
    if mats.ndim != 3 or mats.shape[-1] != mats.shape[-2]:
        raise ValueError(f"expected an (S, M, M) stack, got shape {mats.shape}")
    out = np.empty_like(mats)

    def factor(s: int) -> None:
        out[s] = lapack_jitter_cholesky(mats[s])

    map_slices(factor, mats.shape[0], threads)
    return out
