"""Numerically robust linear algebra for GP regression."""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla
from scipy.linalg import lapack


class CholeskyError(RuntimeError):
    """Raised when a covariance matrix cannot be factorized even with jitter."""


def jitter_cholesky(mat: np.ndarray, max_tries: int = 6) -> np.ndarray:
    """Lower Cholesky factor of an SPD matrix, adding diagonal jitter on failure.

    Covariance matrices built from nearly-duplicate BO samples are often
    numerically semidefinite; progressively larger jitter (starting at
    ``1e-10 * mean(diag)``) is the standard fix.

    Returns the lower-triangular factor ``L`` with ``L @ L.T ≈ mat``.
    """
    mat = np.asarray(mat, dtype=float)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise ValueError(f"matrix must be square, got shape {mat.shape}")
    diag_mean = float(np.mean(np.diag(mat)))
    if diag_mean <= 0:
        diag_mean = 1.0
    jitter = 0.0
    for attempt in range(max_tries):
        try:
            return sla.cholesky(mat + jitter * np.eye(mat.shape[0]), lower=True)
        except sla.LinAlgError:
            jitter = diag_mean * 10.0 ** (attempt - 10)
    raise CholeskyError(
        f"Cholesky failed after {max_tries} jitter attempts (last jitter {jitter:g})"
    )


def solve_cholesky(chol_lower: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``(L L^T) x = rhs`` given the lower factor ``L``."""
    tmp = sla.solve_triangular(chol_lower, rhs, lower=True)
    return sla.solve_triangular(chol_lower.T, tmp, lower=False)


def log_det_from_cholesky(chol_lower: np.ndarray) -> float:
    """``log |A|`` from the lower Cholesky factor of ``A``."""
    return 2.0 * float(np.sum(np.log(np.diag(chol_lower))))


# -- LAPACK fast path + stacked variant (batched surrogate engine) ---------------
#
# The batched NN-GP assembles one ``(S, M, M)`` stack of A-matrices per
# training step (stack-axis convention: see ``repro.nn.batched``) and
# factorizes it slice by slice through :func:`lapack_jitter_cholesky`.
# Two deliberate choices:
#
# * per-slice ``dpotrf`` rather than stacked ``numpy.linalg.cholesky`` —
#   numpy's version is NOT bitwise identical to scipy's (different
#   row-/column-major traversal around ``dpotrf``), and a one-ulp factor
#   difference amplifies chaotically over hundreds of NN training epochs,
#   breaking the engine's equivalence guarantee;
# * direct LAPACK rather than scipy's high-level wrappers — the wrapper
#   validation overhead (~15 us/call) dominates the actual M ~ 50 LAPACK
#   work when invoked S times per epoch.  At these sizes the per-slice
#   calls are a rounding error next to the stacked GEMMs, which are where
#   the batching speedup lives.


def lapack_jitter_cholesky(mat: np.ndarray) -> np.ndarray:
    """Lower Cholesky factor via direct LAPACK ``dpotrf``.

    Produces the exact factor :func:`jitter_cholesky` (and therefore
    ``scipy.linalg.cholesky``) would — same routine, same values — while
    skipping scipy's per-call validation overhead; failures fall back to
    the jitter ladder.  This is the factorization used by the batched
    surrogate engine's hot path.
    """
    chol, info = lapack.dpotrf(mat, lower=1, clean=1)
    if info != 0:
        return jitter_cholesky(mat)
    return chol


def batched_jitter_cholesky(mats: np.ndarray) -> np.ndarray:
    """Lower Cholesky factors of an SPD stack ``(S, M, M)``.

    Each slice is factorized with :func:`lapack_jitter_cholesky`, so
    jitter escalation on one ill-conditioned member cannot perturb the
    others and every factor is bitwise identical to the serial path's.
    """
    mats = np.asarray(mats, dtype=float)
    if mats.ndim != 3 or mats.shape[-1] != mats.shape[-2]:
        raise ValueError(f"expected an (S, M, M) stack, got shape {mats.shape}")
    return np.stack([lapack_jitter_cholesky(mat) for mat in mats])
