"""Numerically robust linear algebra for GP regression."""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla


class CholeskyError(RuntimeError):
    """Raised when a covariance matrix cannot be factorized even with jitter."""


def jitter_cholesky(mat: np.ndarray, max_tries: int = 6) -> np.ndarray:
    """Lower Cholesky factor of an SPD matrix, adding diagonal jitter on failure.

    Covariance matrices built from nearly-duplicate BO samples are often
    numerically semidefinite; progressively larger jitter (starting at
    ``1e-10 * mean(diag)``) is the standard fix.

    Returns the lower-triangular factor ``L`` with ``L @ L.T ≈ mat``.
    """
    mat = np.asarray(mat, dtype=float)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise ValueError(f"matrix must be square, got shape {mat.shape}")
    diag_mean = float(np.mean(np.diag(mat)))
    if diag_mean <= 0:
        diag_mean = 1.0
    jitter = 0.0
    for attempt in range(max_tries):
        try:
            return sla.cholesky(mat + jitter * np.eye(mat.shape[0]), lower=True)
        except sla.LinAlgError:
            jitter = diag_mean * 10.0 ** (attempt - 10)
    raise CholeskyError(
        f"Cholesky failed after {max_tries} jitter attempts (last jitter {jitter:g})"
    )


def solve_cholesky(chol_lower: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``(L L^T) x = rhs`` given the lower factor ``L``."""
    tmp = sla.solve_triangular(chol_lower, rhs, lower=True)
    return sla.solve_triangular(chol_lower.T, tmp, lower=False)


def log_det_from_cholesky(chol_lower: np.ndarray) -> float:
    """``log |A|`` from the lower Cholesky factor of ``A``."""
    return 2.0 * float(np.sum(np.log(np.diag(chol_lower))))
