"""Exact Gaussian-process regression with MLE hyper-parameter fitting.

Implements the baseline surrogate of the paper (Sec. II-C, eq. 3–4):
constant mean, explicit kernel, Gaussian noise, with hyper-parameters
``theta = [kernel params, log sigma_n^2, mu_0]`` estimated by multi-restart
L-BFGS-B on the exact marginal likelihood with analytic gradients.

Complexity (paper Sec. III-D): training is dominated by the Cholesky
factorization of the ``N x N`` matrix — O(N^3); each predictive variance is
O(N^2).  This is the scaling the neural-network model is built to escape,
and ``benchmarks/bench_complexity.py`` measures exactly this contrast.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla
from scipy import optimize as sopt

from repro.gp.kernels import Kernel, RBF
from repro.gp.linalg import jitter_cholesky, log_det_from_cholesky
from repro.gp.mean import ConstantMean
from repro.utils.rng import ensure_rng
from repro.utils.scaling import StandardScaler
from repro.utils.validation import check_finite, check_matrix_2d, check_vector_1d

# Log-space box constraints keep L-BFGS-B away from degenerate optima
# (zero-lengthscale interpolation, infinite noise).  Inputs are expected in
# roughly unit scale — the BO layer always feeds the unit box.
_LOG_SN2_BOUNDS = (np.log(1e-8), np.log(1e2))
_MEAN_BOUNDS = (-1e3, 1e3)


class GPRegression:
    """Exact GP regression model ``y ~ N(m(x) + f(x), sigma_n^2)``.

    Parameters
    ----------
    kernel:
        Covariance function; defaults to an ARD :class:`RBF` built at fit
        time (the paper's Gaussian kernel).
    noise_variance:
        Initial observation-noise variance sigma_n^2.
    normalize_y:
        Z-score targets internally (recommended; FOM values of circuits can
        be O(100) dB or O(1e-5) A).
    n_restarts:
        Number of random restarts for the MLE in addition to the current
        hyper-parameters.
    seed:
        RNG seed for restart sampling.
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        noise_variance: float = 1e-4,
        normalize_y: bool = True,
        n_restarts: int = 4,
        optimize: bool = True,
        seed=None,
    ):
        if noise_variance <= 0:
            raise ValueError(f"noise_variance must be positive, got {noise_variance}")
        self.kernel = kernel
        self.log_noise_variance = float(np.log(noise_variance))
        self.mean = ConstantMean(0.0)
        self.normalize_y = bool(normalize_y)
        self.n_restarts = int(n_restarts)
        self.optimize = bool(optimize)
        self._rng = ensure_rng(seed)
        self._x_train: np.ndarray | None = None
        self._z_train: np.ndarray | None = None
        self._y_scaler = StandardScaler()
        self._chol: np.ndarray | None = None
        self._alpha: np.ndarray | None = None

    # -- public API -----------------------------------------------------------

    @property
    def noise_variance(self) -> float:
        """Observation-noise variance sigma_n^2 (in normalized-target units)."""
        return float(np.exp(self.log_noise_variance))

    @property
    def num_train(self) -> int:
        """Number of stored training points."""
        return 0 if self._x_train is None else self._x_train.shape[0]

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GPRegression":
        """Store data, run the MLE (if enabled), and precompute the posterior."""
        x = check_matrix_2d(x, "x")
        y = check_vector_1d(y, "y", length=x.shape[0])
        check_finite(x, "x")
        check_finite(y, "y")
        if x.shape[0] < 2:
            raise ValueError("GP regression needs at least 2 training points")
        if self.kernel is None:
            self.kernel = RBF(x.shape[1])
        elif self.kernel.input_dim != x.shape[1]:
            raise ValueError(
                f"kernel dim {self.kernel.input_dim} != data dim {x.shape[1]}"
            )
        self._x_train = x
        if self.normalize_y:
            self._z_train = self._y_scaler.fit_transform(y)
        else:
            self._y_scaler.fit(np.array([0.0, 1.0]))
            self._y_scaler.mean_, self._y_scaler.scale_ = 0.0, 1.0
            self._z_train = y.copy()
        if self.optimize:
            self._optimize_hyperparams()
        self._update_posterior()
        return self

    def predict(
        self, x: np.ndarray, include_noise: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance at query points (eq. 3).

        Returns arrays of shape ``(n,)`` in the original target units.
        """
        self._require_fitted()
        x = check_matrix_2d(x, "x", self._x_train.shape[1])
        k_star = self.kernel(x, self._x_train)  # (n, N)
        z_mean = self.mean(x) + k_star @ self._alpha
        v = sla.solve_triangular(self._chol, k_star.T, lower=True)
        z_var = self.kernel.diag(x) - np.sum(v**2, axis=0)
        if include_noise:
            z_var = z_var + self.noise_variance
        z_var = np.maximum(z_var, 1e-12)
        mean = self._y_scaler.inverse_transform(z_mean)
        var = self._y_scaler.inverse_transform_variance(z_var)
        return mean, var

    def log_marginal_likelihood(self, params: np.ndarray | None = None) -> float:
        """Exact log marginal likelihood (eq. 4) at ``params`` (or current)."""
        self._require_data()
        if params is None:
            params = self._get_theta()
        value, _ = self._nll_and_grad(np.asarray(params, dtype=float))
        return -value

    # -- hyper-parameter plumbing ----------------------------------------------

    def _get_theta(self) -> np.ndarray:
        return np.concatenate(
            [
                self.kernel.get_params(),
                [self.log_noise_variance, self.mean.value],
            ]
        )

    def _set_theta(self, theta: np.ndarray):
        nk = self.kernel.n_params
        self.kernel.set_params(theta[:nk])
        self.log_noise_variance = float(theta[nk])
        self.mean.value = float(theta[nk + 1])

    def _theta_bounds(self) -> list[tuple[float, float]]:
        return self.kernel.param_bounds() + [_LOG_SN2_BOUNDS, _MEAN_BOUNDS]

    def _sample_theta(self) -> np.ndarray:
        """Random restart point, scaled to the observed input ranges."""
        span = np.ptp(self._x_train, axis=0)
        span = np.where(span > 0, span, 1.0)
        kernel_theta = self.kernel.sample_params(self._rng, span)
        log_sn2 = np.log(self._rng.uniform(1e-6, 1e-2))
        mean = float(np.mean(self._z_train)) + self._rng.normal(0.0, 0.1)
        theta = np.concatenate([kernel_theta, [log_sn2, mean]])
        lo = np.array([b[0] for b in self._theta_bounds()])
        hi = np.array([b[1] for b in self._theta_bounds()])
        return np.clip(theta, lo, hi)

    # -- likelihood internals ---------------------------------------------------

    def _nll_and_grad(self, theta: np.ndarray) -> tuple[float, np.ndarray]:
        """Negative log marginal likelihood and its gradient (GPML eq. 5.9)."""
        saved = self._get_theta()
        try:
            self._set_theta(theta)
            x, z = self._x_train, self._z_train
            n = x.shape[0]
            k_mat = self.kernel(x) + self.noise_variance * np.eye(n)
            chol = jitter_cholesky(k_mat)
            resid = z - self.mean(x)
            alpha = sla.cho_solve((chol, True), resid)
            nll = 0.5 * float(resid @ alpha)
            nll += 0.5 * log_det_from_cholesky(chol)
            nll += 0.5 * n * np.log(2.0 * np.pi)

            k_inv = sla.cho_solve((chol, True), np.eye(n))
            outer = np.outer(alpha, alpha)
            trace_mat = outer - k_inv  # d logL / d theta = 1/2 tr(trace_mat dK)
            grad = np.empty_like(theta)
            kernel_grads = self.kernel.gradients(x)
            for i in range(self.kernel.n_params):
                grad[i] = -0.5 * float(np.sum(trace_mat * kernel_grads[i]))
            noise_grad_mat = self.noise_variance * np.eye(n)
            grad[self.kernel.n_params] = -0.5 * float(
                np.sum(trace_mat * noise_grad_mat)
            )
            grad[self.kernel.n_params + 1] = -float(np.sum(alpha))
            return nll, grad
        finally:
            self._set_theta(saved)

    def _optimize_hyperparams(self):
        """Multi-restart L-BFGS-B on the exact NLL with analytic gradients."""
        bounds = self._theta_bounds()
        lo = np.array([b[0] for b in bounds])
        hi = np.array([b[1] for b in bounds])
        starts = [np.clip(self._get_theta(), lo, hi)]
        starts += [self._sample_theta() for _ in range(self.n_restarts)]
        best_theta, best_nll = None, np.inf
        for theta0 in starts:
            try:
                res = sopt.minimize(
                    self._nll_and_grad,
                    theta0,
                    jac=True,
                    method="L-BFGS-B",
                    bounds=bounds,
                    options={"maxiter": 200},
                )
            except (FloatingPointError, np.linalg.LinAlgError):
                continue
            if np.isfinite(res.fun) and res.fun < best_nll:
                best_nll, best_theta = float(res.fun), res.x.copy()
        if best_theta is not None:
            self._set_theta(best_theta)

    def _update_posterior(self):
        n = self._x_train.shape[0]
        k_mat = self.kernel(self._x_train) + self.noise_variance * np.eye(n)
        self._chol = jitter_cholesky(k_mat)
        resid = self._z_train - self.mean(self._x_train)
        self._alpha = sla.cho_solve((self._chol, True), resid)

    def _require_data(self):
        if self._x_train is None:
            raise RuntimeError("model has no training data; call fit() first")

    def _require_fitted(self):
        self._require_data()
        if self._chol is None:
            raise RuntimeError("posterior not computed; call fit() first")
