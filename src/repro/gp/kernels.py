"""Covariance kernels with analytic gradients w.r.t. log hyper-parameters.

The paper's baseline surrogate (eq. after Sec. II-C) is the ARD Gaussian
kernel

    k(x_i, x_j) = sigma_f^2 * exp(-1/2 (x_i - x_j)^T Lambda^{-1} (x_i - x_j)),
    Lambda = diag(l_1^2, ..., l_d^2).

(The paper's formula writes ``sigma_n^2`` for the prefactor; that is a typo
for the signal variance — the noise enters separately in eq. 3.)

All hyper-parameters are handled in log space so maximum-likelihood
optimization is unconstrained and scale-free.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_matrix_2d


def _sq_dists_per_dim(x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
    """Per-dimension squared differences with shape ``(n1, n2, d)``."""
    return (x1[:, None, :] - x2[None, :, :]) ** 2


class Kernel:
    """Base class: positive-definite kernel with log-space parameters.

    Parameter vector layout: ``[log l_1, ..., log l_d, log sigma_f^2]``.
    """

    def __init__(self, input_dim: int, lengthscales=None, signal_variance: float = 1.0):
        if input_dim <= 0:
            raise ValueError(f"input_dim must be positive, got {input_dim}")
        self.input_dim = int(input_dim)
        if lengthscales is None:
            lengthscales = np.ones(input_dim)
        lengthscales = np.asarray(lengthscales, dtype=float).ravel()
        if lengthscales.shape[0] != input_dim:
            raise ValueError(
                f"need {input_dim} lengthscales, got {lengthscales.shape[0]}"
            )
        if np.any(lengthscales <= 0) or signal_variance <= 0:
            raise ValueError("lengthscales and signal variance must be positive")
        self.log_lengthscales = np.log(lengthscales)
        self.log_signal_variance = float(np.log(signal_variance))

    # -- parameter plumbing ---------------------------------------------------

    @property
    def n_params(self) -> int:
        """Number of log-space hyper-parameters."""
        return self.input_dim + 1

    def get_params(self) -> np.ndarray:
        """Log-space parameter vector ``[log l_1..d, log sigma_f^2]``."""
        return np.append(self.log_lengthscales, self.log_signal_variance)

    def set_params(self, params: np.ndarray):
        """Write a log-space parameter vector."""
        params = np.asarray(params, dtype=float).ravel()
        if params.shape[0] != self.n_params:
            raise ValueError(f"expected {self.n_params} params, got {params.shape[0]}")
        self.log_lengthscales = params[: self.input_dim].copy()
        self.log_signal_variance = float(params[self.input_dim])

    def param_bounds(self) -> list[tuple[float, float]]:
        """Log-space box bounds per parameter, for MLE optimizers."""
        ls = (np.log(1e-3), np.log(1e3))
        sf2 = (np.log(1e-6), np.log(1e6))
        return [ls] * self.input_dim + [sf2]

    def sample_params(self, rng, span: np.ndarray) -> np.ndarray:
        """Random restart point scaled to the data span per dimension."""
        log_ls = np.log(span * rng.uniform(0.1, 1.0, size=self.input_dim))
        log_sf2 = np.log(rng.uniform(0.25, 4.0))
        theta = np.append(log_ls, log_sf2)
        lo = np.array([b[0] for b in self.param_bounds()])
        hi = np.array([b[1] for b in self.param_bounds()])
        return np.clip(theta, lo, hi)

    @property
    def lengthscales(self) -> np.ndarray:
        """Positive ARD lengthscales."""
        return np.exp(self.log_lengthscales)

    @property
    def signal_variance(self) -> float:
        """Positive signal variance sigma_f^2."""
        return float(np.exp(self.log_signal_variance))

    # -- kernel evaluations ---------------------------------------------------

    def __call__(self, x1: np.ndarray, x2: np.ndarray | None = None) -> np.ndarray:
        """Covariance matrix between two point sets (x2 defaults to x1)."""
        raise NotImplementedError

    def diag(self, x: np.ndarray) -> np.ndarray:
        """Diagonal of ``self(x, x)`` without forming the full matrix."""
        x = check_matrix_2d(x, "x", self.input_dim)
        return np.full(x.shape[0], self.signal_variance)

    def gradients(self, x: np.ndarray) -> np.ndarray:
        """Stack of ``dK/d(log theta_i)`` over the training set.

        Returns an array of shape ``(n_params, n, n)`` used by the marginal-
        likelihood gradient (trace formula in GPML eq. 5.9).
        """
        raise NotImplementedError


class RBF(Kernel):
    """ARD squared-exponential ("Gaussian") kernel — the paper's baseline."""

    def __call__(self, x1, x2=None):
        x1 = check_matrix_2d(x1, "x1", self.input_dim)
        x2 = x1 if x2 is None else check_matrix_2d(x2, "x2", self.input_dim)
        scaled = _sq_dists_per_dim(x1, x2) / np.exp(2.0 * self.log_lengthscales)
        return self.signal_variance * np.exp(-0.5 * scaled.sum(axis=2))

    def gradients(self, x):
        x = check_matrix_2d(x, "x", self.input_dim)
        per_dim = _sq_dists_per_dim(x, x) / np.exp(2.0 * self.log_lengthscales)
        k = self.signal_variance * np.exp(-0.5 * per_dim.sum(axis=2))
        grads = np.empty((self.n_params, x.shape[0], x.shape[0]))
        for d in range(self.input_dim):
            # d k / d log l_d = k * (x_d - x'_d)^2 / l_d^2
            grads[d] = k * per_dim[:, :, d]
        grads[self.input_dim] = k  # d k / d log sigma_f^2 = k
        return grads


class Matern52(Kernel):
    """ARD Matérn 5/2 kernel, the common robust alternative in BO."""

    _SQRT5 = np.sqrt(5.0)

    def _scaled_r(self, x1, x2):
        per_dim = _sq_dists_per_dim(x1, x2) / np.exp(2.0 * self.log_lengthscales)
        return np.sqrt(np.maximum(per_dim.sum(axis=2), 0.0)), per_dim

    def __call__(self, x1, x2=None):
        x1 = check_matrix_2d(x1, "x1", self.input_dim)
        x2 = x1 if x2 is None else check_matrix_2d(x2, "x2", self.input_dim)
        r, _ = self._scaled_r(x1, x2)
        s5r = self._SQRT5 * r
        return self.signal_variance * (1.0 + s5r + s5r**2 / 3.0) * np.exp(-s5r)

    def gradients(self, x):
        x = check_matrix_2d(x, "x", self.input_dim)
        r, per_dim = self._scaled_r(x, x)
        s5r = self._SQRT5 * r
        k = self.signal_variance * (1.0 + s5r + s5r**2 / 3.0) * np.exp(-s5r)
        # dk/dr = -sigma_f^2 * (5 r / 3) (1 + sqrt5 r) exp(-sqrt5 r); combined with
        # dr/d log l_d = -per_dim_d / r the r in the denominator cancels.
        common = self.signal_variance * (5.0 / 3.0) * (1.0 + s5r) * np.exp(-s5r)
        grads = np.empty((self.n_params, x.shape[0], x.shape[0]))
        for d in range(self.input_dim):
            grads[d] = common * per_dim[:, :, d]
        grads[self.input_dim] = k
        return grads


class RationalQuadratic(Kernel):
    """ARD rational-quadratic kernel: a scale mixture of RBFs.

    ``k = sigma_f^2 (1 + r^2 / (2 alpha))^(-alpha)`` with the ARD scaled
    squared distance ``r^2``.  The mixture parameter ``alpha`` is a fixed
    constructor argument (not optimized), matching common BO practice.
    """

    def __init__(self, input_dim, lengthscales=None, signal_variance=1.0,
                 alpha: float = 2.0):
        super().__init__(input_dim, lengthscales, signal_variance)
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.alpha = float(alpha)

    def _scaled_sq(self, x1, x2):
        return _sq_dists_per_dim(x1, x2) / np.exp(2.0 * self.log_lengthscales)

    def __call__(self, x1, x2=None):
        x1 = check_matrix_2d(x1, "x1", self.input_dim)
        x2 = x1 if x2 is None else check_matrix_2d(x2, "x2", self.input_dim)
        r2 = self._scaled_sq(x1, x2).sum(axis=2)
        return self.signal_variance * (1.0 + r2 / (2.0 * self.alpha)) ** (-self.alpha)

    def gradients(self, x):
        x = check_matrix_2d(x, "x", self.input_dim)
        per_dim = self._scaled_sq(x, x)
        r2 = per_dim.sum(axis=2)
        base = 1.0 + r2 / (2.0 * self.alpha)
        k = self.signal_variance * base ** (-self.alpha)
        # dk/d log l_d = k * alpha * (per_dim_d / alpha) / base = k * per_dim_d / base
        grads = np.empty((self.n_params, x.shape[0], x.shape[0]))
        for d in range(self.input_dim):
            grads[d] = k * per_dim[:, :, d] / base
        grads[self.input_dim] = k
        return grads


class SumKernel(Kernel):
    """Sum of two kernels over the same input space.

    Parameter vector is the concatenation ``[params(k1), params(k2)]``;
    the diagonal / gradients compose additively.  Useful for modelling a
    smooth global trend plus short-range structure.
    """

    def __init__(self, first: Kernel, second: Kernel):
        if first.input_dim != second.input_dim:
            raise ValueError("summed kernels must share input_dim")
        self.first = first
        self.second = second
        self.input_dim = first.input_dim

    @property
    def n_params(self) -> int:
        return self.first.n_params + self.second.n_params

    def get_params(self):
        return np.concatenate([self.first.get_params(), self.second.get_params()])

    def set_params(self, params):
        params = np.asarray(params, dtype=float).ravel()
        if params.shape[0] != self.n_params:
            raise ValueError(f"expected {self.n_params} params, got {params.shape[0]}")
        split = self.first.n_params
        self.first.set_params(params[:split])
        self.second.set_params(params[split:])

    def __call__(self, x1, x2=None):
        return self.first(x1, x2) + self.second(x1, x2)

    def diag(self, x):
        return self.first.diag(x) + self.second.diag(x)

    def gradients(self, x):
        return np.concatenate(
            [self.first.gradients(x), self.second.gradients(x)], axis=0
        )

    def param_bounds(self):
        return self.first.param_bounds() + self.second.param_bounds()

    def sample_params(self, rng, span):
        return np.concatenate(
            [self.first.sample_params(rng, span), self.second.sample_params(rng, span)]
        )


KERNELS = {
    "rbf": RBF,
    "gaussian": RBF,
    "matern52": Matern52,
    "rq": RationalQuadratic,
}


def make_kernel(name: str, input_dim: int, **kwargs) -> Kernel:
    """Construct a kernel by lowercase name (``rbf``/``gaussian``/``matern52``)."""
    try:
        cls = KERNELS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown kernel {name!r}; choose from {sorted(KERNELS)}"
        ) from None
    return cls(input_dim, **kwargs)
