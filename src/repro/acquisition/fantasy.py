"""Fantasy (constant-liar / Kriging-believer) updates for q-point proposals.

Greedy q-point acquisition picks candidates one at a time; between picks the
surrogates must pretend the pending candidates have already been evaluated,
otherwise every pick lands on the same argmax.  The pretend value is the
*lie*:

* ``"believer"`` — the model's own posterior mean at the pending point
  (Kriging believer); also used for every constraint model regardless of
  strategy, since constraint means are the natural feasibility stand-in.
* ``"cl-min"`` / ``"cl-max"`` — the best / worst objective value observed
  so far (classic constant liar; ``cl-min`` is optimistic and explores
  harder, ``cl-max`` is pessimistic and packs picks tighter).

Two conditioning paths exist.  The batched :class:`~repro.core.batched_gp.
SurrogateBank` exposes ``fantasize`` (a cheap posterior-only rank update
through the stacked engine).  For the per-target legacy surrogates this
module provides :class:`FantasyModelSet`: models exposing ``condition_on``
get the same posterior-only update, anything else (e.g. the WEIBO GP
baseline) is refit on the augmented dataset — the textbook constant-liar
procedure.
"""

from __future__ import annotations

import numpy as np

FANTASY_STRATEGIES = ("believer", "cl-min", "cl-max")


def objective_lie(
    objective_model, u: np.ndarray, observed: np.ndarray, strategy: str
) -> float:
    """The lie value recorded for the objective at pending point ``u``.

    Constant-liar strategies take the extremum over the *finite* observed
    objectives only: a single NaN/inf from a failed simulation would
    otherwise poison every subsequent ``cl-min``/``cl-max`` lie (NaN wins
    both ``np.min`` and ``np.max``) and, through the fantasy update, the
    surrogate fit itself.  With no finite observation at all the lie falls
    back to the believer (posterior-mean) value, which is always finite.
    """
    if strategy not in FANTASY_STRATEGIES:
        raise ValueError(
            f"fantasy strategy must be one of {FANTASY_STRATEGIES}, got {strategy!r}"
        )
    observed = np.asarray(observed, dtype=float)
    finite = observed[np.isfinite(observed)] if observed.size else observed
    if strategy == "cl-min" and finite.size:
        return float(np.min(finite))
    if strategy == "cl-max" and finite.size:
        return float(np.max(finite))
    mean, _ = objective_model.predict(np.atleast_2d(np.asarray(u, dtype=float)))
    return float(np.asarray(mean).ravel()[0])


def fantasy_lies(
    objective_model, constraint_models, u: np.ndarray, observed: np.ndarray, strategy: str
) -> tuple[float, list[float]]:
    """Objective and constraint lies for one pending point, in one call.

    Convenience wrapper shared by the batch (q-point) and asynchronous
    proposers: the objective lie follows ``strategy``, constraints always
    take believer (posterior-mean) lies.
    """
    return (
        objective_lie(objective_model, u, observed, strategy),
        constraint_lies(constraint_models, u),
    )


def constraint_lies(constraint_models, u: np.ndarray) -> list[float]:
    """Believer lies (posterior means) for every constraint at ``u``."""
    u2 = np.atleast_2d(np.asarray(u, dtype=float))
    lies = []
    for model in constraint_models:
        mean, _ = model.predict(u2)
        lies.append(float(np.asarray(mean).ravel()[0]))
    return lies


class FantasyModelSet:
    """Per-target surrogates plus the training data their fantasies extend.

    Wraps the legacy (non-bank) fit of one BO iteration: the objective
    model, the constraint models, and the sanitized targets each was
    fitted on.  :meth:`add_fantasy` conditions every model on a pending
    point — via ``condition_on`` when the model supports a posterior-only
    update, else by refitting on the augmented dataset.  Models are
    per-iteration throwaways, so conditioning mutates them in place.
    """

    def __init__(self, x, objective_model, objective_y, constraint_models, constraint_ys):
        self._x_rows = [np.asarray(x, dtype=float)]
        self.objective_model = objective_model
        self._objective_y = [np.asarray(objective_y, dtype=float)]
        self.constraint_models = list(constraint_models)
        self._constraint_ys = [
            [np.asarray(y, dtype=float)] for y in constraint_ys
        ]

    @property
    def n_fantasies(self) -> int:
        """Pending points currently conditioning the models."""
        return len(self._x_rows) - 1

    def add_fantasy(self, u: np.ndarray, obj_lie: float, cons_lies) -> None:
        """Condition all models on a fantasy observation of ``u``."""
        u = np.asarray(u, dtype=float).ravel()
        cons_lies = list(cons_lies)
        if len(cons_lies) != len(self.constraint_models):
            raise ValueError(
                f"expected {len(self.constraint_models)} constraint lies, "
                f"got {len(cons_lies)}"
            )
        self._x_rows.append(u[None, :])
        self._objective_y.append(np.array([float(obj_lie)]))
        for ys, lie in zip(self._constraint_ys, cons_lies):
            ys.append(np.array([float(lie)]))
        x_aug = np.vstack(self._x_rows)
        self._condition(self.objective_model, u, obj_lie, x_aug, self._objective_y)
        for model, lie, ys in zip(self.constraint_models, cons_lies, self._constraint_ys):
            self._condition(model, u, lie, x_aug, ys)

    @staticmethod
    def _condition(model, u, lie, x_aug, y_rows):
        if hasattr(model, "condition_on"):
            model.condition_on(u, lie)
        else:
            model.fit(x_aug, np.concatenate(y_rows))
