"""Async-aware acquisition: local penalization and hallucinated UCB.

The batch/async proposers of PRs 2-3 coordinate concurrent picks by
*lying*: each pending design is absorbed into the surrogate as a fantasy
observation (constant liar / Kriging believer) and the acquisition is
re-maximized.  Lies work, but they fabricate data — a bad lie biases the
posterior until the real value lands, and every lie pays a posterior
refactorization.  This module implements the two standard lie-free
alternatives, selectable as ``SurrogateBO(pending_strategy=...)``:

* ``"penalize"`` — local penalization (Gonzalez et al. 2016, "Batch
  Bayesian optimization via local penalization").  The acquisition is
  evaluated on the *clean* posterior and multiplied by one penalty factor
  per pending point: ``phi(x; x_j)`` is the probability that the minimizer
  lies outside the exclusion ball around ``x_j`` implied by a Lipschitz
  bound on the objective.  Pending points predicted to be bad carve large
  exclusion balls; promising ones small balls — exactly the geometry the
  lies approximate, without touching the posterior.
* ``"hallucinate"`` — hallucinated confidence bounds (Desautels et al.
  2014, GP-BUCB).  Pending points are conditioned at their own posterior
  mean (a "hallucinated" observation: the mean surface is unchanged, the
  variance collapses near the pending set) and the acquisition switches to
  an optimistic improvement bound ``max(tau - (mu - kappa * sigma), 0)``
  weighted by the feasibility product.  The variance shrinkage alone
  steers the next pick away from in-flight designs; ``kappa`` plays the
  role of GP-BUCB's inflated confidence multiplier.

Both strategies are deterministic given the surrogate state: the Lipschitz
estimate samples a fixed internal low-discrepancy stream, so traces stay a
pure function of ``(seed, completion order)`` — the async replay contract.
"""

from __future__ import annotations

import numpy as np

from repro.acquisition.wei import WeightedExpectedImprovement

#: valid ``pending_strategy`` values for the batch/async proposers
PENDING_STRATEGIES = ("fantasy", "penalize", "hallucinate")

#: floor for the Lipschitz estimate: a flat posterior mean must still
#: yield a usable (tiny-ball) penalizer instead of dividing by zero
_MIN_LIPSCHITZ = 1e-6

_MIN_SIGMA = 1e-12


def estimate_lipschitz(
    model,
    dim: int,
    n_samples: int = 32,
    step: float = 1e-4,
    seed: int = 0,
) -> float:
    """Max-gradient-norm Lipschitz estimate of a posterior mean surface.

    Central finite differences of ``model.predict``'s mean at ``n_samples``
    uniform points in the unit box, all evaluated in ONE stacked predict
    call (``n_samples * 2 * dim`` rows) so the batched engine amortizes the
    forward pass.  The sample stream is seeded internally — never from the
    BO loop's generator — so calling this does not perturb the proposal RNG
    stream and the estimate is a pure function of the surrogate state.

    Models exposing the richer :class:`~repro.core.batched_gp.SurrogateBank`
    interface can use :meth:`~repro.core.batched_gp.SurrogateBank.
    estimate_target_lipschitz` directly; this helper only needs the plain
    ``predict`` protocol (legacy per-target surrogates, GP baselines).
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, 1.0, size=(n_samples, dim))
    offsets = step * np.eye(dim)
    plus = np.clip(centers[:, None, :] + offsets[None, :, :], 0.0, 1.0)
    minus = np.clip(centers[:, None, :] - offsets[None, :, :], 0.0, 1.0)
    queries = np.concatenate(
        [plus.reshape(-1, dim), minus.reshape(-1, dim)], axis=0
    )
    mean, _ = model.predict(queries)
    mean = np.asarray(mean, dtype=float).ravel()
    half = n_samples * dim
    # actual per-coordinate spacing (clipping at the box edge shrinks it)
    axes = np.arange(dim)
    spacing = np.maximum((plus - minus)[:, axes, axes], 1e-12)
    grads = (mean[:half] - mean[half:]).reshape(n_samples, dim) / spacing
    grad_norms = np.linalg.norm(grads, axis=1)
    grad_norms = grad_norms[np.isfinite(grad_norms)]
    if grad_norms.size == 0:
        return _MIN_LIPSCHITZ
    return float(max(np.max(grad_norms), _MIN_LIPSCHITZ))


class LocalPenalizer:
    """Multiplicative penalties around pending points (Gonzalez et al. 2016).

    For each pending design ``x_j`` with clean-posterior moments
    ``(mu_j, sigma_j)`` and incumbent minimum ``best``, the exclusion ball
    has radius ``(f(x_j) - best) / lipschitz`` under an ``L``-Lipschitz
    objective; the penalty is the Gaussian probability that ``x`` lies
    outside it::

        phi(x; x_j) = Phi((L * ||x - x_j|| - (mu_j - best)) / sigma_j)

    Values are in ``(0, 1]`` per pending point; :meth:`__call__` returns
    the product (or the log-sum via :meth:`log_penalty`).

    Parameters
    ----------
    pending:
        Sequence of unit-box designs currently in flight.
    means, variances:
        Clean-posterior objective moments at the pending points (one value
        each per pending design).
    best:
        Best (minimum) objective observed so far; non-finite values fall
        back to the smallest pending mean (pure feasibility search).
    lipschitz:
        Lipschitz estimate of the objective posterior mean (see
        :func:`estimate_lipschitz`); floored at a tiny positive value.
    """

    def __init__(self, pending, means, variances, best: float, lipschitz: float):
        self.pending = np.atleast_2d(np.asarray(pending, dtype=float))
        means = np.asarray(means, dtype=float).ravel()
        variances = np.asarray(variances, dtype=float).ravel()
        if means.shape[0] != self.pending.shape[0]:
            raise ValueError(
                f"expected {self.pending.shape[0]} pending means, got {means.shape[0]}"
            )
        if variances.shape != means.shape:
            raise ValueError(
                f"means and variances must align, got shapes "
                f"{means.shape} vs {variances.shape}"
            )
        self.means = means
        self.sigmas = np.sqrt(np.maximum(variances, _MIN_SIGMA**2))
        if not np.isfinite(best):
            finite = means[np.isfinite(means)]
            best = float(np.min(finite)) if finite.size else 0.0
        self.best = float(best)
        self.lipschitz = float(max(lipschitz, _MIN_LIPSCHITZ))

    @property
    def n_pending(self) -> int:
        """Number of pending points being penalized."""
        return self.pending.shape[0]

    def _z(self, x: np.ndarray) -> np.ndarray:
        """Standardized ball-boundary distances, shape ``(n, n_pending)``."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        dists = np.linalg.norm(x[:, None, :] - self.pending[None, :, :], axis=2)
        radius = (self.means - self.best)[None, :]
        return (self.lipschitz * dists - radius) / self.sigmas[None, :]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Product of per-pending penalties, shape ``(n,)``, in ``(0, 1]``."""
        from scipy.special import ndtr

        return np.prod(ndtr(self._z(x)), axis=1)

    def log_penalty(self, x: np.ndarray) -> np.ndarray:
        """Sum of per-pending log-penalties (log-space acquisition path)."""
        from scipy.special import log_ndtr

        return np.sum(log_ndtr(self._z(x)), axis=1)

    def __repr__(self) -> str:
        return (
            f"LocalPenalizer(n_pending={self.n_pending}, "
            f"L={self.lipschitz:.3g}, best={self.best:.4g})"
        )


class PenalizedAcquisition:
    """A base acquisition multiplied by a :class:`LocalPenalizer`.

    ``log_space=True`` treats the base value as a log-acquisition (the
    :class:`~repro.acquisition.wei.WeightedExpectedImprovement` log path)
    and *adds* the log-penalty — the same monotone transform, so the argmax
    geometry matches the plain-space product exactly.
    """

    def __init__(self, base, penalizer: LocalPenalizer, log_space: bool = False):
        self.base = base
        self.penalizer = penalizer
        self.log_space = bool(log_space)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        value = np.asarray(self.base(x), dtype=float)
        if self.log_space:
            return value + self.penalizer.log_penalty(x)
        return value * self.penalizer(x)

    def __repr__(self) -> str:
        return f"PenalizedAcquisition({self.base!r}, {self.penalizer!r})"


class HallucinatedUCB(WeightedExpectedImprovement):
    """Optimistic-improvement acquisition over a hallucinated posterior.

    The GP-BUCB criterion adapted to the constrained minimization setting:
    with the pending set conditioned at its posterior means (variance
    shrinks near in-flight designs, the mean surface is untouched), the
    next pick maximizes::

        max(tau - (mu(x) - kappa * sigma(x)), 0) * prod_i PF_i(x)

    — the optimistic improvement of the lower confidence bound over the
    incumbent ``tau``, weighted by the probability of feasibility.  The
    whole PF-product machinery (plain and log-space, and the
    no-incumbent degeneration to the pure feasibility product) is
    inherited from :class:`~repro.acquisition.wei.
    WeightedExpectedImprovement`; only the improvement factor differs.
    ``kappa`` is GP-BUCB's confidence multiplier: larger values inflate
    the variance term, spreading concurrent picks further apart.
    """

    def __init__(
        self,
        objective_model,
        constraint_models,
        tau: float | None,
        kappa: float = 2.0,
        log_space: bool = False,
    ):
        if kappa < 0:
            raise ValueError(f"kappa must be non-negative, got {kappa}")
        super().__init__(objective_model, constraint_models, tau, log_space=log_space)
        self.kappa = float(kappa)

    def _improvement(self, x: np.ndarray) -> np.ndarray:
        mean, var = self.objective_model.predict(x)
        mean = np.asarray(mean, dtype=float)
        sigma = np.sqrt(np.maximum(np.asarray(var, dtype=float), _MIN_SIGMA**2))
        return np.maximum(self.tau - (mean - self.kappa * sigma), 0.0)

    def __repr__(self) -> str:
        phase = "feasibility-search" if self.tau is None else f"tau={self.tau:.4g}"
        return (
            f"HallucinatedUCB({phase}, kappa={self.kappa}, "
            f"n_constraints={len(self.constraint_models)})"
        )


def validate_pending_strategy(strategy: str, acquisition: str) -> str:
    """Check a ``pending_strategy`` spec against the acquisition family.

    ``"penalize"`` and ``"hallucinate"`` reshape the wEI surface around the
    pending set; Thompson sampling diversifies by drawing posterior
    functions and has no lie to replace, so only ``"fantasy"`` composes
    with it.
    """
    if strategy not in PENDING_STRATEGIES:
        raise ValueError(
            f"pending_strategy must be one of {PENDING_STRATEGIES}, got {strategy!r}"
        )
    if strategy != "fantasy" and acquisition != "wei":
        raise ValueError(
            f"pending_strategy={strategy!r} requires acquisition='wei' "
            f"(got {acquisition!r}); Thompson batches diversify by posterior "
            "sampling and keep pending_strategy='fantasy'"
        )
    return strategy


__all__ = [
    "HallucinatedUCB",
    "LocalPenalizer",
    "PENDING_STRATEGIES",
    "PenalizedAcquisition",
    "estimate_lipschitz",
    "validate_pending_strategy",
]
