"""Proposal subspaces: where the inner-loop maximizer is allowed to look.

Full-space acquisition maximization stalls in high dimension: DE needs a
population of ``4 * dim`` and the Nelder-Mead polish budget grows with
``dim``, so the proposal cycle explodes exactly where the acquisition
surface is flattest.  LinEasyBO (arXiv 2109.00617) keeps analog-sizing BO
effective at high ``d`` by maximizing along one-dimensional subspaces, and
TuRBO-style trust regions restrict proposals to a box around the
incumbent that grows on success and shrinks on failure.

A :class:`ProposalSpace` decides, per proposal, the region to search:

* :class:`FullSpace` — the whole unit box (the historical path; the
  driver skips the wrapper entirely so the default stays bitwise
  unchanged),
* :class:`LineSpace` — a fan of random one-dimensional lines through
  the incumbent, each clipped to the unit box and maximized by a dense
  1-D scan plus a bounded scalar polish in the embedded coordinate (the
  best champion across the fan wins),
* :class:`TrustRegionSpace` — a TuRBO-style box around the incumbent
  with success/failure counters driving expand/shrink; the embedded
  maximizer is a chunked candidate scan with a capped polish.

:class:`SubspaceMaximizer` composes a space with any
:class:`~repro.acquisition.maximize.AcquisitionMaximizer`: it embeds the
acquisition into the space's coordinates, runs the space's embedded
engine (or the wrapped inner maximizer), and lifts the champion back to
the unit box — so greedy q-batches, the pending-point strategies and the
async refill proposer all compose with subspace proposals unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.acquisition.maximize import (
    AcquisitionMaximizer,
    ScanPolishMaximizer,
    _masked_values,
)
from repro.utils.rng import ensure_rng

#: proposal-space specs resolvable by :func:`make_proposal_space`
PROPOSAL_SPACES = ("full", "line", "trust-region")


@dataclass(frozen=True)
class TrustRegionConfig:
    """Knobs of the TuRBO-style trust region (unit-box side lengths).

    The region is a box of side ``length`` centred on the incumbent,
    clipped to ``[0, 1]^d``.  ``success_tolerance`` consecutive improving
    landings expand ``length`` by ``expand`` (capped at ``length_max``);
    ``failure_tolerance`` consecutive non-improving landings shrink it by
    ``shrink``.  A region shrunk below ``length_min`` restarts at
    ``length_init`` (the TuRBO restart rule — the region has collapsed
    onto a local optimum and searching it further is wasted budget).
    ``n_candidates`` sizes the embedded candidate scan.
    """

    length_init: float = 0.8
    length_min: float = 0.5**7
    length_max: float = 1.6
    success_tolerance: int = 3
    failure_tolerance: int = 8
    shrink: float = 0.5
    expand: float = 2.0
    n_candidates: int = 2048

    def __post_init__(self):
        if not 0.0 < self.length_min <= self.length_init <= self.length_max:
            raise ValueError(
                "trust-region lengths must satisfy 0 < length_min <= "
                f"length_init <= length_max, got length_min={self.length_min}, "
                f"length_init={self.length_init}, length_max={self.length_max}"
            )
        if not 0.0 < self.shrink < 1.0:
            raise ValueError(f"shrink must be in (0, 1), got {self.shrink}")
        if self.expand <= 1.0:
            raise ValueError(f"expand must be > 1, got {self.expand}")
        for name in ("success_tolerance", "failure_tolerance", "n_candidates"):
            value = int(getattr(self, name))
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
            object.__setattr__(self, name, value)


class LineFrame:
    """Affine map from ``z in [0, 1]`` onto a line segment in the unit box.

    The segment is ``center + t * direction`` for ``t in [t_lo, t_hi]``
    (the intersection of the line with ``[0, 1]^d``); ``z`` parametrizes
    it linearly.
    """

    def __init__(self, center: np.ndarray, direction: np.ndarray,
                 t_lo: float, t_hi: float):
        self.center = np.asarray(center, dtype=float)
        self.direction = np.asarray(direction, dtype=float)
        self.t_lo = float(t_lo)
        self.t_hi = float(t_hi)

    @property
    def dim(self) -> int:
        return 1

    def lift(self, z: np.ndarray) -> np.ndarray:
        """Map embedded points ``z`` of shape ``(n, 1)`` to ``(n, d)``."""
        z = np.atleast_2d(np.asarray(z, dtype=float))
        t = self.t_lo + z[:, 0] * (self.t_hi - self.t_lo)
        x = self.center[None, :] + t[:, None] * self.direction[None, :]
        # the endpoints are exact by construction; interior points can
        # drift out by float error, so clip defensively
        return np.clip(x, 0.0, 1.0)


class BoxFrame:
    """Affine map from ``[0, 1]^d`` onto an axis-aligned sub-box."""

    def __init__(self, lo: np.ndarray, hi: np.ndarray):
        self.lo = np.asarray(lo, dtype=float)
        self.hi = np.asarray(hi, dtype=float)

    @property
    def dim(self) -> int:
        return self.lo.shape[0]

    def lift(self, z: np.ndarray) -> np.ndarray:
        z = np.atleast_2d(np.asarray(z, dtype=float))
        return self.lo[None, :] + z * (self.hi - self.lo)[None, :]


class EmbeddedAcquisition:
    """An acquisition evaluated through a frame's lift map."""

    def __init__(self, acquisition, frame):
        self.acquisition = acquisition
        self.frame = frame

    def __call__(self, z: np.ndarray) -> np.ndarray:
        return self.acquisition(self.frame.lift(z))


class ProposalSpace:
    """Strategy interface: pick the subregion each proposal searches.

    ``frame(dim, incumbent, rng)`` returns the embedding for one proposal
    (``None`` means "the full box" — the wrapper then delegates to the
    inner maximizer untouched).  ``observe(improved)`` feeds landing
    outcomes to adaptive spaces (trust-region counters); the state
    travels through study checkpoints via ``state_to_dict`` /
    ``restore_state``.
    """

    name = "full"

    def frame(self, dim: int, incumbent, rng):
        """The embedding for the next proposal (``None`` = full box)."""
        raise NotImplementedError

    def frames(self, dim: int, incumbent, rng) -> list:
        """The embeddings searched for one proposal (champion-of-frames).

        Most spaces search a single frame; :class:`LineSpace` returns a
        fan of lines and the wrapper keeps the best champion across them.
        """
        return [self.frame(dim, incumbent, rng)]

    def embedded_maximizer(self, inner: AcquisitionMaximizer):
        """The engine run in embedded coordinates (default: the wrapped one)."""
        return inner

    def observe(self, improved: bool) -> None:
        """Feed one landing outcome (no-op for non-adaptive spaces)."""

    def state_to_dict(self) -> dict:
        """JSON-safe adaptive state (empty for stateless spaces)."""
        return {}

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`state_to_dict`."""


class FullSpace(ProposalSpace):
    """The whole unit box — the historical proposal path."""

    name = "full"

    def frame(self, dim: int, incumbent, rng):
        return None


class DenseLineMaximizer(AcquisitionMaximizer):
    """Dense 1-D grid scan plus a bounded scalar polish.

    The embedded engine of :class:`LineSpace`: evaluate the acquisition
    on ``n_grid`` equispaced points of the segment in ONE batched call,
    then refine the champion with bounded golden-section/Brent descent
    inside its grid cell.  Cost is independent of the ambient dimension.
    """

    def __init__(self, n_grid: int = 256, polish: bool = True,
                 polish_xatol: float = 1e-6):
        if n_grid < 2:
            raise ValueError(f"n_grid must be >= 2, got {n_grid}")
        self.n_grid = int(n_grid)
        self.polish = bool(polish)
        self.polish_xatol = float(polish_xatol)

    def maximize(self, acquisition, dim: int, rng=None) -> np.ndarray:
        if dim != 1:
            raise ValueError(
                f"DenseLineMaximizer works in 1 embedded dimension, got {dim}"
            )
        grid = np.linspace(0.0, 1.0, self.n_grid)
        values = _masked_values(acquisition(grid[:, None]))
        i = int(np.argmax(values))
        z0, f0 = float(grid[i]), float(values[i])
        if not (self.polish and np.isfinite(f0)):
            return np.array([z0])
        lo = float(grid[max(i - 1, 0)])
        hi = float(grid[min(i + 1, self.n_grid - 1)])

        def negative(z: float) -> float:
            value = float(
                _masked_values(acquisition(np.array([[np.clip(z, 0.0, 1.0)]])))[0]
            )
            return -value if np.isfinite(value) else np.inf

        from scipy import optimize as sopt

        res = sopt.minimize_scalar(
            negative, bounds=(lo, hi), method="bounded",
            options={"xatol": self.polish_xatol},
        )
        if np.isfinite(res.fun) and -float(res.fun) >= f0:
            return np.array([float(np.clip(res.x, 0.0, 1.0))])
        return np.array([z0])


class LineSpace(ProposalSpace):
    """A fan of random one-dimensional lines through the incumbent.

    LinEasyBO-style: each proposal draws ``n_lines`` fresh isotropic
    directions, intersects each line through the incumbent with the unit
    box, maximizes the acquisition along every segment with
    :class:`DenseLineMaximizer`, and keeps the best champion across the
    fan.  One random line often points nowhere useful — on constrained
    problems progress needs directions with the right projection onto the
    active coordinates — and a small fan fixes that failure mode while
    the proposal cost stays ``O(n_lines * n_grid)`` surrogate
    evaluations, independent of the ambient dimension.  Greedy q-batches
    search q *different* fans — the direction draws are part of the
    proposal RNG stream, so runs stay seeded-deterministic.
    """

    name = "line"

    def __init__(self, n_grid: int = 256, polish: bool = True,
                 n_lines: int = 4):
        if n_lines < 1:
            raise ValueError(f"n_lines must be >= 1, got {n_lines}")
        self.n_lines = int(n_lines)
        self._engine = DenseLineMaximizer(n_grid=n_grid, polish=polish)

    def frame(self, dim: int, incumbent, rng):
        rng = ensure_rng(rng)
        center = (
            np.full(dim, 0.5)
            if incumbent is None
            else np.clip(np.asarray(incumbent, dtype=float), 0.0, 1.0)
        )
        direction = rng.standard_normal(dim)
        norm = float(np.linalg.norm(direction))
        if norm == 0.0 or not np.isfinite(norm):  # pathological draw
            direction = np.zeros(dim)
            direction[0] = 1.0
        else:
            direction = direction / norm
        t_lo, t_hi = _segment_range(center, direction)
        return LineFrame(center, direction, t_lo, t_hi)

    def frames(self, dim: int, incumbent, rng) -> list:
        return [self.frame(dim, incumbent, rng) for _ in range(self.n_lines)]

    def embedded_maximizer(self, inner: AcquisitionMaximizer):
        return self._engine


class TrustRegionSpace(ProposalSpace):
    """A TuRBO-style box around the incumbent with adaptive side length.

    ``observe(improved)`` drives the success/failure counters;
    ``state_to_dict``/``restore_state`` round-trip the adaptive state
    through :meth:`repro.bo.study.Study.checkpoint`, so a resumed study
    continues with the exact region the interrupted run had reached.
    """

    name = "trust-region"

    def __init__(self, config: TrustRegionConfig | None = None):
        self.config = config if config is not None else TrustRegionConfig()
        self.length = float(self.config.length_init)
        self.n_success = 0
        self.n_failure = 0
        self.n_expansions = 0
        self.n_shrinks = 0
        self.n_restarts = 0
        self._engine = ScanPolishMaximizer(
            n_samples=self.config.n_candidates
        )

    def frame(self, dim: int, incumbent, rng):
        center = (
            np.full(dim, 0.5)
            if incumbent is None
            else np.clip(np.asarray(incumbent, dtype=float), 0.0, 1.0)
        )
        half = 0.5 * self.length
        lo = np.clip(center - half, 0.0, 1.0)
        hi = np.clip(center + half, 0.0, 1.0)
        return BoxFrame(lo, hi)

    def embedded_maximizer(self, inner: AcquisitionMaximizer):
        return self._engine

    def observe(self, improved: bool) -> None:
        cfg = self.config
        if improved:
            self.n_success += 1
            self.n_failure = 0
            if self.n_success >= cfg.success_tolerance:
                self.length = min(self.length * cfg.expand, cfg.length_max)
                self.n_success = 0
                self.n_expansions += 1
        else:
            self.n_failure += 1
            self.n_success = 0
            if self.n_failure >= cfg.failure_tolerance:
                self.length *= cfg.shrink
                self.n_failure = 0
                self.n_shrinks += 1
                if self.length < cfg.length_min:
                    self.length = float(cfg.length_init)
                    self.n_restarts += 1

    def state_to_dict(self) -> dict:
        return {
            "length": self.length,
            "n_success": self.n_success,
            "n_failure": self.n_failure,
            "n_expansions": self.n_expansions,
            "n_shrinks": self.n_shrinks,
            "n_restarts": self.n_restarts,
        }

    def restore_state(self, state: dict) -> None:
        self.length = float(state["length"])
        self.n_success = int(state["n_success"])
        self.n_failure = int(state["n_failure"])
        self.n_expansions = int(state.get("n_expansions", 0))
        self.n_shrinks = int(state.get("n_shrinks", 0))
        self.n_restarts = int(state.get("n_restarts", 0))


class SubspaceMaximizer(AcquisitionMaximizer):
    """Run any maximizer inside the active proposal subspace.

    The driver sets the incumbent (best-known unit design) before each
    proposal round; ``maximize`` asks the space for a frame, maximizes the
    embedded acquisition with the space's engine, and lifts the champion
    back to the unit box.  A ``None`` frame (the full space) delegates to
    the wrapped maximizer untouched, so q-batches and the pending-point
    machinery — which only ever call ``maximize`` — compose unchanged.
    """

    def __init__(self, space: ProposalSpace, inner: AcquisitionMaximizer):
        self.space = space
        self.inner = inner
        self.incumbent: np.ndarray | None = None

    def set_incumbent(self, u) -> None:
        """Record the current best unit-box design (``None`` = box centre)."""
        self.incumbent = None if u is None else np.asarray(u, dtype=float).ravel()

    def maximize(self, acquisition, dim: int, rng=None) -> np.ndarray:
        rng = ensure_rng(rng)
        frames = self.space.frames(dim, self.incumbent, rng)
        if len(frames) == 1 and frames[0] is None:
            return self.inner.maximize(acquisition, dim, rng)
        engine = self.space.embedded_maximizer(self.inner)
        best_x: np.ndarray | None = None
        best_value = -np.inf
        for frame in frames:
            z = engine.maximize(
                EmbeddedAcquisition(acquisition, frame), frame.dim, rng
            )
            x = frame.lift(np.atleast_2d(z))[0]
            value = float(_masked_values(acquisition(x[None, :]))[0])
            if best_x is None or value > best_value:
                best_x, best_value = x, value
        return best_x


def _segment_range(center: np.ndarray, direction: np.ndarray) -> tuple[float, float]:
    """The ``t`` range keeping ``center + t * direction`` inside the box.

    ``center`` is inside ``[0, 1]^d``, so the range always contains 0; a
    degenerate corner case (center at a vertex, direction pointing out)
    collapses to ``[0, 0]`` and the duplicate filter downstream resamples.
    """
    t_lo, t_hi = -np.inf, np.inf
    for c, v in zip(center, direction):
        if v == 0.0:
            continue
        bounds = sorted(((0.0 - c) / v, (1.0 - c) / v))
        t_lo = max(t_lo, bounds[0])
        t_hi = min(t_hi, bounds[1])
    if not np.isfinite(t_lo) or not np.isfinite(t_hi) or t_hi < t_lo:
        return 0.0, 0.0
    return float(t_lo), float(t_hi)


def incumbent_index(result) -> int | None:
    """Record index of the incumbent design of a history.

    Best feasible record when one exists; otherwise the least-violating
    record (ties broken by objective) — the same point a human would call
    "current best" while the run is still hunting for feasibility.
    """
    best = result.best_feasible()
    if best is not None:
        return best.index
    best_idx = None
    best_key = None
    for record in result.records:
        violation = record.evaluation.violation
        objective = record.evaluation.objective
        key = (
            violation if np.isfinite(violation) else np.inf,
            objective if np.isfinite(objective) else np.inf,
        )
        if best_key is None or key < best_key:
            best_key = key
            best_idx = record.index
    return best_idx


def make_proposal_space(
    spec: str, trust_region: TrustRegionConfig | None = None
) -> ProposalSpace | None:
    """Build the space for an :class:`~repro.bo.config.AcquisitionConfig` spec.

    Returns ``None`` for ``"full"`` — the driver then keeps its maximizer
    unwrapped, so the default path stays bitwise identical to the
    pre-subspace code.
    """
    spec = str(spec).replace("_", "-").lower()
    if spec not in PROPOSAL_SPACES:
        raise ValueError(
            f"proposal_space must be one of {PROPOSAL_SPACES}, got {spec!r}"
        )
    if spec == "full":
        return None
    if spec == "line":
        return LineSpace()
    return TrustRegionSpace(trust_region)


__all__ = [
    "PROPOSAL_SPACES",
    "BoxFrame",
    "DenseLineMaximizer",
    "EmbeddedAcquisition",
    "FullSpace",
    "LineFrame",
    "LineSpace",
    "ProposalSpace",
    "SubspaceMaximizer",
    "TrustRegionConfig",
    "TrustRegionSpace",
    "incumbent_index",
    "make_proposal_space",
]
