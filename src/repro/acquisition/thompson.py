"""Thompson-sampling acquisition over the NN-GP's weight-space posterior.

An *extension* beyond the paper: because the paper's surrogate is a
Bayesian linear model over learned features (eq. 8), an exact posterior
function sample is just one draw ``w ~ N(A^{-1} Phi y, sigma_n^2 A^{-1})``
followed by ``f_s(x) = phi(x)^T w`` — O(M) per query, independent of the
number of observations.  Classic GPs need O(N) per query plus an O(N^3)
factorization for joint samples, so cheap Thompson sampling is a concrete
payoff of the weight-space view worth demonstrating.

Constrained handling: sample one function per constraint model as well and
minimize the sampled objective over the sampled-feasible region; points
whose sampled constraints are violated are ranked by violation (so the
proposer degenerates to feasibility search when nothing is feasible,
mirroring the wEI behaviour).
"""

from __future__ import annotations

import numpy as np

from repro.core.ensemble import DeepEnsemble
from repro.core.feature_gp import NeuralFeatureGP
from repro.utils.rng import ensure_rng


def _draw_member(model, rng):
    """Pick the sampled model: ensembles first choose a member uniformly."""
    if isinstance(model, DeepEnsemble):
        return model.members[int(rng.integers(model.n_members))]
    members = getattr(model, "members", None)
    if members is not None:  # duck-typed ensemble adapters (_TrainedEnsemble)
        return members[int(rng.integers(len(members)))]
    return model


class SampledFunction:
    """One exact posterior draw ``f_s(x) = phi(x)^T w_s`` of a fitted model."""

    def __init__(self, model: NeuralFeatureGP, rng=None):
        if not isinstance(model, NeuralFeatureGP):
            raise TypeError(
                "SampledFunction requires a NeuralFeatureGP (weight-space view)"
            )
        self.model = model
        rng = ensure_rng(rng)
        self.weights = model.sample_head_weights(1, rng=rng)[0]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the sampled function, in original target units."""
        feats = self.model.features(np.atleast_2d(np.asarray(x, dtype=float)))
        z = feats @ self.weights
        return self.model._y_scaler.inverse_transform(z)


class BankThompsonAcquisition:
    """One constrained Thompson draw through a stacked :class:`SurrogateBank`.

    The bank counterpart of :class:`ThompsonSamplingAcquisition`: for every
    target (objective first, then each constraint) a member is chosen
    uniformly and an exact weight-space posterior function is sampled from
    that member's slice.  One stacked forward pass serves all targets per
    evaluation, so a q-point Thompson batch costs q acquisition
    maximizations over the same batched predict path the wEI loop uses.

    Build a fresh instance per draw (one object = one sampled function per
    target, as with the serial class).
    """

    _INFEASIBLE_OFFSET = 1e6

    def __init__(self, bank, rng=None):
        rng = ensure_rng(rng)
        self.bank = bank
        gp = bank.gp
        self._slices: list[int] = []
        self._weights: list[np.ndarray] = []
        for t in range(bank.n_targets):
            k = int(rng.integers(bank.n_members))
            s = t * bank.n_members + k
            self._slices.append(s)
            self._weights.append(gp.sample_slice_weights(s, rng=rng))

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        gp = self.bank.gp
        feats = gp.features(x)
        values = [
            (feats[s] @ w) * float(gp._y_scale[s]) + float(gp._y_mean[s])
            for s, w in zip(self._slices, self._weights)
        ]
        objective = values[0]
        if len(values) == 1:
            return -objective
        violation = np.zeros(x.shape[0])
        for sampled_g in values[1:]:
            violation += np.maximum(sampled_g, 0.0)
        feasible = violation <= 0.0
        return np.where(
            feasible, -objective, -(self._INFEASIBLE_OFFSET + violation)
        )


class ThompsonSamplingAcquisition:
    """Callable acquisition realizing one constrained Thompson draw.

    Maximizing this callable implements "minimize the sampled objective
    subject to the sampled constraints": the value is ``-f_s(x)`` where all
    sampled constraints are satisfied and ``-(violation + offset)`` (always
    worse) elsewhere.

    Parameters
    ----------
    objective_model, constraint_models:
        Fitted NN-GP models or ensembles thereof (one function is sampled
        from each; ensembles sample a uniformly-chosen member — the
        standard ensemble-Thompson scheme).
    rng:
        Randomness for the draw; one acquisition object = one draw, so
        build a fresh instance per BO iteration.
    """

    _INFEASIBLE_OFFSET = 1e6

    def __init__(self, objective_model, constraint_models=(), rng=None):
        rng = ensure_rng(rng)
        self.objective_sample = SampledFunction(_draw_member(objective_model, rng), rng)
        self.constraint_samples = [
            SampledFunction(_draw_member(model, rng), rng)
            for model in constraint_models
        ]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        objective = self.objective_sample(x)
        if not self.constraint_samples:
            return -objective
        violation = np.zeros(x.shape[0])
        for sample in self.constraint_samples:
            violation += np.maximum(sample(x), 0.0)
        feasible = violation <= 0.0
        value = np.where(
            feasible, -objective, -(self._INFEASIBLE_OFFSET + violation)
        )
        return value
