"""Acquisition functions and maximizers for constrained Bayesian optimization.

The paper uses weighted Expected Improvement (eq. 7): EI of the objective
(eq. 5–6) multiplied by the probability of satisfying every constraint.
Plain EI, PI, LCB/UCB and PoF are provided as building blocks, and
``maximize`` contains the inner "optimize engine" of Fig. 2.
"""

from repro.acquisition.base import (
    expected_improvement,
    lower_confidence_bound,
    probability_of_feasibility,
    probability_of_improvement,
    upper_confidence_bound,
)
from repro.acquisition.fantasy import (
    FANTASY_STRATEGIES,
    FantasyModelSet,
    constraint_lies,
    objective_lie,
)
from repro.acquisition.maximize import (
    AcquisitionMaximizer,
    DifferentialEvolutionMaximizer,
    RandomSearchMaximizer,
    ScanPolishMaximizer,
)
from repro.acquisition.penalization import (
    PENDING_STRATEGIES,
    HallucinatedUCB,
    LocalPenalizer,
    PenalizedAcquisition,
    estimate_lipschitz,
)
from repro.acquisition.spaces import (
    PROPOSAL_SPACES,
    LineSpace,
    ProposalSpace,
    SubspaceMaximizer,
    TrustRegionConfig,
    TrustRegionSpace,
    make_proposal_space,
)
from repro.acquisition.wei import WeightedExpectedImprovement

__all__ = [
    "AcquisitionMaximizer",
    "DifferentialEvolutionMaximizer",
    "FANTASY_STRATEGIES",
    "FantasyModelSet",
    "HallucinatedUCB",
    "LineSpace",
    "LocalPenalizer",
    "PENDING_STRATEGIES",
    "PROPOSAL_SPACES",
    "PenalizedAcquisition",
    "ProposalSpace",
    "RandomSearchMaximizer",
    "ScanPolishMaximizer",
    "SubspaceMaximizer",
    "TrustRegionConfig",
    "TrustRegionSpace",
    "WeightedExpectedImprovement",
    "make_proposal_space",
    "constraint_lies",
    "estimate_lipschitz",
    "expected_improvement",
    "lower_confidence_bound",
    "objective_lie",
    "probability_of_feasibility",
    "probability_of_improvement",
    "upper_confidence_bound",
]
