"""Acquisition functions and maximizers for constrained Bayesian optimization.

The paper uses weighted Expected Improvement (eq. 7): EI of the objective
(eq. 5–6) multiplied by the probability of satisfying every constraint.
Plain EI, PI, LCB/UCB and PoF are provided as building blocks, and
``maximize`` contains the inner "optimize engine" of Fig. 2.
"""

from repro.acquisition.base import (
    expected_improvement,
    lower_confidence_bound,
    probability_of_feasibility,
    probability_of_improvement,
    upper_confidence_bound,
)
from repro.acquisition.maximize import (
    AcquisitionMaximizer,
    DifferentialEvolutionMaximizer,
    RandomSearchMaximizer,
)
from repro.acquisition.wei import WeightedExpectedImprovement

__all__ = [
    "AcquisitionMaximizer",
    "DifferentialEvolutionMaximizer",
    "RandomSearchMaximizer",
    "WeightedExpectedImprovement",
    "expected_improvement",
    "lower_confidence_bound",
    "probability_of_feasibility",
    "probability_of_improvement",
    "upper_confidence_bound",
]
