"""Closed-form acquisition primitives on Gaussian predictive distributions.

All functions take predictive mean/variance arrays (as returned by the
surrogates) and are vectorized over query points.  Minimization convention
throughout, matching the paper's problem statement (eq. 1).
"""

from __future__ import annotations

import numpy as np
from scipy import special

_MIN_SIGMA = 1e-12

# Standard-normal CDF/PDF via scipy.special rather than scipy.stats: the
# acquisition maximizer's polish phase evaluates these thousands of times on
# tiny arrays, where stats.norm's distribution machinery costs ~30 us per
# call against ~0.5 us for the direct special functions.  Values are bitwise
# identical (stats.norm delegates to ndtr / this exact pdf formula).
_norm_cdf = special.ndtr
_NORM_PDF_C = np.sqrt(2.0 * np.pi)


def _norm_pdf(x: np.ndarray) -> np.ndarray:
    return np.exp(-(x**2) / 2.0) / _NORM_PDF_C


def _sigma(var: np.ndarray) -> np.ndarray:
    return np.sqrt(np.maximum(np.asarray(var, dtype=float), _MIN_SIGMA**2))


def expected_improvement(mean, var, tau: float) -> np.ndarray:
    """Expected improvement below the incumbent ``tau`` (paper eq. 5–6).

    ``EI(x) = sigma(x) * (lambda * CDF(lambda) + PDF(lambda))`` with
    ``lambda = (tau - mu(x)) / sigma(x)``.  Large when the predicted mean is
    low (exploitation) or the uncertainty is high (exploration).
    """
    mean = np.asarray(mean, dtype=float)
    sigma = _sigma(var)
    lam = (tau - mean) / sigma
    ei = sigma * (lam * _norm_cdf(lam) + _norm_pdf(lam))
    return np.maximum(ei, 0.0)


def probability_of_improvement(mean, var, tau: float) -> np.ndarray:
    """Probability that the objective at x is below the incumbent ``tau``."""
    mean = np.asarray(mean, dtype=float)
    sigma = _sigma(var)
    return _norm_cdf((tau - mean) / sigma)


def lower_confidence_bound(mean, var, kappa: float = 2.0) -> np.ndarray:
    """LCB ``mu - kappa * sigma`` (to be *minimized* for exploration).

    This is the minimization analogue of Auer's UCB criterion cited in
    Sec. II-B; GASPAD uses it for prescreening evolutionary offspring.
    """
    if kappa < 0:
        raise ValueError(f"kappa must be non-negative, got {kappa}")
    return np.asarray(mean, dtype=float) - kappa * _sigma(var)


def upper_confidence_bound(mean, var, kappa: float = 2.0) -> np.ndarray:
    """UCB ``mu + kappa * sigma`` (for maximization problems)."""
    if kappa < 0:
        raise ValueError(f"kappa must be non-negative, got {kappa}")
    return np.asarray(mean, dtype=float) + kappa * _sigma(var)


def probability_of_feasibility(mean, var) -> np.ndarray:
    """``PF(x) = P(g(x) < 0)`` for one constraint surrogate (paper eq. 7).

    Constraints follow the ``g(x) < 0`` convention of eq. 1, so feasibility
    probability is the Gaussian CDF mass below zero.
    """
    mean = np.asarray(mean, dtype=float)
    sigma = _sigma(var)
    return _norm_cdf(-mean / sigma)
