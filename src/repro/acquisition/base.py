"""Closed-form acquisition primitives on Gaussian predictive distributions.

All functions take predictive mean/variance arrays (as returned by the
surrogates) and are vectorized over query points.  Minimization convention
throughout, matching the paper's problem statement (eq. 1).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

_MIN_SIGMA = 1e-12


def _sigma(var: np.ndarray) -> np.ndarray:
    return np.sqrt(np.maximum(np.asarray(var, dtype=float), _MIN_SIGMA**2))


def expected_improvement(mean, var, tau: float) -> np.ndarray:
    """Expected improvement below the incumbent ``tau`` (paper eq. 5–6).

    ``EI(x) = sigma(x) * (lambda * CDF(lambda) + PDF(lambda))`` with
    ``lambda = (tau - mu(x)) / sigma(x)``.  Large when the predicted mean is
    low (exploitation) or the uncertainty is high (exploration).
    """
    mean = np.asarray(mean, dtype=float)
    sigma = _sigma(var)
    lam = (tau - mean) / sigma
    ei = sigma * (lam * stats.norm.cdf(lam) + stats.norm.pdf(lam))
    return np.maximum(ei, 0.0)


def probability_of_improvement(mean, var, tau: float) -> np.ndarray:
    """Probability that the objective at x is below the incumbent ``tau``."""
    mean = np.asarray(mean, dtype=float)
    sigma = _sigma(var)
    return stats.norm.cdf((tau - mean) / sigma)


def lower_confidence_bound(mean, var, kappa: float = 2.0) -> np.ndarray:
    """LCB ``mu - kappa * sigma`` (to be *minimized* for exploration).

    This is the minimization analogue of Auer's UCB criterion cited in
    Sec. II-B; GASPAD uses it for prescreening evolutionary offspring.
    """
    if kappa < 0:
        raise ValueError(f"kappa must be non-negative, got {kappa}")
    return np.asarray(mean, dtype=float) - kappa * _sigma(var)


def upper_confidence_bound(mean, var, kappa: float = 2.0) -> np.ndarray:
    """UCB ``mu + kappa * sigma`` (for maximization problems)."""
    if kappa < 0:
        raise ValueError(f"kappa must be non-negative, got {kappa}")
    return np.asarray(mean, dtype=float) + kappa * _sigma(var)


def probability_of_feasibility(mean, var) -> np.ndarray:
    """``PF(x) = P(g(x) < 0)`` for one constraint surrogate (paper eq. 7).

    Constraints follow the ``g(x) < 0`` convention of eq. 1, so feasibility
    probability is the Gaussian CDF mass below zero.
    """
    mean = np.asarray(mean, dtype=float)
    sigma = _sigma(var)
    return stats.norm.cdf(-mean / sigma)
