"""Weighted Expected Improvement for constrained problems (paper eq. 7).

``wEI(x) = EI(x) * prod_i PF_i(x)`` favours regions that both improve the
objective and are likely to satisfy every constraint.  Until a feasible
point has been observed the incumbent ``tau`` is undefined; following the
WEIBO reference (Lyu et al. 2018 / Gelbart et al. 2014) the acquisition
then degenerates to the pure feasibility product ``prod_i PF_i(x)``.
"""

from __future__ import annotations

import numpy as np

from repro.acquisition.base import expected_improvement, probability_of_feasibility


class WeightedExpectedImprovement:
    """Callable acquisition built from fitted surrogates.

    Parameters
    ----------
    objective_model:
        Surrogate with ``predict(x) -> (mean, var)`` for the objective.
        May be ``None`` when only feasibility search is wanted.
    constraint_models:
        One surrogate per constraint ``g_i(x) < 0`` (possibly empty for
        unconstrained problems, where wEI reduces to plain EI).
    tau:
        Best *feasible* objective observed so far, or ``None`` if no
        feasible point exists yet.
    log_space:
        Evaluate the product in log space.  With dozens of constraints the
        plain product underflows to an exact 0.0 over most of the space,
        flattening the acquisition; summing log-probabilities keeps the
        ranking information.  The returned value is then a monotone
        transform ``log wEI``, which leaves the argmax unchanged.
    """

    def __init__(
        self,
        objective_model,
        constraint_models,
        tau: float | None,
        log_space: bool = False,
    ):
        self.objective_model = objective_model
        self.constraint_models = list(constraint_models)
        self.tau = tau
        self.log_space = bool(log_space)
        if tau is None and objective_model is None and not self.constraint_models:
            raise ValueError("acquisition needs an objective model or constraints")

    def _improvement(self, x: np.ndarray) -> np.ndarray:
        """The objective-improvement factor; the hook subclasses override.

        :class:`~repro.acquisition.penalization.HallucinatedUCB` swaps EI
        for the optimistic confidence bound here while inheriting the
        whole feasibility-product (plain and log-space) machinery.
        """
        mean, var = self.objective_model.predict(x)
        return expected_improvement(mean, var, self.tau)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the acquisition on a batch of points, shape ``(n, d)``."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        n = x.shape[0]
        if self.log_space:
            return self._evaluate_log(x, n)
        value = np.ones(n)
        if self.tau is not None and self.objective_model is not None:
            value = self._improvement(x)
        for model in self.constraint_models:
            g_mean, g_var = model.predict(x)
            value = value * probability_of_feasibility(g_mean, g_var)
        return value

    def _evaluate_log(self, x: np.ndarray, n: int) -> np.ndarray:
        tiny = 1e-300
        log_value = np.zeros(n)
        if self.tau is not None and self.objective_model is not None:
            log_value = np.log(np.maximum(self._improvement(x), tiny))
        for model in self.constraint_models:
            g_mean, g_var = model.predict(x)
            pf = probability_of_feasibility(g_mean, g_var)
            log_value = log_value + np.log(np.maximum(pf, tiny))
        return log_value

    def __repr__(self) -> str:
        phase = "feasibility-search" if self.tau is None else f"tau={self.tau:.4g}"
        return (
            f"WeightedExpectedImprovement({phase}, "
            f"n_constraints={len(self.constraint_models)})"
        )
