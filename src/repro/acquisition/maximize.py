"""Inner-loop maximizers for acquisition functions (the Fig. 2 "optimize
engine").

The acquisition surface of an NN-feature GP is piecewise-smooth and highly
multi-modal, so the default engine is a small differential-evolution search
over the unit box followed by a Nelder-Mead polish of the champion — a
derivative-free combination that treats ours and the WEIBO baseline
identically (the surrogate is the only difference between the algorithms,
as in the paper's comparison).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize as sopt

from repro.utils.rng import ensure_rng


def _masked_values(values) -> np.ndarray:
    """Acquisition values with non-finite entries demoted to ``-inf``.

    Surrogate pathologies (overflowing variances, degenerate posteriors)
    can return NaN on part of a candidate batch.  NaN compares false
    against everything, but ``np.argmax`` *returns* a NaN champion and a
    NaN DE fitness permanently occupies its population slot (no trial ever
    beats it) — so every comparison site masks first: a candidate with no
    finite value can never win.
    """
    values = np.asarray(values, dtype=float)
    return np.where(np.isfinite(values), values, -np.inf)


class AcquisitionMaximizer:
    """Interface: maximize a batch-callable acquisition over the unit box."""

    def maximize(self, acquisition, dim: int, rng=None) -> np.ndarray:
        """Return the argmax point, shape ``(dim,)``, inside ``[0, 1]^dim``."""
        raise NotImplementedError

    def maximize_batch(
        self, acquisition_factory, q: int, dim: int, rng=None, postprocess=None
    ) -> list[np.ndarray]:
        """Greedy q-point maximization: q sequential inner maximizations.

        ``acquisition_factory(j, picks)`` builds the stage-``j`` acquisition
        given the picks chosen so far — the hook where fantasy updates
        (constant liar, Kriging believer, fresh Thompson draws) make the
        batch diverse instead of q copies of the argmax.  ``postprocess
        (pick, picks)`` optionally adjusts each pick before it is committed
        (e.g. duplicate resampling).  With ``q=1`` this reduces exactly to
        one :meth:`maximize` call, preserving the single-point RNG stream.
        """
        if q < 1:
            raise ValueError(f"q must be >= 1, got {q}")
        picks: list[np.ndarray] = []
        for j in range(q):
            acquisition = acquisition_factory(j, picks)
            pick = self.maximize(acquisition, dim, rng)
            if postprocess is not None:
                pick = postprocess(pick, picks)
            picks.append(pick)
        return picks


class RandomSearchMaximizer(AcquisitionMaximizer):
    """Pick the best of ``n_samples`` uniform points (cheap baseline engine)."""

    def __init__(self, n_samples: int = 2048):
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        self.n_samples = int(n_samples)

    def maximize(self, acquisition, dim: int, rng=None) -> np.ndarray:
        rng = ensure_rng(rng)
        candidates = rng.uniform(0.0, 1.0, size=(self.n_samples, dim))
        values = _masked_values(acquisition(candidates))
        return candidates[int(np.argmax(values))].copy()


class DifferentialEvolutionMaximizer(AcquisitionMaximizer):
    """DE/rand/1/bin over the unit box with an optional local polish.

    Population evaluations are batched through the acquisition callable, so
    each generation costs one surrogate prediction pass.

    Parameters
    ----------
    pop_size:
        Population size (scaled up to at least ``4 * dim`` internally when
        the dimension is large, capped at ``max_pop``).
    generations:
        Number of DE generations.
    mutation, crossover:
        Standard DE control parameters F and CR.
    polish:
        Run Nelder-Mead from the DE champion at the end.
    """

    def __init__(
        self,
        pop_size: int = 40,
        generations: int = 40,
        mutation: float = 0.6,
        crossover: float = 0.9,
        polish: bool = True,
        max_pop: int = 120,
    ):
        if pop_size < 5:
            raise ValueError(f"pop_size must be >= 5, got {pop_size}")
        if generations < 1:
            raise ValueError(f"generations must be >= 1, got {generations}")
        if not 0.0 < mutation <= 2.0:
            raise ValueError(f"mutation must be in (0, 2], got {mutation}")
        if not 0.0 < crossover <= 1.0:
            raise ValueError(f"crossover must be in (0, 1], got {crossover}")
        self.pop_size = int(pop_size)
        self.generations = int(generations)
        self.mutation = float(mutation)
        self.crossover = float(crossover)
        self.polish = bool(polish)
        self.max_pop = int(max_pop)

    def maximize(self, acquisition, dim: int, rng=None) -> np.ndarray:
        rng = ensure_rng(rng)
        n_pop = min(max(self.pop_size, 4 * dim), self.max_pop)
        pop = rng.uniform(0.0, 1.0, size=(n_pop, dim))
        fitness = _masked_values(acquisition(pop))
        for _ in range(self.generations):
            trial = self._make_trials(pop, rng)
            trial_fitness = _masked_values(acquisition(trial))
            improved = trial_fitness > fitness
            pop[improved] = trial[improved]
            fitness[improved] = trial_fitness[improved]
        best = pop[int(np.argmax(fitness))].copy()
        f0 = float(np.max(fitness))
        # a champion with no finite value (fully masked batch) has nothing
        # to polish — Nelder-Mead on an all-inf surface only spews NaNs
        if self.polish and np.isfinite(f0):
            best = self._polish(acquisition, best, f0)
        return best

    def _make_trials(self, pop: np.ndarray, rng) -> np.ndarray:
        n_pop, dim = pop.shape
        idx = np.arange(n_pop)
        r1 = rng.integers(0, n_pop, size=n_pop)
        r2 = rng.integers(0, n_pop, size=n_pop)
        r3 = rng.integers(0, n_pop, size=n_pop)
        # re-draw indices that collide with the target (cheap and adequate
        # for the small populations used here)
        for r in (r1, r2, r3):
            clash = r == idx
            r[clash] = (r[clash] + 1 + rng.integers(0, n_pop - 1)) % n_pop
        mutant = pop[r1] + self.mutation * (pop[r2] - pop[r3])
        mutant = np.clip(mutant, 0.0, 1.0)
        cross = rng.uniform(size=(n_pop, dim)) < self.crossover
        # guarantee at least one mutated coordinate per individual
        forced = rng.integers(0, dim, size=n_pop)
        cross[idx, forced] = True
        return np.where(cross, mutant, pop)

    @staticmethod
    def _polish(acquisition, x0: np.ndarray, f0: float) -> np.ndarray:
        def negative(x):
            x = np.clip(x, 0.0, 1.0)
            value = float(_masked_values(acquisition(x.reshape(1, -1)))[0])
            # a NaN/-inf probe must read as "worst possible", not poison
            # Nelder-Mead's simplex comparisons with NaN ordering
            return -value if np.isfinite(value) else np.inf

        res = sopt.minimize(
            negative,
            x0,
            method="Nelder-Mead",
            options={"maxiter": 100 * x0.size, "xatol": 1e-4, "fatol": 1e-10},
        )
        if np.isfinite(res.fun) and -res.fun >= f0:
            return np.clip(res.x, 0.0, 1.0)
        return x0
