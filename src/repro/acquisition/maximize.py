"""Inner-loop maximizers for acquisition functions (the Fig. 2 "optimize
engine").

The acquisition surface of an NN-feature GP is piecewise-smooth and highly
multi-modal, so the default engine is a small differential-evolution search
over the unit box followed by a Nelder-Mead polish of the champion — a
derivative-free combination that treats ours and the WEIBO baseline
identically (the surrogate is the only difference between the algorithms,
as in the paper's comparison).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize as sopt

from repro.utils.rng import ensure_rng


#: hard ceiling on the Nelder-Mead polish budget — ``100 * dim`` iterations
#: is fine at circuit dimensions (d=36 → 3600) but explodes at d=200+;
#: the cap only binds above d=50, so existing pinned traces are unchanged.
POLISH_MAXITER_CAP = 5000


def _masked_values(values) -> np.ndarray:
    """Acquisition values with non-finite entries demoted to ``-inf``.

    Surrogate pathologies (overflowing variances, degenerate posteriors)
    can return NaN on part of a candidate batch.  NaN compares false
    against everything, but ``np.argmax`` *returns* a NaN champion and a
    NaN DE fitness permanently occupies its population slot (no trial ever
    beats it) — so every comparison site masks first: a candidate with no
    finite value can never win.
    """
    values = np.asarray(values, dtype=float)
    return np.where(np.isfinite(values), values, -np.inf)


def evaluate_chunked(acquisition, candidates: np.ndarray,
                     chunk: int | None = None) -> np.ndarray:
    """Masked acquisition values of ``candidates``, optionally chunked.

    A d=200 DE population or a large trust-region candidate scan pushed
    through a stacked GP posterior in one call allocates ``O(n * n_train *
    members)`` intermediates; chunking bounds the peak.  ``chunk=None``
    evaluates in one batch — the default everywhere a pinned trace exists,
    because BLAS reductions are not guaranteed bitwise across batch
    shapes.
    """
    candidates = np.asarray(candidates, dtype=float)
    if chunk is None or len(candidates) <= chunk:
        return _masked_values(acquisition(candidates))
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    parts = [
        _masked_values(acquisition(candidates[start:start + chunk]))
        for start in range(0, len(candidates), chunk)
    ]
    return np.concatenate(parts)


class AcquisitionMaximizer:
    """Interface: maximize a batch-callable acquisition over the unit box."""

    def maximize(self, acquisition, dim: int, rng=None) -> np.ndarray:
        """Return the argmax point, shape ``(dim,)``, inside ``[0, 1]^dim``."""
        raise NotImplementedError

    def maximize_batch(
        self, acquisition_factory, q: int, dim: int, rng=None, postprocess=None
    ) -> list[np.ndarray]:
        """Greedy q-point maximization: q sequential inner maximizations.

        ``acquisition_factory(j, picks)`` builds the stage-``j`` acquisition
        given the picks chosen so far — the hook where fantasy updates
        (constant liar, Kriging believer, fresh Thompson draws) make the
        batch diverse instead of q copies of the argmax.  ``postprocess
        (pick, picks)`` optionally adjusts each pick before it is committed
        (e.g. duplicate resampling).  With ``q=1`` this reduces exactly to
        one :meth:`maximize` call, preserving the single-point RNG stream.
        """
        if q < 1:
            raise ValueError(f"q must be >= 1, got {q}")
        picks: list[np.ndarray] = []
        for j in range(q):
            acquisition = acquisition_factory(j, picks)
            pick = self.maximize(acquisition, dim, rng)
            if postprocess is not None:
                pick = postprocess(pick, picks)
            picks.append(pick)
        return picks


class RandomSearchMaximizer(AcquisitionMaximizer):
    """Pick the best of ``n_samples`` uniform points (cheap baseline engine)."""

    def __init__(self, n_samples: int = 2048):
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        self.n_samples = int(n_samples)

    def maximize(self, acquisition, dim: int, rng=None) -> np.ndarray:
        rng = ensure_rng(rng)
        candidates = rng.uniform(0.0, 1.0, size=(self.n_samples, dim))
        values = _masked_values(acquisition(candidates))
        return candidates[int(np.argmax(values))].copy()


class DifferentialEvolutionMaximizer(AcquisitionMaximizer):
    """DE/rand/1/bin over the unit box with an optional local polish.

    Population evaluations are batched through the acquisition callable, so
    each generation costs one surrogate prediction pass.

    Parameters
    ----------
    pop_size:
        Population size (scaled up to at least ``4 * dim`` internally when
        the dimension is large, capped at ``max_pop``).
    generations:
        Number of DE generations.
    mutation, crossover:
        Standard DE control parameters F and CR.
    polish:
        Run Nelder-Mead from the DE champion at the end.
    max_pop:
        Ceiling on the effective population.  ``None`` (the default) is
        dim-aware — ``max(120, 4 * dim)`` — so the documented ``4 * dim``
        rule actually holds at every dimension instead of silently
        collapsing to 120 members for d>30, while d<=30 keeps the exact
        historical population (bitwise-pinned traces depend on it).
    polish_maxiter:
        Nelder-Mead iteration budget.  ``None`` uses the historical
        ``100 * dim`` capped at :data:`POLISH_MAXITER_CAP` (the cap only
        binds above d=50).
    eval_chunk:
        Evaluate candidate batches in chunks of at most this many rows
        (``None`` = one batch).  Leave unset wherever bitwise traces
        matter; see :func:`evaluate_chunked`.
    """

    def __init__(
        self,
        pop_size: int = 40,
        generations: int = 40,
        mutation: float = 0.6,
        crossover: float = 0.9,
        polish: bool = True,
        max_pop: int | None = None,
        polish_maxiter: int | None = None,
        eval_chunk: int | None = None,
    ):
        if pop_size < 5:
            raise ValueError(f"pop_size must be >= 5, got {pop_size}")
        if generations < 1:
            raise ValueError(f"generations must be >= 1, got {generations}")
        if not 0.0 < mutation <= 2.0:
            raise ValueError(f"mutation must be in (0, 2], got {mutation}")
        if not 0.0 < crossover <= 1.0:
            raise ValueError(f"crossover must be in (0, 1], got {crossover}")
        if max_pop is not None and max_pop < 5:
            raise ValueError(f"max_pop must be >= 5, got {max_pop}")
        if polish_maxiter is not None and polish_maxiter < 1:
            raise ValueError(f"polish_maxiter must be >= 1, got {polish_maxiter}")
        if eval_chunk is not None and eval_chunk < 1:
            raise ValueError(f"eval_chunk must be >= 1, got {eval_chunk}")
        self.pop_size = int(pop_size)
        self.generations = int(generations)
        self.mutation = float(mutation)
        self.crossover = float(crossover)
        self.polish = bool(polish)
        self.max_pop = None if max_pop is None else int(max_pop)
        self.polish_maxiter = None if polish_maxiter is None else int(polish_maxiter)
        self.eval_chunk = None if eval_chunk is None else int(eval_chunk)

    def population_size(self, dim: int) -> int:
        """Effective population at ``dim``: ``min(max(pop_size, 4*dim), cap)``."""
        cap = self.max_pop if self.max_pop is not None else max(120, 4 * dim)
        return min(max(self.pop_size, 4 * dim), cap)

    def resolve_polish_maxiter(self, dim: int) -> int:
        """Nelder-Mead budget at ``dim`` (``100 * dim`` capped by default)."""
        if self.polish_maxiter is not None:
            return self.polish_maxiter
        return min(100 * dim, POLISH_MAXITER_CAP)

    def maximize(self, acquisition, dim: int, rng=None) -> np.ndarray:
        rng = ensure_rng(rng)
        n_pop = self.population_size(dim)
        pop = rng.uniform(0.0, 1.0, size=(n_pop, dim))
        fitness = evaluate_chunked(acquisition, pop, self.eval_chunk)
        for _ in range(self.generations):
            trial = self._make_trials(pop, rng)
            trial_fitness = evaluate_chunked(acquisition, trial, self.eval_chunk)
            improved = trial_fitness > fitness
            pop[improved] = trial[improved]
            fitness[improved] = trial_fitness[improved]
        best = pop[int(np.argmax(fitness))].copy()
        f0 = float(np.max(fitness))
        # a champion with no finite value (fully masked batch) has nothing
        # to polish — Nelder-Mead on an all-inf surface only spews NaNs
        if self.polish and np.isfinite(f0):
            best = self._polish(acquisition, best, f0,
                                maxiter=self.resolve_polish_maxiter(dim))
        return best

    def _make_trials(self, pop: np.ndarray, rng) -> np.ndarray:
        n_pop, dim = pop.shape
        idx = np.arange(n_pop)
        r1 = rng.integers(0, n_pop, size=n_pop)
        r2 = rng.integers(0, n_pop, size=n_pop)
        r3 = rng.integers(0, n_pop, size=n_pop)
        # re-draw indices that collide with the target (cheap and adequate
        # for the small populations used here)
        for r in (r1, r2, r3):
            clash = r == idx
            r[clash] = (r[clash] + 1 + rng.integers(0, n_pop - 1)) % n_pop
        mutant = pop[r1] + self.mutation * (pop[r2] - pop[r3])
        mutant = np.clip(mutant, 0.0, 1.0)
        cross = rng.uniform(size=(n_pop, dim)) < self.crossover
        # guarantee at least one mutated coordinate per individual
        forced = rng.integers(0, dim, size=n_pop)
        cross[idx, forced] = True
        return np.where(cross, mutant, pop)

    @staticmethod
    def _polish(acquisition, x0: np.ndarray, f0: float,
                maxiter: int | None = None) -> np.ndarray:
        if maxiter is None:
            maxiter = min(100 * x0.size, POLISH_MAXITER_CAP)

        def negative(x):
            x = np.clip(x, 0.0, 1.0)
            value = float(_masked_values(acquisition(x.reshape(1, -1)))[0])
            # a NaN/-inf probe must read as "worst possible", not poison
            # Nelder-Mead's simplex comparisons with NaN ordering
            return -value if np.isfinite(value) else np.inf

        res = sopt.minimize(
            negative,
            x0,
            method="Nelder-Mead",
            options={"maxiter": int(maxiter), "xatol": 1e-4, "fatol": 1e-10},
        )
        if np.isfinite(res.fun) and -res.fun >= f0:
            return np.clip(res.x, 0.0, 1.0)
        return x0


class ScanPolishMaximizer(AcquisitionMaximizer):
    """Best-of-N candidate scan plus a capped Nelder-Mead polish.

    The embedded engine of the trust-region proposal space: a few thousand
    uniform candidates are evaluated in chunked batches and the champion
    gets a short local polish.  Cost per proposal is ``O(n_samples)``
    surrogate evaluations regardless of dimension — no ``4 * dim``
    population, no ``100 * dim`` polish budget.
    """

    def __init__(
        self,
        n_samples: int = 2048,
        polish: bool = True,
        polish_maxiter: int = 200,
        eval_chunk: int | None = 4096,
    ):
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        if polish_maxiter < 1:
            raise ValueError(f"polish_maxiter must be >= 1, got {polish_maxiter}")
        if eval_chunk is not None and eval_chunk < 1:
            raise ValueError(f"eval_chunk must be >= 1, got {eval_chunk}")
        self.n_samples = int(n_samples)
        self.polish = bool(polish)
        self.polish_maxiter = int(polish_maxiter)
        self.eval_chunk = None if eval_chunk is None else int(eval_chunk)

    def maximize(self, acquisition, dim: int, rng=None) -> np.ndarray:
        rng = ensure_rng(rng)
        candidates = rng.uniform(0.0, 1.0, size=(self.n_samples, dim))
        values = evaluate_chunked(acquisition, candidates, self.eval_chunk)
        best = candidates[int(np.argmax(values))].copy()
        f0 = float(np.max(values))
        if self.polish and np.isfinite(f0):
            best = DifferentialEvolutionMaximizer._polish(
                acquisition, best, f0, maxiter=self.polish_maxiter
            )
        return best
