"""Classic unconstrained test functions (minimization convention).

Used by surrogate-quality tests and examples; global optima documented per
function so tests can assert convergence.
"""

from __future__ import annotations

import numpy as np


def sphere(x: np.ndarray) -> float:
    """Sum of squares; global minimum 0 at the origin."""
    x = np.asarray(x, dtype=float)
    return float(np.sum(x**2))


def rosenbrock(x: np.ndarray) -> float:
    """Rosenbrock valley; global minimum 0 at (1, ..., 1)."""
    x = np.asarray(x, dtype=float)
    if x.size < 2:
        raise ValueError("rosenbrock needs at least 2 dimensions")
    return float(np.sum(100.0 * (x[1:] - x[:-1] ** 2) ** 2 + (1.0 - x[:-1]) ** 2))


def branin(x: np.ndarray) -> float:
    """Branin-Hoo on [-5, 10] x [0, 15]; three global minima at 0.397887."""
    x = np.asarray(x, dtype=float)
    if x.size != 2:
        raise ValueError("branin is 2-dimensional")
    a, b, c = 1.0, 5.1 / (4.0 * np.pi**2), 5.0 / np.pi
    r, s, t = 6.0, 10.0, 1.0 / (8.0 * np.pi)
    return float(
        a * (x[1] - b * x[0] ** 2 + c * x[0] - r) ** 2
        + s * (1.0 - t) * np.cos(x[0])
        + s
    )


def ackley(x: np.ndarray) -> float:
    """Ackley function; global minimum 0 at the origin."""
    x = np.asarray(x, dtype=float)
    n = x.size
    term1 = -20.0 * np.exp(-0.2 * np.sqrt(np.sum(x**2) / n))
    term2 = -np.exp(np.sum(np.cos(2.0 * np.pi * x)) / n)
    return float(term1 + term2 + 20.0 + np.e)


def rastrigin(x: np.ndarray) -> float:
    """Rastrigin function; global minimum 0 at the origin."""
    x = np.asarray(x, dtype=float)
    return float(10.0 * x.size + np.sum(x**2 - 10.0 * np.cos(2.0 * np.pi * x)))


_HARTMANN6_A = np.array(
    [
        [10.0, 3.0, 17.0, 3.5, 1.7, 8.0],
        [0.05, 10.0, 17.0, 0.1, 8.0, 14.0],
        [3.0, 3.5, 1.7, 10.0, 17.0, 8.0],
        [17.0, 8.0, 0.05, 10.0, 0.1, 14.0],
    ]
)
_HARTMANN6_P = 1e-4 * np.array(
    [
        [1312.0, 1696.0, 5569.0, 124.0, 8283.0, 5886.0],
        [2329.0, 4135.0, 8307.0, 3736.0, 1004.0, 9991.0],
        [2348.0, 1451.0, 3522.0, 2883.0, 3047.0, 6650.0],
        [4047.0, 8828.0, 8732.0, 5743.0, 1091.0, 381.0],
    ]
)
_HARTMANN6_ALPHA = np.array([1.0, 1.2, 3.0, 3.2])


def hartmann6(x: np.ndarray) -> float:
    """Hartmann-6 on [0, 1]^6; global minimum -3.32237."""
    x = np.asarray(x, dtype=float)
    if x.size != 6:
        raise ValueError("hartmann6 is 6-dimensional")
    inner = np.sum(_HARTMANN6_A * (x[None, :] - _HARTMANN6_P) ** 2, axis=1)
    return float(-np.sum(_HARTMANN6_ALPHA * np.exp(-inner)))
