"""Synthetic test problems for unit tests, examples and surrogate studies."""

from repro.benchfns.constrained import (
    g06_problem,
    g08_problem,
    gardner_problem,
    pressure_vessel_problem,
    tension_spring_problem,
    toy_constrained_quadratic,
)
from repro.benchfns.highdim import (
    HIGHDIM_FUNCTIONS,
    embedded_highdim_problem,
    highdim_problem_suite,
)
from repro.benchfns.synthetic import (
    ackley,
    branin,
    hartmann6,
    rastrigin,
    rosenbrock,
    sphere,
)

__all__ = [
    "HIGHDIM_FUNCTIONS",
    "ackley",
    "branin",
    "embedded_highdim_problem",
    "g06_problem",
    "g08_problem",
    "gardner_problem",
    "hartmann6",
    "highdim_problem_suite",
    "pressure_vessel_problem",
    "rastrigin",
    "rosenbrock",
    "sphere",
    "tension_spring_problem",
    "toy_constrained_quadratic",
]
