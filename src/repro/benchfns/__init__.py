"""Synthetic test problems for unit tests, examples and surrogate studies."""

from repro.benchfns.constrained import (
    g06_problem,
    g08_problem,
    gardner_problem,
    pressure_vessel_problem,
    tension_spring_problem,
    toy_constrained_quadratic,
)
from repro.benchfns.synthetic import (
    ackley,
    branin,
    hartmann6,
    rastrigin,
    rosenbrock,
    sphere,
)

__all__ = [
    "ackley",
    "branin",
    "g06_problem",
    "g08_problem",
    "gardner_problem",
    "hartmann6",
    "pressure_vessel_problem",
    "rastrigin",
    "rosenbrock",
    "sphere",
    "tension_spring_problem",
    "toy_constrained_quadratic",
]
