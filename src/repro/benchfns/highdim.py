"""High-dimensional embedded test problems (low effective dimension).

Production circuits go to hundreds of parameters, but circuit performance
rarely depends on all of them at once — a handful of critical devices
dominate each metric.  This family mimics that structure: a classic
synthetic function (sphere / rastrigin / ackley) acts on a seeded random
subset of ``effective_dim`` coordinates while the remaining dimensions are
pure nuisance.  The unconstrained optimum value is exactly ``0`` at a
seeded interior ``shift`` (never on the boundary), and objectives are
normalized to O(1) so equal-budget regret comparisons across functions
share one meaningful tolerance.

The ``constrained`` variant adds one active linear constraint on the
effective coordinates that excludes the unconstrained optimum, forcing
best-feasible designs onto the boundary (a ~20% feasible-volume region,
so random initial designs still find feasible points).

These problems are the workload of
``benchmarks/bench_highdim_proposals.py``, which pins proposal-cycle time
and equal-budget regret of the line / trust-region proposal spaces
against the full-space maximizer.
"""

from __future__ import annotations

import numpy as np

from repro.bo.problem import FunctionProblem

#: base functions accepted by :func:`embedded_highdim_problem`
HIGHDIM_FUNCTIONS = ("sphere", "rastrigin", "ackley")


def _sphere_normalized(z: np.ndarray) -> float:
    # z in [-1, 1]^k; max value 1 at the corners
    return float(np.mean(z**2))


def _rastrigin_normalized(z: np.ndarray) -> float:
    # rastrigin on y = 1.5 z in [-1.5, 1.5]^k, scaled so typical values
    # are O(1) (per-dim maximum ~22.25, normalizer 10 k)
    y = 1.5 * z
    per_dim = y**2 + 10.0 * (1.0 - np.cos(2.0 * np.pi * y))
    return float(np.sum(per_dim) / (10.0 * z.size))


def _ackley_normalized(z: np.ndarray) -> float:
    # ackley on y = 3 z in [-3, 3]^k, normalized by its ~11 range
    y = 3.0 * z
    k = z.size
    term1 = -20.0 * np.exp(-0.2 * np.sqrt(np.sum(y**2) / k))
    term2 = -np.exp(np.sum(np.cos(2.0 * np.pi * y)) / k)
    return float((term1 + term2 + 20.0 + np.e) / 10.0)


_BASE = {
    "sphere": _sphere_normalized,
    "rastrigin": _rastrigin_normalized,
    "ackley": _ackley_normalized,
}


def embedded_highdim_problem(
    function: str = "sphere",
    dim: int = 100,
    effective_dim: int = 6,
    seed: int = 0,
    constrained: bool = False,
) -> FunctionProblem:
    """An embedded high-dim problem over ``[0, 1]^dim``.

    A seeded permutation picks the ``effective_dim`` active coordinates
    and a seeded interior ``shift`` (in ``[0.25, 0.75]`` per coordinate)
    places the optimum; the base function sees ``z = 2 (x_active -
    shift)``, which stays within ``[-1.5, 1.5]`` for ``x`` in the unit
    box (the per-function normalizations account for that range).  The
    unconstrained optimum value is exactly ``0``.

    With ``constrained=True`` one linear constraint ``mean(shift) + 0.1 -
    mean(x_active) < 0`` is added: feasibility requires pushing the
    active coordinates *above* their optimum on average, so the
    constrained optimum rides the boundary and best-feasible regret
    actually exercises the feasibility machinery.
    """
    function = str(function).lower()
    if function not in _BASE:
        raise ValueError(
            f"function must be one of {HIGHDIM_FUNCTIONS}, got {function!r}"
        )
    if dim < 2:
        raise ValueError(f"dim must be >= 2, got {dim}")
    if not 1 <= effective_dim <= dim:
        raise ValueError(
            f"effective_dim must be in [1, dim={dim}], got {effective_dim}"
        )
    rng = np.random.default_rng(seed)
    active = np.sort(rng.permutation(dim)[:effective_dim])
    shift = rng.uniform(0.25, 0.75, size=effective_dim)
    base = _BASE[function]

    def objective(x) -> float:
        z = 2.0 * (np.asarray(x, dtype=float)[active] - shift)
        return base(z)

    constraints = []
    if constrained:
        boundary = float(np.mean(shift)) + 0.1

        def feasibility(x) -> float:
            return boundary - float(np.mean(np.asarray(x, dtype=float)[active]))

        constraints.append(feasibility)

    name = f"{function}{dim}_eff{effective_dim}" + ("_c" if constrained else "")
    return FunctionProblem(
        name=name,
        lower=np.zeros(dim),
        upper=np.ones(dim),
        objective=objective,
        constraints=constraints,
    )


def highdim_problem_suite(
    dim: int = 100, effective_dim: int = 6, seed: int = 0
) -> list[FunctionProblem]:
    """The standard bench suite at one dimension: all three base
    functions unconstrained plus the constrained sphere variant."""
    problems = [
        embedded_highdim_problem(fn, dim=dim, effective_dim=effective_dim, seed=seed)
        for fn in HIGHDIM_FUNCTIONS
    ]
    problems.append(
        embedded_highdim_problem(
            "sphere", dim=dim, effective_dim=effective_dim, seed=seed,
            constrained=True,
        )
    )
    return problems


__all__ = [
    "HIGHDIM_FUNCTIONS",
    "embedded_highdim_problem",
    "highdim_problem_suite",
]
