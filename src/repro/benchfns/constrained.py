"""Constrained test problems in the eq. 1 form (``g(x) < 0`` feasible).

These give the BO/DE/GASPAD drivers cheap, well-characterized workloads
for unit tests, and the surrogate studies a ground truth where feasibility
structure is known analytically.
"""

from __future__ import annotations

import numpy as np

from repro.bo.problem import FunctionProblem
from repro.benchfns.synthetic import branin


def toy_constrained_quadratic(dim: int = 2) -> FunctionProblem:
    """Sphere objective with a linear constraint ``sum(x) >= 1``.

    Optimum sits on the constraint boundary at ``x_i = 1/dim`` with value
    ``1/dim`` — handy for asserting that constrained optimizers actually
    ride the boundary rather than retreating to the unconstrained optimum.
    """
    if dim < 1:
        raise ValueError("dim must be >= 1")
    return FunctionProblem(
        name=f"toy_quadratic_{dim}d",
        lower=np.full(dim, -2.0),
        upper=np.full(dim, 2.0),
        objective=lambda x: float(np.sum(x**2)),
        constraints=[lambda x: 1.0 - float(np.sum(x))],
    )


def gardner_problem() -> FunctionProblem:
    """Gardner et al. (2014) simulation problem 1 on [0, 6]^2.

    ``min cos(2 x0) cos(x1) + sin(x0)`` s.t. ``cos(x0) cos(x1) -
    sin(x0) sin(x1) + 0.5 < 0``; highly multi-modal feasible region.
    """
    return FunctionProblem(
        name="gardner",
        lower=[0.0, 0.0],
        upper=[6.0, 6.0],
        objective=lambda x: float(np.cos(2.0 * x[0]) * np.cos(x[1]) + np.sin(x[0])),
        constraints=[
            lambda x: float(
                np.cos(x[0]) * np.cos(x[1]) - np.sin(x[0]) * np.sin(x[1]) + 0.5
            )
        ],
    )


def g06_problem() -> FunctionProblem:
    """CEC g06: cubic objective, two nonlinear constraints, tiny feasible
    sliver; best known value -6961.81388."""
    return FunctionProblem(
        name="g06",
        lower=[13.0, 0.0],
        upper=[100.0, 100.0],
        objective=lambda x: float((x[0] - 10.0) ** 3 + (x[1] - 20.0) ** 3),
        constraints=[
            lambda x: float(-((x[0] - 5.0) ** 2) - (x[1] - 5.0) ** 2 + 100.0),
            lambda x: float((x[0] - 6.0) ** 2 + (x[1] - 5.0) ** 2 - 82.81),
        ],
    )


def g08_problem() -> FunctionProblem:
    """CEC g08: oscillatory fractional objective with two constraints;
    best known value -0.095825."""

    def objective(x):
        num = np.sin(2.0 * np.pi * x[0]) ** 3 * np.sin(2.0 * np.pi * x[1])
        den = x[0] ** 3 * (x[0] + x[1])
        return float(-num / den)

    return FunctionProblem(
        name="g08",
        lower=[0.5, 0.5],
        upper=[10.0, 10.0],
        objective=objective,
        constraints=[
            lambda x: float(x[0] ** 2 - x[1] + 1.0),
            lambda x: float(1.0 - x[0] + (x[1] - 4.0) ** 2),
        ],
    )


def tension_spring_problem() -> FunctionProblem:
    """Tension/compression spring design (Coello 2000), 3 variables,
    4 constraints; best known weight ~0.012665."""

    def objective(x):
        d, w, n = x  # wire diameter, coil diameter, active coils
        return float((n + 2.0) * w * d**2)

    def g1(x):
        d, w, n = x
        return float(1.0 - (w**3 * n) / (71785.0 * d**4))

    def g2(x):
        d, w, n = x
        return float(
            (4.0 * w**2 - d * w) / (12566.0 * (w * d**3 - d**4))
            + 1.0 / (5108.0 * d**2)
            - 1.0
        )

    def g3(x):
        d, w, n = x
        return float(1.0 - 140.45 * d / (w**2 * n))

    def g4(x):
        d, w, _ = x
        return float((w + d) / 1.5 - 1.0)

    return FunctionProblem(
        name="tension_spring",
        lower=[0.05, 0.25, 2.0],
        upper=[2.0, 1.3, 15.0],
        objective=objective,
        constraints=[g1, g2, g3, g4],
    )


def pressure_vessel_problem() -> FunctionProblem:
    """Pressure-vessel design (relaxed-continuous form), 4 variables,
    3 constraints; classic engineering BO benchmark."""

    def objective(x):
        t_s, t_h, r, length = x
        return float(
            0.6224 * t_s * r * length
            + 1.7781 * t_h * r**2
            + 3.1661 * t_s**2 * length
            + 19.84 * t_s**2 * r
        )

    return FunctionProblem(
        name="pressure_vessel",
        lower=[0.0625, 0.0625, 10.0, 10.0],
        upper=[6.1875, 6.1875, 200.0, 240.0],
        objective=objective,
        constraints=[
            lambda x: float(-x[0] + 0.0193 * x[2]),
            lambda x: float(-x[1] + 0.00954 * x[2]),
            lambda x: float(
                -np.pi * x[2] ** 2 * x[3] - (4.0 / 3.0) * np.pi * x[2] ** 3 + 1_296_000.0
            ),
        ],
    )


def constrained_branin_problem() -> FunctionProblem:
    """Branin with a disk constraint that excludes two of the three optima."""
    return FunctionProblem(
        name="constrained_branin",
        lower=[-5.0, 0.0],
        upper=[10.0, 15.0],
        objective=branin,
        constraints=[
            lambda x: float((x[0] - 2.5) ** 2 + (x[1] - 7.5) ** 2 - 50.0)
        ],
    )
