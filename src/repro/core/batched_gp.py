"""Batched surrogate engine: K x T neural-feature GPs as one tensor program.

Performance architecture — the stack axis ``(S, ...)``
------------------------------------------------------

One BO iteration of the paper's method fits ``S = K * T`` neural-feature
GPs: K = 5 ensemble members (Sec. III-C) for each of T modelled quantities
(the objective plus every constraint — six for the Table II charge pump).
The per-member loop re-enters Python for every epoch of every model; this
module instead trains all S models simultaneously over stacked tensors:

* network weights: ``(S, in_dim, out_dim)`` (``repro.nn.batched``),
* features: ``(S, N, M)``,
* A-matrices and Cholesky factors: ``(S, M, M)``, factorized slice by
  slice via ``repro.gp.linalg.lapack_jitter_cholesky``,
* GP scale hyper-parameters and per-slice losses: ``(S,)``.

Slice ``s = t * K + k`` is member ``k`` of target ``t``.  Every stacked
operation applies the identical kernel the serial path uses slice by
slice, so the engine is *numerically equivalent* to the member-by-member
loop (pinned to <= 1e-8 by ``tests/core/test_batched_gp.py`` and
``benchmarks/bench_batched_engine.py``) while removing the Python-level
K x T x epochs loop from the hot path.

Two classes realize the engine:

* :class:`BatchedNeuralFeatureGP` — S independent GPs sharing one training
  input matrix; the stacked counterpart of
  :class:`~repro.core.feature_gp.NeuralFeatureGP`.
* :class:`SurrogateBank` — the modelling front-end used by the BO loop: it
  owns the target layout, fits objective and constraint ensembles in one
  call, and exposes per-target moment-matched predictions (eq. 13).
"""

from __future__ import annotations

import numpy as np

from scipy.linalg import lapack as _lapack

from repro.backend import resolve_namespace
from repro.core.feature_gp import NeuralFeatureGP
from repro.gp.linalg import (
    lapack_jitter_cholesky,
    log_det_from_cholesky,
    solve_r_and_inverse,
)
from repro.nn.batched import BatchedSequential, make_batched_mlp
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.scaling import StandardScaler
from repro.utils.validation import check_finite, check_matrix_2d

# historical home of the fused [u | I] posterior solve; it moved to
# repro.gp.linalg when the backend layer landed
_solve_r_and_inverse = solve_r_and_inverse


def _resolve_rngs(seed, count: int) -> list[np.random.Generator]:
    """One generator per slice from a seed, generator, or explicit list.

    Passing an explicit sequence lets callers reproduce the exact per-member
    streams of a serial :class:`~repro.core.ensemble.DeepEnsemble` build.
    """
    if isinstance(seed, (list, tuple)):
        if len(seed) != count:
            raise ValueError(f"expected {count} slice rngs, got {len(seed)}")
        return [ensure_rng(s) for s in seed]
    return spawn_rngs(seed, count)


class BatchedNeuralFeatureGP:
    """S neural-feature GPs trained and queried through stacked tensors.

    Semantically this is a list of S independent
    :class:`~repro.core.feature_gp.NeuralFeatureGP` models that share the
    same training inputs ``x`` but may have distinct targets, weights, and
    GP scales.  All state carries the leading stack axis: slice ``s`` of
    every array belongs to model ``s``, and evolves exactly as a standalone
    model seeded with ``rngs[s]`` would.

    Parameters mirror :class:`NeuralFeatureGP`; ``seed`` may additionally
    be a sequence of ``n_stack`` generators for explicit slice streams.
    ``backend`` selects the array namespace all stacked tensors live in
    (:mod:`repro.backend`); ``None`` is the reference numpy path.
    """

    def __init__(
        self,
        input_dim: int,
        n_stack: int,
        hidden_dims: tuple[int, ...] = (50, 50),
        n_features: int = 50,
        activation: str = "relu",
        output_activation: str = "tanh",
        add_bias_feature: bool = True,
        noise_variance: float = 1e-2,
        prior_variance: float = 1.0,
        normalize_y: bool = True,
        seed=None,
        backend=None,
    ):
        if n_stack < 1:
            raise ValueError(f"n_stack must be >= 1, got {n_stack}")
        if noise_variance <= 0 or prior_variance <= 0:
            raise ValueError("noise_variance and prior_variance must be positive")
        self.xb = resolve_namespace(backend)
        self.input_dim = int(input_dim)
        self.n_stack = int(n_stack)
        self.n_features = int(n_features)
        self.add_bias_feature = bool(add_bias_feature)
        self.normalize_y = bool(normalize_y)
        rngs = _resolve_rngs(seed, self.n_stack)
        self.network: BatchedSequential = make_batched_mlp(
            input_dim,
            hidden_dims,
            n_features,
            rngs,
            activation=activation,
            output_activation=output_activation,
            backend=self.xb,
        )
        self.log_noise_variance = self.xb.full(self.n_stack, float(np.log(noise_variance)))
        self.log_prior_variance = self.xb.full(self.n_stack, float(np.log(prior_variance)))
        self._y_mean = self.xb.zeros(self.n_stack)
        self._y_scale = self.xb.ones(self.n_stack)
        self._x_train: np.ndarray | None = None
        self._z_train = None
        self._x_fantasy: list[np.ndarray] = []
        self._z_fantasy: list = []
        self._chol_a = None
        self._coef_r = None
        self._a_inv = None

    # -- basic properties -------------------------------------------------------

    @property
    def feature_dim(self) -> int:
        """Total feature dimension M (including the bias column if enabled)."""
        return self.n_features + (1 if self.add_bias_feature else 0)

    @property
    def noise_variance(self) -> np.ndarray:
        """Per-slice sigma_n^2 in normalized-target units, shape ``(S,)``."""
        return self.xb.exp(self.log_noise_variance)

    @property
    def prior_variance(self) -> np.ndarray:
        """Per-slice sigma_p^2, shape ``(S,)``."""
        return self.xb.exp(self.log_prior_variance)

    @property
    def beta(self) -> np.ndarray:
        """Per-slice A-matrix regularizer ``M sigma_n^2 / sigma_p^2``."""
        return self.feature_dim * self.noise_variance / self.prior_variance

    @property
    def num_train(self) -> int:
        """Number of stored training points."""
        return 0 if self._x_train is None else self._x_train.shape[0]

    # -- feature map -------------------------------------------------------------

    def features(self, x: np.ndarray) -> np.ndarray:
        """Evaluate all S feature maps on one batch; returns ``(S, n, M)``."""
        x = check_matrix_2d(x, "x", self.input_dim)
        feats = self.network.forward(x)
        if self.add_bias_feature:
            ones = self.xb.ones((self.n_stack, feats.shape[1], 1))
            feats = self.xb.concatenate([feats, ones], axis=2)
        return feats

    def backprop_feature_grad(self, grad_feats: np.ndarray) -> np.ndarray:
        """Back-propagate stacked ``dL/dphi``; returns ``(S, P)`` gradients."""
        grad_feats = self.xb.asarray(grad_feats, dtype=float)
        if self.add_bias_feature:
            grad_feats = grad_feats[:, :, :-1]
        self.network.zero_grad()
        self.network.backward(grad_feats)
        return self.network.get_stacked_grads()

    # -- marginal likelihood (eq. 11, per slice) ----------------------------------

    def marginal_nll(self, feats: np.ndarray, z: np.ndarray, with_grads: bool = False):
        """Per-slice negative log marginal likelihood of normalized targets.

        ``feats`` has shape ``(S, N, M)`` and ``z`` shape ``(S, N)``.
        Returns ``nll`` of shape ``(S,)``, or with gradients
        ``(nll, dfeats (S, N, M), dlog_noise (S,), dlog_prior (S,))``.

        The M-dimensional reductions (dot products, traces) run per slice:
        at M ~ 50 they are negligible next to the stacked GEMMs, and the
        per-slice BLAS calls keep every value bitwise identical to
        :meth:`NeuralFeatureGP.marginal_nll`.
        """
        xb = self.xb
        feats = xb.asarray(feats, dtype=float)
        z = xb.asarray(z, dtype=float)
        if feats.ndim != 3 or feats.shape[0] != self.n_stack:
            raise ValueError(
                f"expected ({self.n_stack}, N, M) feats, got {tuple(feats.shape)}"
            )
        if tuple(z.shape) != tuple(feats.shape[:2]):
            raise ValueError(
                f"expected z shape {tuple(feats.shape[:2])}, got {tuple(z.shape)}"
            )
        _, n, m = feats.shape
        if m != self.feature_dim:
            raise ValueError(f"expected {self.feature_dim} features, got {m}")
        s_stack = self.n_stack
        sn2 = self.noise_variance
        beta = self.beta
        feats_t = xb.swapaxes(feats, -1, -2)
        a_mat = feats_t @ feats + beta[:, None, None] * xb.eye(m)
        u = (feats_t @ z[..., None])[..., 0]

        if xb.is_numpy:
            # Per-slice M x M factorizations and solves through direct LAPACK
            # (dpotrf/dpotrs): bitwise identical to the serial scipy calls and
            # a rounding error next to the stacked GEMMs above.  With gradients
            # the solve for ``r`` and for ``A^{-1}`` share one dpotrs call on
            # the concatenated right-hand side ``[u | I]`` — column-independent,
            # so each column matches its standalone solve exactly.  Slices are
            # independent, so the loop runs through the namespace's slice
            # mapper (threaded when ``linalg_threads`` is set; LAPACK and the
            # per-slice GEMM release the GIL, and results never depend on the
            # thread count).
            r = np.empty((s_stack, m))
            quad = np.empty(s_stack)
            logdet = np.empty(s_stack)
            gemm = np.empty_like(feats) if with_grads else None
            r_sq = np.empty(s_stack) if with_grads else None
            trace = np.empty(s_stack) if with_grads else None

            def slice_terms(s: int) -> None:
                chol_s = lapack_jitter_cholesky(a_mat[s])
                logdet[s] = log_det_from_cholesky(chol_s)
                if with_grads:
                    r[s], a_inv_s = solve_r_and_inverse(chol_s, u[s])
                    gemm[s] = feats[s] @ a_inv_s
                    r_sq[s] = float(r[s] @ r[s])
                    trace[s] = float(np.trace(a_inv_s))
                else:
                    r[s], _ = _lapack.dpotrs(chol_s, u[s], lower=1)
                quad[s] = float(z[s] @ z[s] - u[s] @ r[s])

            xb.map_slices(slice_terms, s_stack)
        else:
            # accelerator path: one fused factorization + solve for the whole
            # stack (numerical equivalence gated at 1e-5, not bitwise)
            chol = xb.batched_cholesky(a_mat)
            logdet = 2.0 * xb.sum(xb.log(xb.diagonal(chol)), axis=-1)
            if with_grads:
                r, a_inv = xb.batched_solve_r_and_inverse(chol, u)
                gemm = feats @ a_inv
                r_sq = xb.sum(r * r, axis=1)
                trace = xb.sum(xb.diagonal(a_inv), axis=-1)
            else:
                r = xb.batched_cholesky_solve(chol, u)
            quad = xb.sum(z * z, axis=1) - xb.sum(u * r, axis=1)
        nll = (
            0.5 * quad / sn2
            + 0.5 * logdet
            - 0.5 * m * xb.log(beta)
            + 0.5 * n * xb.log(2.0 * np.pi * sn2)
        )
        if not with_grads:
            return nll

        resid = z - (feats @ r[..., None])[..., 0]
        if xb.is_numpy:
            # dfeats = -(resid r^T) / sn2 + feats A^{-1}, fused in place to
            # avoid churning (S, N, M)-sized temporaries
            dfeats = resid[..., None] * r[:, None, :]
            np.negative(dfeats, out=dfeats)
            dfeats /= sn2[:, None, None]
            dfeats += gemm
        else:
            dfeats = gemm - resid[..., None] * r[:, None, :] / sn2[:, None, None]
        dbeta = 0.5 * r_sq / sn2 + 0.5 * trace - 0.5 * m / beta
        dlog_noise = -0.5 * quad / sn2 + 0.5 * n + beta * dbeta
        dlog_prior = -beta * dbeta
        return nll, dfeats, dlog_noise, dlog_prior

    # -- fitting -------------------------------------------------------------------

    def fit(self, x: np.ndarray, y: np.ndarray, trainer=None) -> "BatchedNeuralFeatureGP":
        """Train all S models on targets ``y`` of shape ``(S, N)`` or ``(N,)``.

        A 1-D ``y`` is shared by every slice (the ensemble case); an
        ``(S, N)`` matrix gives each slice its own targets (the bank case,
        where K consecutive slices repeat one target's data).  ``trainer``
        defaults to :class:`repro.core.trainer.BatchedFeatureGPTrainer`.
        """
        x = check_matrix_2d(x, "x", self.input_dim)
        y = np.asarray(y, dtype=float)
        if y.ndim == 1:
            y = np.repeat(y[None, :], self.n_stack, axis=0)
        if y.shape != (self.n_stack, x.shape[0]):
            raise ValueError(
                f"expected y shape ({self.n_stack}, {x.shape[0]}), got {y.shape}"
            )
        check_finite(x, "x")
        check_finite(y, "y")
        if x.shape[0] < 2:
            raise ValueError("BatchedNeuralFeatureGP needs at least 2 training points")
        self._x_train = x
        self._x_fantasy = []
        self._z_fantasy = []
        # normalization statistics are computed host-side (bitwise-stable
        # regardless of backend) and transferred with the targets
        if self.normalize_y:
            y_mean = np.mean(y, axis=1)
            y_scale = np.maximum(np.std(y, axis=1), StandardScaler._MIN_SCALE)
        else:
            y_mean = np.zeros(self.n_stack)
            y_scale = np.ones(self.n_stack)
        self._y_mean = self.xb.to_device(y_mean)
        self._y_scale = self.xb.to_device(y_scale)
        self._z_train = self.xb.to_device(
            (y - y_mean[:, None]) / y_scale[:, None]
        )
        if trainer is None:
            from repro.core.trainer import BatchedFeatureGPTrainer

            trainer = BatchedFeatureGPTrainer()
        trainer.train(self, x, self._z_train)
        self.update_posterior()
        return self

    def _posterior_data(self) -> tuple[np.ndarray, np.ndarray]:
        """Training arrays augmented with any fantasy observations."""
        if not self._x_fantasy:
            return self._x_train, self._z_train
        x = np.vstack([self._x_train, *self._x_fantasy])
        z = self.xb.concatenate(
            [self._z_train, self.xb.stack(self._z_fantasy, axis=1)], axis=1
        )
        return x, z

    def fantasize(self, x_new: np.ndarray, y_new: np.ndarray):
        """Condition the posterior on a fantasy observation (no retraining).

        ``x_new`` is one design point and ``y_new`` a per-slice target of
        shape ``(S,)`` in original units (normalized internally with the
        scaling statistics of the *real* fit — lies must not move the
        target normalization).  The network weights and GP scales are
        untouched: this is the constant-liar/Kriging-believer update used
        by q-point acquisition, where each pending evaluation temporarily
        behaves like data so the next pick avoids it.  Use
        :meth:`clear_fantasies` to restore the real posterior exactly.
        """
        self._require_fitted()
        x_new = np.asarray(x_new, dtype=float).reshape(1, -1)
        if x_new.shape[1] != self.input_dim:
            raise ValueError(f"expected a {self.input_dim}-dim point, got {x_new.shape}")
        y_new = np.asarray(y_new, dtype=float).ravel()
        if y_new.shape != (self.n_stack,):
            raise ValueError(f"expected ({self.n_stack},) targets, got {y_new.shape}")
        self._x_fantasy.append(x_new)
        self._z_fantasy.append((self.xb.asarray(y_new) - self._y_mean) / self._y_scale)
        self.update_posterior()

    def observe(self, x_new: np.ndarray, y_new: np.ndarray):
        """Permanently absorb one real observation, posterior-only.

        The asynchronous BO loop's ``"fantasy-only"`` refit policy: when
        an evaluation lands, its (real) values join the training set and
        the stacked ``A`` factorizations update — but the network weights,
        GP scales and target normalization stay exactly as the last full
        fit left them, so the absorb costs one forward pass plus the
        M x M refactorizations.  Unlike :meth:`fantasize`, the point
        survives :meth:`clear_fantasies`; a later :meth:`fit` (the
        periodic full refit) re-owns normalization and training.
        """
        self._require_fitted()
        x_new = np.asarray(x_new, dtype=float).reshape(1, -1)
        if x_new.shape[1] != self.input_dim:
            raise ValueError(f"expected a {self.input_dim}-dim point, got {x_new.shape}")
        y_new = np.asarray(y_new, dtype=float).ravel()
        if y_new.shape != (self.n_stack,):
            raise ValueError(f"expected ({self.n_stack},) targets, got {y_new.shape}")
        self._x_train = np.vstack([self._x_train, x_new])
        z_new = (self.xb.asarray(y_new) - self._y_mean) / self._y_scale
        self._z_train = self.xb.concatenate([self._z_train, z_new[:, None]], axis=1)
        self.update_posterior()

    def clear_fantasies(self, update: bool = True):
        """Drop all fantasy observations and restore the real posterior.

        ``update=False`` skips the posterior rebuild — for callers that
        immediately recondition (observe a landing, re-add a fresh pending
        set), where the intermediate fantasy-free posterior would be
        computed and thrown away unread.
        """
        if not self._x_fantasy:
            return
        self._x_fantasy = []
        self._z_fantasy = []
        if update:
            self.update_posterior()

    @property
    def n_fantasies(self) -> int:
        """Number of fantasy observations currently conditioning the posterior."""
        return len(self._x_fantasy)

    def update_posterior(self):
        """(Re)compute the stacked ``A`` factorizations for predictions."""
        if self._x_train is None:
            raise RuntimeError("no training data; call fit() first")
        xb = self.xb
        x_data, z_data = self._posterior_data()
        feats = self.features(x_data)
        m = feats.shape[2]
        feats_t = xb.swapaxes(feats, -1, -2)
        a_mat = feats_t @ feats + self.beta[:, None, None] * xb.eye(m)
        u = (feats_t @ z_data[..., None])[..., 0]
        # Cache A^{-1} per slice: predictive variances then cost one stacked
        # GEMM per query instead of S triangular-solve calls — the
        # acquisition maximizer issues thousands of single-point queries per
        # BO iteration, where per-call LAPACK overhead would dominate.  A is
        # regularized (beta floor + jitter ladder), so the explicit inverse
        # stays well within the engine's 1e-8 prediction tolerance.  On the
        # numpy backend these are the exact per-slice dpotrf/dpotrs loops
        # (threaded when ``linalg_threads`` is set, results thread-count
        # independent); accelerators run one fused batched factorization.
        self._chol_a = xb.batched_cholesky(a_mat)
        self._coef_r, self._a_inv = xb.batched_solve_r_and_inverse(self._chol_a, u)

    # -- prediction (eq. 10, per slice) ---------------------------------------------

    def predict(
        self, x: np.ndarray, include_noise: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-slice posterior means and variances, each shape ``(S, n)``.

        Values are in each slice's original target units, exactly as the
        matching :meth:`NeuralFeatureGP.predict` would return.
        """
        self._require_fitted()
        xb = self.xb
        feats = self.features(x)
        z_mean = (feats @ self._coef_r[..., None])[..., 0]
        # sigma_n^2 phi^T A^{-1} phi via the cached stacked inverse (see
        # update_posterior); agrees with the serial Cholesky-solve route to
        # well below the engine's 1e-8 tolerance
        quad = xb.sum((feats @ self._a_inv) * feats, axis=2)
        sn2 = self.noise_variance
        z_var = sn2[:, None] * quad
        if include_noise:
            z_var = z_var + sn2[:, None]
        z_var = xb.maximum(z_var, 1e-14)
        mean = z_mean * self._y_scale[:, None] + self._y_mean[:, None]
        var = z_var * (self._y_scale**2)[:, None]
        # results return to the host: every consumer (moment matching,
        # acquisitions) runs numpy-side regardless of backend
        return xb.from_device(mean), xb.from_device(var)

    def sample_slice_weights(self, s: int, rng=None) -> np.ndarray:
        """Draw one posterior head-weight sample for slice ``s``, shape ``(M,)``.

        The posterior over the Bayesian-linear head is
        ``w ~ N(A^{-1} Phi z, sigma_n^2 A^{-1})`` (the weight-space view of
        eq. 10), so an exact function sample is O(M^2) — the cheap-Thompson
        payoff of the NN-feature GP.  Values are in normalized-target
        units; scale by ``_y_scale[s]`` / shift by ``_y_mean[s]`` to map a
        sampled function to original units.
        """
        self._require_fitted()
        if not 0 <= s < self.n_stack:
            raise IndexError(f"slice {s} out of range [0, {self.n_stack})")
        rng = ensure_rng(rng)
        m = self.feature_dim
        # eps is drawn host-side on every backend (determinism policy)
        eps = rng.standard_normal(m)
        # cov = sigma_n^2 A^{-1} = sigma_n^2 L^{-T} L^{-1}; a draw is
        # sqrt(sigma_n^2) L^{-T} eps
        if self.xb.is_numpy:
            half = _lapack.dtrtrs(self._chol_a[s], eps, lower=1, trans=1)[0]
            return self._coef_r[s] + np.sqrt(self.noise_variance[s]) * half
        xb = self.xb
        half = xb.solve_lower_transposed(self._chol_a[s], xb.to_device(eps))
        return self._coef_r[s] + xb.sqrt(self.noise_variance[s]) * half

    def gather_slices(self, idx) -> "BatchedNeuralFeatureGP":
        """A new stacked model holding copies of the selected slices.

        Used for active-slice compaction during training (frozen slices
        stop paying for GEMMs) and for member-level views.  The gathered
        model shares no arrays with its parent; training-data/posterior
        state is NOT carried over — callers drive it through the stateless
        compute methods (:meth:`features`, :meth:`marginal_nll`,
        :meth:`backprop_feature_grad`).
        """
        idx = np.asarray(idx, dtype=int)
        if idx.ndim != 1 or idx.size == 0:
            raise ValueError("idx must be a non-empty 1-D index array")
        if np.any(idx < 0) or np.any(idx >= self.n_stack):
            raise IndexError(f"slice indices out of range [0, {self.n_stack})")
        sub = object.__new__(BatchedNeuralFeatureGP)
        sub.xb = self.xb
        sub.input_dim = self.input_dim
        sub.n_stack = int(idx.size)
        sub.n_features = self.n_features
        sub.add_bias_feature = self.add_bias_feature
        sub.normalize_y = self.normalize_y
        sub.network = self.network.gather_slices(idx)
        idx_b = self.xb.as_index(idx)
        sub.log_noise_variance = self.xb.copy(self.xb.asarray(self.log_noise_variance)[idx_b])
        sub.log_prior_variance = self.xb.copy(self.xb.asarray(self.log_prior_variance)[idx_b])
        sub._y_mean = self.xb.copy(self._y_mean[idx_b])
        sub._y_scale = self.xb.copy(self._y_scale[idx_b])
        sub._x_train = None
        sub._z_train = None
        sub._x_fantasy = []
        sub._z_fantasy = []
        sub._chol_a = None
        sub._coef_r = None
        sub._a_inv = None
        return sub

    def _require_fitted(self):
        if self._chol_a is None or self._coef_r is None:
            raise RuntimeError("model not fitted; call fit() first")

    def __repr__(self) -> str:
        return (
            f"BatchedNeuralFeatureGP(S={self.n_stack}, d={self.input_dim}, "
            f"M={self.feature_dim})"
        )


class _BankTargetModel:
    """Per-target predict view over a fitted :class:`SurrogateBank`.

    Implements the plain ``predict(x) -> (mean, var)`` protocol the
    acquisition functions expect, so the bank drops into
    :class:`~repro.acquisition.wei.WeightedExpectedImprovement` unchanged.
    """

    def __init__(self, bank: "SurrogateBank", target: int):
        self.bank = bank
        self.target = int(target)

    def predict(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return self.bank.predict_target(self.target, x)

    def __repr__(self) -> str:
        return f"_BankTargetModel(target={self.target}, bank={self.bank!r})"


class SurrogateBank:
    """Objective + constraint ensembles fitted together in one batched pass.

    The bank owns ``S = n_targets * n_members`` stacked networks (slice
    ``t * K + k`` is member ``k`` of target ``t``), fits them all with one
    :meth:`fit` call, and serves per-target moment-matched predictions
    (eq. 13) identical to a serial
    :class:`~repro.core.ensemble.DeepEnsemble` per target.

    Seeding matches the serial BO loop exactly: the root generator is
    consumed by ``spawn_rngs(root, K)`` once per target, in target order —
    the same stream a sequence of ``DeepEnsemble.create(...)`` calls
    sharing one generator would draw.

    Parameters
    ----------
    input_dim:
        Design-space dimension ``d``.
    n_targets:
        Number of modelled quantities T (objective + constraints).
    n_members:
        Ensemble size K per target (paper: 5).
    trainer_factory:
        Callable returning a fresh
        :class:`~repro.core.trainer.BatchedFeatureGPTrainer` per fit;
        defaults to the stock settings.
    hidden_dims, n_features, activation, output_activation,
    noise_variance, prior_variance, normalize_y, seed, backend:
        Forwarded to :class:`BatchedNeuralFeatureGP` (``backend`` selects
        the array namespace; the root RNG stream is backend-independent).
    """

    def __init__(
        self,
        input_dim: int,
        n_targets: int,
        n_members: int = 5,
        hidden_dims: tuple[int, ...] = (50, 50),
        n_features: int = 50,
        activation: str = "relu",
        output_activation: str = "tanh",
        add_bias_feature: bool = True,
        noise_variance: float = 1e-2,
        prior_variance: float = 1.0,
        normalize_y: bool = True,
        trainer_factory=None,
        seed=None,
        backend=None,
    ):
        if n_targets < 1:
            raise ValueError(f"n_targets must be >= 1, got {n_targets}")
        if n_members < 1:
            raise ValueError(f"n_members must be >= 1, got {n_members}")
        self.n_targets = int(n_targets)
        self.n_members = int(n_members)
        root = ensure_rng(seed)
        rngs = [rng for _ in range(self.n_targets) for rng in spawn_rngs(root, self.n_members)]
        self._gp = BatchedNeuralFeatureGP(
            input_dim,
            n_stack=self.n_targets * self.n_members,
            hidden_dims=hidden_dims,
            n_features=n_features,
            activation=activation,
            output_activation=output_activation,
            add_bias_feature=add_bias_feature,
            noise_variance=noise_variance,
            prior_variance=prior_variance,
            normalize_y=normalize_y,
            seed=rngs,
            backend=backend,
        )
        self._trainer_factory = trainer_factory
        self._pred_cache: tuple | None = None

    # -- basic properties -------------------------------------------------------

    @property
    def n_stack(self) -> int:
        """Total number of stacked networks ``S = T * K``."""
        return self._gp.n_stack

    @property
    def gp(self) -> BatchedNeuralFeatureGP:
        """The underlying stacked GP (slice layout ``s = t * K + k``)."""
        return self._gp

    # -- fitting -------------------------------------------------------------------

    def fit(self, x: np.ndarray, targets: np.ndarray) -> "SurrogateBank":
        """Fit every ensemble on ``targets`` of shape ``(n_targets, N)``.

        Calling ``fit`` again on an already-trained bank is a *warm-start
        refit*: the trainer reads its starting parameters from the live
        network, so the previously learned weights seed the new
        optimization instead of a fresh random init (a fresh init requires
        constructing a new bank).  The asynchronous loop's periodic full
        refits rely on this — when only a handful of points landed since
        the last fit, warm-started training converges in far fewer epochs.
        """
        targets = np.asarray(targets, dtype=float)
        if targets.ndim != 2 or targets.shape[0] != self.n_targets:
            raise ValueError(
                f"expected targets shape ({self.n_targets}, N), got {targets.shape}"
            )
        y_stack = np.repeat(targets, self.n_members, axis=0)
        trainer = self._trainer_factory() if self._trainer_factory else None
        self._gp.fit(x, y_stack, trainer=trainer)
        self._pred_cache = None
        return self

    # -- fantasy conditioning (q-point acquisition) ---------------------------------

    def fantasize(self, x_new: np.ndarray, lie_targets: np.ndarray) -> "SurrogateBank":
        """Condition every ensemble on a fantasy observation of ``x_new``.

        ``lie_targets`` holds one lie value per target (shape
        ``(n_targets,)``); each target's K member slices all observe the
        same lie.  Network weights stay fixed — only the Bayesian-linear
        posteriors update — so a fantasy costs one stacked forward pass
        plus the M x M refactorizations, a rounding error next to a
        training run.  Used by the batch proposer to make q-point picks
        diverse (constant liar / Kriging believer).
        """
        lie_targets = np.asarray(lie_targets, dtype=float).ravel()
        if lie_targets.shape != (self.n_targets,):
            raise ValueError(
                f"expected ({self.n_targets},) lie targets, got {lie_targets.shape}"
            )
        self._gp.fantasize(x_new, np.repeat(lie_targets, self.n_members))
        self._pred_cache = None
        return self

    def observe(self, x_new: np.ndarray, targets: np.ndarray) -> "SurrogateBank":
        """Permanently absorb one real observation without retraining.

        ``targets`` holds the landed values per target (shape
        ``(n_targets,)``); each target's K member slices absorb the same
        value.  Posterior-only (see
        :meth:`BatchedNeuralFeatureGP.observe`): weights, scales and
        normalization stay fixed until the next full :meth:`fit`.  This is
        the async loop's cheap per-landing update under the
        ``"fantasy-only"`` refit policy.
        """
        targets = np.asarray(targets, dtype=float).ravel()
        if targets.shape != (self.n_targets,):
            raise ValueError(
                f"expected ({self.n_targets},) targets, got {targets.shape}"
            )
        self._gp.observe(x_new, np.repeat(targets, self.n_members))
        self._pred_cache = None
        return self

    def clear_fantasies(self, update: bool = True) -> "SurrogateBank":
        """Drop fantasy observations; the real posterior is restored exactly.

        ``update=False`` defers the posterior rebuild to the caller's next
        conditioning call (see :meth:`BatchedNeuralFeatureGP.clear_fantasies`).
        """
        self._gp.clear_fantasies(update=update)
        self._pred_cache = None
        return self

    @property
    def n_fantasies(self) -> int:
        """Number of fantasy observations currently conditioning the bank."""
        return self._gp.n_fantasies

    # -- posterior function sampling (Thompson) -------------------------------------

    def sample_target_function(self, target: int, rng=None):
        """One ensemble-Thompson draw of a target: a callable ``f(x) -> (n,)``.

        A member ``k`` is chosen uniformly, then an exact weight-space
        posterior function is sampled from slice ``t * K + k`` (the
        standard ensemble-Thompson scheme, mirroring the per-member
        :class:`~repro.acquisition.thompson.SampledFunction`).  Returned
        values are in original target units.
        """
        if not 0 <= target < self.n_targets:
            raise IndexError(f"target {target} out of range [0, {self.n_targets})")
        rng = ensure_rng(rng)
        k = int(rng.integers(self.n_members))
        s = target * self.n_members + k
        weights = self._gp.sample_slice_weights(s, rng=rng)
        scale = float(self._gp._y_scale[s])
        mean = float(self._gp._y_mean[s])

        def sampled(x: np.ndarray, _s=s, _w=weights) -> np.ndarray:
            feats = self._gp.features(np.atleast_2d(np.asarray(x, dtype=float)))
            return self._gp.xb.from_device(feats[_s] @ _w) * scale + mean

        return sampled

    # -- prediction -----------------------------------------------------------------

    def _stacked_predict(self, x: np.ndarray):
        """All-slice and all-target predictions with a one-entry cache.

        The acquisition evaluates objective and constraint models on the
        *same* candidate batch (thousands of single-point batches during
        the polish phase), so one stacked forward pass plus one vectorized
        moment-match (eq. 13 over a ``(T, K, n)`` view) serves all T
        target queries.
        """
        x = np.asarray(x, dtype=float)
        # key on the raw bytes (not their hash): a silent hash collision
        # would serve another candidate's predictions
        key = (x.shape, x.tobytes())
        if self._pred_cache is not None and self._pred_cache[0] == key:
            return self._pred_cache[1:]
        means, variances = self._gp.predict(x)
        n = means.shape[1]
        mean_tkn = means.reshape(self.n_targets, self.n_members, n)
        var_tkn = variances.reshape(self.n_targets, self.n_members, n)
        mu = mean_tkn.mean(axis=1)
        second_moment = (mean_tkn**2 + var_tkn).mean(axis=1)
        var = np.maximum(second_moment - mu**2, 1e-14)
        self._pred_cache = (key, means, variances, mu, var)
        return means, variances, mu, var

    def predict_target(self, target: int, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Moment-matched ensemble prediction (eq. 13) for one target."""
        if not 0 <= target < self.n_targets:
            raise IndexError(f"target {target} out of range [0, {self.n_targets})")
        _, _, mu, var = self._stacked_predict(x)
        return mu[target], var[target]

    def target_model(self, target: int) -> _BankTargetModel:
        """A ``predict``-protocol view of one target's ensemble."""
        if not 0 <= target < self.n_targets:
            raise IndexError(f"target {target} out of range [0, {self.n_targets})")
        return _BankTargetModel(self, target)

    def member_predictions(
        self, target: int, x: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-member means and variances for one target, ``(K, n)`` each."""
        means, variances, _, _ = self._stacked_predict(x)
        lo = target * self.n_members
        hi = lo + self.n_members
        return means[lo:hi].copy(), variances[lo:hi].copy()

    def estimate_target_lipschitz(
        self, target: int = 0, n_samples: int = 32, step: float = 1e-4, seed: int = 0
    ) -> float:
        """Lipschitz estimate of one target's posterior-mean surface.

        Max finite-difference gradient norm over a fixed sample of the unit
        box, evaluated through the stacked predict path (one forward pass
        for all ``n_samples * 2 * d`` probes).  Feeds the local-penalization
        pending-point strategy (:mod:`repro.acquisition.penalization`): the
        exclusion-ball radius around each in-flight design is the predicted
        excess over the incumbent divided by this constant.  The probe
        stream is seeded internally, so the estimate is a pure function of
        the bank's fitted state — calling it never perturbs the BO loop's
        proposal RNG.
        """
        from repro.acquisition.penalization import estimate_lipschitz

        return estimate_lipschitz(
            self.target_model(target),
            self._gp.input_dim,
            n_samples=n_samples,
            step=step,
            seed=seed,
        )

    def __repr__(self) -> str:
        return (
            f"SurrogateBank(T={self.n_targets}, K={self.n_members}, "
            f"S={self.n_stack})"
        )


def serial_reference_bank(
    input_dim: int,
    n_targets: int,
    n_members: int = 5,
    member_kwargs: dict | None = None,
    seed=None,
) -> list[list[NeuralFeatureGP]]:
    """Per-member models seeded identically to a :class:`SurrogateBank`.

    Test/benchmark helper: returns ``models[t][k]`` constructed from the
    exact random streams bank slice ``t * K + k`` used, so serial and
    batched training can be compared one-to-one.
    """
    root = ensure_rng(seed)
    member_kwargs = dict(member_kwargs or {})
    models: list[list[NeuralFeatureGP]] = []
    for _ in range(n_targets):
        rngs = spawn_rngs(root, n_members)
        models.append(
            [NeuralFeatureGP(input_dim, seed=rng, **member_kwargs) for rng in rngs]
        )
    return models
