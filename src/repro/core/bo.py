"""The paper's complete algorithm: NN-GP ensemble Bayesian optimization.

``NNBO`` is Algorithm 1 with the surrogate of Sec. III: each iteration
builds K = 5 independently initialized :class:`NeuralFeatureGP` models per
modelled quantity, trains them by marginal-likelihood back-propagation,
combines them by moment matching (eq. 13) and maximizes the wEI
acquisition (eq. 7) to pick the next simulation.

Model hyper-parameters live in a typed
:class:`~repro.bo.config.SurrogateConfig`; the historical flat kwargs
(``n_ensemble=``, ``hidden_dims=``, ``engine=``, ...) keep working
through the same deprecation shim as the driver-level configs.
"""

from __future__ import annotations

from repro.bo.config import AcquisitionConfig, SchedulerConfig, SurrogateConfig
from repro.bo.loop import _UNSET, SurrogateBO, resolve_config_shim
from repro.bo.problem import Problem
from repro.core.ensemble import DeepEnsemble


class _TrainedEnsemble:
    """Adapter giving a :class:`DeepEnsemble` a plain ``fit(x, y)`` interface.

    Each member gets a freshly configured trainer so that trainer state
    (Adam moments, loss history) never leaks between members or targets.
    """

    def __init__(self, ensemble: DeepEnsemble, trainer_factory):
        self._ensemble = ensemble
        self._trainer_factory = trainer_factory

    def fit(self, x, y):
        for member in self._ensemble.members:
            member.fit(x, y, trainer=self._trainer_factory())
        return self

    def predict(self, x):
        return self._ensemble.predict(x)

    def condition_on(self, x_new, y_new):
        """Posterior-only fantasy update of every member (no retraining)."""
        for member in self._ensemble.members:
            member.condition_on(x_new, y_new)
        return self

    @property
    def members(self):
        return self._ensemble.members


class NNBO(SurrogateBO):
    """Bayesian optimization using the neural-network GP (paper Algorithm 1).

    Parameters mirror the paper's experimental setup; Table I uses
    ``n_initial=30, max_evaluations=100`` and Table II
    ``n_initial=100, max_evaluations=790`` with ``n_ensemble=5``.

    Parameters
    ----------
    problem:
        Constrained sizing problem (eq. 1).
    surrogate:
        A :class:`~repro.bo.config.SurrogateConfig` with the ensemble
        hyper-parameters (K, architecture, trainer settings) and the
        training engine (``"batched"`` fits the objective and all
        constraint ensembles as one stacked tensor program; ``"loop"``
        trains the K x T members one by one; ``"auto"`` picks batched
        except for single-point Thompson).
    acquisition_config, scheduler_config:
        Driver-level configs, as on :class:`~repro.bo.loop.SurrogateBO`.
    acq_maximizer, seed, verbose, callback:
        As on :class:`~repro.bo.loop.SurrogateBO`.

    The historical flat kwargs (``n_ensemble=``, ``hidden_dims=``,
    ``epochs=``, ``q=``, ``executor=``, ...) still work and map onto the
    three configs with a ``DeprecationWarning``.
    """

    algorithm_name = "NN-BO"

    def __init__(
        self,
        problem: Problem,
        n_initial: int = 30,
        max_evaluations: int = 100,
        n_ensemble=_UNSET,
        hidden_dims=_UNSET,
        n_features=_UNSET,
        activation=_UNSET,
        output_activation=_UNSET,
        epochs=_UNSET,
        lr=_UNSET,
        pretrain_epochs=_UNSET,
        patience=_UNSET,
        acq_maximizer=None,
        acquisition=_UNSET,
        log_space_acq=_UNSET,
        engine=_UNSET,
        backend=_UNSET,
        device=_UNSET,
        linalg_threads=_UNSET,
        q=_UNSET,
        executor=_UNSET,
        n_eval_workers=_UNSET,
        fantasy=_UNSET,
        pending_strategy=_UNSET,
        hallucinate_kappa=_UNSET,
        proposal_space=_UNSET,
        trust_region=_UNSET,
        async_refit=_UNSET,
        async_full_refit_every=_UNSET,
        async_clock=_UNSET,
        seed=None,
        verbose: bool = False,
        callback=None,
        *,
        initial_design: str = "lhs",
        name: str | None = None,
        surrogate: SurrogateConfig | None = None,
        acquisition_config: AcquisitionConfig | None = None,
        scheduler_config: SchedulerConfig | None = None,
    ):
        surrogate = resolve_config_shim(
            SurrogateConfig,
            surrogate,
            "surrogate",
            {
                "n_ensemble": n_ensemble,
                "hidden_dims": hidden_dims,
                "n_features": n_features,
                "activation": activation,
                "output_activation": output_activation,
                "epochs": epochs,
                "lr": lr,
                "pretrain_epochs": pretrain_epochs,
                "patience": patience,
                "engine": engine,
                "backend": backend,
                "device": device,
                "linalg_threads": linalg_threads,
            },
            {},
            owner=type(self).__name__,
        )
        acquisition_config = resolve_config_shim(
            AcquisitionConfig,
            acquisition_config,
            "acquisition_config",
            {
                "acquisition": acquisition,
                "log_space": log_space_acq,
                "fantasy": fantasy,
                "pending_strategy": pending_strategy,
                "hallucinate_kappa": hallucinate_kappa,
                "proposal_space": proposal_space,
                "trust_region": trust_region,
            },
            {"log_space": "log_space_acq"},
            owner=type(self).__name__,
        )
        scheduler_config = resolve_config_shim(
            SchedulerConfig,
            scheduler_config,
            "scheduler_config",
            {
                "q": q,
                "executor": executor,
                "n_eval_workers": n_eval_workers,
                "async_refit": async_refit,
                "async_full_refit_every": async_full_refit_every,
                "clock": async_clock,
            },
            {"clock": "async_clock"},
            owner=type(self).__name__,
        )
        self.surrogate_config = surrogate
        # flat mirrors (historical introspection surface)
        self.n_ensemble = surrogate.n_ensemble
        self.hidden_dims = surrogate.hidden_dims
        self.n_features = surrogate.n_features
        self.activation = surrogate.activation
        self.output_activation = surrogate.output_activation
        self.epochs = surrogate.epochs
        self.lr = surrogate.lr
        self.pretrain_epochs = surrogate.pretrain_epochs
        self.patience = surrogate.patience
        self.engine = surrogate.resolve_engine(
            acquisition_config.acquisition, scheduler_config.q
        )
        self.backend = surrogate.backend
        self.device = surrogate.device
        self.linalg_threads = surrogate.linalg_threads

        member_factory = surrogate.member_factory(problem.dim)
        trainer_factory = surrogate.trainer_factory

        def surrogate_factory(rng):
            ensemble = DeepEnsemble.create(
                member_factory, n_members=surrogate.n_ensemble, seed=rng
            )
            return _TrainedEnsemble(ensemble, trainer_factory)

        super().__init__(
            problem,
            surrogate_factory,
            n_initial=n_initial,
            max_evaluations=max_evaluations,
            initial_design=initial_design,
            name=name,
            acq_maximizer=acq_maximizer,
            surrogate_bank_factory=(
                surrogate.bank_factory(problem.dim)
                if self.engine == "batched"
                else None
            ),
            acquisition_config=acquisition_config,
            scheduler_config=scheduler_config,
            seed=seed,
            verbose=verbose,
            callback=callback,
        )
