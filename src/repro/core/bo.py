"""The paper's complete algorithm: NN-GP ensemble Bayesian optimization.

``NNBO`` is Algorithm 1 with the surrogate of Sec. III: each iteration
builds K = 5 independently initialized :class:`NeuralFeatureGP` models per
modelled quantity, trains them by marginal-likelihood back-propagation,
combines them by moment matching (eq. 13) and maximizes the wEI
acquisition (eq. 7) to pick the next simulation.
"""

from __future__ import annotations

from repro.bo.loop import SurrogateBO
from repro.bo.problem import Problem
from repro.core.batched_gp import SurrogateBank
from repro.core.ensemble import DeepEnsemble
from repro.core.feature_gp import NeuralFeatureGP
from repro.core.trainer import BatchedFeatureGPTrainer, FeatureGPTrainer


class _TrainedEnsemble:
    """Adapter giving a :class:`DeepEnsemble` a plain ``fit(x, y)`` interface.

    Each member gets a freshly configured trainer so that trainer state
    (Adam moments, loss history) never leaks between members or targets.
    """

    def __init__(self, ensemble: DeepEnsemble, trainer_factory):
        self._ensemble = ensemble
        self._trainer_factory = trainer_factory

    def fit(self, x, y):
        for member in self._ensemble.members:
            member.fit(x, y, trainer=self._trainer_factory())
        return self

    def predict(self, x):
        return self._ensemble.predict(x)

    def condition_on(self, x_new, y_new):
        """Posterior-only fantasy update of every member (no retraining)."""
        for member in self._ensemble.members:
            member.condition_on(x_new, y_new)
        return self

    @property
    def members(self):
        return self._ensemble.members


class NNBO(SurrogateBO):
    """Bayesian optimization using the neural-network GP (paper Algorithm 1).

    Parameters mirror the paper's experimental setup; Table I uses
    ``n_initial=30, max_evaluations=100`` and Table II
    ``n_initial=100, max_evaluations=790`` with ``n_ensemble=5``.

    Parameters
    ----------
    problem:
        Constrained sizing problem (eq. 1).
    n_ensemble:
        Ensemble size K (paper: 5, "empirically set").
    hidden_dims, n_features, activation:
        Feature-network architecture (Fig. 1: two hidden layers + feature
        output, ReLU).
    epochs, lr, pretrain_epochs:
        Trainer settings for the likelihood maximization (Sec. III-B).
    engine:
        ``"batched"`` fits the objective and all constraint ensembles as
        one stacked tensor program (:class:`~repro.core.batched_gp.
        SurrogateBank`); ``"loop"`` trains the K x T members one by one
        (the original path, numerically equivalent for the default
        ``pretrain_epochs=0`` — the optional MSE warm start uses
        independent random head draws in each engine); ``"auto"``
        (default) picks ``"batched"`` except for single-point Thompson,
        which keeps the loop path so historical seeded runs are
        preserved (q > 1 Thompson samples through the stacked bank).
    q, executor, n_eval_workers, fantasy:
        Batch-proposal knobs forwarded to :class:`~repro.bo.loop.
        SurrogateBO`: propose ``q`` designs per iteration and dispatch
        them to the ``"serial"``/``"thread"``/``"process"`` evaluation
        executor, with ``fantasy`` controlling the lie between wEI picks.
        ``q=1`` (default) reproduces the paper's serial loop bitwise.
    pending_strategy, hallucinate_kappa:
        How batch-mate / in-flight designs shape each proposal's
        acquisition (:mod:`repro.acquisition.penalization`): ``"fantasy"``
        (default, lie observations — the historical behaviour, bitwise
        unchanged), ``"penalize"`` (local penalization on the clean
        posterior) or ``"hallucinate"`` (believer conditioning + the
        GP-BUCB optimistic bound with confidence multiplier
        ``hallucinate_kappa``).
    async_refit, async_full_refit_every, async_clock:
        Asynchronous-mode knobs (``executor="async-thread"/"async-process"``,
        see :class:`~repro.bo.scheduler.AsyncEvaluationScheduler`): the
        refill-on-completion loop keeps ``n_eval_workers`` simulations in
        flight and, per landing, either refits fresh surrogates
        (``async_refit="full"``) or absorbs the landing posterior-only with
        periodic warm-started refits (``"fantasy-only"`` — requires the
        batched engine, which is the default).
    """

    algorithm_name = "NN-BO"

    def __init__(
        self,
        problem: Problem,
        n_initial: int = 30,
        max_evaluations: int = 100,
        n_ensemble: int = 5,
        hidden_dims: tuple[int, ...] = (50, 50),
        n_features: int = 50,
        activation: str = "relu",
        output_activation: str = "tanh",
        epochs: int = 300,
        lr: float = 5e-3,
        pretrain_epochs: int = 0,
        patience: int | None = 60,
        acq_maximizer=None,
        acquisition: str = "wei",
        log_space_acq: bool | None = None,
        engine: str = "auto",
        q: int = 1,
        executor="serial",
        n_eval_workers: int | None = None,
        fantasy: str = "believer",
        pending_strategy: str = "fantasy",
        hallucinate_kappa: float = 2.0,
        async_refit: str = "full",
        async_full_refit_every: int | None = None,
        async_clock=None,
        seed=None,
        verbose: bool = False,
        callback=None,
    ):
        self.n_ensemble = int(n_ensemble)
        self.hidden_dims = tuple(int(h) for h in hidden_dims)
        self.n_features = int(n_features)
        self.activation = str(activation)
        self.output_activation = str(output_activation)
        self.epochs = int(epochs)
        self.lr = float(lr)
        self.pretrain_epochs = int(pretrain_epochs)
        self.patience = patience
        if engine not in ("auto", "batched", "loop"):
            raise ValueError(
                f"engine must be 'auto', 'batched' or 'loop', got {engine!r}"
            )
        if engine == "auto":
            # single-point Thompson stays on the loop path so seeded runs
            # from before the bank grew posterior sampling are preserved;
            # q-point Thompson wants the stacked predict path
            engine = "loop" if (acquisition == "thompson" and q == 1) else "batched"
        self.engine = engine

        def member_factory(rng):
            return NeuralFeatureGP(
                input_dim=problem.dim,
                hidden_dims=self.hidden_dims,
                n_features=self.n_features,
                activation=self.activation,
                output_activation=self.output_activation,
                seed=rng,
            )

        def trainer_factory():
            return FeatureGPTrainer(
                epochs=self.epochs,
                lr=self.lr,
                pretrain_epochs=self.pretrain_epochs,
                patience=self.patience,
            )

        def surrogate_factory(rng):
            ensemble = DeepEnsemble.create(
                member_factory, n_members=self.n_ensemble, seed=rng
            )
            return _TrainedEnsemble(ensemble, trainer_factory)

        def batched_trainer_factory():
            return BatchedFeatureGPTrainer(
                epochs=self.epochs,
                lr=self.lr,
                pretrain_epochs=self.pretrain_epochs,
                patience=self.patience,
            )

        def surrogate_bank_factory(rng, n_targets):
            return SurrogateBank(
                input_dim=problem.dim,
                n_targets=n_targets,
                n_members=self.n_ensemble,
                hidden_dims=self.hidden_dims,
                n_features=self.n_features,
                activation=self.activation,
                output_activation=self.output_activation,
                trainer_factory=batched_trainer_factory,
                seed=rng,
            )

        super().__init__(
            problem,
            surrogate_factory,
            n_initial=n_initial,
            max_evaluations=max_evaluations,
            acq_maximizer=acq_maximizer,
            acquisition=acquisition,
            log_space_acq=log_space_acq,
            surrogate_bank_factory=(
                surrogate_bank_factory if self.engine == "batched" else None
            ),
            q=q,
            executor=executor,
            n_eval_workers=n_eval_workers,
            fantasy=fantasy,
            pending_strategy=pending_strategy,
            hallucinate_kappa=hallucinate_kappa,
            async_refit=async_refit,
            async_full_refit_every=async_full_refit_every,
            async_clock=async_clock,
            seed=seed,
            verbose=verbose,
            callback=callback,
        )
