"""Gaussian process regression with a neural-network feature map.

This is the paper's surrogate model (Sec. III-A).  The latent function is a
Bayesian linear model over learned features,

    f(x) = w^T phi(x),        w ~ N(0, sigma_p^2 / M * I),          (eq. 8)

which induces the GP kernel ``k(x1, x2) = phi(x1)^T Sigma_p phi(x2)``
(eq. 9).  With ``Phi = [phi(x_1) ... phi(x_N)]`` (M x N) and

    A = Phi Phi^T + (M sigma_n^2 / sigma_p^2) I                     (M x M)

the posterior at a new point is (eq. 10)

    mu(x)      = phi(x)^T A^{-1} Phi y
    sigma^2(x) = sigma_n^2 + sigma_n^2 phi(x)^T A^{-1} phi(x)

and the marginal log-likelihood is eq. 11.  Everything is expressed through
the M x M matrix ``A``, so training cost is O(M^3 + N M^2) — *linear* in the
number of observations N — and prediction is O(M)/O(M^2) per point,
independent of N (Sec. III-D).

Gradient of the negative log-likelihood used for training (derived from
eq. 11 via matrix calculus; verified against finite differences in
``tests/core/test_feature_gp_grad.py``): with ``u = Phi y``, ``r = A^{-1} u``
and ``resid = y - Phi^T r``,

    dNLL/dPhi   = -(1/sigma_n^2) * r resid^T + A^{-1} Phi
    dNLL/dbeta  = r^T r / (2 sigma_n^2) + tr(A^{-1}) / 2 - M / (2 beta)
    dNLL/ds     = -(y^T y - u^T r) / (2 sigma_n^2) + N/2 + beta * dNLL/dbeta
    dNLL/dp     = -beta * dNLL/dbeta

where ``beta = M sigma_n^2 / sigma_p^2`` and ``s = log sigma_n^2``,
``p = log sigma_p^2``.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla

from repro.nn.network import Sequential, make_mlp
from repro.gp.linalg import jitter_cholesky, log_det_from_cholesky
from repro.utils.rng import ensure_rng
from repro.utils.scaling import StandardScaler
from repro.utils.validation import check_finite, check_matrix_2d, check_vector_1d

# Clamp ranges for the log-scale hyper-parameters during training; without
# them the likelihood can push sigma_n^2 -> 0 on noise-free data and the
# A-matrix conditioning collapses.
LOG_NOISE_BOUNDS = (np.log(1e-8), np.log(1e2))
LOG_PRIOR_BOUNDS = (np.log(1e-6), np.log(1e4))


class NeuralFeatureGP:
    """GP regression model whose kernel is learned by a neural network.

    Parameters
    ----------
    input_dim:
        Design-space dimension ``d``.
    hidden_dims:
        Hidden-layer widths of the feature network; the default ``(50, 50)``
        realizes the paper's 4-layer fully-connected architecture (Fig. 1).
    n_features:
        Width ``M`` of the feature layer phi(x) (before the optional bias
        column).
    activation:
        Hidden activation; the paper uses ReLU.
    add_bias_feature:
        Append a constant-1 feature so the Bayesian linear head can express
        a learned constant mean (the classic GP baseline gets an explicit
        ``mu_0`` instead).
    noise_variance, prior_variance:
        Initial sigma_n^2 and sigma_p^2.
    normalize_y:
        Z-score targets internally before fitting.
    seed:
        Seed/generator for weight initialization; ensemble members pass
        independent generators (Sec. III-C).
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dims: tuple[int, ...] = (50, 50),
        n_features: int = 50,
        activation: str = "relu",
        output_activation: str = "tanh",
        add_bias_feature: bool = True,
        noise_variance: float = 1e-2,
        prior_variance: float = 1.0,
        normalize_y: bool = True,
        seed=None,
    ):
        if noise_variance <= 0 or prior_variance <= 0:
            raise ValueError("noise_variance and prior_variance must be positive")
        self.input_dim = int(input_dim)
        self.n_features = int(n_features)
        self.add_bias_feature = bool(add_bias_feature)
        self.normalize_y = bool(normalize_y)
        rng = ensure_rng(seed)
        self.network: Sequential = make_mlp(
            input_dim,
            hidden_dims,
            n_features,
            activation=activation,
            output_activation=output_activation,
            rng=rng,
        )
        self.log_noise_variance = float(np.log(noise_variance))
        self.log_prior_variance = float(np.log(prior_variance))
        self._y_scaler = StandardScaler()
        self._x_train: np.ndarray | None = None
        self._z_train: np.ndarray | None = None
        self._chol_a: np.ndarray | None = None
        self._coef_r: np.ndarray | None = None

    # -- basic properties -------------------------------------------------------

    @property
    def feature_dim(self) -> int:
        """Total feature dimension M (including the bias column if enabled)."""
        return self.n_features + (1 if self.add_bias_feature else 0)

    @property
    def noise_variance(self) -> float:
        """sigma_n^2 in normalized-target units."""
        return float(np.exp(self.log_noise_variance))

    @property
    def prior_variance(self) -> float:
        """sigma_p^2, the prior variance budget of the linear head."""
        return float(np.exp(self.log_prior_variance))

    @property
    def beta(self) -> float:
        """Regularizer ``M sigma_n^2 / sigma_p^2`` on the A-matrix diagonal."""
        return self.feature_dim * self.noise_variance / self.prior_variance

    @property
    def num_train(self) -> int:
        """Number of stored training points."""
        return 0 if self._x_train is None else self._x_train.shape[0]

    # -- feature map --------------------------------------------------------------

    def features(self, x: np.ndarray) -> np.ndarray:
        """Evaluate phi(x) for a batch; returns shape ``(n, M)``."""
        x = check_matrix_2d(x, "x", self.input_dim)
        feats = self.network.forward(x)
        if self.add_bias_feature:
            feats = np.hstack([feats, np.ones((feats.shape[0], 1))])
        return feats

    def backprop_feature_grad(self, grad_feats: np.ndarray) -> np.ndarray:
        """Back-propagate ``dL/dphi`` through the network (eq. 12).

        ``grad_feats`` has shape ``(n, M)``; the bias column's gradient (if
        present) is discarded because that feature is constant.  Network
        parameter gradients are accumulated in place and returned flat.
        """
        grad_feats = np.asarray(grad_feats, dtype=float)
        if self.add_bias_feature:
            grad_feats = grad_feats[:, :-1]
        self.network.zero_grad()
        self.network.backward(grad_feats)
        return self.network.get_flat_grads()

    # -- marginal likelihood (eq. 11) ----------------------------------------------

    def marginal_nll(
        self, feats: np.ndarray, z: np.ndarray, with_grads: bool = False
    ):
        """Negative log marginal likelihood of normalized targets ``z``.

        Parameters
        ----------
        feats:
            Feature matrix ``(N, M)`` — i.e. ``Phi^T`` in the paper's column
            convention.
        z:
            Normalized targets, shape ``(N,)``.
        with_grads:
            If true, also return ``(dNLL/dfeats, dNLL/dlog sigma_n^2,
            dNLL/dlog sigma_p^2)``.

        Returns
        -------
        ``nll`` or ``(nll, dfeats, dlog_noise, dlog_prior)``.
        """
        feats = np.asarray(feats, dtype=float)
        z = check_vector_1d(z, "z", length=feats.shape[0])
        n, m = feats.shape
        if m != self.feature_dim:
            raise ValueError(f"expected {self.feature_dim} features, got {m}")
        sn2 = self.noise_variance
        beta = self.beta
        a_mat = feats.T @ feats + beta * np.eye(m)
        chol = jitter_cholesky(a_mat)
        u = feats.T @ z
        r = sla.cho_solve((chol, True), u)
        quad = float(z @ z - u @ r)
        nll = (
            0.5 * quad / sn2
            + 0.5 * log_det_from_cholesky(chol)
            - 0.5 * m * np.log(beta)
            + 0.5 * n * np.log(2.0 * np.pi * sn2)
        )
        if not with_grads:
            return nll

        a_inv = sla.cho_solve((chol, True), np.eye(m))
        resid = z - feats @ r
        dfeats = -np.outer(resid, r) / sn2 + feats @ a_inv
        dbeta = (
            0.5 * float(r @ r) / sn2
            + 0.5 * float(np.trace(a_inv))
            - 0.5 * m / beta
        )
        dlog_noise = -0.5 * quad / sn2 + 0.5 * n + beta * dbeta
        dlog_prior = -beta * dbeta
        return nll, dfeats, dlog_noise, dlog_prior

    # -- fitting --------------------------------------------------------------------

    def fit(self, x: np.ndarray, y: np.ndarray, trainer=None) -> "NeuralFeatureGP":
        """Train hyper-parameters on data and compute the posterior.

        ``trainer`` defaults to :class:`repro.core.trainer.FeatureGPTrainer`
        with its stock settings; pass a configured instance to control
        epochs, learning rate or MSE pre-training.
        """
        x = check_matrix_2d(x, "x", self.input_dim)
        y = check_vector_1d(y, "y", length=x.shape[0])
        check_finite(x, "x")
        check_finite(y, "y")
        if x.shape[0] < 2:
            raise ValueError("NeuralFeatureGP needs at least 2 training points")
        self._x_train = x
        if self.normalize_y:
            self._z_train = self._y_scaler.fit_transform(y)
        else:
            self._y_scaler.fit(np.array([0.0, 1.0]))
            self._y_scaler.mean_, self._y_scaler.scale_ = 0.0, 1.0
            self._z_train = y.copy()
        if trainer is None:
            from repro.core.trainer import FeatureGPTrainer

            trainer = FeatureGPTrainer()
        trainer.train(self, x, self._z_train)
        self.update_posterior()
        return self

    def condition_on(self, x_new: np.ndarray, y_new: float) -> "NeuralFeatureGP":
        """Append one observation and refresh the posterior only.

        Hyper-parameters, network weights and the target scaler stay fixed
        — this is the cheap fantasy/constant-liar update used by q-point
        acquisition (the appended value is typically a lie, so retraining
        on it would be wrong as well as wasteful).
        """
        self._require_fitted()
        x_new = check_matrix_2d(np.atleast_2d(np.asarray(x_new, dtype=float)),
                                "x_new", self.input_dim)
        z_new = self._y_scaler.transform(np.atleast_1d(float(y_new)))
        self._x_train = np.vstack([self._x_train, x_new])
        self._z_train = np.concatenate([self._z_train, z_new])
        self.update_posterior()
        return self

    def update_posterior(self):
        """(Re)compute the cached ``A`` factorization for predictions.

        Exposed separately from :meth:`fit` so the trainer can refresh the
        posterior cheaply during incremental refits.
        """
        if self._x_train is None:
            raise RuntimeError("no training data; call fit() first")
        feats = self.features(self._x_train)
        m = feats.shape[1]
        a_mat = feats.T @ feats + self.beta * np.eye(m)
        self._chol_a = jitter_cholesky(a_mat)
        self._coef_r = sla.cho_solve((self._chol_a, True), feats.T @ self._z_train)

    # -- prediction (eq. 10) -----------------------------------------------------------

    def predict(
        self, x: np.ndarray, include_noise: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance at query points, in original units.

        ``include_noise`` adds sigma_n^2 (the paper's eq. 10 includes it; for
        acquisition optimization the latent-function variance is standard).
        """
        self._require_fitted()
        feats = self.features(x)
        z_mean = feats @ self._coef_r
        v = sla.solve_triangular(self._chol_a, feats.T, lower=True)
        z_var = self.noise_variance * np.sum(v**2, axis=0)
        if include_noise:
            z_var = z_var + self.noise_variance
        z_var = np.maximum(z_var, 1e-14)
        mean = self._y_scaler.inverse_transform(z_mean)
        var = self._y_scaler.inverse_transform_variance(z_var)
        return mean, var

    def sample_head_weights(self, n_samples: int, rng=None) -> np.ndarray:
        """Draw posterior samples of the linear-head weights ``w`` (eq. 8).

        Useful for Thompson-sampling style acquisition experiments; returns
        shape ``(n_samples, M)`` in normalized-target units.
        """
        self._require_fitted()
        rng = ensure_rng(rng)
        m = self.feature_dim
        # posterior covariance of w is sigma_n^2 A^{-1}
        eye = np.eye(m)
        a_inv_half = sla.solve_triangular(self._chol_a, eye, lower=True)
        cov_half = np.sqrt(self.noise_variance) * a_inv_half.T
        noise = rng.standard_normal((n_samples, m))
        return self._coef_r[None, :] + noise @ cov_half.T

    def _require_fitted(self):
        if self._chol_a is None or self._coef_r is None:
            raise RuntimeError("model not fitted; call fit() first")

    def __repr__(self) -> str:
        return (
            f"NeuralFeatureGP(d={self.input_dim}, M={self.feature_dim}, "
            f"sigma_n^2={self.noise_variance:.3g}, sigma_p^2={self.prior_variance:.3g})"
        )
