"""Joint training of the NN-GP hyper-parameters (paper Sec. III-B).

The hyper-parameter vector is ``theta = [log sigma_n^2, log sigma_p^2, eta]``
where ``eta`` are the network weights.  The trainer minimizes the negative
marginal log-likelihood (eq. 11) by full-batch gradient descent; the
gradient w.r.t. ``eta`` is obtained by back-propagating ``dNLL/dPhi``
through the network (eq. 12), so "the training of the neural network is
actually embedded in the optimization procedure of maximizing the
logarithmic likelihood".

An optional DNGO-style mean-squared-error pre-training phase (a temporary
linear read-out head trained on the raw targets) is provided for ablation;
the paper itself trains the likelihood directly, which is the default.
"""

from __future__ import annotations

import numpy as np

from repro.core.feature_gp import (
    LOG_NOISE_BOUNDS,
    LOG_PRIOR_BOUNDS,
    NeuralFeatureGP,
)
from repro.nn.batched import BatchedLinear
from repro.nn.layers import Linear
from repro.nn.losses import mse_loss
from repro.nn.optimizers import Adam, Optimizer, StackedAdam
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import check_matrix_2d, check_vector_1d


class FeatureGPTrainer:
    """Gradient-based maximum-likelihood trainer for :class:`NeuralFeatureGP`.

    Parameters
    ----------
    epochs:
        Number of full-batch NLL gradient steps.
    lr:
        Adam learning rate for the joint parameter vector.
    pretrain_epochs:
        If positive, first run this many MSE steps with a temporary linear
        head (DNGO-style warm start), then switch to NLL training.
    pretrain_lr:
        Learning rate for the pre-training phase.
    patience:
        Early-stopping patience: training stops when the best NLL has not
        improved for this many epochs (``None`` disables).
    optimizer_factory:
        Callable returning a fresh :class:`repro.nn.Optimizer`; defaults to
        Adam with ``lr``.
    seed:
        RNG seed for the pre-training head initialization.
    """

    def __init__(
        self,
        epochs: int = 500,
        lr: float = 5e-3,
        pretrain_epochs: int = 0,
        pretrain_lr: float = 1e-2,
        patience: int | None = 100,
        optimizer_factory=None,
        seed=None,
    ):
        if epochs < 0 or pretrain_epochs < 0:
            raise ValueError("epoch counts must be non-negative")
        self.epochs = int(epochs)
        self.lr = float(lr)
        self.pretrain_epochs = int(pretrain_epochs)
        self.pretrain_lr = float(pretrain_lr)
        self.patience = patience
        self._optimizer_factory = optimizer_factory or (lambda: Adam(lr=self.lr))
        self._rng = ensure_rng(seed)
        self.loss_history: list[float] = []

    # -- public API -------------------------------------------------------------

    def train(self, model: NeuralFeatureGP, x: np.ndarray, z: np.ndarray) -> float:
        """Run (optional pre-training and) NLL training; return the best NLL.

        ``z`` must already be in the model's normalized-target units: this
        is the contract with :meth:`NeuralFeatureGP.fit`, which owns the
        scaler.
        """
        x = check_matrix_2d(x, "x", model.input_dim)
        z = check_vector_1d(z, "z", length=x.shape[0])
        self.loss_history = []
        if self.pretrain_epochs > 0:
            self._pretrain(model, x, z)
        if self.epochs > 0:
            return self._train_nll(model, x, z)
        feats = model.features(x)
        return float(model.marginal_nll(feats, z))

    # -- phases -----------------------------------------------------------------

    def _pretrain(self, model: NeuralFeatureGP, x: np.ndarray, z: np.ndarray):
        """MSE warm start with a throwaway linear head on top of phi(x)."""
        head = Linear(model.n_features, 1, rng=self._rng)
        optimizer: Optimizer = Adam(lr=self.pretrain_lr)
        net = model.network
        params = np.concatenate(
            [net.get_flat_params(), head.weight.ravel(), head.bias.ravel()]
        )
        n_net = net.num_params
        target = z.reshape(-1, 1)
        for _ in range(self.pretrain_epochs):
            net.set_flat_params(params[:n_net])
            head.weight[...] = params[n_net:-1].reshape(head.weight.shape)
            head.bias[...] = params[-1:]
            feats = net.forward(x)
            pred = head.forward(feats)
            _, grad_pred = mse_loss(pred, target)
            head.zero_grad()
            grad_feats = head.backward(grad_pred)
            net.zero_grad()
            net.backward(grad_feats)
            grads = np.concatenate(
                [net.get_flat_grads(), head.grad_weight.ravel(), head.grad_bias.ravel()]
            )
            params = optimizer.step(params, grads)
        net.set_flat_params(params[:n_net])

    def _train_nll(self, model: NeuralFeatureGP, x: np.ndarray, z: np.ndarray) -> float:
        """Full-batch Adam on ``[log sigma_n^2, log sigma_p^2, eta]``."""
        optimizer = self._optimizer_factory()
        net = model.network
        params = np.concatenate(
            [
                [model.log_noise_variance, model.log_prior_variance],
                net.get_flat_params(),
            ]
        )
        best_nll = np.inf
        best_params = params.copy()
        stall = 0
        for _ in range(self.epochs):
            self._write_params(model, params)
            feats = model.features(x)
            nll, dfeats, d_log_noise, d_log_prior = model.marginal_nll(
                feats, z, with_grads=True
            )
            self.loss_history.append(float(nll))
            if not np.isfinite(nll):
                # a bad step can overflow the likelihood; restart from best
                params = best_params.copy()
                optimizer.reset()
                stall += 1
                if self.patience is not None and stall > self.patience:
                    break
                continue
            if nll < best_nll - 1e-9:
                best_nll = float(nll)
                best_params = params.copy()
                stall = 0
            else:
                stall += 1
                if self.patience is not None and stall > self.patience:
                    break
            grad_eta = model.backprop_feature_grad(dfeats)
            grads = np.concatenate([[d_log_noise, d_log_prior], grad_eta])
            params = optimizer.step(params, grads)
            params[0] = np.clip(params[0], *LOG_NOISE_BOUNDS)
            params[1] = np.clip(params[1], *LOG_PRIOR_BOUNDS)
        self._write_params(model, best_params)
        if np.isfinite(best_nll):
            return best_nll
        feats = model.features(x)
        return float(model.marginal_nll(feats, z))

    @staticmethod
    def _write_params(model: NeuralFeatureGP, params: np.ndarray):
        model.log_noise_variance = float(params[0])
        model.log_prior_variance = float(params[1])
        model.network.set_flat_params(params[2:])


class BatchedFeatureGPTrainer:
    """Stacked counterpart of :class:`FeatureGPTrainer` for S models at once.

    Runs the identical training procedure on a
    :class:`~repro.core.batched_gp.BatchedNeuralFeatureGP`: every slice's
    parameter row evolves exactly as a dedicated :class:`FeatureGPTrainer`
    would evolve that member — the same Adam updates
    (:class:`~repro.nn.optimizers.StackedAdam` with per-slice state), the
    same best/stall bookkeeping, the same restart-from-best on a non-finite
    likelihood, and the same early stop (a stalled slice is frozen while
    the rest keep training).  The only difference is wall-clock: one epoch
    advances all S models through stacked tensor operations.

    One caveat: the exact slice-for-slice equivalence holds for the NLL
    training phase (the default, ``pretrain_epochs=0``).  The optional MSE
    pre-training warm start draws its throwaway head weights from this
    trainer's own random stream (one sub-stream per slice), which cannot
    replicate the serial path's per-member head draws — with pretraining
    enabled the two engines are statistically equivalent but not
    numerically identical.

    Active-slice compaction (``compact=True``, the default): once early
    stopping freezes a slice, its parameters are final — computing its
    forward pass, NLL and gradients would be pure waste, yet the stacked
    GEMMs otherwise keep paying for it until the *last* slice converges.
    The trainer therefore re-gathers the still-active slices into a
    smaller stacked model whenever the active set shrinks and trains on
    that.  Every stacked operation is per-slice, so gathering changes no
    arithmetic: predictions are bitwise identical with compaction on or
    off (pinned in ``tests/core/test_batched_gp.py``).  The only visible
    difference is bookkeeping — with compaction, frozen slices' entries
    in ``loss_history`` are ``NaN`` instead of a recomputed NLL.

    Parameters mirror :class:`FeatureGPTrainer`; ``loss_history`` holds one
    ``(S,)`` NLL vector per epoch.
    """

    def __init__(
        self,
        epochs: int = 500,
        lr: float = 5e-3,
        pretrain_epochs: int = 0,
        pretrain_lr: float = 1e-2,
        patience: int | None = 100,
        optimizer_factory=None,
        compact: bool = True,
        seed=None,
    ):
        if epochs < 0 or pretrain_epochs < 0:
            raise ValueError("epoch counts must be non-negative")
        self.epochs = int(epochs)
        self.lr = float(lr)
        self.pretrain_epochs = int(pretrain_epochs)
        self.pretrain_lr = float(pretrain_lr)
        self.patience = patience
        self.compact = bool(compact)
        self._optimizer_factory = optimizer_factory or (lambda: StackedAdam(lr=self.lr))
        self._rng = ensure_rng(seed)
        self.loss_history: list[np.ndarray] = []

    # -- public API -------------------------------------------------------------

    def train(self, model, x: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Train all slices; return the per-slice best NLL, shape ``(S,)``.

        ``z`` has shape ``(S, N)`` in the model's normalized-target units
        (the contract with ``BatchedNeuralFeatureGP.fit``).
        """
        x = check_matrix_2d(x, "x", model.input_dim)
        z = model.xb.asarray(z, dtype=float)
        if tuple(z.shape) != (model.n_stack, x.shape[0]):
            raise ValueError(
                f"expected z shape ({model.n_stack}, {x.shape[0]}), got {tuple(z.shape)}"
            )
        self.loss_history = []
        if self.pretrain_epochs > 0:
            self._pretrain(model, x, z)
        if self.epochs > 0:
            return self._train_nll(model, x, z)
        feats = model.features(x)
        return model.marginal_nll(feats, z)

    # -- phases -----------------------------------------------------------------

    def _pretrain(self, model, x: np.ndarray, z: np.ndarray):
        """MSE warm start with throwaway per-slice linear heads."""
        if not model.xb.is_numpy:
            raise NotImplementedError(
                "MSE pre-training supports the numpy backend only; train the "
                "likelihood directly (pretrain_epochs=0, the default) on "
                f"backend {model.xb.name!r}"
            )
        s_stack = model.n_stack
        head = BatchedLinear(model.n_features, 1, rngs=spawn_rngs(self._rng, s_stack))
        optimizer = StackedAdam(lr=self.pretrain_lr)
        net = model.network
        params = np.concatenate(
            [
                net.get_stacked_params(),
                head.weight.reshape(s_stack, -1),
                head.bias.reshape(s_stack, -1),
            ],
            axis=1,
        )
        n_net = net.num_params_per_slice
        target = z[..., None]
        n = x.shape[0]
        for _ in range(self.pretrain_epochs):
            net.set_stacked_params(params[:, :n_net])
            head.weight[...] = params[:, n_net:-1].reshape(head.weight.shape)
            head.bias[...] = params[:, -1:].reshape(head.bias.shape)
            feats = net.forward(x)
            pred = head.forward(feats)
            # per-slice MSE gradient (the serial loss normalizes by one
            # member's residual count, not the whole stack's)
            grad_pred = 2.0 * (pred - target) / n
            head.zero_grad()
            grad_feats = head.backward(grad_pred)
            net.zero_grad()
            net.backward(grad_feats)
            grads = np.concatenate(
                [
                    net.get_stacked_grads(),
                    head.grad_weight.reshape(s_stack, -1),
                    head.grad_bias.reshape(s_stack, -1),
                ],
                axis=1,
            )
            params = optimizer.step(params, grads)
        net.set_stacked_params(params[:, :n_net])

    def _train_nll(self, model, x: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Stacked full-batch Adam on ``[log sigma_n^2, log sigma_p^2, eta]``.

        Parameters, gradients and moments live on the model's array
        backend; the control-flow state (best NLL, stall counters, active
        masks) stays host-side numpy on every backend — it is bookkeeping,
        not tensor math, and the per-epoch transfer is one ``(S,)`` NLL
        vector.
        """
        xb = model.xb
        optimizer = self._optimizer_factory()
        if hasattr(optimizer, "bind_backend"):
            optimizer.bind_backend(xb)
        net = model.network
        s_stack = model.n_stack
        params = xb.concatenate(
            [
                xb.stack([model.log_noise_variance, model.log_prior_variance], axis=1),
                net.get_stacked_params(),
            ],
            axis=1,
        )
        best_nll = np.full(s_stack, np.inf)
        best_params = xb.copy(params)
        stall = np.zeros(s_stack, dtype=int)
        active = np.ones(s_stack, dtype=bool)
        # active-slice compaction state: ``view`` is the stacked model the
        # forward/backward runs on, ``view_idx`` the full-stack indices its
        # slices map to (None while no slice is frozen)
        view = model
        view_idx: np.ndarray | None = None
        for _ in range(self.epochs):
            if not active.any():
                break
            if self.compact:
                n_active = int(active.sum())
                n_view = s_stack if view_idx is None else view_idx.size
                if n_active < n_view:
                    view_idx = np.flatnonzero(active)
                    view = model.gather_slices(view_idx)
            rows = slice(None) if view_idx is None else xb.as_index(view_idx)
            self._write_params(view, params[rows])
            feats = view.features(x)
            nll_v, dfeats, d_log_noise, d_log_prior = view.marginal_nll(
                feats, z[rows], with_grads=True
            )
            if view_idx is None:
                nll = np.asarray(xb.from_device(nll_v), dtype=float)
            else:
                nll = np.full(s_stack, np.nan)
                nll[view_idx] = xb.from_device(nll_v)
            self.loss_history.append(nll.copy())
            finite = np.isfinite(nll)
            bad = active & ~finite
            if bad.any():
                # restart those slices from their best point (serial: params
                # reset + optimizer.reset + continue)
                bad_rows = xb.as_index(bad)
                params[bad_rows] = best_params[bad_rows]
                optimizer.reset_slices(bad)
                stall[bad] += 1
                if self.patience is not None:
                    active &= ~(bad & (stall > self.patience))
            improved = active & finite & (nll < best_nll - 1e-9)
            if improved.any():
                best_nll[improved] = nll[improved]
                imp_rows = xb.as_index(improved)
                best_params[imp_rows] = params[imp_rows]
                stall[improved] = 0
            worse = active & finite & ~improved
            stall[worse] += 1
            if self.patience is not None:
                # serial breaks before taking the step, so freeze first
                active &= ~(worse & (stall > self.patience))
            step_mask = active & finite
            if step_mask.any():
                grad_eta = view.backprop_feature_grad(dfeats)
                grads_v = xb.concatenate(
                    [d_log_noise[:, None], d_log_prior[:, None], grad_eta], axis=1
                )
                if view_idx is None:
                    grads = grads_v
                else:
                    grads = xb.zeros_like(params)
                    grads[xb.as_index(view_idx)] = grads_v
                params = optimizer.step(params, grads, mask=step_mask)
                params[:, 0] = xb.clip(params[:, 0], *LOG_NOISE_BOUNDS)
                params[:, 1] = xb.clip(params[:, 1], *LOG_PRIOR_BOUNDS)
        self._write_params(model, best_params)
        if np.all(np.isfinite(best_nll)):
            return best_nll
        feats = model.features(x)
        fallback = np.asarray(
            xb.from_device(model.marginal_nll(feats, z)), dtype=float
        )
        return np.where(np.isfinite(best_nll), best_nll, fallback)

    @staticmethod
    def _write_params(model, params: np.ndarray):
        xb = model.xb
        model.log_noise_variance = xb.copy(params[:, 0])
        model.log_prior_variance = xb.copy(params[:, 1])
        model.network.set_stacked_params(params[:, 2:])
