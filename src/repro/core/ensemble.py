"""Model averaging over randomly initialized members (paper Sec. III-C).

K independent probabilistic models are trained on the same data from
different random initializations; their predictive Gaussians are combined
by moment matching (eq. 13):

    mu(x)      = 1/K sum_k mu_k(x)
    sigma^2(x) = 1/K sum_k (mu_k(x)^2 + sigma_k^2(x)) - mu(x)^2

The combined variance therefore contains both the average member variance
and the *disagreement* between member means — the term that repairs
uncertainty estimates far from the training data (Lakshminarayanan et al.
2017).  The paper sets K = 5 empirically.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import spawn_rngs


class DeepEnsemble:
    """Moment-matched ensemble of probabilistic regression models.

    Members can be any objects implementing ``fit(x, y)`` and
    ``predict(x) -> (mean, var)`` — in the paper they are
    :class:`~repro.core.feature_gp.NeuralFeatureGP` instances.
    """

    def __init__(self, members: list):
        if not members:
            raise ValueError("ensemble needs at least one member")
        self.members = list(members)

    @classmethod
    def create(cls, factory, n_members: int = 5, seed=None) -> "DeepEnsemble":
        """Build K members via ``factory(rng)`` with independent streams.

        ``factory`` receives a :class:`numpy.random.Generator` it must use
        for weight initialization, realizing the paper's "randomly
        initializing the hyper parameters" per member.
        """
        if n_members < 1:
            raise ValueError(f"n_members must be >= 1, got {n_members}")
        rngs = spawn_rngs(seed, n_members)
        return cls([factory(rng) for rng in rngs])

    @property
    def n_members(self) -> int:
        """Number of ensemble members K."""
        return len(self.members)

    def fit(self, x: np.ndarray, y: np.ndarray, **fit_kwargs) -> "DeepEnsemble":
        """Fit every member on the same dataset.

        The paper notes members can be trained in parallel; we train
        serially for determinism (each member still has an independent
        random initialization).
        """
        for member in self.members:
            member.fit(x, y, **fit_kwargs)
        return self

    def predict(self, x: np.ndarray, **predict_kwargs) -> tuple[np.ndarray, np.ndarray]:
        """Combined predictive mean and variance per eq. 13."""
        means = []
        variances = []
        for member in self.members:
            mu_k, var_k = member.predict(x, **predict_kwargs)
            means.append(np.asarray(mu_k, dtype=float))
            variances.append(np.asarray(var_k, dtype=float))
        mean_stack = np.stack(means)  # (K, n)
        var_stack = np.stack(variances)
        mu = mean_stack.mean(axis=0)
        second_moment = (mean_stack**2 + var_stack).mean(axis=0)
        var = np.maximum(second_moment - mu**2, 1e-14)
        return mu, var

    def member_predictions(
        self, x: np.ndarray, **predict_kwargs
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-member means and variances, shape ``(K, n)`` each."""
        means = []
        variances = []
        for member in self.members:
            mu_k, var_k = member.predict(x, **predict_kwargs)
            means.append(np.asarray(mu_k, dtype=float))
            variances.append(np.asarray(var_k, dtype=float))
        return np.stack(means), np.stack(variances)

    def __repr__(self) -> str:
        return f"DeepEnsemble(K={self.n_members}, member={type(self.members[0]).__name__})"
