"""The paper's primary contribution: the neural-network Gaussian process.

* :class:`NeuralFeatureGP` — weight-space GP whose kernel is the inner
  product of learned neural features (Sec. III-A, eq. 8–11),
* :class:`FeatureGPTrainer` — joint maximum-likelihood training of GP
  scales and network weights by back-propagation (Sec. III-B, eq. 12),
* :class:`DeepEnsemble` — moment-matched model averaging over K randomly
  initialized members (Sec. III-C, eq. 13),
* :class:`NNBO` — the full constrained Bayesian-optimization algorithm
  (Algorithm 1 / Fig. 2).

Performance architecture — the batched surrogate engine
-------------------------------------------------------

One NN-BO iteration fits ``S = K x T`` models (K ensemble members for
each of the objective + constraints).  The batched engine trains them all
as one tensor program over arrays with a leading *stack axis* ``(S, ...)``
— weights ``(S, in, out)``, features ``(S, N, M)``, A-matrices
``(S, M, M)`` — with slice ``s = t * K + k`` holding member ``k`` of
target ``t``:

* :class:`BatchedNeuralFeatureGP` — S feature-GPs advanced by stacked
  GEMMs (``repro.nn.batched``) plus per-slice LAPACK for the M x M
  factorizations,
* :class:`BatchedFeatureGPTrainer` — the stacked trainer; every slice
  follows the exact update sequence a dedicated
  :class:`FeatureGPTrainer` would apply,
* :class:`SurrogateBank` — the BO-facing front-end: one ``fit`` for all
  targets, per-target moment-matched ``predict`` views.

The engine is numerically equivalent to the per-member loop (means
bitwise, variances to ~1e-16; pinned by ``tests/core/test_batched_gp.py``)
and is selected by ``NNBO(engine="batched")`` (the default via
``"auto"``).  ``benchmarks/bench_batched_engine.py`` measures the
speedup on a charge-pump-sized workload.
"""

from repro.core.batched_gp import (
    BatchedNeuralFeatureGP,
    SurrogateBank,
    serial_reference_bank,
)
from repro.core.ensemble import DeepEnsemble
from repro.core.feature_gp import NeuralFeatureGP
from repro.core.trainer import BatchedFeatureGPTrainer, FeatureGPTrainer
from repro.core.bo import NNBO

__all__ = [
    "BatchedFeatureGPTrainer",
    "BatchedNeuralFeatureGP",
    "DeepEnsemble",
    "FeatureGPTrainer",
    "NeuralFeatureGP",
    "NNBO",
    "SurrogateBank",
    "serial_reference_bank",
]
