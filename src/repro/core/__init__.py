"""The paper's primary contribution: the neural-network Gaussian process.

* :class:`NeuralFeatureGP` — weight-space GP whose kernel is the inner
  product of learned neural features (Sec. III-A, eq. 8–11),
* :class:`FeatureGPTrainer` — joint maximum-likelihood training of GP
  scales and network weights by back-propagation (Sec. III-B, eq. 12),
* :class:`DeepEnsemble` — moment-matched model averaging over K randomly
  initialized members (Sec. III-C, eq. 13),
* :class:`NNBO` — the full constrained Bayesian-optimization algorithm
  (Algorithm 1 / Fig. 2).
"""

from repro.core.ensemble import DeepEnsemble
from repro.core.feature_gp import NeuralFeatureGP
from repro.core.trainer import FeatureGPTrainer
from repro.core.bo import NNBO

__all__ = ["DeepEnsemble", "FeatureGPTrainer", "NeuralFeatureGP", "NNBO"]
