"""Tests for the log-space box scaler."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.scaling import LogBoxScaler


class TestLogBoxScaler:
    def test_roundtrip(self):
        scaler = LogBoxScaler([1e-7, 500.0], [1e-4, 3.2e5])
        x = np.array([[4e-6, 10e3], [1e-7, 3.2e5]])
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(x)), x, rtol=1e-12
        )

    def test_bounds_map_to_corners(self):
        scaler = LogBoxScaler([1e-6], [1e-3])
        assert scaler.transform(np.array([1e-6]))[0] == pytest.approx(0.0)
        assert scaler.transform(np.array([1e-3]))[0] == pytest.approx(1.0)

    def test_geometric_midpoint_is_half(self):
        """Equal resolution per octave: sqrt(lo*hi) maps to 0.5."""
        scaler = LogBoxScaler([1e-6], [1e-2])
        mid = np.sqrt(1e-6 * 1e-2)
        assert scaler.transform(np.array([mid]))[0] == pytest.approx(0.5)

    def test_rejects_nonpositive_bounds(self):
        with pytest.raises(ValueError):
            LogBoxScaler([0.0], [1.0])
        with pytest.raises(ValueError):
            LogBoxScaler([-1.0], [1.0])

    def test_rejects_nonpositive_inputs(self):
        scaler = LogBoxScaler([1.0], [10.0])
        with pytest.raises(ValueError):
            scaler.transform(np.array([0.0]))

    @given(
        lo_exp=st.floats(-9, 0),
        decades=st.floats(0.5, 8),
        u=st.floats(0.0, 1.0),
    )
    def test_property_inverse_in_box(self, lo_exp, decades, u):
        lo = 10.0**lo_exp
        hi = lo * 10.0**decades
        scaler = LogBoxScaler([lo], [hi])
        x = scaler.inverse_transform(np.array([u]))[0]
        assert lo * (1 - 1e-9) <= x <= hi * (1 + 1e-9)

    def test_usable_as_problem_scaler(self):
        """A Problem with a log scaler searches uniformly in decades."""
        from repro.bo.problem import FunctionProblem

        prob = FunctionProblem(
            "logspace", [1e-6], [1e-2],
            objective=lambda x: float(np.log10(x[0]) + 4) ** 2,
        )
        prob.scaler = LogBoxScaler(prob.lower, prob.upper)
        ev = prob.evaluate_unit(np.array([0.5]))
        assert ev.objective == pytest.approx(0.0)  # geometric mid = 1e-4
