"""Tests for validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_box_bounds,
    check_finite,
    check_matrix_2d,
    check_vector_1d,
)


class TestCheckFinite:
    def test_passes_finite(self):
        out = check_finite([1.0, 2.0], "x")
        np.testing.assert_allclose(out, [1.0, 2.0])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="x"):
            check_finite([1.0, np.nan], "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_finite([np.inf], "y")


class TestCheckMatrix2d:
    def test_promotes_1d_to_row(self):
        out = check_matrix_2d([1.0, 2.0, 3.0], "x")
        assert out.shape == (1, 3)

    def test_keeps_2d(self):
        out = check_matrix_2d(np.zeros((4, 2)), "x")
        assert out.shape == (4, 2)

    def test_checks_columns(self):
        with pytest.raises(ValueError, match="columns"):
            check_matrix_2d(np.zeros((4, 2)), "x", n_cols=3)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            check_matrix_2d(np.zeros((2, 2, 2)), "x")


class TestCheckVector1d:
    def test_flattens(self):
        out = check_vector_1d(np.zeros((3, 1)), "v")
        assert out.shape == (3,)

    def test_length_check(self):
        with pytest.raises(ValueError, match="length"):
            check_vector_1d([1.0, 2.0], "v", length=3)


class TestCheckBoxBounds:
    def test_valid(self):
        lo, hi = check_box_bounds([0, 1], [1, 2])
        np.testing.assert_allclose(lo, [0, 1])
        np.testing.assert_allclose(hi, [1, 2])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shapes"):
            check_box_bounds([0], [1, 2])

    def test_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_box_bounds([], [])

    def test_reports_bad_dimension(self):
        with pytest.raises(ValueError, match=r"\[1\]"):
            check_box_bounds([0.0, 5.0], [1.0, 2.0])
