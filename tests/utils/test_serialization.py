"""Tests for run/model persistence."""

import numpy as np
import pytest

from repro.bo.history import OptimizationResult
from repro.bo.problem import Evaluation
from repro.core import FeatureGPTrainer, NeuralFeatureGP
from repro.utils.serialization import (
    load_model_into,
    load_result,
    result_from_dict,
    result_to_dict,
    save_model,
    save_result,
)


def sample_result():
    result = OptimizationResult("opamp", "NN-BO")
    result.append(
        np.array([1.0, 2.0]),
        Evaluation(-80.0, np.array([-0.5, -0.1]), metrics={"gain_db": 80.0}),
        phase="initial",
    )
    result.append(
        np.array([1.5, 2.5]),
        Evaluation(-85.0, np.array([-0.6, -0.2]),
                   metrics={"gain_db": 85.0, "regions": {"M1": "sat"}}),
    )
    return result


class TestResultRoundtrip:
    def test_dict_roundtrip_preserves_trace(self):
        original = sample_result()
        clone = result_from_dict(result_to_dict(original))
        assert clone.algorithm == "NN-BO"
        assert clone.n_evaluations == 2
        np.testing.assert_allclose(clone.x_matrix, original.x_matrix)
        np.testing.assert_allclose(clone.objectives, original.objectives)
        np.testing.assert_allclose(
            clone.constraint_matrix, original.constraint_matrix
        )
        assert [r.phase for r in clone.records] == ["initial", "search"]

    def test_scalar_metrics_survive_nested_dropped(self):
        clone = result_from_dict(result_to_dict(sample_result()))
        metrics = clone.records[1].evaluation.metrics
        assert metrics["gain_db"] == 85.0
        assert "regions" not in metrics  # non-scalar metrics are dropped

    def test_file_roundtrip(self, tmp_path):
        original = sample_result()
        path = save_result(original, tmp_path / "run.json")
        clone = load_result(path)
        assert clone.best_objective() == original.best_objective()
        assert clone.n_sims_to_best() == original.n_sims_to_best()

    def test_summary_statistics_preserved(self):
        original = sample_result()
        clone = result_from_dict(result_to_dict(original))
        assert clone.success == original.success
        np.testing.assert_allclose(clone.best_so_far(), original.best_so_far())


class TestModelRoundtrip:
    def make_fitted(self, seed=0):
        rng = np.random.default_rng(3)
        model = NeuralFeatureGP(2, hidden_dims=(10, 10), n_features=6, seed=seed)
        x = rng.uniform(size=(15, 2))
        y = np.sin(3 * x[:, 0]) + x[:, 1]
        model.fit(x, y, trainer=FeatureGPTrainer(epochs=50))
        return model, x

    def test_predictions_identical_after_reload(self, tmp_path):
        model, x = self.make_fitted()
        path = tmp_path / "model.npz"
        save_model(model, path)
        clone = NeuralFeatureGP(2, hidden_dims=(10, 10), n_features=6, seed=99)
        load_model_into(clone, path)
        mean_a, var_a = model.predict(x)
        mean_b, var_b = clone.predict(x)
        np.testing.assert_allclose(mean_b, mean_a, rtol=1e-12)
        np.testing.assert_allclose(var_b, var_a, rtol=1e-12)

    def test_unfitted_model_rejected(self, tmp_path):
        model = NeuralFeatureGP(2, hidden_dims=(10, 10), n_features=6)
        with pytest.raises(ValueError):
            save_model(model, tmp_path / "m.npz")

    def test_wrong_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_model(object(), tmp_path / "m.npz")

    def test_architecture_mismatch_raises(self, tmp_path):
        model, _ = self.make_fitted()
        path = tmp_path / "model.npz"
        save_model(model, path)
        wrong = NeuralFeatureGP(2, hidden_dims=(20, 20), n_features=6)
        with pytest.raises(ValueError):
            load_model_into(wrong, path)
