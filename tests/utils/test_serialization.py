"""Tests for run/model persistence."""

import numpy as np
import pytest

from repro.bo.history import OptimizationResult
from repro.bo.problem import Evaluation
from repro.core import FeatureGPTrainer, NeuralFeatureGP
from repro.utils.serialization import (
    load_model_into,
    load_result,
    result_from_dict,
    result_to_dict,
    save_model,
    save_result,
)


def sample_result():
    result = OptimizationResult("opamp", "NN-BO")
    result.append(
        np.array([1.0, 2.0]),
        Evaluation(-80.0, np.array([-0.5, -0.1]), metrics={"gain_db": 80.0}),
        phase="initial",
    )
    result.append(
        np.array([1.5, 2.5]),
        Evaluation(-85.0, np.array([-0.6, -0.2]),
                   metrics={"gain_db": 85.0, "regions": {"M1": "sat"}}),
    )
    return result


class TestResultRoundtrip:
    def test_dict_roundtrip_preserves_trace(self):
        original = sample_result()
        clone = result_from_dict(result_to_dict(original))
        assert clone.algorithm == "NN-BO"
        assert clone.n_evaluations == 2
        np.testing.assert_allclose(clone.x_matrix, original.x_matrix)
        np.testing.assert_allclose(clone.objectives, original.objectives)
        np.testing.assert_allclose(
            clone.constraint_matrix, original.constraint_matrix
        )
        assert [r.phase for r in clone.records] == ["initial", "search"]

    def test_scalar_metrics_survive_nested_dropped(self):
        clone = result_from_dict(result_to_dict(sample_result()))
        metrics = clone.records[1].evaluation.metrics
        assert metrics["gain_db"] == 85.0
        assert "regions" not in metrics  # non-scalar metrics are dropped

    def test_file_roundtrip(self, tmp_path):
        original = sample_result()
        path = save_result(original, tmp_path / "run.json")
        clone = load_result(path)
        assert clone.best_objective() == original.best_objective()
        assert clone.n_sims_to_best() == original.n_sims_to_best()

    def test_summary_statistics_preserved(self):
        original = sample_result()
        clone = result_from_dict(result_to_dict(original))
        assert clone.success == original.success
        np.testing.assert_allclose(clone.best_so_far(), original.best_so_far())


class TestLedgerProvenanceRoundtrip:
    """Regression: ``result_to_dict`` used to drop ``result.ledger`` and
    all scheduler provenance (iteration, batch index, pending sets)."""

    def async_result(self):
        """A short asynchronous run whose result carries a full ledger."""
        from repro.bo.loop import SurrogateBO
        from repro.bo.scheduler import FakeClock
        from repro.benchfns import toy_constrained_quadratic
        from repro.gp import GPRegression

        return SurrogateBO(
            toy_constrained_quadratic(2),
            lambda rng: GPRegression(n_restarts=1, seed=rng),
            n_initial=4,
            max_evaluations=9,
            executor="async-thread",
            n_eval_workers=2,
            async_clock=FakeClock(),
            pending_strategy="penalize",
            seed=5,
        ).run()

    def test_ledger_roundtrips(self):
        original = self.async_result()
        clone = result_from_dict(result_to_dict(original))
        assert clone.ledger is not None
        assert len(clone.ledger) == len(original.ledger)
        assert clone.ledger.completion_order == original.ledger.completion_order
        for before, after in zip(original.ledger.entries, clone.ledger.entries):
            assert after.proposal_id == before.proposal_id
            assert after.u == before.u
            assert after.pending_at_proposal == before.pending_at_proposal
            assert after.n_landed_at_submit == before.n_landed_at_submit
            assert after.committed_at == before.committed_at
            assert after.record_index == before.record_index
            assert after.strategy == before.strategy == "penalize"

    def test_record_provenance_roundtrips(self):
        original = self.async_result()
        clone = result_from_dict(result_to_dict(original))
        assert [
            (r.iteration, r.batch_index, r.pending, r.proposal_id,
             r.pending_at_proposal)
            for r in clone.records
        ] == [
            (r.iteration, r.batch_index, r.pending, r.proposal_id,
             r.pending_at_proposal)
            for r in original.records
        ]
        assert clone.cache_hits == original.cache_hits
        assert clone.cache_misses == original.cache_misses

    def test_sync_result_without_provenance_still_loads(self):
        """Pre-provenance dicts (older saves) stay readable."""
        legacy = {
            "problem": "p",
            "algorithm": "a",
            "records": [
                {
                    "index": 0,
                    "x": [0.5],
                    "phase": "search",
                    "objective": 1.0,
                    "constraints": [],
                    "metrics": {},
                }
            ],
        }
        clone = result_from_dict(legacy)
        assert clone.n_evaluations == 1
        assert clone.ledger is None
        assert clone.records[0].pending == ()


class TestModelRoundtrip:
    def make_fitted(self, seed=0):
        rng = np.random.default_rng(3)
        model = NeuralFeatureGP(2, hidden_dims=(10, 10), n_features=6, seed=seed)
        x = rng.uniform(size=(15, 2))
        y = np.sin(3 * x[:, 0]) + x[:, 1]
        model.fit(x, y, trainer=FeatureGPTrainer(epochs=50))
        return model, x

    def test_predictions_identical_after_reload(self, tmp_path):
        model, x = self.make_fitted()
        path = tmp_path / "model.npz"
        save_model(model, path)
        clone = NeuralFeatureGP(2, hidden_dims=(10, 10), n_features=6, seed=99)
        load_model_into(clone, path)
        mean_a, var_a = model.predict(x)
        mean_b, var_b = clone.predict(x)
        np.testing.assert_allclose(mean_b, mean_a, rtol=1e-12)
        np.testing.assert_allclose(var_b, var_a, rtol=1e-12)

    def test_unfitted_model_rejected(self, tmp_path):
        model = NeuralFeatureGP(2, hidden_dims=(10, 10), n_features=6)
        with pytest.raises(ValueError):
            save_model(model, tmp_path / "m.npz")

    def test_wrong_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_model(object(), tmp_path / "m.npz")

    def test_architecture_mismatch_raises(self, tmp_path):
        model, _ = self.make_fitted()
        path = tmp_path / "model.npz"
        save_model(model, path)
        wrong = NeuralFeatureGP(2, hidden_dims=(20, 20), n_features=6)
        with pytest.raises(ValueError):
            load_model_into(wrong, path)
