"""Tests for BoxScaler and StandardScaler."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.utils.scaling import BoxScaler, StandardScaler


class TestBoxScaler:
    def test_forward_inverse_roundtrip(self, rng):
        scaler = BoxScaler([-1.0, 0.0, 10.0], [1.0, 5.0, 20.0])
        x = rng.uniform([-1, 0, 10], [1, 5, 20], size=(20, 3))
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(x)), x, rtol=1e-12
        )

    def test_bounds_map_to_unit_corners(self):
        scaler = BoxScaler([-2.0, 1.0], [2.0, 3.0])
        np.testing.assert_allclose(scaler.transform(scaler.lower), [0.0, 0.0])
        np.testing.assert_allclose(scaler.transform(scaler.upper), [1.0, 1.0])

    def test_clip(self):
        scaler = BoxScaler([0.0], [1.0])
        np.testing.assert_allclose(scaler.clip(np.array([-5.0])), [0.0])
        np.testing.assert_allclose(scaler.clip(np.array([5.0])), [1.0])

    def test_dim(self):
        assert BoxScaler([0, 0, 0, 0], [1, 1, 1, 1]).dim == 4

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            BoxScaler([1.0], [0.0])

    def test_rejects_equal_bounds(self):
        with pytest.raises(ValueError):
            BoxScaler([1.0, 0.0], [1.0, 2.0])

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            BoxScaler([0.0], [np.inf])

    @given(
        lower=st.floats(-1e6, 1e6 - 1),
        width=st.floats(1e-3, 1e6),
        u=st.floats(0.0, 1.0),
    )
    def test_property_inverse_lands_in_box(self, lower, width, u):
        scaler = BoxScaler([lower], [lower + width])
        x = scaler.inverse_transform(np.array([u]))
        assert lower - 1e-6 <= x[0] <= lower + width + 1e-6


class TestStandardScaler:
    def test_transform_zero_mean_unit_std(self, rng):
        y = rng.normal(3.0, 2.0, size=200)
        z = StandardScaler().fit_transform(y)
        assert abs(z.mean()) < 1e-10
        assert abs(z.std() - 1.0) < 1e-10

    def test_roundtrip(self, rng):
        y = rng.normal(-5.0, 0.3, size=50)
        scaler = StandardScaler().fit(y)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(y)), y, rtol=1e-12
        )

    def test_variance_inverse(self):
        scaler = StandardScaler().fit(np.array([0.0, 2.0, 4.0]))
        var = np.array([1.0])
        np.testing.assert_allclose(
            scaler.inverse_transform_variance(var), scaler.scale_**2
        )

    def test_constant_targets_do_not_blow_up(self):
        scaler = StandardScaler().fit(np.full(10, 7.0))
        z = scaler.transform(np.array([7.0]))
        assert np.all(np.isfinite(z))

    def test_use_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.array([1.0]))

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.array([]))

    @given(
        hnp.arrays(
            float,
            st.integers(2, 30),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        )
    )
    def test_property_roundtrip(self, y):
        scaler = StandardScaler().fit(y)
        back = scaler.inverse_transform(scaler.transform(y))
        np.testing.assert_allclose(back, y, rtol=1e-6, atol=1e-6)
