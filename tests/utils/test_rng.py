"""Tests for RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = ensure_rng(7).uniform(size=5)
        b = ensure_rng(7).uniform(size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).uniform(size=5)
        b = ensure_rng(2).uniform(size=5)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_seed(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_streams_independent(self):
        rngs = spawn_rngs(42, 3)
        draws = [r.uniform(size=8) for r in rngs]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_reproducible_from_seed(self):
        a = [r.uniform() for r in spawn_rngs(9, 4)]
        b = [r.uniform() for r in spawn_rngs(9, 4)]
        np.testing.assert_allclose(a, b)
