"""Property-based tests of the DC solver on random linear networks.

For arbitrary resistor ladders/meshes the MNA solution must satisfy KCL
exactly and match an independently-formed nodal solve — this pins the
stamping conventions far more broadly than hand-picked examples.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import Circuit, DCAnalysis


def build_ladder(resistances, v_in):
    """Series ladder V - R1 - R2 - ... - Rn - gnd."""
    ckt = Circuit("ladder")
    ckt.vsource("V1", "n0", "0", v_in)
    for i, r in enumerate(resistances):
        bottom = "0" if i == len(resistances) - 1 else f"n{i + 1}"
        ckt.resistor(f"R{i}", f"n{i}", bottom, r)
    return ckt


class TestLadderProperties:
    @given(
        resistances=st.lists(st.floats(10.0, 1e6), min_size=2, max_size=8),
        v_in=st.floats(-10.0, 10.0),
    )
    @settings(max_examples=30)
    def test_voltage_division_exact(self, resistances, v_in):
        ckt = build_ladder(resistances, v_in)
        sol = DCAnalysis(ckt).solve()
        total = sum(resistances)
        # the always-on gmin (1e-12 S per node) shifts high-impedance
        # ladders by up to ~n * R_total * gmin relative
        slack = 10.0 * len(resistances) * total * 1e-12
        below = total
        for i, r in enumerate(resistances):
            expected = v_in * below / total
            assert sol.voltage(f"n{i}") == pytest.approx(
                expected, rel=1e-6 + slack, abs=1e-9
            )
            below -= r

    @given(
        resistances=st.lists(st.floats(10.0, 1e6), min_size=2, max_size=8),
        v_in=st.floats(-10.0, 10.0),
    )
    @settings(max_examples=20)
    def test_source_current_is_ohms_law(self, resistances, v_in):
        ckt = build_ladder(resistances, v_in)
        sol = DCAnalysis(ckt).solve()
        total = sum(resistances)
        expected = -v_in / total
        slack = 10.0 * len(resistances) * total * 1e-12
        assert sol.branch_current("V1") == pytest.approx(
            expected, rel=1e-6 + slack, abs=abs(v_in) * 1e-11 + 1e-15
        )


class TestRandomMeshAgainstDirectSolve:
    @given(seed=st.integers(0, 200))
    @settings(max_examples=25)
    def test_matches_independent_nodal_formulation(self, seed):
        """Random conductance mesh + random current injections: compare the
        full solver against a directly assembled nodal system."""
        rng = np.random.default_rng(seed)
        n_nodes = int(rng.integers(3, 7))
        ckt = Circuit(f"mesh{seed}")
        g_direct = np.zeros((n_nodes, n_nodes))
        b_direct = np.zeros(n_nodes)
        # random resistors between node pairs (and to ground)
        names = [f"m{i}" for i in range(n_nodes)]
        edge_id = 0
        for i in range(n_nodes):
            # guarantee a path to ground so nothing floats
            r = float(rng.uniform(100, 1e5))
            ckt.resistor(f"Rg{i}", names[i], "0", r)
            g_direct[i, i] += 1.0 / r
            for j in range(i + 1, n_nodes):
                if rng.uniform() < 0.5:
                    r = float(rng.uniform(100, 1e5))
                    ckt.resistor(f"Re{edge_id}", names[i], names[j], r)
                    edge_id += 1
                    g_direct[i, i] += 1.0 / r
                    g_direct[j, j] += 1.0 / r
                    g_direct[i, j] -= 1.0 / r
                    g_direct[j, i] -= 1.0 / r
        for i in range(n_nodes):
            current = float(rng.uniform(-1e-3, 1e-3))
            ckt.isource(f"I{i}", "0", names[i], current)
            b_direct[i] += current
        sol = DCAnalysis(ckt).solve()
        expected = np.linalg.solve(
            g_direct + 1e-12 * np.eye(n_nodes), b_direct
        )
        measured = np.array([sol.voltage(nm) for nm in names])
        np.testing.assert_allclose(measured, expected, rtol=1e-8, atol=1e-10)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=15)
    def test_kcl_residual_at_solution(self, seed):
        """Re-stamping at the solution must satisfy G x = b to round-off."""
        from repro.circuits.mna import MNASystem

        rng = np.random.default_rng(seed)
        ckt = Circuit(f"kcl{seed}")
        ckt.vsource("V1", "a", "0", float(rng.uniform(0.5, 5.0)))
        ckt.resistor("R1", "a", "b", float(rng.uniform(100, 1e4)))
        ckt.resistor("R2", "b", "c", float(rng.uniform(100, 1e4)))
        ckt.resistor("R3", "c", "0", float(rng.uniform(100, 1e4)))
        ckt.isource("I1", "0", "b", float(rng.uniform(-1e-3, 1e-3)))
        sol = DCAnalysis(ckt).solve()
        system = MNASystem(ckt.n_unknowns)
        for device in ckt.devices:
            device.stamp_dc(system, sol.x)
        system.apply_gmin(ckt.n_nodes)
        residual = system.matrix @ sol.x - system.rhs
        np.testing.assert_allclose(residual, 0.0, atol=1e-9)
